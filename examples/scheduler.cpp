// Example: a deadline scheduler built on min-extraction.
//
// Tasks carry a deadline (the key); worker threads repeatedly claim the
// earliest-deadline task with min() + erase(), producers keep submitting,
// and a control thread cancels tasks — the remove-heavy, ordered workload
// where on-time deletion matters: a cancelled task's node is physically
// gone immediately instead of lingering as a zombie on the hot min path.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "lo/avl.hpp"
#include "util/random.hpp"

namespace {

using Deadline = std::int64_t;  // microseconds since start (unique per task)
using TaskId = std::int64_t;

class DeadlineScheduler {
 public:
  bool submit(Deadline d, TaskId id) { return queue_.insert(d, id); }
  bool cancel(Deadline d) { return queue_.erase(d); }

  /// Claims the earliest task: read min, then race to erase it. The erase
  /// is the claim ticket — exactly one claimer wins each task.
  std::optional<std::pair<Deadline, TaskId>> claim_next() {
    for (;;) {
      const auto top = queue_.min();
      if (!top) return std::nullopt;
      if (queue_.erase(top->first)) return top;
      // Lost the race (someone claimed or cancelled it); try again.
    }
  }

  std::size_t pending() const { return queue_.size_slow(); }

 private:
  lot::lo::AvlMap<Deadline, TaskId> queue_;
};

}  // namespace

int main() {
  DeadlineScheduler sched;
  constexpr int kProducers = 2;
  constexpr int kWorkers = 3;
  constexpr int kTasksPerProducer = 120'000;

  std::atomic<bool> producers_done{false};
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::int64_t> out_of_order{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      lot::util::Xoshiro256 rng(31 + p);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        // Unique deadlines: producer id in the low bits.
        const Deadline d =
            static_cast<Deadline>(rng.next_below(1'000'000'000)) *
                kProducers + p;
        if (!sched.submit(d, i)) continue;  // rare collision: skip
        if (rng.percent(20)) {
          if (sched.cancel(d)) cancelled.fetch_add(1);
        }
      }
    });
  }

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      Deadline last = -1;
      std::uint64_t local = 0;
      for (;;) {
        const auto task = sched.claim_next();
        if (!task) {
          if (producers_done.load(std::memory_order_acquire) &&
              sched.pending() == 0) {
            break;
          }
          std::this_thread::yield();
          continue;
        }
        // Within one worker, claims trend earliest-first; regressions are
        // expected only when other workers interleave claims.
        if (task->first < last) out_of_order.fetch_add(1);
        last = task->first;
        ++local;
      }
      executed.fetch_add(local);
    });
  }

  for (auto& th : producers) th.join();
  producers_done = true;
  for (auto& th : workers) th.join();

  const auto total = executed.load() + cancelled.load();
  std::printf("scheduler drained: %llu executed + %llu cancelled = %llu "
              "(submitted ~%d)\n",
              static_cast<unsigned long long>(executed.load()),
              static_cast<unsigned long long>(cancelled.load()),
              static_cast<unsigned long long>(total),
              kProducers * kTasksPerProducer);
  std::printf("pending after drain: %zu (expect 0)\n", sched.pending());
  std::printf("per-worker deadline regressions (inter-worker interleaving "
              "only): %lld\n",
              static_cast<long long>(out_of_order.load()));
  return 0;
}
