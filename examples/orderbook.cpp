// Example: a concurrent limit order book.
//
// Price levels are the classic ordered-map workload the paper's intro
// motivates: hot inserts and removals of price levels (heavy 2-children
// removals as mid-book levels empty), while market-data threads stream
// best-bid/best-ask — which must never block behind book updates. The
// logical-ordering tree's lock-free min()/max() (one pred/succ read,
// paper §4.7) is exactly that.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "lo/avl.hpp"
#include "obs/obs.hpp"
#include "util/random.hpp"

namespace {

using Price = std::int64_t;   // ticks
using Volume = std::int64_t;  // shares at this level

struct OrderBook {
  // One tree per side. Bids: best = max price; asks: best = min price.
  lot::lo::AvlMap<Price, Volume> bids;
  lot::lo::AvlMap<Price, Volume> asks;

  void post_bid(Price p, Volume v) { bids.insert(p, v); }
  void post_ask(Price p, Volume v) { asks.insert(p, v); }
  void cancel_bid(Price p) { bids.erase(p); }
  void cancel_ask(Price p) { asks.erase(p); }

  // Lock-free top-of-book: never blocks behind posting/cancelling.
  std::optional<Price> best_bid() const {
    const auto m = bids.max();
    if (!m) return std::nullopt;
    return m->first;
  }
  std::optional<Price> best_ask() const {
    const auto m = asks.min();
    if (!m) return std::nullopt;
    return m->first;
  }
};

}  // namespace

int main() {
  OrderBook book;
  constexpr Price kMid = 10'000;
  constexpr Price kDepth = 2'000;

  // Seed both sides around the mid price.
  for (Price p = kMid - kDepth; p < kMid; p += 2) book.post_bid(p, 100);
  for (Price p = kMid + 1; p < kMid + kDepth; p += 2) book.post_ask(p, 100);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> quotes{0};
  std::atomic<std::uint64_t> crossed{0};

  // Market-data threads: stream top-of-book continuously.
  std::vector<std::thread> md;
  for (int t = 0; t < 2; ++t) {
    md.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto bb = book.best_bid();
        const auto ba = book.best_ask();
        quotes.fetch_add(1, std::memory_order_relaxed);
        if (bb && ba && *bb >= *ba) {
          // A transiently crossed book is possible (the two sides are
          // independent maps); count it, a real engine would arbitrate.
          crossed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

#if !defined(LOT_DISABLE_MVCC)
  // Risk thread: consistent depth totals via MVCC snapshots (DESIGN.md
  // §16). The live range() below is per-key weakly consistent — fine for
  // display, wrong for margin: a volume sum taken while traders move
  // levels can mix two instants of the book. snapshot() pins one cut, so
  // each tick's total is the ask side at a single point in time.
  std::atomic<std::uint64_t> risk_ticks{0};
  std::thread risk([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = book.asks.snapshot();
      auto cur = snap.cursor();          // best ask *of the cut*
      if (const auto touch = cur.next()) {
        Volume banded = 0;
        snap.range(touch->first, touch->first + 16,
                   [&](Price, Volume v) { banded += v; });
        if (banded >= touch->second) {   // touch level is inside its band
          risk_ticks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
#endif

  // Trading threads: post and cancel levels on both sides.
  std::vector<std::thread> traders;
  for (int t = 0; t < 3; ++t) {
    traders.emplace_back([&, t] {
      lot::util::Xoshiro256 rng(17 + t);
      for (int i = 0; i < 150'000; ++i) {
        const bool bid_side = rng.percent(50);
        const Price off = static_cast<Price>(rng.next_below(kDepth));
        if (bid_side) {
          const Price p = kMid - 1 - off;
          if (rng.percent(55)) {
            book.post_bid(p, 100 + off);
          } else {
            book.cancel_bid(p);
          }
        } else {
          const Price p = kMid + 1 + off;
          if (rng.percent(55)) {
            book.post_ask(p, 100 + off);
          } else {
            book.cancel_ask(p);
          }
        }
      }
    });
  }
  for (auto& th : traders) th.join();
  stop = true;
  for (auto& th : md) th.join();
#if !defined(LOT_DISABLE_MVCC)
  risk.join();
#endif

  std::printf("order book settled: %zu bid levels, %zu ask levels\n",
              book.bids.size_slow(), book.asks.size_slow());
  std::printf("best bid %lld / best ask %lld (mid %lld)\n",
              static_cast<long long>(book.best_bid().value_or(-1)),
              static_cast<long long>(book.best_ask().value_or(-1)),
              static_cast<long long>(kMid));
  std::printf("market data served %llu lock-free top-of-book quotes "
              "(%llu transiently crossed)\n",
              static_cast<unsigned long long>(quotes.load()),
              static_cast<unsigned long long>(crossed.load()));

#if !defined(LOT_DISABLE_MVCC)
  std::printf("risk engine computed %llu consistent depth snapshots\n",
              static_cast<unsigned long long>(risk_ticks.load()));
#endif

  // Depth report within a fixed band of the touch. With MVCC on this
  // goes through a snapshot view — band contents and totals are the book
  // side at one instant; the LOT_MVCC=OFF build falls back to the live
  // (weakly consistent) range and prints the same shape.
  constexpr Price kBand = 12;
#if !defined(LOT_DISABLE_MVCC)
  const auto ask_side = book.asks.snapshot();
  const auto bid_side = book.bids.snapshot();
#else
  const auto& ask_side = book.asks;
  const auto& bid_side = book.bids;
#endif
  if (const auto ba = book.best_ask()) {
    std::printf("ask depth [%lld, %lld):", static_cast<long long>(*ba),
                static_cast<long long>(*ba + kBand));
    Volume total = 0;
    ask_side.range(*ba, *ba + kBand, [&](Price p, Volume v) {
      total += v;
      std::printf("  %lld x%lld", static_cast<long long>(p),
                  static_cast<long long>(v));
    });
    std::printf("  (=%lld shares)\n", static_cast<long long>(total));
  }
  if (const auto bb = book.best_bid()) {
    std::printf("bid depth (%lld, %lld]:", static_cast<long long>(*bb - kBand),
                static_cast<long long>(*bb));
    Volume total = 0;
    bid_side.range(*bb - kBand + 1, *bb + 1, [&](Price p, Volume v) {
      total += v;
      std::printf("  %lld x%lld", static_cast<long long>(p),
                  static_cast<long long>(v));
    });
    std::printf("  (=%lld shares)\n", static_cast<long long>(total));
  }

  // first/last_in_range answer "cheapest ask (deepest bid) inside a
  // band" without materializing the band.
  if (const auto lvl = book.asks.first_in_range(kMid, kMid + kDepth)) {
    std::printf("first ask level at/above mid: %lld x%lld\n",
                static_cast<long long>(lvl->first),
                static_cast<long long>(lvl->second));
  }
  if (const auto lvl = book.bids.last_in_range(kMid - kDepth, kMid)) {
    std::printf("last bid level below mid:     %lld x%lld\n",
                static_cast<long long>(lvl->first),
                static_cast<long long>(lvl->second));
  }

  // What the run cost, from the tree's own telemetry (obs/ layer): insert
  // and erase restart rates, rotations, EBR/pool gauges, the overload
  // governor's published health state (expected: healthy, 0 transitions —
  // a matching engine that degrades under its own benchmark has a
  // calibration bug) — and the derived contains_restarts audit, which
  // must read 0 because min()/max() and range() never re-descend.
  // Compiled out (prints "enabled: false") under -DLOT_OBS=OFF.
  if (lot::obs::kEnabled) {
    std::printf("\n");
    std::fputs(lot::obs::Registry::instance().snapshot().to_text().c_str(),
               stdout);
  }
  return 0;
}
