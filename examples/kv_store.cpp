// Example: an ordered key-value store serving reads during compaction-like
// churn.
//
// Pattern: writer threads continuously ingest and expire records (think
// LSM memtable churn or session-table turnover) while reader threads do
// point gets and ordered range scans. With the logical-ordering tree the
// readers are lock-free: they never wait out a rebalance or a relocation,
// which is the paper's headline property (§3.2).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "lo/avl.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

namespace {

using Key = std::int64_t;
using SeqNo = std::int64_t;

class KvStore {
 public:
  bool put(Key k, SeqNo v) { return map_.insert(k, v); }
  bool expire(Key k) { return map_.erase(k); }
  std::optional<SeqNo> read(Key k) const { return map_.get(k); }

  /// Ordered range scan over [lo, hi): walks the succ chain from the
  /// first key >= lo. Weakly consistent, lock-free.
  std::size_t scan(Key lo, Key hi) const {
    std::size_t hits = 0;
    map_.for_each([&](Key k, SeqNo) {
      if (k >= lo && k < hi) ++hits;
    });
    return hits;
  }

  std::size_t size() const { return map_.size_slow(); }

 private:
  lot::lo::AvlMap<Key, SeqNo> map_;
};

}  // namespace

int main() {
  KvStore store;
  constexpr Key kSpace = 100'000;

  // Warm the store to half occupancy.
  lot::util::Xoshiro256 seed_rng(1);
  for (Key i = 0; i < kSpace / 2; ++i) {
    store.put(seed_rng.next_in(0, kSpace - 1), i);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> scans{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      lot::util::Xoshiro256 rng(100 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        if (rng.percent(90)) {
          const Key k = rng.next_in(0, kSpace - 1);
          reads.fetch_add(1, std::memory_order_relaxed);
          if (store.read(k)) hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          const Key lo = rng.next_in(0, kSpace - 1000);
          store.scan(lo, lo + 1000);
          scans.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      lot::util::Xoshiro256 rng(200 + t);
      for (int i = 0; i < 300'000; ++i) {
        const Key k = rng.next_in(0, kSpace - 1);
        if (rng.percent(50)) {
          store.put(k, i);
        } else {
          store.expire(k);
        }
      }
    });
  }

  lot::util::Stopwatch watch;
  for (auto& th : writers) th.join();
  stop = true;
  for (auto& th : readers) th.join();
  const double secs = watch.elapsed_seconds();

  std::printf("kv store: %zu live records after churn (%.2fs)\n",
              store.size(), secs);
  std::printf("served %llu point reads (%.1f%% hit rate) and %llu range "
              "scans, all lock-free\n",
              static_cast<unsigned long long>(reads.load()),
              100.0 * static_cast<double>(hits.load()) /
                  static_cast<double>(reads.load() ? reads.load() : 1),
              static_cast<unsigned long long>(scans.load()));
  return 0;
}
