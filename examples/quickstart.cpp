// Quickstart: the public API of the logical-ordering trees in two minutes.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "lo/avl.hpp"
#include "lo/bst.hpp"

int main() {
  // A concurrent AVL map with lock-free lookups and on-time deletion.
  // Keys need operator< (or a custom comparator); values are stored per
  // node. lo::BstMap is the unbalanced flavour with the same API.
  lot::lo::AvlMap<std::int64_t, std::int64_t> map;

  // Single-threaded basics: insert-if-absent / contains / get / erase.
  map.insert(42, 4200);
  map.insert(7, 700);
  map.insert(99, 9900);
  std::printf("contains(42) = %d\n", map.contains(42));
  std::printf("get(7)       = %lld\n",
              static_cast<long long>(map.get(7).value()));
  map.erase(42);
  std::printf("contains(42) after erase = %d\n", map.contains(42));

  // Ordered access comes from the logical ordering layout (paper §4.7):
  // min/max are a single pointer read, iteration walks the succ chain.
  std::printf("min = %lld, max = %lld\n",
              static_cast<long long>(map.min().value().first),
              static_cast<long long>(map.max().value().first));

  // Concurrency: every operation is thread-safe; contains/get/min/max and
  // iteration never take locks and never block behind writers.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&map, t] {
      for (std::int64_t k = t * 1000; k < t * 1000 + 1000; ++k) {
        map.insert(k, k * 10);
      }
      for (std::int64_t k = t * 1000; k < t * 1000 + 1000; k += 2) {
        map.erase(k);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Each thread keeps the odd keys of its block: 500 x 4 = 2000 (7 and 99
  // are odd keys inside the churned range, so they are already counted).
  std::printf("after 4 threads of churn: size = %zu (expect 2000)\n",
              map.size_slow());

  // In-order iteration over a live structure (weakly consistent).
  std::int64_t checksum = 0;
  map.for_each([&](std::int64_t k, std::int64_t) { checksum += k; });
  std::printf("key checksum = %lld\n", static_cast<long long>(checksum));
  return 0;
}
