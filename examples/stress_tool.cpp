// Operational stress / soak tool: drive any implementation with a chosen
// workload for a chosen duration from the command line, validating set
// semantics against per-thread partition logs and (for the logical-
// ordering trees) full structural invariants at the end. The tool a
// downstream user runs overnight before trusting the library on new
// hardware.
//
//   ./stress_tool --impl=lo-avl --threads=8 --range=100000 --secs=10
//   ./stress_tool --impl=all --secs=2
//
// Implementations: lo-avl, lo-bst, lo-partial, bronson, cf, skiplist,
//                  efrb, hj, chromatic, all.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/bronson/bronson.hpp"
#include "baselines/cf/cf_tree.hpp"
#include "baselines/chromatic/chromatic.hpp"
#include "baselines/efrb/efrb.hpp"
#include "baselines/hj/hj_tree.hpp"
#include "baselines/skiplist/skiplist.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
#include "lo/validate.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;

struct Config {
  unsigned threads = 4;
  K range = 50'000;
  double secs = 2.0;
  unsigned update_pct = 40;
  std::uint64_t seed = 1;
};

/// Disjoint-partition soak: each thread owns range/threads keys, tracks
/// its own expected set, and cross-checks every operation result. Returns
/// false on any semantic violation.
template <typename MapT>
bool soak(const char* name, const Config& cfg) {
  lot::reclaim::EbrDomain domain;
  bool ok = true;
  std::uint64_t total_ops = 0;
  double elapsed = 0;
  {
    MapT map(domain);
    const K per_thread = cfg.range / cfg.threads;
    std::atomic<bool> stop{false};
    std::atomic<bool> violated{false};
    std::vector<std::uint64_t> ops(cfg.threads, 0);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < cfg.threads; ++t) {
      workers.emplace_back([&, t] {
        lot::util::Xoshiro256 rng(cfg.seed * 7919 + t);
        std::set<K> mine;
        const K base = static_cast<K>(t) * per_thread;
        std::uint64_t local = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const K k = base + static_cast<K>(rng.next_below(
                                 static_cast<std::uint64_t>(per_thread)));
          const auto dice = rng.next_below(100);
          bool good = true;
          if (dice >= cfg.update_pct) {
            good = map.contains(k) == (mine.count(k) > 0);
          } else if (dice < cfg.update_pct / 2) {
            good = map.insert(k, k) == (mine.count(k) == 0);
            mine.insert(k);
          } else {
            good = map.erase(k) == (mine.count(k) > 0);
            mine.erase(k);
          }
          if (!good) {
            violated.store(true);
            std::fprintf(stderr, "[%s] semantic violation at key %lld\n",
                         name, static_cast<long long>(k));
            break;
          }
          ++local;
        }
        ops[t] = local;
      });
    }
    lot::util::Stopwatch watch;
    while (watch.elapsed_seconds() < cfg.secs &&
           !violated.load(std::memory_order_relaxed)) {
      std::this_thread::yield();
    }
    stop = true;
    for (auto& w : workers) w.join();
    elapsed = watch.elapsed_seconds();
    for (auto o : ops) total_ops += o;
    ok = !violated.load();
  }
  std::printf("%-12s %8.2f Mop/s over %4.1fs x %u threads   %s\n", name,
              static_cast<double>(total_ops) / elapsed / 1e6, elapsed,
              cfg.threads, ok ? "OK" : "VIOLATED");
  return ok;
}

/// LO trees get the full structural validation on top of the soak.
template <typename MapT>
bool soak_lo(const char* name, const Config& cfg, bool balanced,
             bool partial) {
  lot::reclaim::EbrDomain domain;
  MapT map(domain);
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < cfg.threads; ++t) {
    workers.emplace_back([&, t] {
      lot::util::Xoshiro256 rng(cfg.seed * 104729 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const K k = static_cast<K>(rng.next_below(
            static_cast<std::uint64_t>(cfg.range)));
        const auto dice = rng.next_below(100);
        if (dice >= cfg.update_pct) {
          map.contains(k);
        } else if (dice < cfg.update_pct / 2) {
          map.insert(k, k);
        } else {
          map.erase(k);
        }
      }
    });
  }
  lot::util::Stopwatch watch;
  while (watch.elapsed_seconds() < cfg.secs) std::this_thread::yield();
  stop = true;
  for (auto& w : workers) w.join();
  if constexpr (MapT::kBalanced) {
    // Converge throttle-deferred rotations before the strict-height check.
    if (balanced) map.repair_balance();
  }
  const auto rep = lot::lo::validate(map, balanced, partial);
  std::printf("%-12s structural validation: %s (n=%zu, height=%d)\n", name,
              rep.ok ? "OK" : "VIOLATED", rep.chain_nodes, rep.height);
  if (!rep.ok) std::fprintf(stderr, "%s\n", rep.to_string().c_str());
  return rep.ok;
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  Config cfg;
  cfg.threads = static_cast<unsigned>(cli.get_int("threads", 4));
  cfg.range = cli.get_int("range", 50'000);
  cfg.secs = cli.get_double("secs", 2.0);
  cfg.update_pct = static_cast<unsigned>(cli.get_int("update", 40));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string impl = cli.get_string("impl", "all");

  bool ok = true;
  const auto want = [&](const char* n) {
    return impl == "all" || impl == n;
  };
  if (want("lo-avl")) {
    ok &= soak<lot::lo::AvlMap<K, V>>("lo-avl", cfg);
    ok &= soak_lo<lot::lo::AvlMap<K, V>>("lo-avl", cfg, true, false);
  }
  if (want("lo-bst")) {
    ok &= soak<lot::lo::BstMap<K, V>>("lo-bst", cfg);
    ok &= soak_lo<lot::lo::BstMap<K, V>>("lo-bst", cfg, false, false);
  }
  if (want("lo-partial")) {
    ok &= soak<lot::lo::PartialAvlMap<K, V>>("lo-partial", cfg);
    ok &= soak_lo<lot::lo::PartialAvlMap<K, V>>("lo-partial", cfg, true,
                                                true);
  }
  if (want("bronson")) {
    ok &= soak<lot::baselines::BronsonMap<K, V>>("bronson", cfg);
  }
  if (want("cf")) ok &= soak<lot::baselines::CfTreeMap<K, V>>("cf", cfg);
  if (want("skiplist")) {
    ok &= soak<lot::baselines::SkipListMap<K, V>>("skiplist", cfg);
  }
  if (want("efrb")) ok &= soak<lot::baselines::EfrbMap<K, V>>("efrb", cfg);
  if (want("hj")) ok &= soak<lot::baselines::HjTreeMap<K, V>>("hj", cfg);
  if (want("chromatic")) {
    ok &= soak<lot::baselines::ChromaticMap<K, V>>("chromatic", cfg);
  }

  std::printf("%s\n", ok ? "ALL OK" : "FAILURES DETECTED");
  return ok ? 0 : 1;
}
