#!/usr/bin/env bash
# Quick observability console: runs a short mixed-workload burst through
# the AVL tree (ablation_obs from the default LOT_OBS=ON build) and prints
# the full registry snapshot — every counter, the derived contains_restarts
# audit, the sampled latency quantiles per op kind, and the EBR/pool
# gauges. The fastest way to eyeball that the telemetry layer is alive and
# the audit identity holds on this machine.
#
# Usage: scripts/obs_report.sh [--json]
#   --json   print only the machine-readable lot-obs-v1 snapshot
# Environment: LOT_BENCH_SECS / LOT_BENCH_THREADS override the burst.
set -euo pipefail
cd "$(dirname "$0")/.."

SECS="${LOT_BENCH_SECS:-0.3}"
THREADS="${LOT_BENCH_THREADS:-4}"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target ablation_obs >/dev/null

OUT="$(./build/bench/ablation_obs \
  --threads="$THREADS" --ranges=20000 --secs="$SECS" --obs --report)"

case "${1:-}" in
  --json)
    # Everything after the json marker is the lot-obs-v1 document.
    printf '%s\n' "$OUT" | sed -n '/--- registry snapshot (json) ---/,$p' \
      | sed '1d'
    ;;
  *)
    printf '%s\n' "$OUT" | sed -n '/--- registry snapshot (text) ---/,$p'
    ;;
esac
