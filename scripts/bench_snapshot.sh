#!/usr/bin/env bash
# Committed perf trajectory for the PR sequence: builds the default
# (RelWithDebInfo) tree and runs the current PR's ablation on a small
# grid, dumping every cell as JSON (schema lot-bench-v1) at the repo
# root. The grid is sized for a small CI box — medians over several
# repeats of short trials, one key range — so the committed numbers are
# reproducible, not impressive.
#
# Snapshots so far:
#   BENCH_3.json — allocator/layout ablation (ablation_alloc)
#   BENCH_4.json — range-scan ablation, tree vs skiplist over a
#                  scan-length sweep (ablation_range)
#
# Usage: scripts/bench_snapshot.sh [out.json]
# The target ablation is picked from the output name; default BENCH_4.json.
# Environment: LOT_BENCH_SECS / LOT_BENCH_REPEATS / LOT_BENCH_THREADS
# override the trial length, repeat count and thread list.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_4.json}"
SECS="${LOT_BENCH_SECS:-0.4}"
REPEATS="${LOT_BENCH_REPEATS:-5}"
THREADS="${LOT_BENCH_THREADS:-1,4,8}"

case "$OUT" in
  *BENCH_3*) TARGET=ablation_alloc ;;
  *) TARGET=ablation_range ;;
esac

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target "$TARGET" >/dev/null

if [ "$TARGET" = ablation_alloc ]; then
  ./build/bench/ablation_alloc \
    --threads="$THREADS" --ranges=20000 \
    --secs="$SECS" --repeats="$REPEATS" --json="$OUT"
else
  ./build/bench/ablation_range \
    --threads="$THREADS" --ranges=20000 --scanlens=16,64,256 \
    --secs="$SECS" --repeats="$REPEATS" --json="$OUT"
fi

echo "bench_snapshot.sh: wrote $OUT"
