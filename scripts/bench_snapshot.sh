#!/usr/bin/env bash
# Committed perf trajectory for the PR sequence: builds the default
# (RelWithDebInfo) tree and runs the allocator/layout ablation on a small
# grid, dumping every cell as JSON (schema lot-bench-v1) into BENCH_3.json
# at the repo root. The grid is sized for a small CI box — medians over
# several repeats of short trials, one key range, the three Table-1 mixes —
# so the committed numbers are reproducible, not impressive.
#
# Usage: scripts/bench_snapshot.sh [out.json]
# Environment: LOT_BENCH_SECS / LOT_BENCH_REPEATS / LOT_BENCH_THREADS
# override the trial length, repeat count and thread list.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_3.json}"
SECS="${LOT_BENCH_SECS:-0.4}"
REPEATS="${LOT_BENCH_REPEATS:-5}"
THREADS="${LOT_BENCH_THREADS:-1,4,8}"

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target ablation_alloc >/dev/null

./build/bench/ablation_alloc \
  --threads="$THREADS" --ranges=20000 \
  --secs="$SECS" --repeats="$REPEATS" --json="$OUT"

echo "bench_snapshot.sh: wrote $OUT"
