#!/usr/bin/env bash
# Committed perf trajectory for the PR sequence: builds the default
# (RelWithDebInfo) tree and runs the current PR's ablation on a small
# grid, dumping every cell as JSON (schema lot-bench-v1) at the repo
# root. The grid is sized for a small CI box — medians over several
# repeats of short trials, one key range — so the committed numbers are
# reproducible, not impressive.
#
# Snapshots so far:
#   BENCH_3.json — allocator/layout ablation (ablation_alloc)
#   BENCH_4.json — range-scan ablation, tree vs skiplist over a
#                  scan-length sweep (ablation_range)
#   BENCH_5.json — observability overhead (ablation_obs), merged rows from
#                  the default build (LOT_OBS=ON) and build-noobs/
#                  (LOT_OBS=OFF); impl labels carry the build's obs state
#   BENCH_6.json — restart ablation (ablation_restart): versioned-resume
#                  write path vs pre-PR root restart vs resume without the
#                  rotation throttle, uniform and Zipf(0.99) mixes, restart
#                  and resume counters in every row
#   BENCH_7.json — governor ablation (ablation_storm): policies on vs off,
#                  calm weather (the fault-free overhead row pair) and a
#                  guard-stall storm plateau (degradation-by-design vs
#                  by-accident)
#   BENCH_8.json — shard ablation (ablation_shard): ShardedMap at
#                  shards ∈ {1,2,4,8} over the contended update-heavy mix,
#                  uniform / Zipf(0.99) hot-shard / 10%-scan arms, plus the
#                  per-shard isolation diagnostic in the stdout log
#   BENCH_10.json — MVCC snapshot ablation (ablation_mvcc): weak vs
#                  snapshot vs coarse-rwlock scans over the scan-length
#                  sweep, plus the on-but-unused point-op rows merged from
#                  the default build (LOT_MVCC=ON) and build-nomvcc/
#                  (LOT_MVCC=OFF); impl labels carry the build's state
#
# Usage: scripts/bench_snapshot.sh [out.json]
# The target ablation is picked from the output name; default BENCH_4.json.
# Environment: LOT_BENCH_SECS / LOT_BENCH_REPEATS / LOT_BENCH_THREADS
# override the trial length, repeat count and thread list.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_4.json}"
SECS="${LOT_BENCH_SECS:-0.4}"
REPEATS="${LOT_BENCH_REPEATS:-5}"
THREADS="${LOT_BENCH_THREADS:-1,4,8}"

case "$OUT" in
  *BENCH_3*) TARGET=ablation_alloc ;;
  *BENCH_5*) TARGET=ablation_obs ;;
  *BENCH_6*) TARGET=ablation_restart ;;
  *BENCH_7*) TARGET=ablation_storm ;;
  *BENCH_8*) TARGET=ablation_shard ;;
  *BENCH_10*) TARGET=ablation_mvcc ;;
  *) TARGET=ablation_range ;;
esac

cmake -B build -S . >/dev/null
cmake --build build -j "$(nproc)" --target "$TARGET" >/dev/null

# Merges two lot-bench-v1 files by concatenating their rows arrays. The
# schema is rigid (one row per line, fixed head/tail), so plain text
# surgery is reliable and avoids a JSON-tool dependency.
merge_rows() {  # merge_rows a.json b.json out.json
  head -n 3 "$1" > "$3"
  sed -n 's/^    {/    {/p' "$1" | sed '$s/}$/},/' >> "$3"
  sed -n 's/^    {/    {/p' "$2" >> "$3"
  printf '  ]\n}\n' >> "$3"
}

if [ "$TARGET" = ablation_alloc ]; then
  ./build/bench/ablation_alloc \
    --threads="$THREADS" --ranges=20000 \
    --secs="$SECS" --repeats="$REPEATS" --json="$OUT"
elif [ "$TARGET" = ablation_obs ]; then
  # A/B across build trees: the same binary from an LOT_OBS=ON and an
  # LOT_OBS=OFF build, rows merged into one file (labels disambiguate).
  cmake -B build-noobs -S . -DLOT_OBS=OFF >/dev/null
  cmake --build build-noobs -j "$(nproc)" --target ablation_obs >/dev/null
  ./build/bench/ablation_obs \
    --threads="$THREADS" --ranges=20000 \
    --secs="$SECS" --repeats="$REPEATS" --json="${OUT}.on.tmp"
  ./build-noobs/bench/ablation_obs \
    --threads="$THREADS" --ranges=20000 \
    --secs="$SECS" --repeats="$REPEATS" --json="${OUT}.off.tmp"
  merge_rows "${OUT}.on.tmp" "${OUT}.off.tmp" "$OUT"
  rm -f "${OUT}.on.tmp" "${OUT}.off.tmp"
elif [ "$TARGET" = ablation_restart ]; then
  ./build/bench/ablation_restart \
    --threads="$THREADS" --ranges=20000 \
    --secs="$SECS" --repeats="$REPEATS" --json="$OUT"
elif [ "$TARGET" = ablation_storm ]; then
  ./build/bench/ablation_storm \
    --threads="$THREADS" --ranges=20000 \
    --secs="$SECS" --repeats="$REPEATS" --json="$OUT"
elif [ "$TARGET" = ablation_shard ]; then
  ./build/bench/ablation_shard \
    --threads="$THREADS" --ranges=20000 \
    --secs="$SECS" --repeats="$REPEATS" --json="$OUT"
elif [ "$TARGET" = ablation_mvcc ]; then
  # A/B across build trees (the ablation_obs pattern): the scan-mechanism
  # sweep only exists in the ON build; the OFF build contributes the
  # "/mvcc=off" point-op rows for the on-but-unused overhead delta.
  cmake -B build-nomvcc -S . -DLOT_MVCC=OFF >/dev/null
  cmake --build build-nomvcc -j "$(nproc)" --target ablation_mvcc >/dev/null
  ./build/bench/ablation_mvcc \
    --threads="$THREADS" --ranges=20000 --scanlens=16,64,256 \
    --secs="$SECS" --repeats="$REPEATS" --json="${OUT}.on.tmp"
  ./build-nomvcc/bench/ablation_mvcc \
    --threads="$THREADS" --ranges=20000 --scanlens=16,64,256 \
    --secs="$SECS" --repeats="$REPEATS" --json="${OUT}.off.tmp"
  merge_rows "${OUT}.on.tmp" "${OUT}.off.tmp" "$OUT"
  rm -f "${OUT}.on.tmp" "${OUT}.off.tmp"
else
  ./build/bench/ablation_range \
    --threads="$THREADS" --ranges=20000 --scanlens=16,64,256 \
    --secs="$SECS" --repeats="$REPEATS" --json="$OUT"
fi

echo "bench_snapshot.sh: wrote $OUT"
