#!/usr/bin/env bash
# Full correctness gate, in escalating order of cost:
#
#   1. tier-1: default build + the full CTest suite minus the long
#      stress binaries (unit, sequential, concurrent, checker unit tests,
#      and the in-tree *_tsan duplicates);
#   2. the schedule-perturbed linearizability stress: perturbed histories
#      from the real trees through the offline checker, plus the
#      LOT_INJECT_BUG negative control that must be *rejected*;
#   3. the whole-build ThreadSanitizer preset (build-tsan/, iteration
#      counts scaled down by LOT_STRESS_DIVISOR=20).
#
# A non-linearizable history makes the stress tests dump the complete
# trace + violation witness to $LOT_HISTORY_DUMP; this script pins that
# to an absolute path and surfaces it on failure.
set -euo pipefail
cd "$(dirname "$0")/.."

export LOT_HISTORY_DUMP="${LOT_HISTORY_DUMP:-$PWD/history.txt}"
rm -f "$LOT_HISTORY_DUMP"

STRESS_RE='LoLinearizabilityStress|SeededBug|DriverCapture'

fail() {
  echo "check.sh: FAILED at stage: $1" >&2
  if [ -f "$LOT_HISTORY_DUMP" ]; then
    echo "check.sh: history artifact: $LOT_HISTORY_DUMP" >&2
    echo "check.sh: --- artifact head ---" >&2
    head -n 12 "$LOT_HISTORY_DUMP" >&2 || true
  fi
  exit 1
}

echo "== stage 1/3: tier-1 build + test =="
cmake -B build -S . >/dev/null || fail "configure"
cmake --build build -j "$(nproc)" >/dev/null || fail "build"
(cd build && ctest --output-on-failure -j "$(nproc)" -E "$STRESS_RE") \
  || fail "tier-1 ctest"

echo "== stage 2/3: schedule-perturbed linearizability stress =="
(cd build && ctest --output-on-failure -R "$STRESS_RE") \
  || fail "stress + checker"

echo "== stage 3/3: ThreadSanitizer preset =="
cmake --preset tsan >/dev/null || fail "tsan configure"
cmake --build --preset tsan -j "$(nproc)" >/dev/null || fail "tsan build"
ctest --preset tsan || fail "tsan ctest"

echo "check.sh: all stages passed"
