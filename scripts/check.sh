#!/usr/bin/env bash
# Full correctness gate, in escalating order of cost:
#
#   1. tier-1: default build + the full CTest suite minus the long
#      stress binaries (unit, sequential, concurrent, checker unit tests,
#      and the in-tree *_tsan duplicates);
#   2. the schedule-perturbed linearizability stress: perturbed histories
#      from the real trees through the offline checker — including the
#      scan-enabled campaigns (range scans decomposed into per-key
#      observations), the snapshot campaign (MVCC snapshot scans recorded
#      as whole-scan observations and held to single-point atomicity by
#      check_snapshot_scans) and the restart-audit campaign (the
#      versioned write path's capture→lock window perturbed,
#      resume/fallback counters reconciled exactly) — plus the
#      LOT_INJECT_BUG negative controls (tree-only locate, the skipped
#      version bump AND the epoch-skipping snapshot resolution) that must
#      be *rejected*, plus the LOT_FAULT_INJECT campaign (seeded
#      allocation failures and guard stalls with per-phase structural
#      validation and leak accounting);
#   3. the whole-build ThreadSanitizer preset (build-tsan/, iteration
#      counts scaled down by LOT_STRESS_DIVISOR=20), minus the scan
#      stress which stage 4 gates explicitly;
#   4. the scan-enabled linearizability stress under TSan: range walks
#      AND snapshot scans (the resolver's stamp reads, the revive version
#      handoff, the limbo prune) racing rotations, relocations and
#      revive-in-place with every memory access instrumented — the
#      ordered layer's dedicated gate;
#   5. the whole-build AddressSanitizer+LeakSanitizer preset (build-asan/),
#      so heap misuse and leaks gate alongside the race and
#      linearizability checks;
#   6. the LOT_POOL_ALLOC=OFF escape hatch (build-nopool/): the full
#      non-stress suite plus the fault campaign recompiled against plain
#      new/delete, so the pool never becomes load-bearing for correctness;
#   7. the LOT_OBS=OFF build (build-noobs/): the non-stress suite with the
#      observability layer compiled out — test_obs's static_asserts prove
#      the hook handles are empty types, and the run proves the trees never
#      grew a functional dependence on their own telemetry;
#   8. the LOT_REBALANCE_THROTTLE=OFF build (build-nothrottle/): the
#      non-stress suite with the contention-adaptive rotation throttle
#      compiled out, proving the pre-throttle rotation discipline stays
#      recoverable and nothing depends on deferral for correctness;
#   9. the chaos storm campaign under TSan: the seeded fault-storm
#      envelope (ramp/hold/release allocation failures + guard-stall
#      swarms + a pinned-epoch straggler) with the overload governor
#      required to degrade and then recover within its documented bound,
#      every access instrumented — the governor's sampling, the storm
#      scheduler's rate updates and the degraded write paths all race by
#      design, and this stage proves they race benignly;
#  10. the LOT_HEALTH=OFF build (build-nohealth/): the non-stress suite
#      with the governor compiled out (test_health's static_asserts prove
#      the Governor collapses to an empty type) plus the OFF-build storm
#      survival test — the same weather with no governor, proving the
#      health layer is an optimization, never a correctness dependency;
#  11. the sharded-layer gate: the ShardedMap linearizability campaign
#      under TSan (router + k-way merge + per-shard EBR domains, every
#      access instrumented) plus the shards=1 degenerate-equivalence
#      tests from the default build — the scale-out layer must be both
#      race-free at 4 shards and provably free at 1;
#  12. the LOT_MVCC=OFF build (build-nomvcc/): the non-stress suite with
#      the version layer compiled out (the ordered-api static_asserts
#      prove the MVCC types collapse to empty and snapshot() vanishes
#      from the map surface) plus the weak-scan stress arm — the scan
#      campaign rerun against unversioned trees, holding the degraded
#      scans to exactly the per-key §11 contract.
#
# A non-linearizable history makes the stress tests dump the complete
# trace + violation witness to $LOT_HISTORY_DUMP; this script pins that
# to an absolute path and surfaces it on failure.
set -euo pipefail
cd "$(dirname "$0")/.."

export LOT_HISTORY_DUMP="${LOT_HISTORY_DUMP:-$PWD/history.txt}"
rm -f "$LOT_HISTORY_DUMP"

STRESS_RE='LoLinearizabilityStress|LoScanStress|LoSnapshotStress|TornSnapshot|LoResumeStress|SeededBug|LoFaultStress|LoStormStress|LoShardStress|DriverCapture'
SCAN_RE='LoScanStress|LoSnapshotStress|RecordedScanTrial'

fail() {
  echo "check.sh: FAILED at stage: $1" >&2
  if [ -f "$LOT_HISTORY_DUMP" ]; then
    echo "check.sh: history artifact: $LOT_HISTORY_DUMP" >&2
    echo "check.sh: --- artifact head ---" >&2
    head -n 12 "$LOT_HISTORY_DUMP" >&2 || true
  fi
  exit 1
}

echo "== stage 1/12: tier-1 build + test =="
cmake -B build -S . >/dev/null || fail "configure"
cmake --build build -j "$(nproc)" >/dev/null || fail "build"
(cd build && ctest --output-on-failure -j "$(nproc)" -E "$STRESS_RE") \
  || fail "tier-1 ctest"

echo "== stage 2/12: perturbed linearizability + fault-injection stress =="
(cd build && ctest --output-on-failure -R "$STRESS_RE") \
  || fail "stress + checker"

echo "== stage 3/12: ThreadSanitizer preset =="
cmake --preset tsan >/dev/null || fail "tsan configure"
cmake --build --preset tsan -j "$(nproc)" >/dev/null || fail "tsan build"
# The explicit -E overrides the preset's own exclude filter, so it must
# re-state the SeededBug exclusion (a result-level negative control)
# alongside the scan, torn-snapshot, storm and shard stress deferrals
# (stages 4, 9 and 11 gate those explicitly).
ctest --preset tsan \
  -E "SeededBug|TornSnapshot|$SCAN_RE|LoStormStress|LoShardStress" \
  || fail "tsan ctest"

echo "== stage 4/12: scan-enabled linearizability stress under TSan =="
# TornSnapshot rides along: the negative control's rejection must also
# hold with every access instrumented and iteration counts scaled down.
ctest --preset tsan -R "$SCAN_RE|TornSnapshot" || fail "tsan scan stress"

echo "== stage 5/12: AddressSanitizer+LeakSanitizer preset =="
cmake --preset asan >/dev/null || fail "asan configure"
cmake --build --preset asan -j "$(nproc)" >/dev/null || fail "asan build"
ctest --preset asan || fail "asan ctest"

echo "== stage 6/12: LOT_POOL_ALLOC=OFF build + test =="
cmake -B build-nopool -S . -DLOT_POOL_ALLOC=OFF >/dev/null \
  || fail "nopool configure"
cmake --build build-nopool -j "$(nproc)" >/dev/null || fail "nopool build"
(cd build-nopool && ctest --output-on-failure -j "$(nproc)" \
  -E 'LoLinearizabilityStress|LoScanStress|LoResumeStress|SeededBug|DriverCapture') \
  || fail "nopool ctest (incl. fault campaign)"

echo "== stage 7/12: LOT_OBS=OFF build + test =="
cmake -B build-noobs -S . -DLOT_OBS=OFF >/dev/null \
  || fail "noobs configure"
cmake --build build-noobs -j "$(nproc)" >/dev/null || fail "noobs build"
(cd build-noobs && ctest --output-on-failure -j "$(nproc)" -E "$STRESS_RE") \
  || fail "noobs ctest"

echo "== stage 8/12: LOT_REBALANCE_THROTTLE=OFF build + test =="
cmake -B build-nothrottle -S . -DLOT_REBALANCE_THROTTLE=OFF >/dev/null \
  || fail "nothrottle configure"
cmake --build build-nothrottle -j "$(nproc)" >/dev/null \
  || fail "nothrottle build"
(cd build-nothrottle && ctest --output-on-failure -j "$(nproc)" \
  -E "$STRESS_RE") || fail "nothrottle ctest"

echo "== stage 9/12: chaos storm campaign under TSan =="
ctest --preset tsan -R 'LoStormStress' || fail "tsan storm campaign"

echo "== stage 10/12: LOT_HEALTH=OFF build + test =="
cmake -B build-nohealth -S . -DLOT_HEALTH=OFF >/dev/null \
  || fail "nohealth configure"
cmake --build build-nohealth -j "$(nproc)" >/dev/null \
  || fail "nohealth build"
(cd build-nohealth && ctest --output-on-failure -j "$(nproc)" \
  -E "$STRESS_RE") || fail "nohealth ctest"
# The ungoverned build still rides out the full storm (no governor
# assertions exist in this arm — survival, linearizability and leak
# accounting only).
(cd build-nohealth && ctest --output-on-failure -R 'LoStormStress') \
  || fail "nohealth storm survival"

echo "== stage 11/12: sharded-layer gate (TSan campaign + degenerate equivalence) =="
ctest --preset tsan -R 'LoShardStress' || fail "tsan sharded stress"
# shards=1 must be indistinguishable from the bare tree on the same op
# tape (default build; these also ran inside stage 1's tier-1 sweep — the
# explicit re-run makes the acceptance criterion a named gate).
(cd build && ctest --output-on-failure -R 'SingleShardEquivalence') \
  || fail "shards=1 degenerate equivalence"

echo "== stage 12/12: LOT_MVCC=OFF build + test =="
cmake -B build-nomvcc -S . -DLOT_MVCC=OFF >/dev/null \
  || fail "nomvcc configure"
cmake --build build-nomvcc -j "$(nproc)" >/dev/null || fail "nomvcc build"
# Non-stress suite with the version layer compiled out: the ordered-api
# static_asserts prove EpochSource/SnapshotRegistry/LimboList collapse to
# empty types and snapshot() is genuinely absent from the map surface.
(cd build-nomvcc && ctest --output-on-failure -j "$(nproc)" \
  -E "$STRESS_RE") || fail "nomvcc ctest"
# The weak-scan stress arm: the scan campaign rerun against the
# unversioned trees (the snapshot campaign itself is not built here —
# scans degrade to the per-key-linearizable §11 contract, and the
# history checker holds them to exactly that).
(cd build-nomvcc && ctest --output-on-failure -R 'LoScanStress') \
  || fail "nomvcc weak-scan stress"

echo "check.sh: all stages passed"
