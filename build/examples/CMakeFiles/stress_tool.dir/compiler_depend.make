# Empty compiler generated dependencies file for stress_tool.
# This may be replaced when dependencies are built.
