file(REMOVE_RECURSE
  "CMakeFiles/stress_tool.dir/stress_tool.cpp.o"
  "CMakeFiles/stress_tool.dir/stress_tool.cpp.o.d"
  "stress_tool"
  "stress_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
