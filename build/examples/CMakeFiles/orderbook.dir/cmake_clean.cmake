file(REMOVE_RECURSE
  "CMakeFiles/orderbook.dir/orderbook.cpp.o"
  "CMakeFiles/orderbook.dir/orderbook.cpp.o.d"
  "orderbook"
  "orderbook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orderbook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
