file(REMOVE_RECURSE
  "liblot.a"
)
