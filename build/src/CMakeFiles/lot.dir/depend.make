# Empty dependencies file for lot.
# This may be replaced when dependencies are built.
