file(REMOVE_RECURSE
  "CMakeFiles/lot.dir/reclaim/ebr.cpp.o"
  "CMakeFiles/lot.dir/reclaim/ebr.cpp.o.d"
  "CMakeFiles/lot.dir/util/cli.cpp.o"
  "CMakeFiles/lot.dir/util/cli.cpp.o.d"
  "CMakeFiles/lot.dir/util/stats.cpp.o"
  "CMakeFiles/lot.dir/util/stats.cpp.o.d"
  "CMakeFiles/lot.dir/workload/spec.cpp.o"
  "CMakeFiles/lot.dir/workload/spec.cpp.o.d"
  "liblot.a"
  "liblot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
