
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reclaim/ebr.cpp" "src/CMakeFiles/lot.dir/reclaim/ebr.cpp.o" "gcc" "src/CMakeFiles/lot.dir/reclaim/ebr.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/lot.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/lot.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/lot.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/lot.dir/util/stats.cpp.o.d"
  "/root/repo/src/workload/spec.cpp" "src/CMakeFiles/lot.dir/workload/spec.cpp.o" "gcc" "src/CMakeFiles/lot.dir/workload/spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
