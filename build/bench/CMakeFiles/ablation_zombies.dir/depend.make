# Empty dependencies file for ablation_zombies.
# This may be replaced when dependencies are built.
