file(REMOVE_RECURSE
  "CMakeFiles/ablation_zombies.dir/ablation_zombies.cpp.o"
  "CMakeFiles/ablation_zombies.dir/ablation_zombies.cpp.o.d"
  "ablation_zombies"
  "ablation_zombies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zombies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
