file(REMOVE_RECURSE
  "CMakeFiles/table1_balanced.dir/table1_balanced.cpp.o"
  "CMakeFiles/table1_balanced.dir/table1_balanced.cpp.o.d"
  "table1_balanced"
  "table1_balanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
