# Empty compiler generated dependencies file for table1_balanced.
# This may be replaced when dependencies are built.
