# Empty compiler generated dependencies file for ablation_read_latency.
# This may be replaced when dependencies are built.
