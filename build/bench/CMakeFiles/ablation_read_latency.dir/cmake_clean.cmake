file(REMOVE_RECURSE
  "CMakeFiles/ablation_read_latency.dir/ablation_read_latency.cpp.o"
  "CMakeFiles/ablation_read_latency.dir/ablation_read_latency.cpp.o.d"
  "ablation_read_latency"
  "ablation_read_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_read_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
