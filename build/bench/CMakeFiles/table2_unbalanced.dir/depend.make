# Empty dependencies file for table2_unbalanced.
# This may be replaced when dependencies are built.
