file(REMOVE_RECURSE
  "CMakeFiles/table2_unbalanced.dir/table2_unbalanced.cpp.o"
  "CMakeFiles/table2_unbalanced.dir/table2_unbalanced.cpp.o.d"
  "table2_unbalanced"
  "table2_unbalanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_unbalanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
