file(REMOVE_RECURSE
  "CMakeFiles/ablation_avl_vs_rb.dir/ablation_avl_vs_rb.cpp.o"
  "CMakeFiles/ablation_avl_vs_rb.dir/ablation_avl_vs_rb.cpp.o.d"
  "ablation_avl_vs_rb"
  "ablation_avl_vs_rb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_avl_vs_rb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
