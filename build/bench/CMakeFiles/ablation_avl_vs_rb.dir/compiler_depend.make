# Empty compiler generated dependencies file for ablation_avl_vs_rb.
# This may be replaced when dependencies are built.
