# Empty compiler generated dependencies file for ablation_ordering_cost.
# This may be replaced when dependencies are built.
