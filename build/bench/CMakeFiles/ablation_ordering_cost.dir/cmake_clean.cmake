file(REMOVE_RECURSE
  "CMakeFiles/ablation_ordering_cost.dir/ablation_ordering_cost.cpp.o"
  "CMakeFiles/ablation_ordering_cost.dir/ablation_ordering_cost.cpp.o.d"
  "ablation_ordering_cost"
  "ablation_ordering_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ordering_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
