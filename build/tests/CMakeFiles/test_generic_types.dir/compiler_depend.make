# Empty compiler generated dependencies file for test_generic_types.
# This may be replaced when dependencies are built.
