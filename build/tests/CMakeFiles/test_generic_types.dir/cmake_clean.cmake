file(REMOVE_RECURSE
  "CMakeFiles/test_generic_types.dir/test_generic_types.cpp.o"
  "CMakeFiles/test_generic_types.dir/test_generic_types.cpp.o.d"
  "test_generic_types"
  "test_generic_types.pdb"
  "test_generic_types[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generic_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
