# Empty compiler generated dependencies file for test_lo_concurrent.
# This may be replaced when dependencies are built.
