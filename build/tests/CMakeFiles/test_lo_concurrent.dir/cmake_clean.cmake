file(REMOVE_RECURSE
  "CMakeFiles/test_lo_concurrent.dir/test_lo_concurrent.cpp.o"
  "CMakeFiles/test_lo_concurrent.dir/test_lo_concurrent.cpp.o.d"
  "test_lo_concurrent"
  "test_lo_concurrent.pdb"
  "test_lo_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lo_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
