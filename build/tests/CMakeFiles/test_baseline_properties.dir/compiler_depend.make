# Empty compiler generated dependencies file for test_baseline_properties.
# This may be replaced when dependencies are built.
