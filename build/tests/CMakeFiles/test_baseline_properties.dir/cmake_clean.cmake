file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_properties.dir/test_baseline_properties.cpp.o"
  "CMakeFiles/test_baseline_properties.dir/test_baseline_properties.cpp.o.d"
  "test_baseline_properties"
  "test_baseline_properties.pdb"
  "test_baseline_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
