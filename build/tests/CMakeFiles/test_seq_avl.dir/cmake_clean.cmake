file(REMOVE_RECURSE
  "CMakeFiles/test_seq_avl.dir/test_seq_avl.cpp.o"
  "CMakeFiles/test_seq_avl.dir/test_seq_avl.cpp.o.d"
  "test_seq_avl"
  "test_seq_avl.pdb"
  "test_seq_avl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_avl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
