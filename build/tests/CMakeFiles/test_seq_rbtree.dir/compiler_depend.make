# Empty compiler generated dependencies file for test_seq_rbtree.
# This may be replaced when dependencies are built.
