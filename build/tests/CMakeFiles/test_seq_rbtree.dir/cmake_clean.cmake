file(REMOVE_RECURSE
  "CMakeFiles/test_seq_rbtree.dir/test_seq_rbtree.cpp.o"
  "CMakeFiles/test_seq_rbtree.dir/test_seq_rbtree.cpp.o.d"
  "test_seq_rbtree"
  "test_seq_rbtree.pdb"
  "test_seq_rbtree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq_rbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
