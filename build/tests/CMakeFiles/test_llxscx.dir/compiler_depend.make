# Empty compiler generated dependencies file for test_llxscx.
# This may be replaced when dependencies are built.
