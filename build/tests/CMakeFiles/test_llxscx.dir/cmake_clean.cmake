file(REMOVE_RECURSE
  "CMakeFiles/test_llxscx.dir/test_llxscx.cpp.o"
  "CMakeFiles/test_llxscx.dir/test_llxscx.cpp.o.d"
  "test_llxscx"
  "test_llxscx.pdb"
  "test_llxscx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llxscx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
