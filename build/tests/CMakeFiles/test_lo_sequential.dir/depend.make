# Empty dependencies file for test_lo_sequential.
# This may be replaced when dependencies are built.
