file(REMOVE_RECURSE
  "CMakeFiles/test_lo_sequential.dir/test_lo_sequential.cpp.o"
  "CMakeFiles/test_lo_sequential.dir/test_lo_sequential.cpp.o.d"
  "test_lo_sequential"
  "test_lo_sequential.pdb"
  "test_lo_sequential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lo_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
