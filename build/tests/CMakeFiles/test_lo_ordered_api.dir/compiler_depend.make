# Empty compiler generated dependencies file for test_lo_ordered_api.
# This may be replaced when dependencies are built.
