file(REMOVE_RECURSE
  "CMakeFiles/test_lo_ordered_api.dir/test_lo_ordered_api.cpp.o"
  "CMakeFiles/test_lo_ordered_api.dir/test_lo_ordered_api.cpp.o.d"
  "test_lo_ordered_api"
  "test_lo_ordered_api.pdb"
  "test_lo_ordered_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lo_ordered_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
