file(REMOVE_RECURSE
  "CMakeFiles/test_lo_partial.dir/test_lo_partial.cpp.o"
  "CMakeFiles/test_lo_partial.dir/test_lo_partial.cpp.o.d"
  "test_lo_partial"
  "test_lo_partial.pdb"
  "test_lo_partial[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lo_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
