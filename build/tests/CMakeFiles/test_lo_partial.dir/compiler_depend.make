# Empty compiler generated dependencies file for test_lo_partial.
# This may be replaced when dependencies are built.
