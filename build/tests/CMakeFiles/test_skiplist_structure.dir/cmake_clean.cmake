file(REMOVE_RECURSE
  "CMakeFiles/test_skiplist_structure.dir/test_skiplist_structure.cpp.o"
  "CMakeFiles/test_skiplist_structure.dir/test_skiplist_structure.cpp.o.d"
  "test_skiplist_structure"
  "test_skiplist_structure.pdb"
  "test_skiplist_structure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skiplist_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
