# Empty compiler generated dependencies file for test_skiplist_structure.
# This may be replaced when dependencies are built.
