# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_ebr[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_seq_avl[1]_include.cmake")
include("/root/repo/build/tests/test_lo_sequential[1]_include.cmake")
include("/root/repo/build/tests/test_lo_concurrent[1]_include.cmake")
include("/root/repo/build/tests/test_lo_partial[1]_include.cmake")
include("/root/repo/build/tests/test_lo_ordered_api[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_llxscx[1]_include.cmake")
include("/root/repo/build/tests/test_scenarios[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_seq_rbtree[1]_include.cmake")
include("/root/repo/build/tests/test_generic_types[1]_include.cmake")
include("/root/repo/build/tests/test_baseline_properties[1]_include.cmake")
include("/root/repo/build/tests/test_skiplist_structure[1]_include.cmake")
