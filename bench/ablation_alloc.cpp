// Allocator/layout ablation (DESIGN.md §10, EXPERIMENTS.md): how much of
// the GC gap does the memory subsystem close?
//
// Series, all running the identical lo-avl algorithm:
//   lo-avl-pool        — slab pool allocator + cache-conscious node (the
//                        PR's default configuration)
//   lo-avl-new         — plain counted new/delete, cache-conscious node
//                        (isolates the allocator delta)
//   lo-avl-packed-new  — plain new/delete over the pre-PR packed node
//                        layout (isolates the layout delta)
//
// Defaults are one Table-1 cell per mix at 1/4/8 threads over the 20k key
// range; --threads/--ranges/--secs/--repeats/--json as in the table
// benches. The per-cell pool-vs-new delta is printed explicitly because it
// is this PR's acceptance number (no regression at 1 thread, a win on the
// update-heavy multi-thread cells).
#include <cstdint>
#include <cstdio>
#include <functional>

#include "bench/common.hpp"
#include "lo/avl.hpp"
#include "reclaim/pool.hpp"
#include "sync/spinlock.hpp"
#include "util/cli.hpp"

namespace {

/// The node layout this PR replaced, kept verbatim (original field order,
/// int32 heights, natural alignment) so the layout effect stays measurable
/// after the default changed. Must mirror lo::Node's member interface —
/// LoMap touches fields, is_sentinel() and balance_factor() only.
template <typename K, typename V>
struct PackedNode {
  using Self = PackedNode<K, V>;

  const K key;
  const lot::lo::Tag tag;
  V value;
  std::atomic<bool> mark{false};
  std::atomic<bool> deleted{false};
  std::atomic<std::uint32_t> succ_version{0};
#if !defined(LOT_DISABLE_MVCC)
  // MVCC stamp slots (lo/node.hpp); the layout ablation predates the
  // snapshot layer but the core's write path stamps unconditionally.
  std::atomic<std::uint64_t> vbirth{0};
  std::atomic<std::uint64_t> vdeath{0};
#endif
  std::atomic<Self*> left{nullptr};
  std::atomic<Self*> right{nullptr};
  std::atomic<Self*> parent{nullptr};
  std::atomic<std::int32_t> left_height{0};
  std::atomic<std::int32_t> right_height{0};
  lot::sync::SpinLock tree_lock;
  std::atomic<Self*> pred{nullptr};
  std::atomic<Self*> succ{nullptr};
  lot::sync::SpinLock succ_lock;

  PackedNode(K k, V v, lot::lo::Tag t = lot::lo::Tag::kNormal)
      : key(std::move(k)), tag(t), value(std::move(v)) {}

  bool is_sentinel() const { return tag != lot::lo::Tag::kNormal; }

  std::int32_t height_of_subtrees() const {
    const auto lh = left_height.load(std::memory_order_relaxed);
    const auto rh = right_height.load(std::memory_order_relaxed);
    return lh > rh ? lh : rh;
  }

  std::int32_t balance_factor() const {
    return left_height.load(std::memory_order_relaxed) -
           right_height.load(std::memory_order_relaxed);
  }
};

using K = std::int64_t;
using V = std::int64_t;

using PoolAvl =
    lot::lo::AvlMap<K, V, std::less<K>, lot::reclaim::PoolNodeAlloc>;
using NewAvl =
    lot::lo::AvlMap<K, V, std::less<K>, lot::reclaim::NewNodeAlloc>;
using PackedNewAvl =
    lot::lo::LoMap<K, V, std::less<K>, /*Balanced=*/true,
                   lot::reclaim::NewNodeAlloc, PackedNode>;

void print_deltas(const std::vector<std::int64_t>& threads,
                  const lot::bench::Series& pool,
                  const lot::bench::Series& plain,
                  const lot::bench::Series& packed) {
  std::printf("  deltas vs lo-avl-new (medians):\n");
  for (std::size_t i = 0; i < threads.size(); ++i) {
    const double base = plain[i].median;
    const double pool_pct =
        base > 0 ? (pool[i].median / base - 1.0) * 100.0 : 0.0;
    const double packed_pct =
        base > 0 ? (packed[i].median / base - 1.0) * 100.0 : 0.0;
    std::printf(
        "%8lld  pool %+7.2f%%   packed-layout %+7.2f%% (layout win: %+.2f%%)\n",
        static_cast<long long>(threads[i]), pool_pct, packed_pct,
        -packed_pct);
  }
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  auto cfg = lot::bench::TableConfig::from_cli(cli);
  if (!cli.has("threads") && !cli.has("paper")) cfg.threads = {1, 4, 8};
  if (!cli.has("ranges") && !cli.has("paper")) cfg.key_ranges = {20'000};
  lot::bench::JsonReport report;

  std::printf("node sizes: cache-conscious %zu B, packed %zu B\n",
              sizeof(lot::lo::Node<K, V>), sizeof(PackedNode<K, V>));

  for (const auto range : cfg.key_ranges) {
    for (const auto mix :
         {lot::workload::Mix::k50C25I25R, lot::workload::Mix::k70C20I10R,
          lot::workload::Mix::k100C}) {
      const auto spec = lot::workload::make_spec(mix, range);
      lot::bench::print_cell_header("Allocator ablation", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      series.emplace_back("lo-avl-pool",
                          lot::bench::run_series<PoolAvl>(spec, cfg));
      series.emplace_back("lo-avl-new",
                          lot::bench::run_series<NewAvl>(spec, cfg));
      series.emplace_back("lo-avl-packed-new",
                          lot::bench::run_series<PackedNewAvl>(spec, cfg));
      lot::bench::print_series_table(cfg.threads, series);
      print_deltas(cfg.threads, series[0].second, series[1].second,
                   series[2].second);
      for (const auto& [name, cells] : series) {
        report.add("ablation_alloc", spec, cfg, name, cells);
      }
    }
  }
  lot::bench::maybe_write_json(cli, report);
  return 0;
}
