// Range-scan ablation (PR 4's ordered layer, DESIGN.md §11): what do
// scans cost on the logical-ordering trees, and how does the tree's
// chain-walk range() compare with the skip list's native bottom-level
// walk as scans get longer?
//
// Series, all running the identical driver mix:
//   lo-avl          — on-time removal tree, range() via the ordering chain
//   lo-avl-lr       — logical-removing tree: scans additionally step over
//                     zombie nodes, the ablation's reason to exist
//   skiplist        — lock-free skip list, range() via the bottom level
//
// The sweep is over scan_len (keys spanned per scan), not threads alone:
// the interesting quantity is how throughput decays as each scan pins the
// ordering chain for longer. Defaults are one scan-heavy mix at 1/4/8
// threads over the 20k key range, scan lengths 16/64/256;
// --scanlens=<list> overrides the sweep, the rest as in the table benches
// (--threads/--ranges/--secs/--repeats/--json).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/skiplist/skiplist.hpp"
#include "bench/common.hpp"
#include "lo/avl.hpp"
#include "lo/partial.hpp"
#include "util/cli.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;

using Avl = lot::lo::AvlMap<K, V>;
using PartialAvl = lot::lo::PartialAvlMap<K, V>;
using SkipList = lot::baselines::SkipListMap<K, V>;

/// The scan-heavy mix: 30% contains / 20% insert / 20% remove / 30% range
/// scans of `scan_len` keys. Update share matches the symmetric paper
/// mixes so prefill_target() keeps the half-full steady state.
lot::workload::Spec scan_spec(std::int64_t key_range, std::int64_t scan_len) {
  lot::workload::Spec spec;
  spec.name = "30C-20I-20R-30S-len" + std::to_string(scan_len);
  spec.contains_pct = 30;
  spec.insert_pct = 20;
  spec.remove_pct = 20;
  spec.scan_pct = 30;
  spec.scan_len = scan_len;
  spec.key_range = key_range;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  auto cfg = lot::bench::TableConfig::from_cli(cli);
  if (!cli.has("threads") && !cli.has("paper")) cfg.threads = {1, 4, 8};
  if (!cli.has("ranges") && !cli.has("paper")) cfg.key_ranges = {20'000};
  const auto scan_lens =
      cli.get_int_list("scanlens", std::vector<std::int64_t>{16, 64, 256});
  lot::bench::JsonReport report;

  for (const auto range : cfg.key_ranges) {
    for (const auto len : scan_lens) {
      const auto spec = scan_spec(range, len);
      lot::bench::print_cell_header("Range-scan ablation", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      series.emplace_back("lo-avl", lot::bench::run_series<Avl>(spec, cfg));
      series.emplace_back("lo-avl-lr",
                          lot::bench::run_series<PartialAvl>(spec, cfg));
      series.emplace_back("skiplist",
                          lot::bench::run_series<SkipList>(spec, cfg));
      lot::bench::print_series_table(cfg.threads, series);
      for (const auto& [name, cells] : series) {
        report.add("ablation_range", spec, cfg, name, cells);
      }
    }
  }
  lot::bench::maybe_write_json(cli, report);
  return 0;
}
