// Observability-overhead ablation (DESIGN.md §12, EXPERIMENTS.md A8): what
// does the always-on telemetry cost?
//
// The A/B runs across two build trees — this binary compiled from the
// default build (LOT_OBS=ON) and again from build-noobs/ (-DLOT_OBS=OFF) —
// so every impl label carries the build's obs state ("/obs=on" vs
// "/obs=off") and scripts/bench_snapshot.sh can merge both JSON row sets
// into one BENCH_5.json. The acceptance number is the on-vs-off delta on
// the 100%-read mix: counters alone must cost <= 3%.
//
// Series (ON builds only — sampling without the layer is meaningless):
//   lo-avl/obs=on            — counters only, no latency sampling
//   lo-avl/obs=on+sample64   — counters + 1-in-64 latency sampling, the
//                              --obs bench configuration (quantifies what
//                              the sampling knob itself adds)
//
// --report additionally dumps a full registry snapshot (text + JSON) after
// the run — the scripts/obs_report.sh surface.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "bench/common.hpp"
#include "lo/avl.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"

namespace {

using K = std::int64_t;
using Avl = lot::lo::AvlMap<K, K>;

std::string label(const char* base, bool sampled) {
  std::string s(base);
  s += lot::obs::kEnabled ? "/obs=on" : "/obs=off";
  if (sampled) s += "+sample64";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  auto cfg = lot::bench::TableConfig::from_cli(cli);
  if (!cli.has("threads") && !cli.has("paper")) cfg.threads = {1, 4, 8};
  if (!cli.has("ranges") && !cli.has("paper")) cfg.key_ranges = {20'000};
  lot::bench::JsonReport report;

  std::printf("observability layer: %s\n",
              lot::obs::kEnabled ? "compiled in (LOT_OBS=ON)"
                                 : "compiled out (LOT_OBS=OFF)");

  for (const auto range : cfg.key_ranges) {
    for (const auto mix :
         {lot::workload::Mix::k100C, lot::workload::Mix::k50C25I25R}) {
      const auto spec = lot::workload::make_spec(mix, range);
      lot::bench::print_cell_header("Observability ablation", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      series.emplace_back(label("lo-avl", false),
                          lot::bench::run_series<Avl>(spec, cfg));
      if (lot::obs::kEnabled) {
        auto sampled_cfg = cfg;
        sampled_cfg.obs = true;  // turns on latency_sample_every
        series.emplace_back(
            label("lo-avl", true),
            lot::bench::run_series<Avl>(spec, sampled_cfg));
      }
      lot::bench::print_series_table(cfg.threads, series);
      for (const auto& [name, cells] : series) {
        report.add("ablation_obs", spec, cfg, name, cells);
      }
    }
  }
  lot::bench::maybe_write_json(cli, report);

  if (cli.has("report")) {
    const auto snap = lot::obs::Registry::instance().snapshot();
    std::printf("\n--- registry snapshot (text) ---\n%s",
                snap.to_text().c_str());
    std::printf("\n--- registry snapshot (json) ---\n%s\n",
                snap.to_json().c_str());
  }
  return 0;
}
