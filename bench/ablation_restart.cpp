// Restart ablation (DESIGN.md §13, EXPERIMENTS.md A9): what does the
// versioned write path buy, and what does the rotation throttle add?
//
// Three arms, all running the identical lo-avl tree with --obs forced on
// so every cell carries the restart/resume/rotation counters:
//   lo-avl-resume+throttle — resume budget 8, throttle on (this PR's
//                            default configuration)
//   lo-avl-rootrestart     — resume budget 0, throttle off: every failed
//                            validation re-descends from the root, the
//                            pre-PR write path bit-for-bit
//   lo-avl-resume-only     — resume budget 8, throttle off (isolates the
//                            resume delta from the throttle delta)
//
// Each arm runs the paper's 4-thread contended mix uniform and Zipf(0.99)
// skewed — the skewed run concentrates writers on adjacent keys, which is
// where failed interval acquisitions actually cluster. The acceptance
// numbers are the resume arm's insert+erase restarts (>= 5x below the
// rootrestart arm's on the 20k 50C-25I-25R cell) with throughput no worse.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "bench/common.hpp"
#include "lo/avl.hpp"
#include "lo/rebalance.hpp"
#include "obs/obs.hpp"
#include "util/cli.hpp"

namespace {

using K = std::int64_t;
using Avl = lot::lo::AvlMap<K, K>;

struct Arm {
  const char* name;
  std::uint32_t resume_limit;
  bool throttle;
};

constexpr Arm kArms[] = {
    {"lo-avl-resume+throttle", 8, true},
    {"lo-avl-rootrestart", 0, false},
    {"lo-avl-resume-only", 8, false},
};

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  auto cfg = lot::bench::TableConfig::from_cli(cli);
  if (!cli.has("threads") && !cli.has("paper")) cfg.threads = {1, 4, 8};
  if (!cli.has("ranges") && !cli.has("paper")) cfg.key_ranges = {20'000};
  // The counters are this experiment's subject, not an optional column.
  cfg.obs = true;
  lot::bench::JsonReport report;

  if (!lot::obs::kEnabled) {
    std::printf("warning: LOT_OBS=OFF build — the restart columns this "
                "ablation exists for will be empty\n");
  }
  if (!lot::lo::detail::kRebalanceThrottleCompiled) {
    std::printf("warning: LOT_REBALANCE_THROTTLE=OFF build — the throttle "
                "arm degenerates to resume-only\n");
  }

  const auto saved_limit = lot::lo::write_resume_limit();

  for (const auto range : cfg.key_ranges) {
    const auto uniform =
        lot::workload::make_spec(lot::workload::Mix::k50C25I25R, range);
    auto zipf = uniform;
    zipf.zipf_s = 0.99;
    zipf.name += "-zipf0.99";
    for (const auto& spec : {uniform, zipf}) {
      lot::bench::print_cell_header("Restart ablation", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      for (const Arm& arm : kArms) {
        lot::lo::set_write_resume_limit(arm.resume_limit);
        lot::lo::detail::set_rebalance_throttle(arm.throttle);
        series.emplace_back(arm.name,
                            lot::bench::run_series<Avl>(spec, cfg));
      }
      lot::lo::set_write_resume_limit(saved_limit);
      lot::lo::detail::set_rebalance_throttle(true);
      lot::bench::print_series_table(cfg.threads, series);
      for (const auto& [name, cells] : series) {
        report.add("ablation_restart", spec, cfg, name, cells);
      }
    }
  }
  lot::bench::maybe_write_json(cli, report);
  return 0;
}
