// Table 1 of the paper: throughput of the *balanced* concurrent maps under
// the three operation mixes and three key ranges, across a thread sweep.
//
// Series (matching the paper's legend):
//   lo-avl                    — our logical-ordering AVL (the contribution)
//   lo-avl-logical-removing   — its partially-external variation
//   bronson-bcco-avl          — Bronson et al. (PPoPP'10)
//   crain-cf-tree             — Crain et al. contention-friendly tree
//   lf-skiplist               — Fraser/Harris lock-free skip list
//   chromatic6-style-llxscx   — Brown et al. chromatic-style LLX/SCX tree
//
// Default parameters are container-sized; pass --paper for the full grid
// (5 s trials, 8 repeats, ranges up to 2e6, threads to 256), or override
// with --threads=, --ranges=, --secs=, --repeats=, --seed=.
#include <cstdint>

#include "baselines/bronson/bronson.hpp"
#include "baselines/cf/cf_tree.hpp"
#include "baselines/chromatic/chromatic.hpp"
#include "baselines/skiplist/skiplist.hpp"
#include "bench/common.hpp"
#include "lo/avl.hpp"
#include "lo/partial.hpp"
#include "util/cli.hpp"

using K = std::int64_t;
using V = std::int64_t;

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  const auto cfg = lot::bench::TableConfig::from_cli(cli);
  lot::bench::JsonReport report;

  for (const auto range : cfg.key_ranges) {
    for (const auto mix :
         {lot::workload::Mix::k50C25I25R, lot::workload::Mix::k70C20I10R,
          lot::workload::Mix::k100C}) {
      const auto spec = lot::workload::make_spec(mix, range);
      lot::bench::print_cell_header("Table 1 (balanced)", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      series.emplace_back(
          "lo-avl",
          lot::bench::run_series<lot::lo::AvlMap<K, V>>(spec, cfg));
      series.emplace_back(
          "lo-avl-logical-removing",
          lot::bench::run_series<lot::lo::PartialAvlMap<K, V>>(spec, cfg));
      series.emplace_back(
          "bronson-bcco-avl",
          lot::bench::run_series<lot::baselines::BronsonMap<K, V>>(spec,
                                                                   cfg));
      series.emplace_back(
          "crain-cf-tree",
          lot::bench::run_series<lot::baselines::CfTreeMap<K, V>>(spec, cfg));
      series.emplace_back(
          "lf-skiplist",
          lot::bench::run_series<lot::baselines::SkipListMap<K, V>>(spec,
                                                                    cfg));
      series.emplace_back(
          "chromatic6-style-llxscx",
          lot::bench::run_series<lot::baselines::ChromaticMap<K, V>>(spec,
                                                                     cfg));
      lot::bench::print_series_table(cfg.threads, series);
      for (const auto& [name, cells] : series) {
        report.add("table1", spec, cfg, name, cells);
      }
    }
  }
  lot::bench::maybe_write_json(cli, report);
  return 0;
}
