// Shard ablation (DESIGN.md §15, EXPERIMENTS.md A11): what does the
// shard-routed scale-out layer buy under write contention, and does the
// per-shard heat/reclamation isolation hold when the load is skewed onto
// one shard?
//
// Four arms, all the same lo-avl tree behind ShardedMap at shards ∈
// {1, 2, 4, 8}. shards=1 is the overhead floor — identical router + merge
// code with no partitioning win — so the spread between the x1 and x8
// columns is the layer's net effect, not sharding-vs-bare-tree noise.
//
// Each arm runs three workloads over the contended 20k range:
//   50C-25I-25R uniform      — the paper's update-heavy mix; this is the
//                              cell the acceptance ratio is read from
//                              (x8 >= 1.5x x1 median at max threads);
//   50C-25I-25R zipf0.99     — Zipf ranks key 0 hottest and the router
//                              stripes 64-key blocks, so the hot set lands
//                              almost entirely on shard 0: the per-shard
//                              isolation configuration (ROADMAP 2(c));
//   40C-25I-25R-10S          — 10% merged range scans riding on the same
//                              churn, pricing the k-way merge (k pinned
//                              epochs per scan) as k grows.
//
// After the table sweep, a per-shard diagnostic trial at max threads
// prints router + domain odometers for the x8 uniform and zipf cells: in
// the zipf arm the cold shards' contention heat and throttle deferrals
// must stay near zero while shard 0 absorbs the pressure — that isolation
// is the claim this ablation exists to price, and it is only visible at
// shard granularity, not in the aggregate obs column.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "lo/avl.hpp"
#include "obs/obs.hpp"
#include "shard/sharded_map.hpp"
#include "util/cli.hpp"

namespace {

using K = std::int64_t;
using Avl = lot::lo::AvlMap<K, K>;

template <unsigned N>
using Sharded = lot::shard::ShardedMap<Avl, N>;

/// One trial (not a timed series) at max threads, keeping the map alive
/// afterwards so the per-shard router and domain odometers can be read —
/// run_series destroys its maps per repeat, so the shard-granular numbers
/// cannot come from the table sweep.
template <unsigned N>
void per_shard_diagnostic(const lot::workload::Spec& spec,
                          const lot::bench::TableConfig& cfg) {
  const auto threads = static_cast<unsigned>(cfg.threads.back());
  Sharded<N> map;
  lot::workload::prefill(map, spec, threads, cfg.seed);
  lot::workload::run_trial(map, spec, threads, cfg.secs, cfg.seed + 1);
  std::printf("  per-shard odometers | %s | x%u | %u threads:\n",
              spec.name.c_str(), N, threads);
  for (std::size_t i = 0; i < N; ++i) {
    const auto rs = map.shard_stats(i);
    const auto ds = map.shard_domain(i).stats();
    std::printf("    shard %zu: point_ops=%-9llu ordered_ops=%-6llu "
                "heat_events=%-7llu rot_deferred=%-6llu "
                "backlog_peak=%zu\n",
                i, static_cast<unsigned long long>(rs.point_ops),
                static_cast<unsigned long long>(rs.ordered_ops),
                static_cast<unsigned long long>(ds.contention_events),
                static_cast<unsigned long long>(ds.rotations_deferred),
                ds.backlog_peak);
  }
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  auto cfg = lot::bench::TableConfig::from_cli(cli);
  if (!cli.has("threads") && !cli.has("paper")) cfg.threads = {1, 4, 8};
  // One contended range: the layer exists for write contention, and the
  // 20k cell is where a single tree's interval locks actually collide.
  if (!cli.has("ranges") && !cli.has("paper")) cfg.key_ranges = {20'000};
  // The router stats and per-domain odometers are the experiment's
  // subject, not an optional column.
  cfg.obs = true;
  lot::bench::JsonReport report;

  if (!lot::obs::kEnabled) {
    std::printf("warning: LOT_OBS=OFF build — the router stats and "
                "per-shard odometers this ablation exists for will read "
                "zero\n");
  }

  for (const auto range : cfg.key_ranges) {
    const auto uniform =
        lot::workload::make_spec(lot::workload::Mix::k50C25I25R, range);
    auto zipf = uniform;
    zipf.zipf_s = 0.99;
    zipf.name += "-zipf0.99";
    // Scan-mixed arm: carve the scan share out of contains so the update
    // pressure (and therefore the contention being sharded away) matches
    // the other two workloads.
    auto scans = uniform;
    scans.contains_pct = 40;
    scans.scan_pct = 10;
    scans.scan_len = 64;
    scans.name = "40C-25I-25R-10S";
    for (const auto& spec : {uniform, zipf, scans}) {
      lot::bench::print_cell_header("Shard ablation", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      series.emplace_back("lo-avl-x1",
                          lot::bench::run_series<Sharded<1>>(spec, cfg));
      series.emplace_back("lo-avl-x2",
                          lot::bench::run_series<Sharded<2>>(spec, cfg));
      series.emplace_back("lo-avl-x4",
                          lot::bench::run_series<Sharded<4>>(spec, cfg));
      series.emplace_back("lo-avl-x8",
                          lot::bench::run_series<Sharded<8>>(spec, cfg));
      lot::bench::print_series_table(cfg.threads, series);
      for (const auto& [name, cells] : series) {
        report.add("ablation_shard", spec, cfg, name, cells);
      }
    }

    std::printf("\n=== Shard ablation | per-shard isolation diagnostic "
                "(x8, key range %lld) ===\n",
                static_cast<long long>(range));
    per_shard_diagnostic<8>(uniform, cfg);
    per_shard_diagnostic<8>(zipf, cfg);
  }
  lot::bench::maybe_write_json(cli, report);
  return 0;
}
