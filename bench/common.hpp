// Shared scaffolding for the table benchmarks: runs one throughput series
// (threads sweep) per implementation per (mix, key-range) cell and prints
// the same rows the paper's Tables 1 and 2 plot.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "workload/driver.hpp"
#include "workload/spec.hpp"

namespace lot::bench {

struct TableConfig {
  std::vector<std::int64_t> threads;
  std::vector<std::int64_t> key_ranges;
  std::vector<workload::Mix> mixes;
  double secs = 0.3;
  int repeats = 1;
  std::uint64_t seed = 42;

  static TableConfig from_cli(const util::Cli& cli) {
    TableConfig cfg;
    if (cli.has("paper")) {
      // The paper's full grid: 1..256 threads, 5 s trials, 8 repeats,
      // ranges 2e4 / 2e5 / 2e6. Expect hours of runtime.
      cfg.threads = {1, 2, 4, 8, 16, 32, 64, 128, 256};
      cfg.key_ranges = workload::paper_key_ranges();
      cfg.secs = 5.0;
      cfg.repeats = 8;
    } else {
      cfg.threads = {1, 2, 4, 8};
      cfg.key_ranges = {20'000, 200'000};
    }
    cfg.threads = cli.get_int_list("threads", cfg.threads);
    cfg.key_ranges = cli.get_int_list("ranges", cfg.key_ranges);
    cfg.secs = cli.get_double("secs", cfg.secs);
    cfg.repeats = static_cast<int>(cli.get_int("repeats", cfg.repeats));
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    return cfg;
  }
};

/// One implementation's throughput series across the thread sweep.
template <typename MapT>
std::vector<double> run_series(const workload::Spec& spec,
                               const TableConfig& cfg) {
  std::vector<double> out;
  for (const auto threads : cfg.threads) {
    double best = 0;
    double sum = 0;
    for (int rep = 0; rep < cfg.repeats; ++rep) {
      MapT map;
      const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(rep);
      workload::prefill(map, spec, static_cast<unsigned>(threads), seed);
      const auto r = workload::run_trial(
          map, spec, static_cast<unsigned>(threads), cfg.secs, seed + 1);
      sum += r.mops_per_sec;
      if (r.mops_per_sec > best) best = r.mops_per_sec;
    }
    out.push_back(sum / cfg.repeats);
  }
  return out;
}

inline void print_cell_header(const std::string& table,
                              const workload::Spec& spec) {
  std::printf("\n=== %s | workload %s | key range %lld | prefill %lld ===\n",
              table.c_str(), spec.name.c_str(),
              static_cast<long long>(spec.key_range),
              static_cast<long long>(spec.prefill_target()));
}

inline void print_series_table(
    const std::vector<std::int64_t>& threads,
    const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  std::printf("%8s", "threads");
  for (const auto& [name, _] : series) std::printf("  %26s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < threads.size(); ++i) {
    std::printf("%8lld", static_cast<long long>(threads[i]));
    for (const auto& [_, values] : series) {
      std::printf("  %20.3f Mop/s", values[i]);
    }
    std::printf("\n");
  }
}

}  // namespace lot::bench
