// Shared scaffolding for the table benchmarks: runs one throughput series
// (threads sweep) per implementation per (mix, key-range) cell and prints
// the same rows the paper's Tables 1 and 2 plot.
//
// With --repeats=N (N > 1) each cell reports the median across repeats
// with the min..max spread — medians survive the scheduling noise of small
// machines far better than means, which matters when the effect being
// measured (e.g. the allocator ablation) is a single-digit percentage.
// Pass --json=<path> to additionally dump every cell as one JSON row
// (schema lot-bench-v1), which scripts/bench_snapshot.sh uses to commit
// perf trajectories (BENCH_*.json).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "workload/driver.hpp"
#include "workload/spec.hpp"

namespace lot::bench {

struct TableConfig {
  std::vector<std::int64_t> threads;
  std::vector<std::int64_t> key_ranges;
  std::vector<workload::Mix> mixes;
  double secs = 0.3;
  int repeats = 1;
  std::uint64_t seed = 42;
  // --obs: per-cell telemetry column — sampled latency quantiles, restart
  // counters and the contains_restarts audit ride along in the table and
  // the JSON rows. Requires an LOT_OBS=ON build to produce numbers.
  bool obs = false;
  unsigned obs_sample = 64;  // --obs-sample=N: time 1 op in N

  static TableConfig from_cli(const util::Cli& cli) {
    TableConfig cfg;
    if (cli.has("paper")) {
      // The paper's full grid: 1..256 threads, 5 s trials, 8 repeats,
      // ranges 2e4 / 2e5 / 2e6. Expect hours of runtime.
      cfg.threads = {1, 2, 4, 8, 16, 32, 64, 128, 256};
      cfg.key_ranges = workload::paper_key_ranges();
      cfg.secs = 5.0;
      cfg.repeats = 8;
    } else {
      cfg.threads = {1, 2, 4, 8};
      cfg.key_ranges = {20'000, 200'000};
    }
    cfg.threads = cli.get_int_list("threads", cfg.threads);
    cfg.key_ranges = cli.get_int_list("ranges", cfg.key_ranges);
    cfg.secs = cli.get_double("secs", cfg.secs);
    cfg.repeats = static_cast<int>(cli.get_int("repeats", cfg.repeats));
    cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    cfg.obs = cli.has("obs");
    cfg.obs_sample =
        static_cast<unsigned>(cli.get_int("obs-sample", cfg.obs_sample));
    return cfg;
  }
};

/// Telemetry column of one cell (populated when the run passed --obs on an
/// LOT_OBS=ON build; otherwise `enabled` stays false and neither the table
/// nor the JSON emit it).
struct ObsCell {
  bool enabled = false;
  std::int64_t contains_restarts = 0;  // the derived audit over the cell
  std::uint64_t insert_restarts = 0;
  std::uint64_t erase_restarts = 0;
  std::uint64_t locate_resumes = 0;        // in-place resumes (no descent)
  std::uint64_t validation_fallbacks = 0;  // budget exhausted -> re-descent
  std::uint64_t rotations = 0;
  std::uint64_t rotations_deferred = 0;    // throttle-deferred climbs
  obs::HistogramStats contains_lat{};
  obs::HistogramStats insert_lat{};
};

/// One (implementation, thread-count) cell: the median throughput across
/// repeats plus the spread, with the raw samples kept for the JSON dump.
struct Cell {
  double median = 0;
  double min = 0;
  double max = 0;
  std::vector<double> samples;
  ObsCell obs;
};

/// One implementation's cells across the thread sweep.
using Series = std::vector<Cell>;

template <typename MapT>
Series run_series(const workload::Spec& spec, const TableConfig& cfg) {
  Series out;
  const bool obs_on = cfg.obs && obs::kEnabled;
  workload::Spec cell_spec = spec;
  if (obs_on) cell_spec.latency_sample_every = cfg.obs_sample;
  for (const auto threads : cfg.threads) {
    Cell cell;
    if (obs_on) obs::reset_latency_histograms();
    const obs::Snapshot before = obs::Registry::instance().snapshot();
    for (int rep = 0; rep < cfg.repeats; ++rep) {
      MapT map;
      const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(rep);
      workload::prefill(map, cell_spec, static_cast<unsigned>(threads), seed);
      const auto r = workload::run_trial(
          map, cell_spec, static_cast<unsigned>(threads), cfg.secs, seed + 1);
      cell.samples.push_back(r.mops_per_sec);
    }
    if (obs_on) {
      const obs::Snapshot after = obs::Registry::instance().snapshot();
      const auto d = [&](obs::Counter c) {
        return after.counter(c) - before.counter(c);
      };
      cell.obs.enabled = true;
      cell.obs.contains_restarts =
          obs::Snapshot::contains_restarts_between(before, after);
      cell.obs.insert_restarts = d(obs::Counter::kInsertRestarts);
      cell.obs.erase_restarts = d(obs::Counter::kEraseRestarts);
      cell.obs.locate_resumes = d(obs::Counter::kLocateResumes);
      cell.obs.validation_fallbacks = d(obs::Counter::kValidationFallbacks);
      cell.obs.rotations = d(obs::Counter::kRotations);
      cell.obs.rotations_deferred = d(obs::Counter::kRotationsDeferred);
      cell.obs.contains_lat = after.latency[static_cast<std::size_t>(
          obs::OpKind::kContains)];
      cell.obs.insert_lat =
          after.latency[static_cast<std::size_t>(obs::OpKind::kInsert)];
    }
    const auto s = util::summarize(cell.samples);
    cell.median = util::percentile(cell.samples, 50.0);
    cell.min = s.min;
    cell.max = s.max;
    out.push_back(std::move(cell));
  }
  return out;
}

inline void print_cell_header(const std::string& table,
                              const workload::Spec& spec) {
  std::printf("\n=== %s | workload %s | key range %lld | prefill %lld ===\n",
              table.c_str(), spec.name.c_str(),
              static_cast<long long>(spec.key_range),
              static_cast<long long>(spec.prefill_target()));
}

/// Medians in the main table; one spread block underneath when the run had
/// repeats (so single-repeat smoke runs print exactly as before).
inline void print_series_table(
    const std::vector<std::int64_t>& threads,
    const std::vector<std::pair<std::string, Series>>& series) {
  std::printf("%8s", "threads");
  for (const auto& [name, _] : series) std::printf("  %26s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < threads.size(); ++i) {
    std::printf("%8lld", static_cast<long long>(threads[i]));
    for (const auto& [_, cells] : series) {
      std::printf("  %20.3f Mop/s", cells[i].median);
    }
    std::printf("\n");
  }
  bool any_spread = false;
  for (const auto& [_, cells] : series) {
    for (const auto& c : cells) {
      if (c.samples.size() > 1) any_spread = true;
    }
  }
  if (any_spread) {
    std::printf("  spread (min..max over repeats):\n");
    for (std::size_t i = 0; i < threads.size(); ++i) {
      std::printf("%8lld", static_cast<long long>(threads[i]));
      for (const auto& [_, cells] : series) {
        std::printf("  %12.3f..%-12.3f", cells[i].min, cells[i].max);
      }
      std::printf("\n");
    }
  }
  bool any_obs = false;
  for (const auto& [_, cells] : series) {
    for (const auto& c : cells) {
      if (c.obs.enabled) any_obs = true;
    }
  }
  if (!any_obs) return;
  std::printf(
      "  obs (sampled contains p50/p99 ns | restarts i/e | resumes/fallbacks "
      "| audit):\n");
  for (std::size_t i = 0; i < threads.size(); ++i) {
    std::printf("%8lld", static_cast<long long>(threads[i]));
    for (const auto& [_, cells] : series) {
      const ObsCell& o = cells[i].obs;
      if (!o.enabled) {
        std::printf("  %28s", "-");
        continue;
      }
      std::printf("  %7.0f/%-7.0f %6llu/%-6llu %6llu/%-6llu cr=%lld",
                  o.contains_lat.p50_ns, o.contains_lat.p99_ns,
                  static_cast<unsigned long long>(o.insert_restarts),
                  static_cast<unsigned long long>(o.erase_restarts),
                  static_cast<unsigned long long>(o.locate_resumes),
                  static_cast<unsigned long long>(o.validation_fallbacks),
                  static_cast<long long>(o.contains_restarts));
    }
    std::printf("\n");
  }
}

/// Accumulates benchmark cells and writes them as a flat JSON row list —
/// schema lot-bench-v1: one row per (table, workload, range, impl,
/// threads) with median/min/max Mop/s and the raw samples.
class JsonReport {
 public:
  void add(const std::string& table, const workload::Spec& spec,
           const TableConfig& cfg, const std::string& impl,
           const Series& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      Row row;
      row.table = table;
      row.workload = spec.name;
      row.key_range = spec.key_range;
      row.impl = impl;
      row.threads = cfg.threads[i];
      row.secs = cfg.secs;
      row.cell = cells[i];
      rows_.push_back(std::move(row));
    }
  }

  /// Writes the report; returns false (with a message) if the file cannot
  /// be opened. No external JSON dependency — the schema is flat enough to
  /// emit by hand, and every string it embeds is a controlled identifier.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"schema\": \"lot-bench-v1\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(
          f,
          "    {\"table\": \"%s\", \"workload\": \"%s\", "
          "\"key_range\": %lld, \"impl\": \"%s\", \"threads\": %lld, "
          "\"secs\": %.3f, \"median_mops\": %.4f, \"min_mops\": %.4f, "
          "\"max_mops\": %.4f, \"samples\": [",
          r.table.c_str(), r.workload.c_str(),
          static_cast<long long>(r.key_range), r.impl.c_str(),
          static_cast<long long>(r.threads), r.secs, r.cell.median,
          r.cell.min, r.cell.max);
      for (std::size_t j = 0; j < r.cell.samples.size(); ++j) {
        std::fprintf(f, "%s%.4f", j == 0 ? "" : ", ", r.cell.samples[j]);
      }
      std::fprintf(f, "]");
      if (r.cell.obs.enabled) {
        const ObsCell& o = r.cell.obs;
        std::fprintf(
            f,
            ", \"obs\": {\"contains_restarts\": %lld, "
            "\"insert_restarts\": %llu, \"erase_restarts\": %llu, "
            "\"locate_resumes\": %llu, \"validation_fallbacks\": %llu, "
            "\"rotations\": %llu, \"rotations_deferred\": %llu, "
            "\"contains_p50_ns\": %.1f, "
            "\"contains_p99_ns\": %.1f, \"insert_p50_ns\": %.1f, "
            "\"insert_p99_ns\": %.1f, \"lat_samples\": %llu}",
            static_cast<long long>(o.contains_restarts),
            static_cast<unsigned long long>(o.insert_restarts),
            static_cast<unsigned long long>(o.erase_restarts),
            static_cast<unsigned long long>(o.locate_resumes),
            static_cast<unsigned long long>(o.validation_fallbacks),
            static_cast<unsigned long long>(o.rotations),
            static_cast<unsigned long long>(o.rotations_deferred),
            o.contains_lat.p50_ns, o.contains_lat.p99_ns,
            o.insert_lat.p50_ns, o.insert_lat.p99_ns,
            static_cast<unsigned long long>(o.contains_lat.count +
                                            o.insert_lat.count));
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

  bool empty() const { return rows_.empty(); }

 private:
  struct Row {
    std::string table;
    std::string workload;
    std::int64_t key_range = 0;
    std::string impl;
    std::int64_t threads = 0;
    double secs = 0;
    Cell cell;
  };
  std::vector<Row> rows_;
};

/// --json=<path> handling shared by the bench mains.
inline void maybe_write_json(const util::Cli& cli, const JsonReport& report) {
  const std::string path = cli.get_string("json", "");
  if (path.empty()) return;
  if (report.write(path)) {
    std::printf("\nwrote %s\n", path.c_str());
  }
}

}  // namespace lot::bench
