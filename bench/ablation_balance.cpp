// Ablation A3 (DESIGN.md): quality of the relaxed (Bougé et al.) balancing.
//
// After heavy concurrent churn reaches quiescence, the logical-ordering
// AVL must be strictly height-balanced (§2: "strictly balanced when there
// are no ongoing mutating operations"), while the unbalanced BST drifts
// with the insertion order. Reports measured height vs the AVL bound
// 1.4405*log2(n+2) and the resulting lookup throughput on the settled
// trees, for both uniform and adversarial (ascending) fills.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/validate.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

using K = std::int64_t;
using V = std::int64_t;

namespace {

template <typename MapT>
void churn_uniform(MapT& map, std::int64_t range, unsigned threads,
                   int ops) {
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      lot::util::Xoshiro256 rng(77 + t);
      for (int i = 0; i < ops; ++i) {
        const K k = rng.next_in(0, range - 1);
        if (rng.percent(55)) {
          map.insert(k, k);
        } else {
          map.erase(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

template <typename MapT>
void fill_ascending(MapT& map, std::int64_t n, unsigned threads) {
  std::vector<std::thread> workers;
  const std::int64_t per = n / threads;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const K base = static_cast<K>(t) * per;
      for (K k = base; k < base + per; ++k) map.insert(k, k);
    });
  }
  for (auto& w : workers) w.join();
}

template <typename MapT>
double lookup_mops(const MapT& map, std::int64_t range, int iters) {
  lot::util::Xoshiro256 rng(5);
  lot::util::Stopwatch watch;
  std::uint64_t sink = 0;
  for (int i = 0; i < iters; ++i) {
    sink += map.contains(rng.next_in(0, range - 1));
  }
  const double s = watch.elapsed_seconds();
  if (sink == 0xdeadbeef) std::printf("!");
  return static_cast<double>(iters) / s / 1e6;
}

template <typename MapT>
void report(const char* label, const MapT& map, bool balanced,
            std::int64_t range, int lookup_iters) {
  const auto rep = lot::lo::validate(map, balanced);
  const double bound =
      1.4405 * std::log2(static_cast<double>(rep.chain_nodes) + 2.0);
  std::printf("%-34s n=%7zu  height=%4d  AVL-bound=%6.1f  %s  "
              "lookups=%6.2f Mop/s\n",
              label, rep.chain_nodes, rep.height, bound,
              rep.ok ? "invariants-OK" : "INVARIANTS-VIOLATED",
              lookup_mops(map, range, lookup_iters));
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  const std::int64_t range = cli.get_int("range", 100'000);
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 4));
  const int ops = static_cast<int>(cli.get_int("ops", 150'000));
  const int lookups = static_cast<int>(cli.get_int("lookups", 200'000));

  std::printf("=== Ablation A3: relaxed balancing quality at quiescence ===\n");
  std::printf("range %lld | %u threads | %d churn ops/thread\n\n",
              static_cast<long long>(range), threads, ops);

  {
    lot::lo::AvlMap<K, V> avl;
    churn_uniform(avl, range, threads, ops);
    report("lo-avl, uniform churn:", avl, true, range, lookups);
  }
  {
    lot::lo::BstMap<K, V> bst;
    churn_uniform(bst, range, threads, ops);
    report("lo-bst, uniform churn:", bst, false, range, lookups);
  }
  {
    lot::lo::AvlMap<K, V> avl;
    fill_ascending(avl, range / 4, threads);
    report("lo-avl, ascending fill:", avl, true, range / 4, lookups);
  }
  {
    lot::lo::BstMap<K, V> bst;
    fill_ascending(bst, range / 16, threads);  // smaller: O(n) paths
    report("lo-bst, ascending fill:", bst, false, range / 16,
           lookups / 20);
  }

  std::printf(
      "\nReading: the AVL's height must sit at or below the bound after "
      "every scenario (strict balance at\nquiescence); the BST's ascending "
      "fill degenerates toward a per-thread-interleaved spine.\n");
  return 0;
}
