// Ablation A5: tail latency of lookups under writer interference.
//
// The paper's differentiator is *how* contains is implemented, not just
// its mean cost: the logical-ordering lookup is lock-free and never
// restarts (one descent + a bounded ordering walk), while optimistic
// designs (BCCO) retry on version changes and lock-based readers can wait.
// Means hide this; tails show it. A reader samples per-op contains()
// latency while writers churn; we report p50 / p99 / p99.9 / max.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "baselines/bronson/bronson.hpp"
#include "baselines/cf/cf_tree.hpp"
#include "baselines/coarse/coarse_map.hpp"
#include "baselines/skiplist/skiplist.hpp"
#include "lo/avl.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/stopwatch.hpp"

using K = std::int64_t;
using V = std::int64_t;

namespace {

template <typename MapT>
void run_one(const char* label, std::int64_t range, int samples,
             int writers) {
  MapT map;
  lot::util::Xoshiro256 fill(1);
  for (std::int64_t i = 0; i < range / 2; ++i) {
    map.insert(fill.next_in(0, range - 1), i);
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> churn;
  for (int w = 0; w < writers; ++w) {
    churn.emplace_back([&, w] {
      lot::util::Xoshiro256 rng(100 + w);
      while (!stop.load(std::memory_order_relaxed)) {
        const K k = rng.next_in(0, range - 1);
        if (rng.percent(50)) {
          map.insert(k, k);
        } else {
          map.erase(k);
        }
      }
    });
  }

  std::vector<double> lat;
  lat.reserve(samples);
  lot::util::Xoshiro256 rng(7);
  std::uint64_t sink = 0;
  for (int i = 0; i < samples; ++i) {
    const K k = rng.next_in(0, range - 1);
    lot::util::Stopwatch watch;
    sink += map.contains(k);
    lat.push_back(static_cast<double>(watch.elapsed_nanos()));
  }
  stop = true;
  for (auto& th : churn) th.join();
  if (sink == 0xdeadbeef) std::printf("!");

  std::printf("  %-22s p50 %8.0f ns   p99 %9.0f ns   p99.9 %9.0f ns   "
              "max %10.0f ns\n",
              label, lot::util::percentile(lat, 50),
              lot::util::percentile(lat, 99),
              lot::util::percentile(lat, 99.9),
              lot::util::percentile(lat, 100));
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  const std::int64_t range = cli.get_int("range", 100'000);
  const int samples = static_cast<int>(cli.get_int("samples", 200'000));
  const int writers = static_cast<int>(cli.get_int("writers", 2));

  std::printf("=== Ablation A5: contains() latency tails under %d churning "
              "writers (range %lld) ===\n",
              writers, static_cast<long long>(range));
  std::printf("(single-core container: extreme tails include scheduler "
              "preemption for every structure;\n the comparison is "
              "relative)\n\n");
  run_one<lot::lo::AvlMap<K, V>>("lo-avl (lock-free)", range, samples,
                                 writers);
  run_one<lot::baselines::BronsonMap<K, V>>("bronson (optimistic)", range,
                                            samples, writers);
  run_one<lot::baselines::SkipListMap<K, V>>("lf-skiplist", range, samples,
                                             writers);
  run_one<lot::baselines::CfTreeMap<K, V>>("crain-cf-tree", range, samples,
                                           writers);
  run_one<lot::baselines::CoarseMap<K, V>>("coarse-std-map (lock)", range,
                                           samples, writers);
  return 0;
}
