// Ablation A1 (DESIGN.md): the cost of explicitly maintaining the logical
// ordering (three extra pointers + interval locking) that §1 of the paper
// calls a "different space-time-synchronization tradeoff".
//
// Single-threaded op-latency sweep over the update ratio: the
// logical-ordering BST/AVL pay the pred/succ bookkeeping on every update,
// so their update-heavy latencies sit above the sequential AVL's, while
// their lookup path (search + ordering hop) stays close. Also reports
// per-node memory to quantify the space half of the tradeoff.
#include <cstdint>
#include <cstdio>

#include "baselines/coarse/coarse_map.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/node.hpp"
#include "seq/avl.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

using K = std::int64_t;
using V = std::int64_t;

namespace {

template <typename MapT>
double ops_per_usec(std::int64_t range, unsigned update_pct,
                    std::uint64_t iters, std::uint64_t seed) {
  MapT map;
  lot::util::Xoshiro256 rng(seed);
  for (std::int64_t i = 0; i < range / 2; ++i) {
    map.insert(rng.next_in(0, range - 1), i);
  }
  lot::util::Stopwatch watch;
  std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const K k = rng.next_in(0, range - 1);
    const auto dice = rng.next_below(100);
    if (dice >= update_pct) {
      sink += map.contains(k);
    } else if (dice < update_pct / 2) {
      sink += map.insert(k, k);
    } else {
      sink += map.erase(k);
    }
  }
  const double us = watch.elapsed_seconds() * 1e6;
  if (sink == 0xdeadbeef) std::printf("!");  // defeat dead-code elimination
  return static_cast<double>(iters) / us;
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  const std::int64_t range = cli.get_int("range", 200'000);
  const auto iters =
      static_cast<std::uint64_t>(cli.get_int("iters", 400'000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  std::printf("=== Ablation A1: cost of explicit logical ordering ===\n");
  std::printf("single thread | key range %lld | %llu ops per cell\n",
              static_cast<long long>(range),
              static_cast<unsigned long long>(iters));
  std::printf("node size: lo tree %zu B vs sequential-AVL %zu B "
              "(the space half of the tradeoff)\n\n",
              sizeof(lot::lo::Node<K, V>), std::size_t{40});

  std::printf("%12s  %14s  %14s  %14s  %14s\n", "update%", "lo-bst",
              "lo-avl", "seq-avl", "coarse-std-map");
  for (unsigned upd : {0u, 10u, 30u, 50u, 70u, 100u}) {
    const double bst =
        ops_per_usec<lot::lo::BstMap<K, V>>(range, upd, iters, seed);
    const double avl =
        ops_per_usec<lot::lo::AvlMap<K, V>>(range, upd, iters, seed);
    const double seq =
        ops_per_usec<lot::seq::AvlMap<K, V>>(range, upd, iters, seed);
    const double coarse =
        ops_per_usec<lot::baselines::CoarseMap<K, V>>(range, upd, iters,
                                                      seed);
    std::printf("%11u%%  %11.2f/us  %11.2f/us  %11.2f/us  %11.2f/us\n", upd,
                bst, avl, seq, coarse);
  }
  std::printf(
      "\nReading: the gap between lo-* and seq-avl at high update%% is the "
      "ordering-maintenance overhead;\nat 0%% updates it is the price of "
      "the lock-free read path (guards + ordering hop).\n");
  return 0;
}
