// M1: google-benchmark micro latencies of the individual operations on
// every implementation, on a prefilled structure (single-threaded; the
// multi-threaded throughput story lives in table1/table2).
#include <benchmark/benchmark.h>

#include <cstdint>

#include "baselines/bronson/bronson.hpp"
#include "baselines/cf/cf_tree.hpp"
#include "baselines/chromatic/chromatic.hpp"
#include "baselines/coarse/coarse_map.hpp"
#include "baselines/efrb/efrb.hpp"
#include "baselines/hj/hj_tree.hpp"
#include "baselines/skiplist/skiplist.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
#include "seq/avl.hpp"
#include "util/random.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
constexpr std::int64_t kRange = 100'000;

using LoAvl = lot::lo::AvlMap<K, V>;
using LoBst = lot::lo::BstMap<K, V>;
using LoPartialAvl = lot::lo::PartialAvlMap<K, V>;
using Bronson = lot::baselines::BronsonMap<K, V>;
using CfTree = lot::baselines::CfTreeMap<K, V>;
using SkipList = lot::baselines::SkipListMap<K, V>;
using Efrb = lot::baselines::EfrbMap<K, V>;
using Chromatic = lot::baselines::ChromaticMap<K, V>;
using HjTree = lot::baselines::HjTreeMap<K, V>;
using Coarse = lot::baselines::CoarseMap<K, V>;
using SeqAvl = lot::seq::AvlMap<K, V>;

template <typename MapT>
void prefill_half(MapT& map) {
  lot::util::Xoshiro256 rng(1);
  for (std::int64_t i = 0; i < kRange / 2; ++i) {
    map.insert(rng.next_in(0, kRange - 1), i);
  }
}

template <typename MapT>
void BM_Contains(benchmark::State& state) {
  MapT map;
  prefill_half(map);
  lot::util::Xoshiro256 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.contains(rng.next_in(0, kRange - 1)));
  }
}

template <typename MapT>
void BM_Get(benchmark::State& state) {
  MapT map;
  prefill_half(map);
  lot::util::Xoshiro256 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.get(rng.next_in(0, kRange - 1)));
  }
}

template <typename MapT>
void BM_InsertErase(benchmark::State& state) {
  MapT map;
  prefill_half(map);
  lot::util::Xoshiro256 rng(3);
  for (auto _ : state) {
    const K k = rng.next_in(0, kRange - 1);
    if (rng.percent(50)) {
      benchmark::DoNotOptimize(map.insert(k, k));
    } else {
      benchmark::DoNotOptimize(map.erase(k));
    }
  }
}

BENCHMARK(BM_Contains<LoAvl>)->Name("contains/lo-avl");
BENCHMARK(BM_Contains<LoBst>)->Name("contains/lo-bst");
BENCHMARK(BM_Contains<LoPartialAvl>)->Name("contains/lo-avl-logical-removing");
BENCHMARK(BM_Contains<Bronson>)->Name("contains/bronson-bcco-avl");
BENCHMARK(BM_Contains<CfTree>)->Name("contains/crain-cf-tree");
BENCHMARK(BM_Contains<SkipList>)->Name("contains/lf-skiplist");
BENCHMARK(BM_Contains<Efrb>)->Name("contains/efrb-external-bst");
BENCHMARK(BM_Contains<Chromatic>)->Name("contains/chromatic6-style");
BENCHMARK(BM_Contains<HjTree>)->Name("contains/howley-jones-internal");
BENCHMARK(BM_Contains<Coarse>)->Name("contains/coarse-std-map");
BENCHMARK(BM_Contains<SeqAvl>)->Name("contains/seq-avl");

BENCHMARK(BM_Get<LoAvl>)->Name("get/lo-avl");
BENCHMARK(BM_Get<LoBst>)->Name("get/lo-bst");
BENCHMARK(BM_Get<Bronson>)->Name("get/bronson-bcco-avl");
BENCHMARK(BM_Get<SkipList>)->Name("get/lf-skiplist");
BENCHMARK(BM_Get<Efrb>)->Name("get/efrb-external-bst");

BENCHMARK(BM_InsertErase<LoAvl>)->Name("insert_erase/lo-avl");
BENCHMARK(BM_InsertErase<LoBst>)->Name("insert_erase/lo-bst");
BENCHMARK(BM_InsertErase<LoPartialAvl>)
    ->Name("insert_erase/lo-avl-logical-removing");
BENCHMARK(BM_InsertErase<Bronson>)->Name("insert_erase/bronson-bcco-avl");
BENCHMARK(BM_InsertErase<CfTree>)->Name("insert_erase/crain-cf-tree");
BENCHMARK(BM_InsertErase<SkipList>)->Name("insert_erase/lf-skiplist");
BENCHMARK(BM_InsertErase<Efrb>)->Name("insert_erase/efrb-external-bst");
BENCHMARK(BM_InsertErase<Chromatic>)->Name("insert_erase/chromatic6-style");
BENCHMARK(BM_InsertErase<HjTree>)->Name("insert_erase/howley-jones-internal");
BENCHMARK(BM_InsertErase<Coarse>)->Name("insert_erase/coarse-std-map");
BENCHMARK(BM_InsertErase<SeqAvl>)->Name("insert_erase/seq-avl");

}  // namespace

BENCHMARK_MAIN();
