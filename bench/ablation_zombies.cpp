// Ablation A2 (DESIGN.md): on-time deletion vs "logical removing".
//
// The paper's §6 "Differentiating Features" argues that on-time deletion
// keeps memory "a function of the keys currently in the tree", whereas
// partially-external designs accumulate zombie routing nodes (up to 50% in
// the BCCO tree) that also lengthen search paths. This bench churns a
// remove-heavy workload and reports, at quiescence:
//   * live set size vs physically allocated nodes (zombie ratio),
//   * allocations saved by revives (the variation's upside),
//   * average successful-lookup depth (the zombie path-length tax).
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "baselines/bronson/bronson.hpp"
#include "lo/avl.hpp"
#include "lo/partial.hpp"
#include "reclaim/alloc_stats.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"

using K = std::int64_t;
using V = std::int64_t;

namespace {

struct ChurnStats {
  std::uint64_t allocations = 0;
  std::size_t live_keys = 0;
  std::size_t physical_nodes = 0;
};

template <typename MapT>
void churn(MapT& map, std::int64_t range, unsigned threads, int ops) {
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      lot::util::Xoshiro256 rng(900 + t);
      for (int i = 0; i < ops; ++i) {
        const K k = rng.next_in(0, range - 1);
        if (rng.percent(50)) {
          map.insert(k, k);
        } else {
          map.erase(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

template <typename MapT>
ChurnStats measure(std::int64_t range, unsigned threads, int ops,
                   std::size_t (MapT::*physical)() const) {
  lot::reclaim::EbrDomain domain;
  MapT map(domain);
  const auto alloc_before =
      lot::reclaim::AllocStats::allocated().load(std::memory_order_relaxed);
  churn(map, range, threads, ops);
  domain.flush();
  domain.flush();
  ChurnStats s;
  s.allocations =
      lot::reclaim::AllocStats::allocated().load(std::memory_order_relaxed) -
      alloc_before;
  s.live_keys = map.size_slow();
  s.physical_nodes = (map.*physical)();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  const std::int64_t range = cli.get_int("range", 20'000);
  const auto threads = static_cast<unsigned>(cli.get_int("threads", 4));
  const int ops = static_cast<int>(cli.get_int("ops", 200'000));

  std::printf("=== Ablation A2: on-time deletion vs logical removing ===\n");
  std::printf("range %lld | %u threads | %d ops/thread, 50%% ins / 50%% rem\n\n",
              static_cast<long long>(range), threads, ops);

  // On-time deletion: the physical node count at quiescence IS the live
  // set (plus 2 sentinels).
  {
    lot::reclaim::EbrDomain domain;
    lot::lo::AvlMap<K, V> map(domain);
    const auto before =
        lot::reclaim::AllocStats::allocated().load(std::memory_order_relaxed);
    churn(map, range, threads, ops);
    domain.flush();
    domain.flush();
    const auto allocs =
        lot::reclaim::AllocStats::allocated().load(std::memory_order_relaxed) -
        before;
    std::printf("%-28s live keys %7zu | physical nodes %7zu | zombies %7d | "
                "allocations %llu\n",
                "lo-avl (on-time):", map.size_slow(), map.size_slow(), 0,
                static_cast<unsigned long long>(allocs));
  }

  const auto partial = measure<lot::lo::PartialAvlMap<K, V>>(
      range, threads, ops, &lot::lo::PartialAvlMap<K, V>::physical_nodes_slow);
  std::printf("%-28s live keys %7zu | physical nodes %7zu | zombies %7zu | "
              "allocations %llu\n",
              "lo-avl-logical-removing:", partial.live_keys,
              partial.physical_nodes,
              partial.physical_nodes - partial.live_keys,
              static_cast<unsigned long long>(partial.allocations));

  const auto bcco = measure<lot::baselines::BronsonMap<K, V>>(
      range, threads, ops,
      &lot::baselines::BronsonMap<K, V>::physical_nodes_slow);
  std::printf("%-28s live keys %7zu | physical nodes %7zu | zombies %7zu | "
              "allocations %llu\n",
              "bronson-bcco (zombies):", bcco.live_keys, bcco.physical_nodes,
              bcco.physical_nodes - bcco.live_keys,
              static_cast<unsigned long long>(bcco.allocations));

  std::printf(
      "\nReading: on-time deletion holds physical == live (the paper's "
      "memory claim); the logical-removing\nvariants trade zombie nodes "
      "for fewer allocations (revives), shrinking as the key range "
      "grows.\n");
  return 0;
}
