// MVCC snapshot-scan ablation (DESIGN.md §16, EXPERIMENTS.md A12): what
// does an atomic scan cost, and what does carrying the version machinery
// cost when nobody snapshots?
//
// Two questions, two sections:
//
// 1. Scan-consistency mechanisms, scan-heavy mix at scan lengths
//    16/64/256 (MVCC builds only — the snapshot series cannot exist
//    without the layer):
//      lo-avl-lr-weak      — live range(): per-key linearizable, whole
//                            scan torn under churn (the §11 contract)
//      lo-avl-lr-snapshot  — every scan draws map.snapshot() and resolves
//                            the range against that epoch's cut
//      coarse-rwlock       — the classic alternative: one shared_mutex
//                            over the same tree; scans/reads take it
//                            shared, writers exclusive, so scans are
//                            atomic because writers stall
//    The comparison prices atomicity two ways: the snapshot pays on the
//    reader side (version resolution + cut materialization, writers never
//    wait), the rwlock pays on the writer side (every scan stalls every
//    writer). Aggregate Mop/s alone can flatter the lock — serialized
//    writers also stop contending — so read the table together with the
//    mix: the snapshot column's cost lands entirely on the 30% scan
//    share, the lock's entirely on the 40% write share.
//
// 2. ON-but-unused overhead, point-op mixes with zero scans, A/B across
//    two build trees (this binary from the default build and again from
//    build-nomvcc/ -DLOT_MVCC=OFF, merged by scripts/bench_snapshot.sh
//    into one BENCH_10.json — the ablation_obs pattern). Every label
//    carries the build's state ("/mvcc=on" vs "/mvcc=off"); the
//    acceptance number is the on-vs-off delta on the point-op mixes:
//    stamping epochs on the write path with no snapshot ever taken must
//    cost <= 3%.
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "lo/mvcc.hpp"
#include "lo/partial.hpp"
#include "util/cli.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;

using PartialAvl = lot::lo::PartialAvlMap<K, V>;

#if !defined(LOT_DISABLE_MVCC)
/// Adapter that turns every driver range() into an atomic scan: draw a
/// snapshot, resolve the range against its cut, drop the view. This is
/// deliberately the naive per-scan usage (acquire + release every scan),
/// so the series prices the full snapshot round trip, not an amortized
/// long-lived view.
class SnapshotScanMap {
 public:
  using key_type = K;
  using mapped_type = V;
  static constexpr std::string_view name() { return "lo-avl-lr-snapshot"; }

  bool insert(const K& k, const V& v) { return inner_.insert(k, v); }
  bool erase(const K& k) { return inner_.erase(k); }
  bool contains(const K& k) const { return inner_.contains(k); }
  template <typename Fn>
  void range(const K& lo, const K& hi, Fn&& fn) const {
    const auto view = inner_.snapshot();
    view.range(lo, hi, std::forward<Fn>(fn));
  }

 private:
  PartialAvl inner_;
};
#endif  // !LOT_DISABLE_MVCC

/// The classic way to get atomic scans: one reader-writer lock over the
/// whole map. Point reads and scans share it, writers take it exclusive —
/// a scan is trivially a cut because every writer is stalled for its
/// whole duration. Same tree underneath, so the series isolates the
/// mechanism, not the data structure.
class CoarseLockScanMap {
 public:
  using key_type = K;
  using mapped_type = V;
  static constexpr std::string_view name() { return "coarse-rwlock"; }

  bool insert(const K& k, const V& v) {
    std::unique_lock lock(mu_);
    return inner_.insert(k, v);
  }
  bool erase(const K& k) {
    std::unique_lock lock(mu_);
    return inner_.erase(k);
  }
  bool contains(const K& k) const {
    std::shared_lock lock(mu_);
    return inner_.contains(k);
  }
  template <typename Fn>
  void range(const K& lo, const K& hi, Fn&& fn) const {
    std::shared_lock lock(mu_);
    inner_.range(lo, hi, std::forward<Fn>(fn));
  }

 private:
  mutable std::shared_mutex mu_;
  PartialAvl inner_;
};

/// Same scan-heavy mix as ablation_range: 30C/20I/20R/30S, so the two
/// ablations' weak-scan rows are directly comparable. Unused in the OFF
/// build, which only contributes the point-op rows.
[[maybe_unused]] lot::workload::Spec scan_spec(std::int64_t key_range,
                                               std::int64_t scan_len) {
  lot::workload::Spec spec;
  spec.name = "30C-20I-20R-30S-len" + std::to_string(scan_len);
  spec.contains_pct = 30;
  spec.insert_pct = 20;
  spec.remove_pct = 20;
  spec.scan_pct = 30;
  spec.scan_len = scan_len;
  spec.key_range = key_range;
  return spec;
}

std::string label(const char* base) {
  std::string s(base);
  s += lot::lo::mvcc::kEnabled ? "/mvcc=on" : "/mvcc=off";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  auto cfg = lot::bench::TableConfig::from_cli(cli);
  if (!cli.has("threads") && !cli.has("paper")) cfg.threads = {1, 4, 8};
  if (!cli.has("ranges") && !cli.has("paper")) cfg.key_ranges = {20'000};
  const auto scan_lens =
      cli.get_int_list("scanlens", std::vector<std::int64_t>{16, 64, 256});
  lot::bench::JsonReport report;

  std::printf("mvcc layer: %s\n",
              lot::lo::mvcc::kEnabled ? "compiled in (LOT_MVCC=ON)"
                                      : "compiled out (LOT_MVCC=OFF)");

#if !defined(LOT_DISABLE_MVCC)
  // Section 1: scan-consistency mechanisms across scan lengths.
  for (const auto range : cfg.key_ranges) {
    for (const auto len : scan_lens) {
      const auto spec = scan_spec(range, len);
      lot::bench::print_cell_header("MVCC snapshot-scan ablation", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      series.emplace_back("lo-avl-lr-weak",
                          lot::bench::run_series<PartialAvl>(spec, cfg));
      series.emplace_back("lo-avl-lr-snapshot",
                          lot::bench::run_series<SnapshotScanMap>(spec, cfg));
      series.emplace_back("coarse-rwlock",
                          lot::bench::run_series<CoarseLockScanMap>(spec, cfg));
      lot::bench::print_series_table(cfg.threads, series);
      for (const auto& [name, cells] : series) {
        report.add("ablation_mvcc", spec, cfg, name, cells);
      }
    }
  }
#else
  (void)scan_lens;
#endif  // !LOT_DISABLE_MVCC

  // Section 2: ON-but-unused point-op overhead. Runs in BOTH builds;
  // every write stamps vbirth/vdeath in the ON build, nothing in the OFF
  // build, and no snapshot is ever taken in either. The two JSON row
  // sets merge into one file for the <= 3% acceptance delta.
  for (const auto range : cfg.key_ranges) {
    for (const auto mix :
         {lot::workload::Mix::k100C, lot::workload::Mix::k50C25I25R}) {
      const auto spec = lot::workload::make_spec(mix, range);
      lot::bench::print_cell_header("MVCC on-but-unused overhead", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      series.emplace_back(label("lo-avl-lr"),
                          lot::bench::run_series<PartialAvl>(spec, cfg));
      lot::bench::print_series_table(cfg.threads, series);
      for (const auto& [name, cells] : series) {
        report.add("ablation_mvcc", spec, cfg, name, cells);
      }
    }
  }

  lot::bench::maybe_write_json(cli, report);
  return 0;
}
