// M2: cost of the memory-reclamation substrate (the "manual safe memory
// reclamation" the C++ reproduction adds over the paper's GC'd Java).
// Measures guard enter/exit, nested guards, retire throughput, and the
// end-to-end overhead a guard adds to a lookup-sized critical section.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>

#include "reclaim/ebr.hpp"

namespace {

using lot::reclaim::EbrDomain;

void BM_GuardEnterExit(benchmark::State& state) {
  EbrDomain domain;
  for (auto _ : state) {
    auto g = domain.guard();
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_GuardEnterExit);

void BM_NestedGuard(benchmark::State& state) {
  EbrDomain domain;
  auto outer = domain.guard();
  for (auto _ : state) {
    auto g = domain.guard();  // nested: depth bump only
    benchmark::DoNotOptimize(&g);
  }
}
BENCHMARK(BM_NestedGuard);

struct Blob {
  std::uint64_t data[4];
};

void BM_RetireFreeCycle(benchmark::State& state) {
  EbrDomain domain;
  domain.set_retire_threshold(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    domain.retire(lot::reclaim::make_counted<Blob>());
  }
  domain.flush();
  domain.flush();
}
BENCHMARK(BM_RetireFreeCycle)->Arg(16)->Arg(128)->Arg(1024);

void BM_GuardedWork(benchmark::State& state) {
  // ~lookup-sized critical section with and without the guard, to show
  // the relative overhead the reclamation adds to a contains().
  EbrDomain domain;
  std::atomic<std::uint64_t> cells[64] = {};
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto g = domain.guard();
    std::uint64_t acc = 0;
    for (int s = 0; s < 16; ++s) {  // ~tree-descent's worth of loads
      acc += cells[(i + s * 7) & 63].load(std::memory_order_acquire);
    }
    benchmark::DoNotOptimize(acc);
    ++i;
  }
}
BENCHMARK(BM_GuardedWork);

void BM_UnguardedWork(benchmark::State& state) {
  std::atomic<std::uint64_t> cells[64] = {};
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (int s = 0; s < 16; ++s) {
      acc += cells[(i + s * 7) & 63].load(std::memory_order_acquire);
    }
    benchmark::DoNotOptimize(acc);
    ++i;
  }
}
BENCHMARK(BM_UnguardedWork);

void BM_StatsSnapshot(benchmark::State& state) {
  // Health-monitoring hook (DESIGN.md §9): a full pool scan per call, so
  // this is the cost of polling stats() from a monitoring thread — not a
  // per-operation cost, but it should stay cheap enough to poll freely.
  EbrDomain domain;
  { auto g = domain.guard(); }  // one record in use, as in steady state
  for (auto _ : state) {
    auto s = domain.stats();
    benchmark::DoNotOptimize(&s);
  }
}
BENCHMARK(BM_StatsSnapshot);

}  // namespace

BENCHMARK_MAIN();
