// Governor ablation (DESIGN.md §14, EXPERIMENTS.md A10): what does the
// overload governor cost when nothing is wrong, and what does it change
// when something is?
//
// Two arms on the identical lo-avl tree, toggled at runtime so both come
// from one binary (set_policies_enabled, exactly the negative-control knob
// the storm stress uses):
//   lo-avl-governed   — governor policies on (this PR's default)
//   lo-avl-ungoverned — policies off: the state machine still samples and
//                       publishes (obs parity), but no admission backoff,
//                       no shedding, no drain boost ever engages
//
// Each arm runs two weathers:
//   calm        — fault injection disarmed. The governed-vs-ungoverned
//                 delta here IS the fault-free overhead (acceptance:
//                 <= 3% on the contended 20k cell), and it prices the
//                 whole residency: TLS stride countdown, clock-gated
//                 timed_sample, one relaxed state load per write op.
//   stallstorm  — seeded guard-stall injection (reader + writer sites) at
//                 a steady plateau: pins stretch, epoch advance starves,
//                 the stall watchdog and backlog thresholds trip. Here the
//                 governed arm is *expected* to shape throughput (backoff
//                 sheds writers; the drain boost buys reclamation) — the
//                 row pair documents what degradation-by-design costs
//                 against degradation-by-accident.
//
// This binary compiles with LOT_FAULT_INJECT=1 (bench/CMakeLists.txt) so
// the stall sites exist; calm rows run with injection disabled, which is
// the same branch-not-taken the production build pays nothing for.
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/common.hpp"
#include "health/health.hpp"
#include "inject/inject.hpp"
#include "lo/avl.hpp"
#include "util/cli.hpp"

namespace {

using K = std::int64_t;
using Avl = lot::lo::AvlMap<K, K>;
namespace inject = lot::inject;

struct Arm {
  const char* name;
  bool governed;
};

constexpr Arm kArms[] = {
    {"lo-avl-governed", true},
    {"lo-avl-ungoverned", false},
};

struct Weather {
  const char* suffix;         // appended to the workload name ("" = calm)
  std::uint32_t stall_permille;  // per-site guard-stall rate
  std::uint32_t stall_max_us;
};

constexpr Weather kWeathers[] = {
    {"", 0, 0},
    {"-stallstorm", 30, 100},
};

void set_weather(const Weather& w, std::uint64_t seed) {
  if (w.stall_permille == 0) {
    inject::enable_injection(false);
    return;
  }
  inject::set_seed(seed);
  inject::set_stall_max_us(w.stall_max_us);
  inject::set_site_rate(inject::Site::kGuardStallReader, w.stall_permille);
  inject::set_site_rate(inject::Site::kGuardStallWriter, w.stall_permille);
  inject::enable_injection(true);
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  auto cfg = lot::bench::TableConfig::from_cli(cli);
  if (!cli.has("threads") && !cli.has("paper")) cfg.threads = {1, 4, 8};
  if (!cli.has("ranges") && !cli.has("paper")) cfg.key_ranges = {20'000};
  lot::bench::JsonReport report;

  if (!lot::health::kHealthCompiled) {
    std::printf("warning: LOT_HEALTH=OFF build — both arms are ungoverned "
                "and the delta this ablation measures is zero by "
                "construction\n");
  }
  if (!inject::kFaultInject) {
    std::printf("warning: built without LOT_FAULT_INJECT — the stallstorm "
                "rows run in calm weather\n");
  }

  for (const auto range : cfg.key_ranges) {
    const auto base =
        lot::workload::make_spec(lot::workload::Mix::k50C25I25R, range);
    for (const Weather& weather : kWeathers) {
      auto spec = base;
      spec.name += weather.suffix;
      lot::bench::print_cell_header("Governor ablation", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      for (const Arm& arm : kArms) {
#if !defined(LOT_DISABLE_HEALTH)
        lot::health::governor().reset();
#endif
        lot::health::set_policies_enabled(arm.governed);
        set_weather(weather, cfg.seed);
        series.emplace_back(arm.name,
                            lot::bench::run_series<Avl>(spec, cfg));
        inject::enable_injection(false);
      }
      lot::health::set_policies_enabled(true);
#if !defined(LOT_DISABLE_HEALTH)
      lot::health::governor().reset();
#endif
      lot::bench::print_series_table(cfg.threads, series);
      if (weather.stall_permille == 0 && series.size() == 2) {
        // The acceptance number, computed in place: governed-vs-ungoverned
        // median delta in calm weather, per thread count.
        std::printf("  fault-free governor overhead (median, + = slower):\n");
        for (std::size_t i = 0; i < cfg.threads.size(); ++i) {
          const double gov = series[0].second[i].median;
          const double ung = series[1].second[i].median;
          const double pct = ung > 0 ? (ung - gov) / ung * 100.0 : 0.0;
          std::printf("%8lld  %+6.2f%%\n",
                      static_cast<long long>(cfg.threads[i]), pct);
        }
      }
      for (const auto& [name, cells] : series) {
        report.add("ablation_storm", spec, cfg, name, cells);
      }
    }
  }
  lot::bench::maybe_write_json(cli, report);
  return 0;
}
