// Ablation A4: the paper's §2 background claim (after Pfaff,
// SIGMETRICS'04) that motivated choosing AVL over red-black balancing:
// "in a sequential setting, there is no clear winner between the two
// trees. However, AVL trees typically have shorter paths."
//
// Reproduced here with the sequential AVL and RB implementations: average
// search path length (total depth / n) after identical workloads, and
// single-threaded throughput for read-heavy vs update-heavy mixes.
#include <cstdint>
#include <cstdio>

#include "seq/avl.hpp"
#include "seq/rbtree.hpp"
#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"

using K = std::int64_t;
using V = std::int64_t;

namespace {

// Average node depth via in-order walk (AVL lacks a total_depth hook, so
// compute it uniformly for both through for_each + contains cost probes).
template <typename MapT>
double avg_probe_cost_ns(const MapT& map, std::int64_t range, int probes) {
  lot::util::Xoshiro256 rng(3);
  lot::util::Stopwatch watch;
  std::uint64_t sink = 0;
  for (int i = 0; i < probes; ++i) {
    sink += map.contains(rng.next_in(0, range - 1));
  }
  const double ns = watch.elapsed_seconds() * 1e9;
  if (sink == 0xdeadbeef) std::printf("!");
  return ns / probes;
}

template <typename MapT>
double mixed_ops_per_usec(std::int64_t range, unsigned update_pct,
                          int iters) {
  MapT map;
  lot::util::Xoshiro256 rng(9);
  for (std::int64_t i = 0; i < range / 2; ++i) {
    map.insert(rng.next_in(0, range - 1), i);
  }
  lot::util::Stopwatch watch;
  std::uint64_t sink = 0;
  for (int i = 0; i < iters; ++i) {
    const K k = rng.next_in(0, range - 1);
    const auto dice = rng.next_below(100);
    if (dice >= update_pct) {
      sink += map.contains(k);
    } else if (dice < update_pct / 2) {
      sink += map.insert(k, k);
    } else {
      sink += map.erase(k);
    }
  }
  const double us = watch.elapsed_seconds() * 1e6;
  if (sink == 0xdeadbeef) std::printf("!");
  return iters / us;
}

}  // namespace

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  const std::int64_t range = cli.get_int("range", 1'000'000);
  const int iters = static_cast<int>(cli.get_int("iters", 500'000));

  std::printf("=== Ablation A4: AVL vs red-black (Pfaff, paper sec. 2) ===\n");

  // Path-length comparison after an identical random fill.
  lot::seq::AvlMap<K, V> avl;
  lot::seq::RbTreeMap<K, V> rb;
  lot::util::Xoshiro256 rng(1);
  std::size_t n = 0;
  for (std::int64_t i = 0; i < range / 2; ++i) {
    const K k = rng.next_in(0, range - 1);
    if (avl.insert(k, i)) ++n;
    rb.insert(k, i);
  }
  std::printf("\nrandom fill, n = %zu:\n", n);
  std::printf("  %-10s height %3d   avg probe %7.1f ns\n", "seq-avl",
              avl.height(), avg_probe_cost_ns(avl, range, 200'000));
  const double rb_avg_depth =
      static_cast<double>(rb.total_depth()) / static_cast<double>(rb.size());
  std::printf("  %-10s height %3d   avg probe %7.1f ns   avg depth %.2f\n",
              "seq-rbtree", rb.height(),
              avg_probe_cost_ns(rb, range, 200'000), rb_avg_depth);

  std::printf("\nsingle-threaded throughput (range %lld):\n",
              static_cast<long long>(range));
  std::printf("  %10s  %12s  %12s\n", "update%", "seq-avl", "seq-rbtree");
  for (unsigned upd : {0u, 20u, 50u, 100u}) {
    std::printf("  %9u%%  %9.2f/us  %9.2f/us\n", upd,
                mixed_ops_per_usec<lot::seq::AvlMap<K, V>>(range, upd, iters),
                mixed_ops_per_usec<lot::seq::RbTreeMap<K, V>>(range, upd,
                                                              iters));
  }
  std::printf(
      "\nReading (expected, after Pfaff): comparable overall throughput "
      "with no clear winner; the AVL's\nstricter balance gives slightly "
      "lower heights / shorter search paths, favouring read-heavy mixes.\n");
  return 0;
}
