// Table 2 of the paper: throughput of the *unbalanced* maps under the
// 70C-20I-10R and 100C-0I-0R mixes (the paper notes 50C-25I-25R behaves
// like 70C-20I-10R; pass --all-mixes to run it anyway).
//
// Series:
//   lo-bst                    — our logical-ordering BST (the contribution)
//   lo-bst-logical-removing   — its partially-external variation
//   efrb-external-bst         — Ellen et al. non-blocking external BST
//   howley-jones-internal     — HJ non-blocking internal BST (§7; the
//                               key-copying alternative to logical order)
#include <cstdint>

#include "baselines/efrb/efrb.hpp"
#include "baselines/hj/hj_tree.hpp"
#include "bench/common.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
#include "util/cli.hpp"

using K = std::int64_t;
using V = std::int64_t;

int main(int argc, char** argv) {
  lot::util::Cli cli(argc, argv);
  const auto cfg = lot::bench::TableConfig::from_cli(cli);
  lot::bench::JsonReport report;

  std::vector<lot::workload::Mix> mixes = {lot::workload::Mix::k70C20I10R,
                                           lot::workload::Mix::k100C};
  if (cli.has("all-mixes")) {
    mixes.insert(mixes.begin(), lot::workload::Mix::k50C25I25R);
  }

  for (const auto range : cfg.key_ranges) {
    for (const auto mix : mixes) {
      const auto spec = lot::workload::make_spec(mix, range);
      lot::bench::print_cell_header("Table 2 (unbalanced)", spec);
      std::vector<std::pair<std::string, lot::bench::Series>> series;
      series.emplace_back(
          "lo-bst",
          lot::bench::run_series<lot::lo::BstMap<K, V>>(spec, cfg));
      series.emplace_back(
          "lo-bst-logical-removing",
          lot::bench::run_series<lot::lo::PartialBstMap<K, V>>(spec, cfg));
      series.emplace_back(
          "efrb-external-bst",
          lot::bench::run_series<lot::baselines::EfrbMap<K, V>>(spec, cfg));
      series.emplace_back(
          "howley-jones-internal",
          lot::bench::run_series<lot::baselines::HjTreeMap<K, V>>(spec,
                                                                  cfg));
      lot::bench::print_series_table(cfg.threads, series);
      for (const auto& [name, cells] : series) {
        report.add("table2", spec, cfg, name, cells);
      }
    }
  }
  lot::bench::maybe_write_json(cli, report);
  return 0;
}
