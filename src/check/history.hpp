// Operation-history recording for offline linearizability checking.
//
// The structural validation in lo/validate.hpp only inspects quiescent
// states; it cannot catch an operation that *returned the wrong answer*
// during a race and left the tree intact. This recorder captures what the
// checker in check/linearize.hpp needs: for every completed insert /
// remove / contains, its invocation and response timestamps and result.
//
// Design constraints (the recorder runs inside timed stress loops):
//  * per-thread logs: each worker appends to its own pre-allocated buffer,
//    so recording is lock-free and allocation-free on the hot path;
//  * a single global logical clock (atomic fetch_add) stamps invocations
//    and responses. An atomic RMW sequence is itself linearizable, so the
//    stamp order is consistent with real time: if operation A responded
//    before operation B was invoked, then A.response < B.invoke. That is
//    exactly the real-time precedence relation linearizability preserves;
//  * logs are merged and sorted only after the workers have joined.
//
// A full buffer flags overflow instead of wrapping: a history with dropped
// events cannot be checked soundly, so the harness asserts !overflowed().
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "sync/cacheline.hpp"

namespace lot::check {

enum class Op : std::uint8_t {
  kInsert = 0,
  kRemove = 1,
  kContains = 2,
  kScan = 3,  // whole-scan observation (SnapshotScan); never in Event logs
};

inline const char* op_name(Op op) {
  switch (op) {
    case Op::kInsert:
      return "insert";
    case Op::kRemove:
      return "remove";
    case Op::kScan:
      return "scan";
    default:
      return "contains";
  }
}

template <typename K>
struct Event {
  std::uint64_t invoke = 0;    // logical clock at invocation
  std::uint64_t response = 0;  // logical clock at response; > invoke
  K key{};
  Op op = Op::kContains;
  bool result = false;
  std::uint16_t thread = 0;
};

/// One whole-scan observation: every key of [lo, hi) the scan reported,
/// ascending. Unlike record_scan's per-key decomposition (each verdict
/// justified independently somewhere in the window), the entire vector
/// must be explainable by the map's state at a SINGLE point within
/// [invoke, response] — the atomicity contract of SnapshotView scans,
/// checked by check::check_snapshot_scans.
template <typename K>
struct SnapshotScan {
  std::uint64_t invoke = 0;
  std::uint64_t response = 0;
  K lo{};
  K hi{};
  std::vector<K> present;  // reported keys, strictly ascending
  std::uint16_t thread = 0;
};

template <typename K>
class HistoryRecorder {
 public:
  /// One writer thread's log. Owner-thread access only while recording.
  struct alignas(sync::kCacheLineSize) ThreadLog {
    std::vector<Event<K>> events;  // size() < capacity(); never reallocates
    std::vector<K> scan_scratch;   // record_scan's key buffer, reused
    std::vector<SnapshotScan<K>> scans;  // size() < capacity()
    bool overflow = false;

    void push(const Event<K>& e) {
      if (events.size() == events.capacity()) {
        overflow = true;
        return;
      }
      events.push_back(e);
    }
  };

  HistoryRecorder(unsigned threads, std::size_t capacity_per_thread)
      : logs_(threads) {
    for (auto& log : logs_) {
      log.events.reserve(capacity_per_thread);
      log.scans.reserve(capacity_per_thread);
    }
  }

  unsigned threads() const { return static_cast<unsigned>(logs_.size()); }

  /// Draws the next logical timestamp. Called immediately before an
  /// operation starts and immediately after it returns.
  std::uint64_t tick() { return clock_.fetch_add(1, std::memory_order_acq_rel); }

  ThreadLog& log(unsigned tid) { return logs_[tid]; }

  /// Runs `op_fn` (a zero-argument callable returning bool) as thread
  /// `tid`'s next operation and records it. Returns the operation's result
  /// so call sites can keep their own bookkeeping.
  template <typename F>
  bool record(unsigned tid, Op op, const K& key, F&& op_fn) {
    const std::uint64_t t0 = tick();
    const bool result = op_fn();
    const std::uint64_t t1 = tick();
    logs_[tid].push(Event<K>{t0, t1, key, op, result,
                             static_cast<std::uint16_t>(tid)});
    return result;
  }

  /// Runs a range scan as thread `tid`'s next operation and records its
  /// observations. `scan_fn(lo, hi, sink)` must perform the scan, calling
  /// sink(key, value) for every reported key in ascending order.
  ///
  /// Soundness of the decomposition (integral K only — it enumerates the
  /// range): a weakly-consistent scan over [lo, hi) is not atomic over the
  /// range, so it cannot be checked as one event. But the ordered
  /// implementations justify each per-key verdict at the instant the walk
  /// passes that key's position (DESIGN.md §11): every reported key was
  /// present at some point within the scan's [t0, t1] window, and every
  /// in-range key not reported was absent at some point within it. Those
  /// are exactly the semantics of a contains invoked somewhere inside
  /// [t0, t1] — so the scan decomposes into one kContains observation per
  /// key of the range (true for reported keys, false for the rest), all
  /// sharing the scan's window, and the per-key linearization search
  /// places each independently. No cross-key atomicity is asserted, which
  /// matches the guarantee the scans document. A scan that reports a key
  /// that was never in the map, misses a key that was present throughout,
  /// or resurrects a removed key still renders the history
  /// non-linearizable.
  template <typename ScanFn>
  void record_scan(unsigned tid, const K& lo, const K& hi,
                   ScanFn&& scan_fn) {
    static_assert(std::is_integral_v<K>,
                  "scan decomposition enumerates every key in [lo, hi)");
    auto& log = logs_[tid];
    auto& seen = log.scan_scratch;
    seen.clear();
    const std::uint64_t t0 = tick();
    scan_fn(lo, hi,
            [&seen](const K& k, const auto&) { seen.push_back(k); });
    const std::uint64_t t1 = tick();
    // The scans report strictly increasing keys; the sweep below only
    // assumes sortedness (and skips stray duplicates defensively).
    std::size_t idx = 0;
    for (K k = lo; k < hi; ++k) {
      while (idx < seen.size() && seen[idx] < k) ++idx;
      const bool present = idx < seen.size() && seen[idx] == k;
      log.push(Event<K>{t0, t1, k, Op::kContains, present,
                        static_cast<std::uint16_t>(tid)});
    }
  }

  /// Runs a *snapshot* scan as thread `tid`'s next operation and records
  /// it as one whole-scan observation (see SnapshotScan). `scan_fn(lo,
  /// hi, sink)` must take the snapshot AND scan it, calling sink(key,
  /// value) ascending — the window then covers the cut adoption, so a
  /// single feasible point always exists if the view is honest. Unlike
  /// record(), the observation vector allocates; snapshot scans
  /// materialize their cut anyway, so the recording cost disappears into
  /// the operation's own.
  template <typename ScanFn>
  void record_snapshot_scan(unsigned tid, const K& lo, const K& hi,
                            ScanFn&& scan_fn) {
    auto& log = logs_[tid];
    SnapshotScan<K> scan;
    scan.lo = lo;
    scan.hi = hi;
    scan.thread = static_cast<std::uint16_t>(tid);
    scan.invoke = tick();
    scan_fn(lo, hi,
            [&scan](const K& k, const auto&) { scan.present.push_back(k); });
    scan.response = tick();
    if (log.scans.size() == log.scans.capacity()) {
      log.overflow = true;
      return;
    }
    log.scans.push_back(std::move(scan));
  }

  bool overflowed() const {
    for (const auto& log : logs_) {
      if (log.overflow) return true;
    }
    return false;
  }

  std::size_t total_events() const {
    std::size_t n = 0;
    for (const auto& log : logs_) n += log.events.size();
    return n;
  }

  /// Merges all thread logs into one history sorted by invocation stamp.
  /// Call only after every recording thread has joined.
  std::vector<Event<K>> merged() const {
    std::vector<Event<K>> all;
    all.reserve(total_events());
    for (const auto& log : logs_) {
      all.insert(all.end(), log.events.begin(), log.events.end());
    }
    std::sort(all.begin(), all.end(),
              [](const Event<K>& a, const Event<K>& b) {
                return a.invoke < b.invoke;
              });
    return all;
  }

  /// All recorded snapshot scans, sorted by invocation stamp. Call only
  /// after every recording thread has joined.
  std::vector<SnapshotScan<K>> merged_scans() const {
    std::vector<SnapshotScan<K>> all;
    for (const auto& log : logs_) {
      all.insert(all.end(), log.scans.begin(), log.scans.end());
    }
    std::sort(all.begin(), all.end(),
              [](const SnapshotScan<K>& a, const SnapshotScan<K>& b) {
                return a.invoke < b.invoke;
              });
    return all;
  }

 private:
  std::atomic<std::uint64_t> clock_{1};
  std::vector<ThreadLog> logs_;
};

}  // namespace lot::check
