// Offline linearizability checker for set histories (insert / remove /
// contains) recorded by check/history.hpp.
//
// Soundness rests on two standard reductions:
//
//  1. Per-key composition. Every set operation touches exactly one key and
//     keys do not interact, so the set is a product object of independent
//     per-key membership registers. By the locality theorem (Herlihy &
//     Wing), a history is linearizable iff each per-key projection is.
//
//  2. Interval blocks. Within one key, sort events by invocation stamp and
//     cut the history wherever every earlier operation has responded
//     before the next one is invoked (running max of response stamps).
//     Operations in different blocks are totally real-time ordered, so a
//     linearization is a concatenation of per-block linearizations, and
//     only the membership state (one bit per key) crosses a cut. Blocks
//     of size one — the entire history, for keys never touched by two
//     overlapping operations — are simulated directly; sorting dominates
//     and disjoint-key histories check in O(n log n).
//
// Only blocks with genuine overlap need a search. There we run the
// Wing–Gong–Lowe procedure: depth-first over partial linearizations,
// where an event may be appended next iff no un-linearized event responded
// before it was invoked, memoising visited (linearized-set, state)
// configurations. The per-key state is a single bit, so the search is fast
// on the histories real runs produce; a configuration budget turns a
// pathological blow-up into an explicit kAborted verdict rather than a
// silent hang.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/history.hpp"

namespace lot::check {

enum class Verdict {
  kLinearizable,
  kNonLinearizable,
  kAborted,  // configuration budget exhausted before a verdict
};

struct CheckStats {
  std::size_t events = 0;
  std::size_t keys = 0;
  std::size_t sequential_events = 0;  // settled by direct simulation
  std::size_t overlap_blocks = 0;     // blocks that needed the WGL search
  std::size_t max_block = 0;          // largest overlapping block
  std::size_t configs_explored = 0;   // WGL configurations expanded
};

template <typename K>
struct CheckResult {
  Verdict verdict = Verdict::kLinearizable;
  K key{};                  // offending key when not linearizable
  std::string reason;
  std::vector<Event<K>> witness;  // the block that admits no linearization
  CheckStats stats;

  bool ok() const { return verdict == Verdict::kLinearizable; }
};

namespace detail_check {

template <typename K>
std::string key_to_string(const K& k) {
  if constexpr (requires(std::ostringstream& os, const K& key) { os << key; }) {
    std::ostringstream os;
    os << k;
    return os.str();
  } else {
    return "<key>";
  }
}

template <typename K>
std::string event_to_string(const Event<K>& e) {
  std::ostringstream os;
  os << "[" << e.invoke << "," << e.response << ") t" << e.thread << " "
     << op_name(e.op) << "(" << key_to_string(e.key) << ") = "
     << (e.result ? "true" : "false");
  return os.str();
}

/// Set semantics of one operation on one key's membership bit. Returns
/// false if the recorded result is impossible from `state`; otherwise
/// updates `state` to the post-state.
inline bool apply_op(Op op, bool result, bool& state) {
  switch (op) {
    case Op::kInsert:
      if (result == state) return false;  // true iff key was absent
      state = true;
      return true;
    case Op::kRemove:
      if (result != state) return false;  // true iff key was present
      state = false;
      return true;
    default:  // contains: pure observation
      return result == state;
  }
}

/// Feasible membership states, as a 2-bit set: bit 0 = "absent possible",
/// bit 1 = "present possible".
using StateSet = unsigned;
inline constexpr StateSet state_bit(bool present) { return present ? 2u : 1u; }

struct ConfigHash {
  std::size_t operator()(const std::vector<std::uint64_t>& v) const {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the words
    for (std::uint64_t w : v) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Wing–Gong search over one overlapping block, from entry state `init`.
/// Returns the set of membership states reachable by complete
/// linearizations (empty = block not linearizable from `init`).
/// `configs` accumulates explored configurations against `budget`.
template <typename K>
StateSet wgl_block(const std::vector<const Event<K>*>& block, bool init,
                   std::size_t& configs, std::size_t budget, bool& aborted) {
  const std::size_t n = block.size();
  const std::size_t words = (n + 63) / 64 + 1;  // +1: state bit lives in [0]

  // A configuration is (linearized subset, membership state), packed into
  // one word vector: word 0 holds the state bit, the rest the subset.
  std::vector<std::vector<std::uint64_t>> stack;
  std::unordered_set<std::vector<std::uint64_t>, ConfigHash> visited;

  std::vector<std::uint64_t> start(words, 0);
  start[0] = init ? 1 : 0;
  visited.insert(start);
  stack.push_back(std::move(start));

  std::vector<std::size_t> candidates;
  StateSet finals = 0;
  while (!stack.empty()) {
    if (++configs > budget) {
      aborted = true;
      return finals;
    }
    const std::vector<std::uint64_t> cfg = std::move(stack.back());
    stack.pop_back();
    const bool state = (cfg[0] & 1) != 0;

    // Frontier: first un-linearized event (events are invoke-sorted).
    std::size_t frontier = n;
    for (std::size_t w = 1; w < words; ++w) {
      if (cfg[w] != ~0ULL) {
        const std::size_t bit =
            static_cast<std::size_t>(__builtin_ctzll(~cfg[w]));
        frontier = (w - 1) * 64 + bit;
        break;
      }
    }
    if (frontier >= n) {
      finals |= state_bit(state);
      if (finals == 3u) return finals;  // both states reachable; done
      continue;
    }

    // Candidates: un-linearized events invoked before every un-linearized
    // response. Scanning in invoke order, once an event's invoke passes
    // the running response minimum nothing further qualifies or can lower
    // the minimum (response > invoke), so the scan stops at the overlap
    // window's edge instead of the end of the block.
    candidates.clear();
    std::uint64_t min_resp = ~0ULL;
    for (std::size_t i = frontier; i < n; ++i) {
      if ((cfg[1 + i / 64] >> (i % 64)) & 1) continue;
      if (block[i]->invoke >= min_resp) break;
      candidates.push_back(i);
      if (block[i]->response < min_resp) min_resp = block[i]->response;
    }
    for (std::size_t i : candidates) {
      if (block[i]->invoke >= min_resp) continue;  // filtered by final min
      bool next_state = state;
      if (!apply_op(block[i]->op, block[i]->result, next_state)) continue;
      std::vector<std::uint64_t> succ = cfg;
      succ[1 + i / 64] |= 1ULL << (i % 64);
      succ[0] = next_state ? 1 : 0;
      if (visited.insert(succ).second) stack.push_back(std::move(succ));
    }
  }
  return finals;
}

}  // namespace detail_check

/// Renders a history (or a violation witness) for the history.txt artifact.
template <typename K>
std::string format_history(const std::vector<Event<K>>& events) {
  std::string out;
  for (const auto& e : events) {
    out += detail_check::event_to_string(e);
    out += '\n';
  }
  return out;
}

/// Checks a complete set history for linearizability. `events` need not be
/// sorted. `initially_present` lists the keys in the set before the first
/// event (e.g. an unrecorded prefill); all other keys start absent.
/// `config_budget` bounds the WGL search (kAborted when exceeded).
template <typename K>
CheckResult<K> check_set_history(std::vector<Event<K>> events,
                                 std::vector<K> initially_present = {},
                                 std::size_t config_budget = 50'000'000) {
  CheckResult<K> res;
  res.stats.events = events.size();
  std::sort(events.begin(), events.end(),
            [](const Event<K>& a, const Event<K>& b) {
              return a.invoke < b.invoke;
            });
  std::sort(initially_present.begin(), initially_present.end());

  // Per-key projections, preserving invocation order within each key.
  std::map<K, std::vector<const Event<K>*>> per_key;
  for (const auto& e : events) per_key[e.key].push_back(&e);
  res.stats.keys = per_key.size();

  for (auto& [key, evs] : per_key) {
    using detail_check::StateSet;
    using detail_check::state_bit;
    const bool init = std::binary_search(initially_present.begin(),
                                         initially_present.end(), key);
    StateSet states = state_bit(init);

    std::size_t i = 0;
    while (i < evs.size()) {
      // Grow the block while intervals chain-overlap.
      std::uint64_t max_resp = evs[i]->response;
      std::size_t j = i + 1;
      while (j < evs.size() && evs[j]->invoke < max_resp) {
        if (evs[j]->response > max_resp) max_resp = evs[j]->response;
        ++j;
      }

      StateSet next = 0;
      if (j - i == 1) {  // totally ordered w.r.t. everything else: simulate
        ++res.stats.sequential_events;
        for (bool s : {false, true}) {
          if ((states & state_bit(s)) == 0) continue;
          bool out_state = s;
          if (detail_check::apply_op(evs[i]->op, evs[i]->result, out_state)) {
            next |= state_bit(out_state);
          }
        }
      } else {
        ++res.stats.overlap_blocks;
        if (j - i > res.stats.max_block) res.stats.max_block = j - i;
        std::vector<const Event<K>*> block(evs.begin() + i, evs.begin() + j);
        bool aborted = false;
        for (bool s : {false, true}) {
          if ((states & state_bit(s)) == 0) continue;
          next |= detail_check::wgl_block<K>(block, s,
                                             res.stats.configs_explored,
                                             config_budget, aborted);
        }
        if (aborted) {
          res.verdict = Verdict::kAborted;
          res.key = key;
          res.reason = "WGL search budget exhausted on key " +
                       detail_check::key_to_string(key) + " (block of " +
                       std::to_string(j - i) + " overlapping operations)";
          return res;
        }
      }

      if (next == 0) {
        res.verdict = Verdict::kNonLinearizable;
        res.key = key;
        std::ostringstream os;
        os << "no linearization for key " << detail_check::key_to_string(key)
           << ": block of " << (j - i) << " operation(s) starting at stamp "
           << evs[i]->invoke << " admits no order from entry state"
           << ((states & 2u) ? " {present}" : "")
           << ((states & 1u) ? " {absent}" : "");
        res.reason = os.str();
        for (std::size_t b = i; b < j; ++b) res.witness.push_back(*evs[b]);
        return res;
      }
      states = next;
      i = j;
    }
  }
  return res;
}

}  // namespace lot::check
