// Offline linearizability checker for set histories (insert / remove /
// contains) recorded by check/history.hpp.
//
// Soundness rests on two standard reductions:
//
//  1. Per-key composition. Every set operation touches exactly one key and
//     keys do not interact, so the set is a product object of independent
//     per-key membership registers. By the locality theorem (Herlihy &
//     Wing), a history is linearizable iff each per-key projection is.
//
//  2. Interval blocks. Within one key, sort events by invocation stamp and
//     cut the history wherever every earlier operation has responded
//     before the next one is invoked (running max of response stamps).
//     Operations in different blocks are totally real-time ordered, so a
//     linearization is a concatenation of per-block linearizations, and
//     only the membership state (one bit per key) crosses a cut. Blocks
//     of size one — the entire history, for keys never touched by two
//     overlapping operations — are simulated directly; sorting dominates
//     and disjoint-key histories check in O(n log n).
//
// Only blocks with genuine overlap need a search. There we run the
// Wing–Gong–Lowe procedure: depth-first over partial linearizations,
// where an event may be appended next iff no un-linearized event responded
// before it was invoked, memoising visited (linearized-set, state)
// configurations. The per-key state is a single bit, so the search is fast
// on the histories real runs produce; a configuration budget turns a
// pathological blow-up into an explicit kAborted verdict rather than a
// silent hang.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "check/history.hpp"

namespace lot::check {

enum class Verdict {
  kLinearizable,
  kNonLinearizable,
  kAborted,  // configuration budget exhausted before a verdict
};

struct CheckStats {
  std::size_t events = 0;
  std::size_t keys = 0;
  std::size_t sequential_events = 0;  // settled by direct simulation
  std::size_t overlap_blocks = 0;     // blocks that needed the WGL search
  std::size_t max_block = 0;          // largest overlapping block
  std::size_t configs_explored = 0;   // WGL configurations expanded
  std::size_t scans = 0;              // whole-scan observations checked
};

template <typename K>
struct CheckResult {
  Verdict verdict = Verdict::kLinearizable;
  K key{};                  // offending key when not linearizable
  std::string reason;
  std::vector<Event<K>> witness;  // the block that admits no linearization
  CheckStats stats;

  bool ok() const { return verdict == Verdict::kLinearizable; }
};

namespace detail_check {

template <typename K>
std::string key_to_string(const K& k) {
  if constexpr (requires(std::ostringstream& os, const K& key) { os << key; }) {
    std::ostringstream os;
    os << k;
    return os.str();
  } else {
    return "<key>";
  }
}

template <typename K>
std::string event_to_string(const Event<K>& e) {
  std::ostringstream os;
  os << "[" << e.invoke << "," << e.response << ") t" << e.thread << " "
     << op_name(e.op) << "(" << key_to_string(e.key) << ") = "
     << (e.result ? "true" : "false");
  return os.str();
}

/// Set semantics of one operation on one key's membership bit. Returns
/// false if the recorded result is impossible from `state`; otherwise
/// updates `state` to the post-state.
inline bool apply_op(Op op, bool result, bool& state) {
  switch (op) {
    case Op::kInsert:
      if (result == state) return false;  // true iff key was absent
      state = true;
      return true;
    case Op::kRemove:
      if (result != state) return false;  // true iff key was present
      state = false;
      return true;
    default:  // contains: pure observation
      return result == state;
  }
}

/// Feasible membership states, as a 2-bit set: bit 0 = "absent possible",
/// bit 1 = "present possible".
using StateSet = unsigned;
inline constexpr StateSet state_bit(bool present) { return present ? 2u : 1u; }

struct ConfigHash {
  std::size_t operator()(const std::vector<std::uint64_t>& v) const {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a over the words
    for (std::uint64_t w : v) {
      h ^= w;
      h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Wing–Gong search over one overlapping block, from entry state `init`.
/// Returns the set of membership states reachable by complete
/// linearizations (empty = block not linearizable from `init`).
/// `configs` accumulates explored configurations against `budget`.
template <typename K>
StateSet wgl_block(const std::vector<const Event<K>*>& block, bool init,
                   std::size_t& configs, std::size_t budget, bool& aborted) {
  const std::size_t n = block.size();
  const std::size_t words = (n + 63) / 64 + 1;  // +1: state bit lives in [0]

  // A configuration is (linearized subset, membership state), packed into
  // one word vector: word 0 holds the state bit, the rest the subset.
  std::vector<std::vector<std::uint64_t>> stack;
  std::unordered_set<std::vector<std::uint64_t>, ConfigHash> visited;

  std::vector<std::uint64_t> start(words, 0);
  start[0] = init ? 1 : 0;
  visited.insert(start);
  stack.push_back(std::move(start));

  std::vector<std::size_t> candidates;
  StateSet finals = 0;
  while (!stack.empty()) {
    if (++configs > budget) {
      aborted = true;
      return finals;
    }
    const std::vector<std::uint64_t> cfg = std::move(stack.back());
    stack.pop_back();
    const bool state = (cfg[0] & 1) != 0;

    // Frontier: first un-linearized event (events are invoke-sorted).
    std::size_t frontier = n;
    for (std::size_t w = 1; w < words; ++w) {
      if (cfg[w] != ~0ULL) {
        const std::size_t bit =
            static_cast<std::size_t>(__builtin_ctzll(~cfg[w]));
        frontier = (w - 1) * 64 + bit;
        break;
      }
    }
    if (frontier >= n) {
      finals |= state_bit(state);
      if (finals == 3u) return finals;  // both states reachable; done
      continue;
    }

    // Candidates: un-linearized events invoked before every un-linearized
    // response. Scanning in invoke order, once an event's invoke passes
    // the running response minimum nothing further qualifies or can lower
    // the minimum (response > invoke), so the scan stops at the overlap
    // window's edge instead of the end of the block.
    candidates.clear();
    std::uint64_t min_resp = ~0ULL;
    for (std::size_t i = frontier; i < n; ++i) {
      if ((cfg[1 + i / 64] >> (i % 64)) & 1) continue;
      if (block[i]->invoke >= min_resp) break;
      candidates.push_back(i);
      if (block[i]->response < min_resp) min_resp = block[i]->response;
    }
    for (std::size_t i : candidates) {
      if (block[i]->invoke >= min_resp) continue;  // filtered by final min
      bool next_state = state;
      if (!apply_op(block[i]->op, block[i]->result, next_state)) continue;
      std::vector<std::uint64_t> succ = cfg;
      succ[1 + i / 64] |= 1ULL << (i % 64);
      succ[0] = next_state ? 1 : 0;
      if (visited.insert(succ).second) stack.push_back(std::move(succ));
    }
  }
  return finals;
}

/// One segment of a key's state timeline: from stamp `from` (inclusive)
/// until the next segment starts, the membership bit can be any state in
/// `states`. Built by state_timeline below.
struct StateSegment {
  std::uint64_t from;
  StateSet states;
};

/// Certain-state timeline of one key from its *successful* write events
/// (invoke-sorted). Between write blocks the state is pinned by the block
/// outcomes; inside a block (a write's [invoke, response] window, chained
/// over overlaps) the linearization point is unresolved, so both states
/// are feasible. Overlapping blocks settle to the WGL-reachable end-state
/// set — sound: a state is excluded only when no linearization reaches
/// it. Returns false if the writes themselves admit no linearization
/// (the set checker reports that case with a proper witness).
template <typename K>
bool state_timeline(const std::vector<const Event<K>*>& writes, bool init,
                    std::vector<StateSegment>& out, std::size_t& configs,
                    std::size_t budget, bool& aborted) {
  out.clear();
  StateSet states = state_bit(init);
  out.push_back(StateSegment{0, states});
  std::size_t i = 0;
  while (i < writes.size()) {
    std::uint64_t max_resp = writes[i]->response;
    std::size_t j = i + 1;
    while (j < writes.size() && writes[j]->invoke < max_resp) {
      if (writes[j]->response > max_resp) max_resp = writes[j]->response;
      ++j;
    }
    StateSet next = 0;
    if (j - i == 1) {
      for (bool s : {false, true}) {
        if ((states & state_bit(s)) == 0) continue;
        bool out_state = s;
        if (apply_op(writes[i]->op, writes[i]->result, out_state)) {
          next |= state_bit(out_state);
        }
      }
    } else {
      std::vector<const Event<K>*> block(writes.begin() + i,
                                         writes.begin() + j);
      for (bool s : {false, true}) {
        if ((states & state_bit(s)) == 0) continue;
        next |= wgl_block<K>(block, s, configs, budget, aborted);
      }
      if (aborted) return false;
    }
    if (next == 0) return false;
    out.push_back(StateSegment{writes[i]->invoke, 3u});
    out.push_back(StateSegment{max_resp + 1, next});
    states = next;
    i = j;
  }
  return true;
}

/// Intersects the sorted disjoint interval set `acc` (closed intervals)
/// with the stamps in [t0, t1] where `timeline` allows state `want`.
/// Keys never written keep their single initial segment; the loop then
/// yields the whole window or nothing.
inline void intersect_feasible(
    std::vector<std::pair<std::uint64_t, std::uint64_t>>& acc,
    const std::vector<StateSegment>& timeline, bool want, std::uint64_t t0,
    std::uint64_t t1) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> allowed;
  for (std::size_t s = 0; s < timeline.size(); ++s) {
    if ((timeline[s].states & state_bit(want)) == 0) continue;
    const std::uint64_t from = std::max(timeline[s].from, t0);
    const std::uint64_t to =
        s + 1 < timeline.size()
            ? std::min(timeline[s + 1].from - 1, t1)
            : t1;
    if (from > to) continue;
    if (!allowed.empty() && allowed.back().second + 1 >= from) {
      allowed.back().second = std::max(allowed.back().second, to);
    } else {
      allowed.emplace_back(from, to);
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> next;
  std::size_t a = 0, b = 0;
  while (a < acc.size() && b < allowed.size()) {
    const std::uint64_t from = std::max(acc[a].first, allowed[b].first);
    const std::uint64_t to = std::min(acc[a].second, allowed[b].second);
    if (from <= to) next.emplace_back(from, to);
    if (acc[a].second < allowed[b].second) {
      ++a;
    } else {
      ++b;
    }
  }
  acc = std::move(next);
}

}  // namespace detail_check

/// Renders a history (or a violation witness) for the history.txt artifact.
template <typename K>
std::string format_history(const std::vector<Event<K>>& events) {
  std::string out;
  for (const auto& e : events) {
    out += detail_check::event_to_string(e);
    out += '\n';
  }
  return out;
}

/// Checks a complete set history for linearizability. `events` need not be
/// sorted. `initially_present` lists the keys in the set before the first
/// event (e.g. an unrecorded prefill); all other keys start absent.
/// `config_budget` bounds the WGL search (kAborted when exceeded).
template <typename K>
CheckResult<K> check_set_history(std::vector<Event<K>> events,
                                 std::vector<K> initially_present = {},
                                 std::size_t config_budget = 50'000'000) {
  CheckResult<K> res;
  res.stats.events = events.size();
  std::sort(events.begin(), events.end(),
            [](const Event<K>& a, const Event<K>& b) {
              return a.invoke < b.invoke;
            });
  std::sort(initially_present.begin(), initially_present.end());

  // Per-key projections, preserving invocation order within each key.
  std::map<K, std::vector<const Event<K>*>> per_key;
  for (const auto& e : events) per_key[e.key].push_back(&e);
  res.stats.keys = per_key.size();

  for (auto& [key, evs] : per_key) {
    using detail_check::StateSet;
    using detail_check::state_bit;
    const bool init = std::binary_search(initially_present.begin(),
                                         initially_present.end(), key);
    StateSet states = state_bit(init);

    std::size_t i = 0;
    while (i < evs.size()) {
      // Grow the block while intervals chain-overlap.
      std::uint64_t max_resp = evs[i]->response;
      std::size_t j = i + 1;
      while (j < evs.size() && evs[j]->invoke < max_resp) {
        if (evs[j]->response > max_resp) max_resp = evs[j]->response;
        ++j;
      }

      StateSet next = 0;
      if (j - i == 1) {  // totally ordered w.r.t. everything else: simulate
        ++res.stats.sequential_events;
        for (bool s : {false, true}) {
          if ((states & state_bit(s)) == 0) continue;
          bool out_state = s;
          if (detail_check::apply_op(evs[i]->op, evs[i]->result, out_state)) {
            next |= state_bit(out_state);
          }
        }
      } else {
        ++res.stats.overlap_blocks;
        if (j - i > res.stats.max_block) res.stats.max_block = j - i;
        std::vector<const Event<K>*> block(evs.begin() + i, evs.begin() + j);
        bool aborted = false;
        for (bool s : {false, true}) {
          if ((states & state_bit(s)) == 0) continue;
          next |= detail_check::wgl_block<K>(block, s,
                                             res.stats.configs_explored,
                                             config_budget, aborted);
        }
        if (aborted) {
          res.verdict = Verdict::kAborted;
          res.key = key;
          res.reason = "WGL search budget exhausted on key " +
                       detail_check::key_to_string(key) + " (block of " +
                       std::to_string(j - i) + " overlapping operations)";
          return res;
        }
      }

      if (next == 0) {
        res.verdict = Verdict::kNonLinearizable;
        res.key = key;
        std::ostringstream os;
        os << "no linearization for key " << detail_check::key_to_string(key)
           << ": block of " << (j - i) << " operation(s) starting at stamp "
           << evs[i]->invoke << " admits no order from entry state"
           << ((states & 2u) ? " {present}" : "")
           << ((states & 1u) ? " {absent}" : "");
        res.reason = os.str();
        for (std::size_t b = i; b < j; ++b) res.witness.push_back(*evs[b]);
        return res;
      }
      states = next;
      i = j;
    }
  }
  return res;
}

/// Checks whole-scan atomicity: every snapshot scan's complete
/// observation vector must be explainable by the map's state at a SINGLE
/// stamp within the scan's [invoke, response] window — the SnapshotView
/// contract, strictly stronger than the per-key decomposition
/// record_scan feeds into check_set_history.
///
/// Method: each key's membership over time is pinned down from the
/// *successful* writes in `events` (detail_check::state_timeline): known
/// exactly between write windows, unresolved (either state) inside them.
/// A scan observation of key k narrows the scan's feasible-point set to
/// the stamps where k's state can match what the scan reported; the
/// verdict intersects those sets over every key of [lo, hi). An empty
/// intersection is a torn scan: each per-key verdict may be individually
/// justifiable somewhere in the window, but no single instant explains
/// them all, so no linearization of the history contains this scan.
/// Sound by construction — a stamp is excluded only when some key's
/// reported state is impossible there under every linearization of the
/// writes — so a kNonLinearizable verdict is a real violation, never a
/// false alarm. `events` need not be sorted; contains events and failed
/// writes are ignored (they never move state).
template <typename K>
CheckResult<K> check_snapshot_scans(
    const std::vector<Event<K>>& events,
    const std::vector<SnapshotScan<K>>& scans,
    std::vector<K> initially_present = {},
    std::size_t config_budget = 50'000'000) {
  static_assert(std::is_integral_v<K>,
                "scan feasibility enumerates every key in [lo, hi)");
  CheckResult<K> res;
  res.stats.events = events.size();
  res.stats.scans = scans.size();
  std::sort(initially_present.begin(), initially_present.end());

  // Per-key successful-write projections, invoke-sorted.
  std::map<K, std::vector<const Event<K>*>> writes;
  for (const auto& e : events) {
    if (e.op == Op::kContains || !e.result) continue;
    writes[e.key].push_back(&e);
  }
  for (auto& [key, evs] : writes) {
    std::sort(evs.begin(), evs.end(),
              [](const Event<K>* a, const Event<K>* b) {
                return a->invoke < b->invoke;
              });
  }
  res.stats.keys = writes.size();

  // Timelines are built lazily and cached: scans usually revisit keys.
  std::map<K, std::vector<detail_check::StateSegment>> timelines;
  const std::vector<const Event<K>*> no_writes;

  for (const auto& scan : scans) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> feasible{
        {scan.invoke, scan.response}};
    for (K k = scan.lo; k < scan.hi; ++k) {
      auto cached = timelines.find(k);
      if (cached == timelines.end()) {
        const auto w = writes.find(k);
        const bool init = std::binary_search(initially_present.begin(),
                                             initially_present.end(), k);
        bool aborted = false;
        std::vector<detail_check::StateSegment> tl;
        if (!detail_check::state_timeline<K>(
                w != writes.end() ? w->second : no_writes, init, tl,
                res.stats.configs_explored, config_budget, aborted)) {
          res.key = k;
          if (aborted) {
            res.verdict = Verdict::kAborted;
            res.reason = "timeline search budget exhausted on key " +
                         detail_check::key_to_string(k);
          } else {
            res.verdict = Verdict::kNonLinearizable;
            res.reason = "write history for key " +
                         detail_check::key_to_string(k) +
                         " admits no linearization (run check_set_history "
                         "for the witness)";
          }
          return res;
        }
        cached = timelines.emplace(k, std::move(tl)).first;
      }
      const bool want = std::binary_search(scan.present.begin(),
                                           scan.present.end(), k);
      detail_check::intersect_feasible(feasible, cached->second, want,
                                       scan.invoke, scan.response);
      if (feasible.empty()) {
        res.verdict = Verdict::kNonLinearizable;
        res.key = k;
        std::ostringstream os;
        os << "torn snapshot scan: t" << scan.thread << " scan(["
           << detail_check::key_to_string(scan.lo) << ","
           << detail_check::key_to_string(scan.hi) << ")) over stamps ["
           << scan.invoke << "," << scan.response << "] reported "
           << scan.present.size() << " key(s), but no single stamp in the "
           << "window explains the whole vector; first infeasible key "
           << detail_check::key_to_string(k) << " (reported "
           << (want ? "present" : "absent") << ")";
        res.reason = os.str();
        if (const auto w = writes.find(k); w != writes.end()) {
          for (const Event<K>* e : w->second) res.witness.push_back(*e);
        }
        return res;
      }
    }
  }
  return res;
}

}  // namespace lot::check
