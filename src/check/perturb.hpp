// Named schedule-perturbation points inside the logical-ordering trees.
//
// The algorithm's hardest races live in a handful of windows: the gap
// between linking a node into the ordering layout and into the physical
// tree, the gap between marking a node and unlinking it, the instants a
// relocated successor or a rotating subtree is mid-flight. On the test
// machines (often a single core) those windows are a few instructions wide
// and almost never observed. The stress harness compiles the trees with
// LOT_SCHEDULE_PERTURB, which turns each named point into a randomized
// pause (yield / short sleep / bounded spin), widening exactly those
// windows by orders of magnitude.
//
// Without LOT_SCHEDULE_PERTURB every hook is an empty inline function the
// optimizer deletes — the production hot path carries no instrumentation,
// which is why the stress tests are separate build targets rather than a
// runtime switch.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(LOT_SCHEDULE_PERTURB)
#include <atomic>
#include <chrono>
#include <thread>

#include "sync/backoff.hpp"
#endif

namespace lot::check {

enum class PerturbPoint : std::uint8_t {
  kLocateAfterDescent = 0,   // reader finished the descent; ordering walk pending
  kInsertHalfLinked,         // p->succ points at the new node; pred repair pending
  kInsertBeforeTreeLink,     // node in the ordering layout, not yet in the tree
  kEraseAfterMark,           // marked (linearized), ordering unlink pending
  kEraseHalfUnlinked,        // successor's pred rewired; p->succ pending
  kEraseBeforeTreeUnlink,    // off the ordering chain, still in the tree layout
  kRelocateDetached,         // two-child removal: successor absent from the tree
  kRotate,                   // a rotation is about to swing child pointers
  kRangeStep,                // a range scan is mid-walk on the ordering chain
  kWriterCaptured,           // writer captured (pred, succ, version); lock pending
  kCount
};

inline constexpr std::size_t kPerturbPointCount =
    static_cast<std::size_t>(PerturbPoint::kCount);

inline const char* perturb_point_name(PerturbPoint p) {
  switch (p) {
    case PerturbPoint::kLocateAfterDescent: return "locate-after-descent";
    case PerturbPoint::kInsertHalfLinked: return "insert-half-linked";
    case PerturbPoint::kInsertBeforeTreeLink: return "insert-before-tree-link";
    case PerturbPoint::kEraseAfterMark: return "erase-after-mark";
    case PerturbPoint::kEraseHalfUnlinked: return "erase-half-unlinked";
    case PerturbPoint::kEraseBeforeTreeUnlink: return "erase-before-tree-unlink";
    case PerturbPoint::kRelocateDetached: return "relocate-detached";
    case PerturbPoint::kRotate: return "rotate";
    case PerturbPoint::kRangeStep: return "range-step";
    case PerturbPoint::kWriterCaptured: return "writer-captured";
    default: return "?";
  }
}

#if defined(LOT_SCHEDULE_PERTURB)

inline constexpr bool kSchedulePerturb = true;

struct PerturbState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint32_t> fire_permille{20};  // P(pause) per point visit
  std::atomic<std::uint32_t> max_sleep_us{50};
  std::atomic<std::uint64_t> hits[kPerturbPointCount] = {};
  // Mixed into each thread's RNG seed: joined threads' TLS slots are
  // reused, so address-only seeding makes successive short-lived workers
  // replay the same pause schedule (the stale-version control spins up a
  // fresh racing pair per attempt and needs the attempts independent).
  std::atomic<std::uint64_t> seed_mix{0};
};

inline PerturbState& perturb_state() {
  static PerturbState state;
  return state;
}

inline void set_perturbation(std::uint32_t fire_permille,
                             std::uint32_t max_sleep_us) {
  auto& st = perturb_state();
  st.fire_permille.store(fire_permille, std::memory_order_relaxed);
  st.max_sleep_us.store(max_sleep_us, std::memory_order_relaxed);
}

inline void enable_perturbation(bool on) {
  perturb_state().enabled.store(on, std::memory_order_relaxed);
}

inline std::uint64_t perturb_hits(PerturbPoint p) {
  return perturb_state().hits[static_cast<std::size_t>(p)].load(
      std::memory_order_relaxed);
}

inline void reset_perturb_hits() {
  for (auto& h : perturb_state().hits) h.store(0, std::memory_order_relaxed);
}

/// The hook proper. Some call sites hold per-node spin locks; that is
/// deliberate (a preempted lock holder is a schedule real deployments
/// produce) and safe because SpinLock's backoff escalates to yields.
inline void perturb_point(PerturbPoint p) {
  auto& st = perturb_state();
  if (!st.enabled.load(std::memory_order_relaxed)) return;
  // xorshift64*, seeded per thread from its TLS slot address plus a
  // process-wide counter (see PerturbState::seed_mix).
  thread_local std::uint64_t rng =
      (reinterpret_cast<std::uint64_t>(&rng) ^
       st.seed_mix.fetch_add(0x9E3779B97F4A7C15ULL,
                             std::memory_order_relaxed)) |
      1;
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  const std::uint64_t draw = rng * 0x2545F4914F6CDD1DULL;
  if (draw % 1000 >= st.fire_permille.load(std::memory_order_relaxed)) return;
  st.hits[static_cast<std::size_t>(p)].fetch_add(1, std::memory_order_relaxed);
  switch ((draw >> 32) % 3) {
    case 0:
      std::this_thread::yield();
      break;
    case 1: {
      const std::uint32_t cap = st.max_sleep_us.load(std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::microseconds(1 + (draw >> 40) % (cap ? cap : 1)));
      break;
    }
    default:
      for (int spin = 0; spin < 512; ++spin) sync::cpu_relax();
      break;
  }
}

#else  // !LOT_SCHEDULE_PERTURB — every hook compiles away.

inline constexpr bool kSchedulePerturb = false;

inline void set_perturbation(std::uint32_t, std::uint32_t) {}
inline void enable_perturbation(bool) {}
inline std::uint64_t perturb_hits(PerturbPoint) { return 0; }
inline void reset_perturb_hits() {}
inline void perturb_point(PerturbPoint) {}

#endif  // LOT_SCHEDULE_PERTURB

}  // namespace lot::check
