// Chromatic6-style non-blocking external search tree on the LLX/SCX
// substrate — standing in for Brown, Ellen, Ruppert's Chromatic tree
// (PPoPP 2014), the non-blocking balanced competitor of Table 1.
//
// Faithful parts (per Brown et al.'s general technique):
//  * external tree with inf1/inf2 sentinels, exactly as their template;
//  * insert replaces the target leaf with a three-node subtree, delete
//    replaces the parent with a (copied) sibling, both through SCX with
//    V / R sets matching the paper's templates;
//  * helping: any thread that LLXs a node with an in-progress SCX record
//    helps it complete, so all operations are lock-free.
//
// Documented substitution (DESIGN.md §2): the Chromatic tree's weight-
// based violation cleanup (the w1–w7 / rb / push transformation set,
// triggered at six violations) is replaced by height-hint-based relaxed
// rotations executed through the same SCX machinery after each update.
// This preserves the comparison role — a lock-free, relaxed-balanced,
// external tree with copy-on-rebalance — without reproducing the full
// two-dozen-case transformation table.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>

#include "baselines/llxscx/llxscx.hpp"
#include "reclaim/ebr.hpp"

namespace lot::baselines {

template <typename K, typename V, typename Compare = std::less<K>>
class ChromaticMap {
 public:
  using key_type = K;
  using mapped_type = V;

  explicit ChromaticMap(reclaim::EbrDomain& domain =
                            reclaim::EbrDomain::global_domain(),
                        Compare comp = Compare())
      : domain_(&domain), comp_(std::move(comp)) {
    Node* l1 = make_node(K{}, V{}, SentTag::kInf1, true, 1);
    Node* l2 = make_node(K{}, V{}, SentTag::kInf2, true, 1);
    root_ = make_node(K{}, V{}, SentTag::kInf2, false, 2);
    root_->left.store(l1, std::memory_order_relaxed);
    root_->right.store(l2, std::memory_order_relaxed);
  }

  ~ChromaticMap() { destroy(root_); }

  ChromaticMap(const ChromaticMap&) = delete;
  ChromaticMap& operator=(const ChromaticMap&) = delete;

  static std::string_view name() { return "chromatic6-style-llxscx"; }

  bool contains(const K& k) const {
    auto g = domain_->guard();
    const Node* l = find_leaf(k);
    return leaf_matches(l, k);
  }

  std::optional<V> get(const K& k) const {
    auto g = domain_->guard();
    const Node* l = find_leaf(k);
    if (!leaf_matches(l, k)) return std::nullopt;
    return l->value;
  }

  bool insert(const K& k, const V& v) {
    auto g = domain_->guard();
    for (;;) {
      SearchResult sr = search(k);
      if (leaf_matches(sr.l, k)) return false;
      auto rp = llxscx::llx(sr.p, *domain_);
      if (!rp.ok()) continue;
      std::atomic<Node*>* field = nullptr;
      if (rp.left == sr.l) {
        field = &sr.p->left;
      } else if (rp.right == sr.l) {
        field = &sr.p->right;
      } else {
        continue;  // the leaf moved; retry
      }
      Node* new_leaf = make_node(k, v, SentTag::kNone, true, 1);
      const bool new_goes_left = node_less_k(k, sr.l);
      Node* ni = make_node(K{}, V{}, SentTag::kNone, false, 2);
      const Node* bigger = new_goes_left ? sr.l : new_leaf;
      ni->key = bigger->key;
      ni->tag = bigger->tag;
      ni->left.store(new_goes_left ? new_leaf : sr.l,
                     std::memory_order_relaxed);
      ni->right.store(new_goes_left ? sr.l : new_leaf,
                      std::memory_order_relaxed);

      Node* vset[1] = {sr.p};
      Rec* infos[1] = {rp.info};
      if (llxscx::scx<Node>(vset, infos, 1, nullptr, 0, field, sr.l, ni,
                            *domain_)) {
        cleanup(k);
        return true;
      }
      release_node(new_leaf);  // never published
      release_node(ni);
    }
  }

  bool erase(const K& k) {
    auto g = domain_->guard();
    for (;;) {
      SearchResult sr = search(k);
      if (!leaf_matches(sr.l, k)) return false;
      auto rgp = llxscx::llx(sr.gp, *domain_);
      if (!rgp.ok()) continue;
      std::atomic<Node*>* field = nullptr;
      if (rgp.left == sr.p) {
        field = &sr.gp->left;
      } else if (rgp.right == sr.p) {
        field = &sr.gp->right;
      } else {
        continue;
      }
      auto rp = llxscx::llx(sr.p, *domain_);
      if (!rp.ok()) continue;
      Node* sibling = nullptr;
      if (rp.left == sr.l) {
        sibling = rp.right;
      } else if (rp.right == sr.l) {
        sibling = rp.left;
      } else {
        continue;
      }
      auto rs = llxscx::llx(sibling, *domain_);
      if (!rs.ok()) continue;
      // The sibling is copied (it gets a conceptually new position);
      // original p, sibling are finalized, l becomes unreachable.
      Node* s_copy = make_node(sibling->key, sibling->value, sibling->tag,
                               sibling->is_leaf,
                               sibling->height.load(std::memory_order_relaxed));
      s_copy->left.store(rs.left, std::memory_order_relaxed);
      s_copy->right.store(rs.right, std::memory_order_relaxed);

      Node* vset[3] = {sr.gp, sr.p, sibling};
      Rec* infos[3] = {rgp.info, rp.info, rs.info};
      Node* fin[2] = {sr.p, sibling};
      if (llxscx::scx<Node>(vset, infos, 3, fin, 2, field, sr.p, s_copy,
                            *domain_)) {
        retire_node(sr.p);
        retire_node(sibling);
        retire_node(sr.l);
        cleanup(k);
        return true;
      }
      release_node(s_copy);
    }
  }

  std::optional<std::pair<K, V>> min() const {
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_in_order(root_, [&](const Node* leaf) {
      out = std::make_pair(leaf->key, leaf->value);
      return false;  // first real leaf wins
    });
    return out;
  }

  std::optional<std::pair<K, V>> max() const {
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_in_order(root_, [&](const Node* leaf) {
      out = std::make_pair(leaf->key, leaf->value);
      return true;
    });
    return out;
  }

  template <typename F>
  void for_each(F&& fn) const {
    auto g = domain_->guard();
    visit_in_order(root_, [&](const Node* leaf) {
      fn(leaf->key, leaf->value);
      return true;
    });
  }

  /// Ordered scan over [lo, hi) via the in-order leaf walk, stopping once
  /// past hi. The DFS has no key-guided descent, so reaching the range's
  /// start is O(n); weakly consistent like for_each. Fine for differential
  /// tests; use the lo trees or the skiplist when range cost matters.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    auto g = domain_->guard();
    visit_in_order(root_, [&](const Node* leaf) {
      if (comp_(leaf->key, lo)) return true;    // below the range
      if (!comp_(leaf->key, hi)) return false;  // past the range: stop
      fn(leaf->key, leaf->value);
      return true;
    });
  }

  std::optional<std::pair<K, V>> first_in_range(const K& lo,
                                                const K& hi) const {
    if (!comp_(lo, hi)) return std::nullopt;
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_in_order(root_, [&](const Node* leaf) {
      if (comp_(leaf->key, lo)) return true;
      if (comp_(leaf->key, hi)) out = std::make_pair(leaf->key, leaf->value);
      return false;  // first leaf at/above lo settles it either way
    });
    return out;
  }

  std::optional<std::pair<K, V>> last_in_range(const K& lo,
                                               const K& hi) const {
    std::optional<std::pair<K, V>> out;
    range(lo, hi,
          [&out](const K& k, const V& v) { out = std::make_pair(k, v); });
    return out;
  }

  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each([&n](const K&, const V&) { ++n; });
    return n;
  }

  bool empty() const { return size_slow() == 0; }

 private:
  enum class SentTag : std::int8_t { kNone = 0, kInf1 = 1, kInf2 = 2 };

  struct Node;
  using Rec = llxscx::ScxRecord<Node>;

  struct Node {
    K key;
    V value;
    SentTag tag;
    bool is_leaf;
    std::atomic<std::int32_t> height{1};  // relaxed balance hint
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    std::atomic<Rec*> info;
    std::atomic<bool> finalized{false};

    Node(K k, V v, SentTag t, bool leaf, std::int32_t h)
        : key(std::move(k)), value(std::move(v)), tag(t), is_leaf(leaf),
          height(h), info(llxscx::dummy_record<Node>()) {}
  };

  struct SearchResult {
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* l = nullptr;
  };

  Node* make_node(K k, V v, SentTag t, bool leaf, std::int32_t h) {
    return reclaim::make_counted<Node>(std::move(k), std::move(v), t, leaf,
                                       h);
  }

  /// Unpublished node: plain delete (its info is the dummy).
  void release_node(Node* n) { reclaim::delete_counted(n); }

  /// Published node leaving the structure: drop its record reference and
  /// hand it to EBR.
  void retire_node(Node* n) {
    llxscx::dec_ref(n->info.load(std::memory_order_acquire), *domain_);
    domain_->retire(n);
  }

  bool key_less_node(const K& k, const Node* n) const {
    if (n->tag != SentTag::kNone) return true;
    return comp_(k, n->key);
  }
  bool node_less_k(const K& k, const Node* n) const {
    return key_less_node(k, n);
  }
  bool leaf_matches(const Node* l, const K& k) const {
    return l->tag == SentTag::kNone && !comp_(l->key, k) && !comp_(k, l->key);
  }

  SearchResult search(const K& k) const {
    SearchResult sr;
    sr.l = root_;
    while (!sr.l->is_leaf) {
      sr.gp = sr.p;
      sr.p = sr.l;
      sr.l = key_less_node(k, sr.p)
                 ? sr.p->left.load(std::memory_order_acquire)
                 : sr.p->right.load(std::memory_order_acquire);
    }
    return sr;
  }

  const Node* find_leaf(const K& k) const {
    const Node* n = root_;
    while (!n->is_leaf) {
      n = key_less_node(k, n) ? n->left.load(std::memory_order_acquire)
                              : n->right.load(std::memory_order_acquire);
    }
    return n;
  }

  static std::int32_t height_hint(const Node* n) {
    return n == nullptr ? 0 : n->height.load(std::memory_order_relaxed);
  }

  /// Post-update relaxed rebalancing: descend toward k refreshing height
  /// hints; on a (hint-)imbalanced node perform a copy-on-rotate SCX and
  /// restart, a bounded number of times.
  void cleanup(const K& k) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      Node* p = nullptr;
      Node* n = root_;
      bool rotated = false;
      while (!n->is_leaf) {
        Node* l = n->left.load(std::memory_order_acquire);
        Node* r = n->right.load(std::memory_order_acquire);
        if (l == nullptr || r == nullptr) break;  // being rewritten
        const std::int32_t hl = height_hint(l);
        const std::int32_t hr = height_hint(r);
        n->height.store(1 + (hl > hr ? hl : hr), std::memory_order_relaxed);
        const std::int32_t bf = hl - hr;
        if (p != nullptr && (bf >= 2 || bf <= -2)) {
          Node* pivot = bf >= 2 ? l : r;
          if (!pivot->is_leaf && try_rotate(p, n, pivot, bf >= 2)) {
            rotated = true;
          }
          break;  // restart the descent either way
        }
        p = n;
        n = key_less_node(k, n) ? l : r;
      }
      if (!rotated) return;
    }
  }

  /// One rotation as an SCX: V = {p, n, pivot}, R = {n, pivot}; installs
  /// fresh copies n' (moved down) and pivot' (moved up) in their place.
  bool try_rotate(Node* p, Node* n, Node* pivot, bool right_rotation) {
    auto rp = llxscx::llx(p, *domain_);
    if (!rp.ok()) return false;
    std::atomic<Node*>* field = nullptr;
    if (rp.left == n) {
      field = &p->left;
    } else if (rp.right == n) {
      field = &p->right;
    } else {
      return false;
    }
    auto rn = llxscx::llx(n, *domain_);
    if (!rn.ok()) return false;
    Node* c = right_rotation ? rn.left : rn.right;
    if (c != pivot || c == nullptr || c->is_leaf) return false;
    auto rc = llxscx::llx(c, *domain_);
    if (!rc.ok()) return false;

    Node* moved;   // inner subtree that changes sides
    Node* stays;   // n's other subtree
    Node* outer;   // pivot's outer subtree
    if (right_rotation) {
      moved = rc.right;
      stays = rn.right;
      outer = rc.left;
    } else {
      moved = rc.left;
      stays = rn.left;
      outer = rc.right;
    }
    const std::int32_t n_h =
        1 + std::max(height_hint(moved), height_hint(stays));
    Node* n2 = make_node(n->key, n->value, n->tag, false, n_h);
    Node* c2 = make_node(c->key, c->value, c->tag, false,
                         1 + std::max(height_hint(outer), n_h));
    if (right_rotation) {
      n2->left.store(moved, std::memory_order_relaxed);
      n2->right.store(stays, std::memory_order_relaxed);
      c2->left.store(outer, std::memory_order_relaxed);
      c2->right.store(n2, std::memory_order_relaxed);
    } else {
      n2->right.store(moved, std::memory_order_relaxed);
      n2->left.store(stays, std::memory_order_relaxed);
      c2->right.store(outer, std::memory_order_relaxed);
      c2->left.store(n2, std::memory_order_relaxed);
    }

    Node* vset[3] = {p, n, c};
    Rec* infos[3] = {rp.info, rn.info, rc.info};
    Node* fin[2] = {n, c};
    if (llxscx::scx<Node>(vset, infos, 3, fin, 2, field, n, c2, *domain_)) {
      retire_node(n);
      retire_node(c);
      return true;
    }
    release_node(n2);
    release_node(c2);
    return false;
  }

  template <typename F>
  static bool visit_in_order(const Node* n, F&& fn) {
    if (n == nullptr) return true;
    if (n->is_leaf) {
      if (n->tag != SentTag::kNone) return true;
      return fn(n);
    }
    if (!visit_in_order(n->left.load(std::memory_order_acquire), fn)) {
      return false;
    }
    return visit_in_order(n->right.load(std::memory_order_acquire), fn);
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    if (!n->is_leaf) {
      destroy(n->left.load(std::memory_order_relaxed));
      destroy(n->right.load(std::memory_order_relaxed));
    }
    llxscx::dec_ref(n->info.load(std::memory_order_relaxed), *domain_);
    reclaim::delete_counted(n);
  }

  reclaim::EbrDomain* domain_;
  Compare comp_;
  Node* root_;
};

}  // namespace lot::baselines
