// Lock-free skip list (Fraser / Harris lineage — the algorithm behind
// java.util.concurrent.ConcurrentSkipListMap, which the paper benchmarks
// as "Java's Skip List"). Marked next pointers carry the logical-deletion
// bit; find() physically snips marked nodes as it traverses. Memory is
// reclaimed through the shared EBR domain (the marker thread retires the
// node once it has been unlinked from the bottom level).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>

#include "reclaim/ebr.hpp"
#include "util/random.hpp"

namespace lot::baselines {

template <typename K, typename V, typename Compare = std::less<K>>
class SkipListMap {
 public:
  using key_type = K;
  using mapped_type = V;
  static constexpr int kMaxLevel = 20;

  explicit SkipListMap(reclaim::EbrDomain& domain =
                           reclaim::EbrDomain::global_domain(),
                       Compare comp = Compare())
      : domain_(&domain), comp_(std::move(comp)) {
    head_ = reclaim::make_counted<Node>(K{}, V{}, kMaxLevel, Sentinel::kHead);
    tail_ = reclaim::make_counted<Node>(K{}, V{}, kMaxLevel, Sentinel::kTail);
    for (int i = 0; i < kMaxLevel; ++i) {
      head_->next[i].store(pack(tail_, false), std::memory_order_relaxed);
    }
  }

  ~SkipListMap() {
    // Quiescent: the bottom level holds exactly the live nodes plus the
    // sentinels (unlinked nodes were retired to the domain).
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node == tail_
                       ? nullptr
                       : unpack(node->next[0].load(std::memory_order_relaxed));
      reclaim::delete_counted(node);
      node = next;
    }
  }

  SkipListMap(const SkipListMap&) = delete;
  SkipListMap& operator=(const SkipListMap&) = delete;

  static std::string_view name() { return "lf-skiplist"; }

  bool insert(const K& k, const V& v) {
    auto g = domain_->guard();
    const int top = random_level();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    for (;;) {
      if (find(k, preds, succs)) return false;
      Node* nn = reclaim::make_counted<Node>(k, v, top, Sentinel::kNone);
      for (int i = 0; i < top; ++i) {
        nn->next[i].store(pack(succs[i], false), std::memory_order_relaxed);
      }
      std::uintptr_t expected = pack(succs[0], false);
      if (!preds[0]->next[0].compare_exchange_strong(
              expected, pack(nn, false), std::memory_order_acq_rel)) {
        reclaim::delete_counted(nn);  // never published
        continue;
      }
      // Link the upper levels; each level may need fresh preds/succs.
      bool abandoned = false;
      for (int i = 1; i < top && !abandoned; ++i) {
        for (;;) {
          if (nn->marked.load(std::memory_order_acquire)) {
            abandoned = true;  // a concurrent erase claimed the node
            break;
          }
          // Our node's forward pointer must still aim at succs[i].
          std::uintptr_t mine = nn->next[i].load(std::memory_order_acquire);
          if (is_marked(mine)) {
            abandoned = true;
            break;
          }
          if (unpack(mine) != succs[i]) {
            std::uintptr_t desired = pack(succs[i], false);
            if (!nn->next[i].compare_exchange_strong(
                    mine, desired, std::memory_order_acq_rel)) {
              abandoned = true;  // the level got marked under us
              break;
            }
          }
          std::uintptr_t exp = pack(succs[i], false);
          if (preds[i]->next[i].compare_exchange_strong(
                  exp, pack(nn, false), std::memory_order_acq_rel)) {
            break;
          }
          find(k, preds, succs);  // recompute the neighbourhood
          if (succs[0] != nn) {
            abandoned = true;
            break;
          }
        }
      }
      // Reclamation safety: if an erase claimed the node while we were
      // still linking, a level we linked *after* the eraser's cleanup
      // find() would stay reachable forever on a retired node. One more
      // find() here snips every marked level we may have published.
      if (nn->marked.load(std::memory_order_acquire)) {
        find(k, preds, succs);
      }
      return true;
    }
  }

  bool erase(const K& k) {
    auto g = domain_->guard();
    Node* preds[kMaxLevel];
    Node* succs[kMaxLevel];
    if (!find(k, preds, succs)) return false;
    Node* victim = succs[0];
    // Claim the node: only one eraser wins the marked flag.
    bool expected = false;
    if (!victim->marked.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      return false;
    }
    // Mark every level's next pointer, top down.
    for (int i = victim->top_level - 1; i >= 0; --i) {
      std::uintptr_t next = victim->next[i].load(std::memory_order_acquire);
      while (!is_marked(next)) {
        victim->next[i].compare_exchange_weak(next, mark(next),
                                              std::memory_order_acq_rel);
      }
    }
    find(k, preds, succs);  // physically unlink
    domain_->retire(victim);
    return true;
  }

  bool contains(const K& k) const {
    auto g = domain_->guard();
    // Wait-free style traversal: no snipping, just skip marked nodes.
    Node* pred = head_;
    for (int i = kMaxLevel - 1; i >= 0; --i) {
      Node* curr = unpack(pred->next[i].load(std::memory_order_acquire));
      for (;;) {
        std::uintptr_t nxt = curr->next[i].load(std::memory_order_acquire);
        while (is_marked(nxt)) {  // marked: skip over
          curr = unpack(nxt);
          nxt = curr->next[i].load(std::memory_order_acquire);
        }
        if (node_less(curr, k)) {
          pred = curr;
          curr = unpack(nxt);
        } else {
          break;
        }
      }
      if (!node_greater(curr, k)) {
        return !curr->marked.load(std::memory_order_acquire);
      }
    }
    return false;
  }

  std::optional<V> get(const K& k) const {
    auto g = domain_->guard();
    Node* pred = head_;
    Node* curr = nullptr;
    for (int i = kMaxLevel - 1; i >= 0; --i) {
      curr = unpack(pred->next[i].load(std::memory_order_acquire));
      for (;;) {
        std::uintptr_t nxt = curr->next[i].load(std::memory_order_acquire);
        while (is_marked(nxt)) {
          curr = unpack(nxt);
          nxt = curr->next[i].load(std::memory_order_acquire);
        }
        if (node_less(curr, k)) {
          pred = curr;
          curr = unpack(nxt);
        } else {
          break;
        }
      }
      if (!node_greater(curr, k) &&
          !curr->marked.load(std::memory_order_acquire)) {
        return curr->value;
      }
    }
    return std::nullopt;
  }

  std::optional<std::pair<K, V>> min() const {
    auto g = domain_->guard();
    Node* node = unpack(head_->next[0].load(std::memory_order_acquire));
    while (node != tail_) {
      if (!node->marked.load(std::memory_order_acquire)) {
        return std::make_pair(node->key, node->value);
      }
      node = unpack(node->next[0].load(std::memory_order_acquire));
    }
    return std::nullopt;
  }

  std::optional<std::pair<K, V>> max() const {
    // No back pointers: descend right-most. O(log n) expected.
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> best;
    Node* node = unpack(head_->next[0].load(std::memory_order_acquire));
    while (node != tail_) {
      if (!node->marked.load(std::memory_order_acquire)) {
        best = std::make_pair(node->key, node->value);
      }
      node = unpack(node->next[0].load(std::memory_order_acquire));
    }
    return best;
  }

  template <typename F>
  void for_each(F&& fn) const {
    auto g = domain_->guard();
    Node* node = unpack(head_->next[0].load(std::memory_order_acquire));
    while (node != tail_) {
      if (!node->marked.load(std::memory_order_acquire)) {
        fn(node->key, node->value);
      }
      node = unpack(node->next[0].load(std::memory_order_acquire));
    }
  }

  /// Lock-free ordered scan over [lo, hi): one tower descent to the first
  /// bottom-level node >= lo, then a bottom-level walk — O(log n +
  /// |range|), the same asymptotics as the trees' range. Weakly consistent
  /// per key, like contains: every reported key was present at some
  /// instant during the walk, no atomic snapshot of the range.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    auto g = domain_->guard();
    Node* node = first_not_less(lo);
    while (node->sentinel != Sentinel::kTail && comp_(node->key, hi)) {
      if (!node->marked.load(std::memory_order_acquire) &&
          !comp_(node->key, lo)) {
        fn(node->key, node->value);
      }
      node = unpack(node->next[0].load(std::memory_order_acquire));
    }
  }

  /// Smallest present key in [lo, hi): the descent plus as many bottom
  /// hops as there are marked nodes at the range's start.
  std::optional<std::pair<K, V>> first_in_range(const K& lo,
                                                const K& hi) const {
    if (!comp_(lo, hi)) return std::nullopt;
    auto g = domain_->guard();
    Node* node = first_not_less(lo);
    while (node->sentinel != Sentinel::kTail && comp_(node->key, hi)) {
      if (!node->marked.load(std::memory_order_acquire) &&
          !comp_(node->key, lo)) {
        return std::make_pair(node->key, node->value);
      }
      node = unpack(node->next[0].load(std::memory_order_acquire));
    }
    return std::nullopt;
  }

  /// Largest present key in [lo, hi). The list has no back pointers, so
  /// this walks the whole range keeping the last hit — O(log n + |range|),
  /// unlike the trees' O(log n + skipped) pred-walk.
  std::optional<std::pair<K, V>> last_in_range(const K& lo,
                                               const K& hi) const {
    std::optional<std::pair<K, V>> best;
    range(lo, hi, [&best](const K& k, const V& v) {
      best = std::make_pair(k, v);
    });
    return best;
  }

  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each([&n](const K&, const V&) { ++n; });
    return n;
  }

  bool empty() const { return size_slow() == 0; }

 private:
  enum class Sentinel : std::int8_t { kNone, kHead, kTail };

  struct Node {
    const K key;
    V value;
    const int top_level;
    const Sentinel sentinel;
    std::atomic<bool> marked{false};
    std::atomic<std::uintptr_t> next[kMaxLevel];

    Node(K k, V v, int top, Sentinel s)
        : key(std::move(k)), value(std::move(v)), top_level(top),
          sentinel(s) {
      for (auto& p : next) p.store(0, std::memory_order_relaxed);
    }
  };

  static std::uintptr_t pack(Node* p, bool marked_bit) {
    return reinterpret_cast<std::uintptr_t>(p) |
           static_cast<std::uintptr_t>(marked_bit);
  }
  static Node* unpack(std::uintptr_t v) {
    return reinterpret_cast<Node*>(v & ~std::uintptr_t{1});
  }
  static bool is_marked(std::uintptr_t v) { return (v & 1) != 0; }
  static std::uintptr_t mark(std::uintptr_t v) { return v | 1; }

  bool node_less(const Node* n, const K& k) const {
    if (n->sentinel == Sentinel::kHead) return true;
    if (n->sentinel == Sentinel::kTail) return false;
    return comp_(n->key, k);
  }
  bool node_greater(const Node* n, const K& k) const {
    if (n->sentinel == Sentinel::kHead) return true;  // never matches
    if (n->sentinel == Sentinel::kTail) return true;
    return comp_(k, n->key);
  }

  int random_level() const {
    thread_local util::Xoshiro256 rng(
        0x9E3779B97F4A7C15ULL ^
        reinterpret_cast<std::uintptr_t>(&rng));
    const std::uint64_t r = rng.next();
    int level = 1;
    while ((r >> level) & 1 && level < kMaxLevel) ++level;
    return level;
  }

  /// Read-only tower descent (the contains() traversal, kept as a helper
  /// for the range scans): returns the first bottom-level node with key
  /// >= k — possibly marked, possibly the tail sentinel — skipping over
  /// marked nodes without snipping them.
  Node* first_not_less(const K& k) const {
    Node* pred = head_;
    Node* curr = nullptr;
    for (int i = kMaxLevel - 1; i >= 0; --i) {
      curr = unpack(pred->next[i].load(std::memory_order_acquire));
      for (;;) {
        std::uintptr_t nxt = curr->next[i].load(std::memory_order_acquire);
        while (is_marked(nxt)) {
          curr = unpack(nxt);
          nxt = curr->next[i].load(std::memory_order_acquire);
        }
        if (node_less(curr, k)) {
          pred = curr;
          curr = unpack(nxt);
        } else {
          break;
        }
      }
    }
    return curr;
  }

  /// Harris find: locates the window (preds[i], succs[i]) at each level,
  /// physically unlinking any marked nodes it passes. Returns true iff an
  /// unmarked node with the key sits at the bottom level.
  bool find(const K& k, Node** preds, Node** succs) {
    for (;;) {
      Node* pred = head_;
      for (int i = kMaxLevel - 1; i >= 0; --i) {
        std::uintptr_t curr_w = pred->next[i].load(std::memory_order_acquire);
        Node* curr = unpack(curr_w);
        for (;;) {
          std::uintptr_t succ_w =
              curr->next[i].load(std::memory_order_acquire);
          while (is_marked(succ_w)) {
            // Snip the marked node out of this level.
            std::uintptr_t expected = pack(curr, false);
            if (!pred->next[i].compare_exchange_strong(
                    expected, pack(unpack(succ_w), false),
                    std::memory_order_acq_rel)) {
              goto retry;  // window changed under us
            }
            curr = unpack(succ_w);
            succ_w = curr->next[i].load(std::memory_order_acquire);
          }
          if (node_less(curr, k)) {
            pred = curr;
            curr = unpack(succ_w);
          } else {
            break;
          }
        }
        preds[i] = pred;
        succs[i] = curr;
      }
      return succs[0]->sentinel == Sentinel::kNone &&
             !node_greater(succs[0], k) &&
             !succs[0]->marked.load(std::memory_order_acquire);
    retry:;
    }
  }

  reclaim::EbrDomain* domain_;
  Compare comp_;
  Node* head_;
  Node* tail_;
};

}  // namespace lot::baselines
