// Non-blocking *internal* binary search tree of Howley & Jones
// (SPAA 2012). Discussed in the paper's §2/§7 as the other lock-free
// internal-tree design: where the logical-ordering tree physically
// relocates the successor node on a two-children removal, this tree
// *copies the successor's key into the removed node* (a Relocate
// operation) and then removes the successor — the exact strategy the
// paper contrasts against.
//
// Coordination: every node carries an `op` word (operation-record pointer
// + 2 flag bits: NONE / MARK / CHILDCAS / RELOCATE). Child pointers change
// only through a ChildCAS record published on the parent's op word;
// key replacement goes through a Relocate record published on both the
// successor and the destination. Any thread that runs into a flagged node
// helps the pending operation, giving lock-freedom.
//
// Adaptations for C++ (the original is a GC'd Java set):
//  * the mutable (key, value) pair lives behind one atomic pointer to an
//    immutable Payload, so readers always see a consistent pair with a
//    single load and the relocation's key swap is one idempotent CAS;
//  * operation records and relocation-displaced payloads are reclaimed
//    through EBR (retired by the unique thread that completed the step);
//  * NODES, however, are only reclaimed when the tree is destroyed. The
//    helping protocol admits a resurrection ABA that defeats grace-period
//    reclamation: a helper of an insert's ChildCAS record can stall, the
//    inserted node can meanwhile be deleted and spliced (the child slot
//    returns to null), and the stalled helper's CAS then re-links the
//    node. Under GC this is benign (the node is marked and gets spliced
//    again); with epoch reclamation the re-linked node could be freed
//    while reachable. Deferring node frees to the destructor (an
//    intrusive allocation list) removes the hazard; memory then grows
//    with the number of removals over the tree's lifetime — which is
//    itself an instructive data point for the paper's reclamation story.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>

#include "reclaim/ebr.hpp"

namespace lot::baselines {

template <typename K, typename V, typename Compare = std::less<K>>
class HjTreeMap {
 public:
  using key_type = K;
  using mapped_type = V;

  explicit HjTreeMap(reclaim::EbrDomain& domain =
                         reclaim::EbrDomain::global_domain(),
                     Compare comp = Compare())
      : domain_(&domain), comp_(std::move(comp)) {
    auto* p = reclaim::make_counted<Payload>(K{}, V{}, /*neg_inf=*/true);
    root_ = make_tracked_node(p);
  }

  ~HjTreeMap() {
    // Every node ever allocated (live, spliced, resurrected, or never
    // published) sits on the allocation list; each owns its current
    // payload (displaced payloads were EBR-retired at swap time).
    Node* n = alloc_head_.load(std::memory_order_relaxed);
    while (n != nullptr) {
      Node* next = n->next_alloc;
      reclaim::delete_counted(
          const_cast<Payload*>(n->payload.load(std::memory_order_relaxed)));
      reclaim::delete_counted(n);
      n = next;
    }
  }

  HjTreeMap(const HjTreeMap&) = delete;
  HjTreeMap& operator=(const HjTreeMap&) = delete;

  static std::string_view name() { return "howley-jones-internal"; }

  bool contains(const K& k) const {
    auto g = domain_->guard();
    SearchResult sr;
    return const_cast<HjTreeMap*>(this)->find(k, root_, sr) ==
           FindResult::kFound;
  }

  std::optional<V> get(const K& k) const {
    auto g = domain_->guard();
    SearchResult sr;
    if (const_cast<HjTreeMap*>(this)->find(k, root_, sr) !=
        FindResult::kFound) {
      return std::nullopt;
    }
    // One load; the payload is immutable, so the pair is consistent. The
    // payload may be about to be replaced by a relocation, in which case
    // this read linearizes just before the relocation's key swap.
    const Payload* p = sr.curr->payload.load(std::memory_order_acquire);
    if (!key_eq(p, k)) return std::nullopt;  // relocated away: miss
    return p->value;
  }

  bool insert(const K& k, const V& v) {
    auto g = domain_->guard();
    for (;;) {
      SearchResult sr;
      const FindResult res = find(k, root_, sr);
      if (res == FindResult::kFound) return false;
      auto* payload = reclaim::make_counted<Payload>(k, v, false);
      Node* nn = make_tracked_node(payload);
      const bool is_left = (res == FindResult::kNotFoundLeft);
      Node* old = is_left ? sr.curr->left.load(std::memory_order_acquire)
                          : sr.curr->right.load(std::memory_order_acquire);
      auto* cas_op = reclaim::make_counted<ChildCasOp>();
      cas_op->is_left = is_left;
      cas_op->expected = old;
      cas_op->update = nn;
      std::uintptr_t expected = sr.curr_op;
      if (sr.curr->op.compare_exchange_strong(
              expected, flag(cas_op, kChildCas),
              std::memory_order_acq_rel)) {
        help_child_cas(cas_op, sr.curr);
        domain_->retire(cas_op);  // unique publisher retires the record
        return true;
      }
      // nn (and its payload) stay on the allocation list and are freed at
      // destruction; records were never published and can go now.
      reclaim::delete_counted(cas_op);
    }
  }

  bool erase(const K& k) {
    auto g = domain_->guard();
    for (;;) {
      SearchResult sr;
      if (find(k, root_, sr) != FindResult::kFound) return false;
      Node* curr = sr.curr;
      Node* right = curr->right.load(std::memory_order_acquire);
      Node* left = curr->left.load(std::memory_order_acquire);
      if (right == nullptr || left == nullptr) {
        // At most one child: mark, then splice out.
        std::uintptr_t expected = sr.curr_op;
        if (curr->op.compare_exchange_strong(expected,
                                             flag(nullptr, kMark),
                                             std::memory_order_acq_rel)) {
          help_marked(sr.pred, sr.pred_op, curr);
          return true;
        }
        continue;  // op word changed; retry the whole operation
      }
      // Two children: relocate the successor's payload into curr, then
      // remove the successor (the key-copy strategy, §2 of the paper).
      SearchResult ssr;
      const FindResult sres = find(k, curr, ssr);
      if (sres == FindResult::kAbort ||
          curr->op.load(std::memory_order_acquire) != sr.curr_op) {
        continue;  // curr was touched; retry
      }
      Node* replace = ssr.curr;
      const Payload* old_payload =
          curr->payload.load(std::memory_order_acquire);
      const Payload* repl_payload =
          replace->payload.load(std::memory_order_acquire);
      auto* op = reclaim::make_counted<RelocateOp>();
      op->dest = curr;
      op->dest_op = sr.curr_op;
      op->old_payload = old_payload;
      op->new_payload = reclaim::make_counted<Payload>(
          repl_payload->key, repl_payload->value, false);
      std::uintptr_t expected = ssr.curr_op;
      if (replace->op.compare_exchange_strong(
              expected, flag(op, kRelocate), std::memory_order_acq_rel)) {
        const bool ok = help_relocate(op, ssr.pred, ssr.pred_op, replace);
        domain_->retire(op);  // unique publisher retires the record
        if (ok) return true;
        reclaim::delete_counted(const_cast<Payload*>(op->new_payload));
        continue;
      }
      reclaim::delete_counted(const_cast<Payload*>(op->new_payload));
      reclaim::delete_counted(op);
    }
  }

  std::optional<std::pair<K, V>> min() const {
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_until(root_->right.load(std::memory_order_acquire), true, out);
    return out;
  }

  std::optional<std::pair<K, V>> max() const {
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_until(root_->right.load(std::memory_order_acquire), false, out);
    return out;
  }

  template <typename F>
  void for_each(F&& fn) const {
    auto g = domain_->guard();
    visit(root_->right.load(std::memory_order_acquire), fn);
  }

  /// Ordered scan over [lo, hi). The raw in-order sweep carries no
  /// validation, so the physical key order is only weakly trustworthy
  /// under concurrent restructuring — this filters a full traversal
  /// rather than pruning by key: O(n) regardless of range width, weakly
  /// consistent like for_each. Fine for differential tests; use the lo
  /// trees or the skiplist when range cost matters.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    for_each([&](const K& k, const V& v) {
      if (!comp_(k, lo) && comp_(k, hi)) fn(k, v);
    });
  }

  std::optional<std::pair<K, V>> first_in_range(const K& lo,
                                                const K& hi) const {
    std::optional<std::pair<K, V>> out;
    range(lo, hi, [&out](const K& k, const V& v) {
      if (!out) out = std::make_pair(k, v);
    });
    return out;
  }

  std::optional<std::pair<K, V>> last_in_range(const K& lo,
                                               const K& hi) const {
    std::optional<std::pair<K, V>> out;
    range(lo, hi,
          [&out](const K& k, const V& v) { out = std::make_pair(k, v); });
    return out;
  }

  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each([&n](const K&, const V&) { ++n; });
    return n;
  }

  /// Diagnostic raw walk: fn(key, op_flag, is_sentinel) in-order over the
  /// physical tree, marked nodes included. For tests and debugging only.
  template <typename F>
  void debug_visit_raw(F&& fn) const {
    auto g = domain_->guard();
    const std::function<void(const Node*)> rec = [&](const Node* n) {
      if (n == nullptr) return;
      rec(n->left.load(std::memory_order_acquire));
      const Payload* p = n->payload.load(std::memory_order_acquire);
      fn(p->key, flag_of(n->op.load(std::memory_order_acquire)),
         p->neg_inf);
      rec(n->right.load(std::memory_order_acquire));
    };
    rec(root_);
  }

  bool empty() const { return size_slow() == 0; }

 private:
  // ---- data -----------------------------------------------------------

  struct Payload {
    const K key;
    const V value;
    const bool neg_inf;  // the root sentinel sorts below everything
    Payload(K k, V v, bool ni)
        : key(std::move(k)), value(std::move(v)), neg_inf(ni) {}
  };

  struct Node {
    std::atomic<const Payload*> payload;
    std::atomic<std::uintptr_t> op{0};  // record pointer | flag bits
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    Node* next_alloc = nullptr;  // intrusive allocation list (destructor)
    explicit Node(const Payload* p) : payload(p) {}
  };

  struct ChildCasOp {
    bool is_left = false;
    Node* expected = nullptr;
    Node* update = nullptr;
  };

  struct RelocateOp {
    enum State : int { kOngoing = 0, kSuccessful = 1, kFailed = 2 };
    std::atomic<int> state{kOngoing};
    Node* dest = nullptr;
    std::uintptr_t dest_op = 0;
    const Payload* old_payload = nullptr;
    const Payload* new_payload = nullptr;
  };

  static constexpr std::uintptr_t kNone = 0;
  static constexpr std::uintptr_t kMark = 1;
  static constexpr std::uintptr_t kChildCas = 2;
  static constexpr std::uintptr_t kRelocate = 3;

  static std::uintptr_t flag(const void* p, std::uintptr_t f) {
    return reinterpret_cast<std::uintptr_t>(p) | f;
  }
  static std::uintptr_t flag_of(std::uintptr_t w) { return w & 3; }
  template <typename T>
  static T* ptr_of(std::uintptr_t w) {
    return reinterpret_cast<T*>(w & ~std::uintptr_t{3});
  }

  enum class FindResult { kFound, kNotFoundLeft, kNotFoundRight, kAbort };

  struct SearchResult {
    Node* pred = nullptr;
    std::uintptr_t pred_op = 0;
    Node* curr = nullptr;
    std::uintptr_t curr_op = 0;
  };

  // ---- comparisons (payload-indirected, sentinel-aware) ----------------

  // negative: node < k; 0: equal; positive: node > k.
  int cmp_payload(const Payload* p, const K& k) const {
    if (p->neg_inf) return -1;
    if (comp_(p->key, k)) return -1;
    if (comp_(k, p->key)) return 1;
    return 0;
  }
  bool key_eq(const Payload* p, const K& k) const {
    return !p->neg_inf && !comp_(p->key, k) && !comp_(k, p->key);
  }

  // ---- the find routine -------------------------------------------------

  /// Howley-Jones find. Starting below `aux_root` (everything hangs off
  /// its right pointer), locates k. Helps and restarts on any flagged
  /// node. kAbort only when aux_root != root_ and aux_root itself is busy
  /// (used by the successor search inside erase).
  FindResult find(const K& k, Node* aux_root, SearchResult& sr) {
  retry:
    FindResult result = FindResult::kNotFoundRight;
    sr.curr = aux_root;
    sr.curr_op = sr.curr->op.load(std::memory_order_acquire);
    if (flag_of(sr.curr_op) != kNone) {
      if (aux_root == root_) {
        help_child_cas(ptr_of<ChildCasOp>(sr.curr_op), sr.curr);
        goto retry;
      }
      return FindResult::kAbort;
    }
    {
      Node* last_right = sr.curr;
      std::uintptr_t last_right_op = sr.curr_op;
      Node* next = sr.curr->right.load(std::memory_order_acquire);
      while (next != nullptr) {
        sr.pred = sr.curr;
        sr.pred_op = sr.curr_op;
        sr.curr = next;
        sr.curr_op = sr.curr->op.load(std::memory_order_acquire);
        if (flag_of(sr.curr_op) != kNone) {
          help(sr.pred, sr.pred_op, sr.curr, sr.curr_op);
          goto retry;
        }
        const Payload* p = sr.curr->payload.load(std::memory_order_acquire);
        const int c = cmp_payload(p, k);
        if (c > 0) {
          result = FindResult::kNotFoundLeft;
          next = sr.curr->left.load(std::memory_order_acquire);
        } else if (c < 0) {
          result = FindResult::kNotFoundRight;
          next = sr.curr->right.load(std::memory_order_acquire);
          last_right = sr.curr;
          last_right_op = sr.curr_op;
        } else {
          result = FindResult::kFound;
          break;
        }
      }
      if (result != FindResult::kFound &&
          last_right->op.load(std::memory_order_acquire) != last_right_op) {
        goto retry;  // a relocation may have moved k past our turn point
      }
      if (sr.curr->op.load(std::memory_order_acquire) != sr.curr_op) {
        goto retry;
      }
    }
    return result;
  }

  // ---- helping ----------------------------------------------------------

  void help(Node* pred, std::uintptr_t pred_op, Node* curr,
            std::uintptr_t curr_op) {
    switch (flag_of(curr_op)) {
      case kChildCas:
        help_child_cas(ptr_of<ChildCasOp>(curr_op), curr);
        break;
      case kRelocate:
        help_relocate(ptr_of<RelocateOp>(curr_op), pred, pred_op, curr);
        break;
      case kMark:
        help_marked(pred, pred_op, curr);
        break;
      default:
        break;
    }
  }

  void help_child_cas(ChildCasOp* op, Node* dest) {
    auto& slot = op->is_left ? dest->left : dest->right;
    Node* expected = op->expected;
    slot.compare_exchange_strong(expected, op->update,
                                 std::memory_order_acq_rel);
    std::uintptr_t exp = flag(op, kChildCas);
    dest->op.compare_exchange_strong(exp, flag(op, kNone),
                                     std::memory_order_acq_rel);
  }

  bool help_relocate(RelocateOp* op, Node* pred, std::uintptr_t pred_op,
                     Node* curr /* the successor being recycled */) {
    int seen_state = op->state.load(std::memory_order_acquire);
    if (seen_state == RelocateOp::kOngoing) {
      // Stamp the destination; exactly one of {our CAS, someone else's,
      // a conflicting op} decides the outcome.
      std::uintptr_t expected = op->dest_op;
      op->dest->op.compare_exchange_strong(expected, flag(op, kRelocate),
                                           std::memory_order_acq_rel);
      if (expected == op->dest_op || expected == flag(op, kRelocate)) {
        int exp_state = RelocateOp::kOngoing;
        op->state.compare_exchange_strong(exp_state, RelocateOp::kSuccessful,
                                          std::memory_order_acq_rel);
        seen_state = RelocateOp::kSuccessful;
      } else {
        int exp_state = RelocateOp::kOngoing;
        op->state.compare_exchange_strong(exp_state, RelocateOp::kFailed,
                                          std::memory_order_acq_rel);
        seen_state = op->state.load(std::memory_order_acquire);
      }
    }

    if (seen_state == RelocateOp::kSuccessful) {
      // The key/value swap: one idempotent pointer CAS; the winner owns
      // retiring the displaced payload.
      const Payload* expected = op->old_payload;
      if (op->dest->payload.compare_exchange_strong(
              expected, op->new_payload, std::memory_order_acq_rel)) {
        domain_->retire(const_cast<Payload*>(op->old_payload));
      }
      std::uintptr_t exp = flag(op, kRelocate);
      op->dest->op.compare_exchange_strong(exp, flag(op, kNone),
                                           std::memory_order_acq_rel);
    }

    const bool result = (seen_state == RelocateOp::kSuccessful);
    // A helper may have reached this operation through the *destination*
    // (also stamped RELOCATE); the mark-and-splice below is only for the
    // successor node (original algorithm, line "if op.dest == curr").
    if (op->dest == curr) return result;
    if (result) {
      // The successor node now duplicates the destination's key: mark it
      // and splice it out.
      std::uintptr_t exp = flag(op, kRelocate);
      curr->op.compare_exchange_strong(exp, flag(op, kMark),
                                       std::memory_order_acq_rel);
      // If the successor hangs directly off the destination, the
      // destination's op word just moved to FLAG(op, NONE) — use that as
      // the expected stamp for the splice instead of the stale one.
      if (op->dest == pred) pred_op = flag(op, kNone);
      help_marked(pred, pred_op, curr);
    } else {
      // Failed: unstick the successor (fresh stamp, flag NONE).
      std::uintptr_t exp = flag(op, kRelocate);
      curr->op.compare_exchange_strong(exp, flag(op, kNone),
                                       std::memory_order_acq_rel);
    }
    return result;
  }

  bool help_marked(Node* pred, std::uintptr_t pred_op, Node* curr) {
    Node* left = curr->left.load(std::memory_order_acquire);
    Node* new_ref =
        left != nullptr ? left : curr->right.load(std::memory_order_acquire);
    auto* cas_op = reclaim::make_counted<ChildCasOp>();
    cas_op->is_left =
        (curr == pred->left.load(std::memory_order_acquire));
    cas_op->expected = curr;
    cas_op->update = new_ref;
    std::uintptr_t expected = pred_op;
    if (pred->op.compare_exchange_strong(expected, flag(cas_op, kChildCas),
                                         std::memory_order_acq_rel)) {
      help_child_cas(cas_op, pred);
      // The spliced node and its payload stay on the allocation list (see
      // the header comment on the resurrection ABA); only the record is
      // retired, by its unique successful publisher.
      domain_->retire(cas_op);
      return true;
    }
    reclaim::delete_counted(cas_op);
    return false;
  }

  // ---- bulk reads --------------------------------------------------------

  template <typename F>
  void visit(const Node* n, F& fn) const {
    if (n == nullptr) return;
    visit(n->left.load(std::memory_order_acquire), fn);
    const std::uintptr_t w = n->op.load(std::memory_order_acquire);
    const Payload* p = n->payload.load(std::memory_order_acquire);
    if (flag_of(w) != kMark && !p->neg_inf) fn(p->key, p->value);
    visit(n->right.load(std::memory_order_acquire), fn);
  }

  bool visit_until(const Node* n, bool left,
                   std::optional<std::pair<K, V>>& out) const {
    if (n == nullptr) return true;
    const Node* first = left ? n->left.load(std::memory_order_acquire)
                             : n->right.load(std::memory_order_acquire);
    const Node* second = left ? n->right.load(std::memory_order_acquire)
                              : n->left.load(std::memory_order_acquire);
    if (!visit_until(first, left, out)) return false;
    const std::uintptr_t w = n->op.load(std::memory_order_acquire);
    const Payload* p = n->payload.load(std::memory_order_acquire);
    if (flag_of(w) != kMark && !p->neg_inf) {
      out = std::make_pair(p->key, p->value);
      return false;
    }
    return visit_until(second, left, out);
  }

  Node* make_tracked_node(const Payload* p) {
    Node* n = reclaim::make_counted<Node>(p);
    Node* head = alloc_head_.load(std::memory_order_relaxed);
    do {
      n->next_alloc = head;
    } while (!alloc_head_.compare_exchange_weak(head, n,
                                                std::memory_order_release,
                                                std::memory_order_relaxed));
    return n;
  }

  reclaim::EbrDomain* domain_;
  Compare comp_;
  Node* root_;
  std::atomic<Node*> alloc_head_{nullptr};
};

}  // namespace lot::baselines
