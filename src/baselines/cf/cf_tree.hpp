// Contention-friendly binary search tree: Crain, Gramoli, Raynal
// (Euro-Par 2013) — the paper's second lock-based competitor (Table 1).
//
// Design split: the *eager* abstract operations (insert / logical remove /
// contains) touch as few nodes as possible and never restructure; a single
// background *maintenance* thread lazily (a) physically splices out
// logically-deleted nodes once they have at most one child and (b)
// rebalances with local rotations. Rotations clone the node that moves
// down, so an in-flight traversal parked on the old copy still sees a
// valid substructure (the old node keeps its outgoing pointers and is
// flagged `removed`; operations that end on a removed node restart).
//
// Reclamation: spliced and cloned-away nodes are retired via EBR by the
// maintenance thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>

#include "reclaim/ebr.hpp"
#include "sync/backoff.hpp"
#include "sync/spinlock.hpp"

namespace lot::baselines {

template <typename K, typename V, typename Compare = std::less<K>>
class CfTreeMap {
  static_assert(std::is_trivially_copyable_v<V>,
                "values live in an atomic slot (deleted nodes can be "
                "revived concurrently with lock-free gets)");

 public:
  using key_type = K;
  using mapped_type = V;

  explicit CfTreeMap(reclaim::EbrDomain& domain =
                         reclaim::EbrDomain::global_domain(),
                     Compare comp = Compare())
      : domain_(&domain), comp_(std::move(comp)) {
    root_holder_ = reclaim::make_counted<Node>(K{}, V{});
    root_holder_->deleted.store(true, std::memory_order_relaxed);
    maintenance_ = std::thread([this] { maintenance_loop(); });
  }

  ~CfTreeMap() {
    stop_.store(true, std::memory_order_release);
    maintenance_.join();
    destroy(root_holder_);
  }

  CfTreeMap(const CfTreeMap&) = delete;
  CfTreeMap& operator=(const CfTreeMap&) = delete;

  static std::string_view name() { return "crain-cf-tree"; }

  bool contains(const K& k) const { return get(k).has_value(); }

  std::optional<V> get(const K& k) const {
    auto g = domain_->guard();
    for (;;) {
      Node* node = find(k);
      if (node == nullptr) return std::nullopt;  // validated miss
      if (node->removed.load(std::memory_order_acquire)) continue;
      const V v = node->value.load(std::memory_order_acquire);
      if (node->deleted.load(std::memory_order_acquire)) return std::nullopt;
      return v;
    }
  }

  bool insert(const K& k, const V& v) {
    auto g = domain_->guard();
    for (;;) {
      Node* node = locate(k);
      const int c = cmp_node(node, k);
      if (c == 0) {
        std::lock_guard<sync::SpinLock> lg(node->lock);
        if (node->removed.load(std::memory_order_relaxed)) continue;
        if (!node->deleted.load(std::memory_order_relaxed)) return false;
        node->value.store(v, std::memory_order_relaxed);
        node->deleted.store(false, std::memory_order_release);
        return true;
      }
      // Attach as a child of `node`.
      auto& slot = c < 0 ? node->right : node->left;
      std::lock_guard<sync::SpinLock> lg(node->lock);
      if (node->removed.load(std::memory_order_relaxed)) continue;
      if (slot.load(std::memory_order_relaxed) != nullptr) continue;
      Node* nn = reclaim::make_counted<Node>(k, v);
      slot.store(nn, std::memory_order_release);
      return true;
    }
  }

  bool erase(const K& k) {
    auto g = domain_->guard();
    for (;;) {
      Node* node = locate(k);
      if (cmp_node(node, k) != 0) {
        if (node->removed.load(std::memory_order_acquire)) continue;
        return false;  // validated miss
      }
      std::lock_guard<sync::SpinLock> lg(node->lock);
      if (node->removed.load(std::memory_order_relaxed)) continue;
      if (node->deleted.load(std::memory_order_relaxed)) return false;
      node->deleted.store(true, std::memory_order_release);  // logical only
      return true;
    }
  }

  std::optional<std::pair<K, V>> min() const {
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_until(root(), /*left=*/true, out);
    return out;
  }

  std::optional<std::pair<K, V>> max() const {
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_until(root(), /*left=*/false, out);
    return out;
  }

  template <typename F>
  void for_each(F&& fn) const {
    auto g = domain_->guard();
    visit(root(), fn);
  }

  /// Ordered scan over [lo, hi). The raw in-order sweep carries no
  /// validation, so the physical key order is only weakly trustworthy
  /// under concurrent restructuring — this filters a full traversal
  /// rather than pruning by key: O(n) regardless of range width, weakly
  /// consistent like for_each. Fine for differential tests; use the lo
  /// trees or the skiplist when range cost matters.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    for_each([&](const K& k, const V& v) {
      if (!comp_(k, lo) && comp_(k, hi)) fn(k, v);
    });
  }

  std::optional<std::pair<K, V>> first_in_range(const K& lo,
                                                const K& hi) const {
    std::optional<std::pair<K, V>> out;
    range(lo, hi, [&out](const K& k, const V& v) {
      if (!out) out = std::make_pair(k, v);
    });
    return out;
  }

  std::optional<std::pair<K, V>> last_in_range(const K& lo,
                                               const K& hi) const {
    std::optional<std::pair<K, V>> out;
    range(lo, hi,
          [&out](const K& k, const V& v) { out = std::make_pair(k, v); });
    return out;
  }

  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each([&n](const K&, const V&) { ++n; });
    return n;
  }

  bool empty() const { return size_slow() == 0; }

  std::size_t physical_nodes_slow() const {
    auto g = domain_->guard();
    std::size_t n = 0;
    count_nodes(root(), n);
    return n;
  }

 private:
  struct Node {
    const K key;
    std::atomic<V> value;
    std::atomic<bool> deleted{false};  // logically absent
    std::atomic<bool> removed{false};  // physically spliced / cloned away
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    // Subtree height estimate; written only by the maintenance thread
    // during its depth-first pass (single writer, no synchronization).
    std::int32_t height = 1;
    sync::SpinLock lock;

    Node(K k, V v) : key(std::move(k)), value(v) {}
  };

  static std::int32_t height_of(const Node* n) {
    return n == nullptr ? 0 : n->height;
  }

  Node* root() const {
    // The holder's right child is the tree (holder key sorts below all).
    return root_holder_->right.load(std::memory_order_acquire);
  }

  int cmp_node(const Node* n, const K& k) const {
    if (n == root_holder_) return -1;  // holder sorts below everything
    if (comp_(n->key, k)) return -1;
    if (comp_(k, n->key)) return 1;
    return 0;
  }

  /// Plain traversal; returns the node with the key, or the node whose
  /// relevant child slot is null (never null itself).
  Node* locate(const K& k) const {
    Node* node = root_holder_;
    for (;;) {
      const int c = cmp_node(node, k);
      if (c == 0) return node;
      Node* child = c < 0 ? node->right.load(std::memory_order_acquire)
                          : node->left.load(std::memory_order_acquire);
      if (child == nullptr) return node;
      node = child;
    }
  }

  /// locate() + miss validation: returns the key node, or nullptr for a
  /// trustworthy miss (the end node was not removed).
  Node* find(const K& k) const {
    for (;;) {
      Node* node = locate(k);
      if (cmp_node(node, k) == 0) return node;
      if (!node->removed.load(std::memory_order_acquire)) return nullptr;
      // Ended on a spliced-out node: its null slot says nothing; retry.
    }
  }

  // ---- maintenance thread ---------------------------------------------

  void maintenance_loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      auto g = domain_->guard();
      maintain(root_holder_, root_holder_);
      std::this_thread::yield();
    }
  }

  /// One depth-first maintenance pass: splice deleted nodes with <= 1
  /// child, rotate where the subtree heights diverge. Returns the height
  /// of the subtree rooted at `node` as observed during this pass.
  std::int32_t maintain(Node* node, Node* parent) {
    if (node == nullptr || stop_.load(std::memory_order_acquire)) return 0;

    // Splice: deleted node with at most one child leaves the tree.
    if (node != root_holder_ &&
        node->deleted.load(std::memory_order_acquire) &&
        !node->removed.load(std::memory_order_acquire)) {
      try_splice(parent, node);
      // Whether or not the splice won, re-read through the parent below.
    }

    Node* l = node->left.load(std::memory_order_acquire);
    Node* r = node->right.load(std::memory_order_acquire);
    const std::int32_t hl = maintain(l, node);
    const std::int32_t hr = maintain(r, node);

    if (node != root_holder_ && !stop_.load(std::memory_order_acquire)) {
      // Standard AVL case split using this pass's heights: if the pivot
      // is inner-heavy, rotate it first (a single outer rotation would
      // not reduce the imbalance and the tree would flip-flop forever,
      // churning clones at quiescence).
      const std::int32_t bf = hl - hr;
      if (bf >= 2 && l != nullptr) {
        if (height_of(l->right.load(std::memory_order_acquire)) >
            height_of(l->left.load(std::memory_order_acquire))) {
          try_rotate(node, l, /*right_rotation=*/false);  // inner first
        } else {
          try_rotate(parent, node, /*right_rotation=*/true);
        }
      } else if (bf <= -2 && r != nullptr) {
        if (height_of(r->left.load(std::memory_order_acquire)) >
            height_of(r->right.load(std::memory_order_acquire))) {
          try_rotate(node, r, /*right_rotation=*/true);  // inner first
        } else {
          try_rotate(parent, node, /*right_rotation=*/false);
        }
      }
    }
    const std::int32_t h = 1 + (hl > hr ? hl : hr);
    node->height = h;
    return h;
  }

  bool try_splice(Node* parent, Node* node) {
    std::lock_guard<sync::SpinLock> pg(parent->lock);
    std::lock_guard<sync::SpinLock> ng(node->lock);
    if (parent->removed.load(std::memory_order_relaxed) ||
        node->removed.load(std::memory_order_relaxed) ||
        !node->deleted.load(std::memory_order_relaxed)) {
      return false;
    }
    auto& slot = parent->left.load(std::memory_order_relaxed) == node
                     ? parent->left
                     : parent->right;
    if (slot.load(std::memory_order_relaxed) != node) return false;
    Node* l = node->left.load(std::memory_order_relaxed);
    Node* r = node->right.load(std::memory_order_relaxed);
    if (l != nullptr && r != nullptr) return false;  // two children
    // Splice; the removed node keeps its child pointers so parked
    // traversals continue into live structure.
    node->removed.store(true, std::memory_order_release);
    slot.store(l != nullptr ? l : r, std::memory_order_release);
    domain_->retire(node);
    return true;
  }

  /// Copy-on-rotate: the node moving down is cloned so traversals parked
  /// on the original stay on a valid (frozen) fragment.
  bool try_rotate(Node* parent, Node* node, bool right_rotation) {
    std::lock_guard<sync::SpinLock> pg(parent->lock);
    std::lock_guard<sync::SpinLock> ng(node->lock);
    if (parent->removed.load(std::memory_order_relaxed) ||
        node->removed.load(std::memory_order_relaxed)) {
      return false;
    }
    auto& slot = parent->left.load(std::memory_order_relaxed) == node
                     ? parent->left
                     : parent->right;
    if (slot.load(std::memory_order_relaxed) != node) return false;
    Node* pivot = right_rotation ? node->left.load(std::memory_order_relaxed)
                                 : node->right.load(std::memory_order_relaxed);
    if (pivot == nullptr) return false;
    std::lock_guard<sync::SpinLock> vg(pivot->lock);
    if (pivot->removed.load(std::memory_order_relaxed)) return false;

    // Clone `node`; the clone takes the pivot's inner subtree.
    Node* clone = reclaim::make_counted<Node>(
        node->key, node->value.load(std::memory_order_relaxed));
    clone->deleted.store(node->deleted.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    if (right_rotation) {
      clone->left.store(pivot->right.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      clone->right.store(node->right.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      pivot->right.store(clone, std::memory_order_release);
    } else {
      clone->right.store(pivot->left.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      clone->left.store(node->left.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      pivot->left.store(clone, std::memory_order_release);
    }
    node->removed.store(true, std::memory_order_release);
    slot.store(pivot, std::memory_order_release);
    domain_->retire(node);
    return true;
  }

  // ---- bulk reads ------------------------------------------------------

  template <typename F>
  static void visit(const Node* n, F& fn) {
    if (n == nullptr) return;
    visit(n->left.load(std::memory_order_acquire), fn);
    const V v = n->value.load(std::memory_order_acquire);
    if (!n->deleted.load(std::memory_order_acquire)) fn(n->key, v);
    visit(n->right.load(std::memory_order_acquire), fn);
  }

  static bool visit_until(const Node* n, bool left,
                          std::optional<std::pair<K, V>>& out) {
    if (n == nullptr) return true;
    const Node* first = left ? n->left.load(std::memory_order_acquire)
                             : n->right.load(std::memory_order_acquire);
    const Node* second = left ? n->right.load(std::memory_order_acquire)
                              : n->left.load(std::memory_order_acquire);
    if (!visit_until(first, left, out)) return false;
    const V v = n->value.load(std::memory_order_acquire);
    if (!n->deleted.load(std::memory_order_acquire)) {
      out = std::make_pair(n->key, v);
      return false;
    }
    return visit_until(second, left, out);
  }

  static void count_nodes(const Node* n, std::size_t& count) {
    if (n == nullptr) return;
    ++count;
    count_nodes(n->left.load(std::memory_order_acquire), count);
    count_nodes(n->right.load(std::memory_order_acquire), count);
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left.load(std::memory_order_relaxed));
    destroy(n->right.load(std::memory_order_relaxed));
    reclaim::delete_counted(n);
  }

  reclaim::EbrDomain* domain_;
  Compare comp_;
  Node* root_holder_;
  std::atomic<bool> stop_{false};
  std::thread maintenance_;
};

}  // namespace lot::baselines
