// The BCCO tree: Bronson, Casper, Chafi, Olukotun, "A Practical Concurrent
// Binary Search Tree" (PPoPP 2010) — the lock-based, partially-external,
// relaxed-AVL competitor of Table 1.
//
// Core mechanism: optimistic hand-over-hand descent validated by per-node
// version words (OVLs). A node that is about to move down in a rotation or
// be unlinked enters a "shrinking" state (version |= kShrinking); readers
// that descended through it wait for the change to finish and re-validate
// against the parent's version, retrying the step if it changed. Nodes are
// partially external: a two-children removal only clears the value
// (leaving a routing node); routing nodes are unlinked when their child
// count drops, and an insert of the same key revives them in place.
//
// Reclamation: unlinked nodes are retired through EBR (readers may still
// hold references from an optimistic descent).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <functional>
#include <optional>
#include <string_view>
#include <type_traits>
#include <utility>

#include "reclaim/ebr.hpp"
#include "sync/backoff.hpp"
#include "sync/spinlock.hpp"

namespace lot::baselines {

template <typename K, typename V, typename Compare = std::less<K>>
class BronsonMap {
  static_assert(std::is_trivially_copyable_v<V>,
                "values live in an atomic slot (routing nodes can be "
                "revived concurrently with lock-free gets)");

 public:
  using key_type = K;
  using mapped_type = V;

  explicit BronsonMap(reclaim::EbrDomain& domain =
                          reclaim::EbrDomain::global_domain(),
                      Compare comp = Compare())
      : domain_(&domain), comp_(std::move(comp)) {
    // Root holder: a sentinel that never shrinks and never holds a key;
    // the real tree hangs off its right child (every key is "greater"
    // than the holder).
    root_holder_ = reclaim::make_counted<Node>(K{}, V{});
    root_holder_->present.store(false, std::memory_order_relaxed);
  }

  ~BronsonMap() { destroy(root_holder_); }

  BronsonMap(const BronsonMap&) = delete;
  BronsonMap& operator=(const BronsonMap&) = delete;

  static std::string_view name() { return "bronson-bcco-avl"; }

  bool contains(const K& k) const { return get(k).has_value(); }

  std::optional<V> get(const K& k) const {
    auto g = domain_->guard();
    for (;;) {
      Node* right = root_holder_->right.load(std::memory_order_acquire);
      if (right == nullptr) return std::nullopt;
      const std::uint64_t ovl = right->version.load(std::memory_order_acquire);
      if (is_changing_or_unlinked(ovl)) {
        wait_until_not_changing(right);
        continue;
      }
      if (right != root_holder_->right.load(std::memory_order_acquire)) {
        continue;
      }
      AttemptResult r = attempt_get(k, right, ovl);
      if (!r.retry) return r.value;
    }
  }

  bool insert(const K& k, const V& v) {
    auto g = domain_->guard();
    for (;;) {
      Node* right = root_holder_->right.load(std::memory_order_acquire);
      if (right == nullptr) {
        // Empty tree: install the first node under the holder's lock.
        std::lock_guard<sync::SpinLock> lg(root_holder_->lock);
        if (root_holder_->right.load(std::memory_order_relaxed) != nullptr) {
          continue;
        }
        Node* nn = reclaim::make_counted<Node>(k, v);
        nn->parent.store(root_holder_, std::memory_order_relaxed);
        root_holder_->right.store(nn, std::memory_order_release);
        return true;
      }
      const std::uint64_t ovl = right->version.load(std::memory_order_acquire);
      if (is_changing_or_unlinked(ovl)) {
        wait_until_not_changing(right);
        continue;
      }
      if (right != root_holder_->right.load(std::memory_order_acquire)) {
        continue;
      }
      AttemptResult r = attempt_insert(k, v, right, ovl);
      if (!r.retry) return r.success;
    }
  }

  bool erase(const K& k) {
    auto g = domain_->guard();
    for (;;) {
      Node* right = root_holder_->right.load(std::memory_order_acquire);
      if (right == nullptr) return false;
      const std::uint64_t ovl = right->version.load(std::memory_order_acquire);
      if (is_changing_or_unlinked(ovl)) {
        wait_until_not_changing(right);
        continue;
      }
      if (right != root_holder_->right.load(std::memory_order_acquire)) {
        continue;
      }
      AttemptResult r = attempt_erase(k, right, ovl);
      if (!r.retry) return r.success;
    }
  }

  std::optional<std::pair<K, V>> min() const {
    return extreme(/*left=*/true);
  }
  std::optional<std::pair<K, V>> max() const {
    return extreme(/*left=*/false);
  }

  template <typename F>
  void for_each(F&& fn) const {
    auto g = domain_->guard();
    visit(root_holder_->right.load(std::memory_order_acquire), fn);
  }

  /// Ordered scan over [lo, hi). The raw in-order sweep carries no
  /// version validation, so the physical key order is only weakly
  /// trustworthy under concurrent rotations — this filters a full
  /// traversal rather than pruning by key: O(n) regardless of range
  /// width, weakly consistent like for_each. Fine for differential
  /// tests; use the lo trees or the skiplist when range cost matters.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    for_each([&](const K& k, const V& v) {
      if (!comp_(k, lo) && comp_(k, hi)) fn(k, v);
    });
  }

  std::optional<std::pair<K, V>> first_in_range(const K& lo,
                                                const K& hi) const {
    std::optional<std::pair<K, V>> out;
    range(lo, hi, [&out](const K& k, const V& v) {
      if (!out) out = std::make_pair(k, v);
    });
    return out;
  }

  std::optional<std::pair<K, V>> last_in_range(const K& lo,
                                               const K& hi) const {
    std::optional<std::pair<K, V>> out;
    range(lo, hi,
          [&out](const K& k, const V& v) { out = std::make_pair(k, v); });
    return out;
  }

  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each([&n](const K&, const V&) { ++n; });
    return n;
  }

  bool empty() const { return size_slow() == 0; }

  /// Physical nodes including routing "zombies" (for the memory ablation).
  std::size_t physical_nodes_slow() const {
    auto g = domain_->guard();
    std::size_t n = 0;
    count_nodes(root_holder_->right.load(std::memory_order_acquire), n);
    return n;
  }

 private:
  static constexpr std::uint64_t kUnlinked = 0x1;
  static constexpr std::uint64_t kShrinking = 0x2;
  static constexpr std::uint64_t kShrinkIncr = 0x4;

  struct Node {
    const K key;
    std::atomic<V> value;
    std::atomic<bool> present{true};  // false = routing node
    std::atomic<std::uint64_t> version{0};
    std::atomic<std::int32_t> height{1};
    std::atomic<Node*> parent{nullptr};
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    sync::SpinLock lock;

    Node(K k, V v) : key(std::move(k)), value(v) {}
  };

  struct AttemptResult {
    bool retry = false;
    bool success = false;
    std::optional<V> value;
    static AttemptResult Retry() { return {true, false, std::nullopt}; }
  };

  static bool is_changing_or_unlinked(std::uint64_t v) {
    return (v & (kShrinking | kUnlinked)) != 0;
  }

  static void wait_until_not_changing(const Node* n) {
    sync::Backoff backoff;
    while (n->version.load(std::memory_order_acquire) & kShrinking) {
      backoff.pause();
    }
  }

  int cmp(const K& a, const K& b) const {
    if (comp_(a, b)) return -1;
    if (comp_(b, a)) return 1;
    return 0;
  }

  static std::int32_t height_of(const Node* n) {
    return n == nullptr ? 0 : n->height.load(std::memory_order_relaxed);
  }

  // ---- optimistic descent -------------------------------------------

  /// Hand-over-hand versioned descent (the paper's attemptGet). `node` was
  /// read under version `node_ovl`, which the caller has validated.
  AttemptResult attempt_get(const K& k, Node* node,
                            std::uint64_t node_ovl) const {
    for (;;) {
      const int c = cmp(k, node->key);
      if (c == 0) {
        AttemptResult r;
        const V v = node->value.load(std::memory_order_acquire);
        if (node->present.load(std::memory_order_acquire)) r.value = v;
        // Matching-key reads linearize on the present/value load; no
        // version check needed (keys never move in this tree).
        return r;
      }
      Node* child = c < 0 ? node->left.load(std::memory_order_acquire)
                          : node->right.load(std::memory_order_acquire);
      if (child == nullptr) {
        if (node->version.load(std::memory_order_acquire) != node_ovl) {
          return AttemptResult::Retry();
        }
        return {};  // miss, validated
      }
      const std::uint64_t child_ovl =
          child->version.load(std::memory_order_acquire);
      if (is_changing_or_unlinked(child_ovl)) {
        wait_until_not_changing(child);
        if (node->version.load(std::memory_order_acquire) != node_ovl) {
          return AttemptResult::Retry();
        }
        continue;  // re-read the child pointer
      }
      // The child link and our node's version must both still hold.
      if (child != (c < 0 ? node->left.load(std::memory_order_acquire)
                          : node->right.load(std::memory_order_acquire))) {
        if (node->version.load(std::memory_order_acquire) != node_ovl) {
          return AttemptResult::Retry();
        }
        continue;
      }
      if (node->version.load(std::memory_order_acquire) != node_ovl) {
        return AttemptResult::Retry();
      }
      node = child;
      node_ovl = child_ovl;
    }
  }

  AttemptResult attempt_insert(const K& k, const V& v, Node* node,
                               std::uint64_t node_ovl) {
    for (;;) {
      const int c = cmp(k, node->key);
      if (c == 0) {
        // Key node exists: revive it if it is a routing node.
        std::lock_guard<sync::SpinLock> lg(node->lock);
        if (node->version.load(std::memory_order_relaxed) & kUnlinked) {
          return AttemptResult::Retry();
        }
        AttemptResult r;
        if (node->present.load(std::memory_order_relaxed)) {
          r.success = false;  // already present
        } else {
          node->value.store(v, std::memory_order_relaxed);
          node->present.store(true, std::memory_order_release);
          r.success = true;
        }
        return r;
      }
      auto& slot = c < 0 ? node->left : node->right;
      Node* child = slot.load(std::memory_order_acquire);
      if (child == nullptr) {
        // Candidate attachment point.
        {
          std::lock_guard<sync::SpinLock> lg(node->lock);
          if (node->version.load(std::memory_order_relaxed) != node_ovl) {
            return AttemptResult::Retry();
          }
          if (slot.load(std::memory_order_relaxed) != nullptr) {
            continue;  // someone attached here first; re-descend this node
          }
          Node* nn = reclaim::make_counted<Node>(k, v);
          nn->parent.store(node, std::memory_order_relaxed);
          slot.store(nn, std::memory_order_release);
        }
        fix_height_and_rebalance(node);
        AttemptResult r;
        r.success = true;
        return r;
      }
      const std::uint64_t child_ovl =
          child->version.load(std::memory_order_acquire);
      if (is_changing_or_unlinked(child_ovl)) {
        wait_until_not_changing(child);
        if (node->version.load(std::memory_order_acquire) != node_ovl) {
          return AttemptResult::Retry();
        }
        continue;
      }
      if (child != slot.load(std::memory_order_acquire)) {
        if (node->version.load(std::memory_order_acquire) != node_ovl) {
          return AttemptResult::Retry();
        }
        continue;
      }
      if (node->version.load(std::memory_order_acquire) != node_ovl) {
        return AttemptResult::Retry();
      }
      node = child;
      node_ovl = child_ovl;
    }
  }

  AttemptResult attempt_erase(const K& k, Node* node,
                              std::uint64_t node_ovl) {
    for (;;) {
      const int c = cmp(k, node->key);
      if (c == 0) return try_remove_node(node);
      Node* child = c < 0 ? node->left.load(std::memory_order_acquire)
                          : node->right.load(std::memory_order_acquire);
      if (child == nullptr) {
        if (node->version.load(std::memory_order_acquire) != node_ovl) {
          return AttemptResult::Retry();
        }
        return {};  // miss, validated
      }
      const std::uint64_t child_ovl =
          child->version.load(std::memory_order_acquire);
      if (is_changing_or_unlinked(child_ovl)) {
        wait_until_not_changing(child);
        if (node->version.load(std::memory_order_acquire) != node_ovl) {
          return AttemptResult::Retry();
        }
        continue;
      }
      if (child != (c < 0 ? node->left.load(std::memory_order_acquire)
                          : node->right.load(std::memory_order_acquire))) {
        if (node->version.load(std::memory_order_acquire) != node_ovl) {
          return AttemptResult::Retry();
        }
        continue;
      }
      if (node->version.load(std::memory_order_acquire) != node_ovl) {
        return AttemptResult::Retry();
      }
      node = child;
      node_ovl = child_ovl;
    }
  }

  /// Removes the key at `node`: logical (clear present) when it has two
  /// children, physical unlink when it has at most one.
  AttemptResult try_remove_node(Node* node) {
    for (;;) {
      if (node->version.load(std::memory_order_acquire) & kUnlinked) {
        return AttemptResult::Retry();
      }
      Node* l = node->left.load(std::memory_order_acquire);
      Node* r = node->right.load(std::memory_order_acquire);
      if (l != nullptr && r != nullptr) {
        // Two children: logical removal under the node's lock.
        std::lock_guard<sync::SpinLock> lg(node->lock);
        if (node->version.load(std::memory_order_relaxed) & kUnlinked) {
          return AttemptResult::Retry();
        }
        if (node->left.load(std::memory_order_relaxed) == nullptr ||
            node->right.load(std::memory_order_relaxed) == nullptr) {
          continue;  // child count changed; use the unlink path
        }
        AttemptResult res;
        if (!node->present.load(std::memory_order_relaxed)) {
          res.success = false;  // already removed
        } else {
          node->present.store(false, std::memory_order_release);
          res.success = true;
        }
        return res;
      }
      // At most one child: unlink (also handles present=false zombies).
      // The rebalance must run after these guards drop — it re-locks the
      // parent itself.
      Node* parent = node->parent.load(std::memory_order_acquire);
      AttemptResult res;
      bool unlinked = false;
      {
        std::lock_guard<sync::SpinLock> pg(parent->lock);
        if ((parent->version.load(std::memory_order_relaxed) & kUnlinked) ||
            node->parent.load(std::memory_order_acquire) != parent) {
          continue;  // parent changed; retry with the new one
        }
        std::lock_guard<sync::SpinLock> ng(node->lock);
        if (node->version.load(std::memory_order_relaxed) & kUnlinked) {
          return AttemptResult::Retry();
        }
        l = node->left.load(std::memory_order_relaxed);
        Node* rr = node->right.load(std::memory_order_relaxed);
        if (l != nullptr && rr != nullptr) continue;  // grew a second child
        // A zombie with <= 1 child is unlinked as a courtesy even when
        // the erase itself fails (keeps the zombie population bounded by
        // the two-children rule).
        res.success = node->present.load(std::memory_order_relaxed);
        node->present.store(false, std::memory_order_release);
        unlink_locked(parent, node, l != nullptr ? l : rr);
        unlinked = true;
      }
      if (unlinked) fix_height_and_rebalance(parent);
      return res;
    }
  }

  /// Requires parent and node locks. Splices node out and retires it.
  void unlink_locked(Node* parent, Node* node, Node* child) {
    // The node shrinks away: readers paused on it will re-validate at the
    // parent and retry their step.
    node->version.fetch_or(kShrinking, std::memory_order_acq_rel);
    if (child != nullptr) {
      child->parent.store(parent, std::memory_order_release);
    }
    if (parent->left.load(std::memory_order_relaxed) == node) {
      parent->left.store(child, std::memory_order_release);
    } else {
      parent->right.store(child, std::memory_order_release);
    }
    node->version.store(kUnlinked, std::memory_order_release);
    domain_->retire(node);
  }

  // ---- relaxed rebalancing -------------------------------------------

  void fix_height_and_rebalance(Node* node) {
    while (node != root_holder_ && node != nullptr) {
      if (node->version.load(std::memory_order_acquire) & kUnlinked) return;
      Node* parent = node->parent.load(std::memory_order_acquire);
      if (parent == nullptr) return;
      std::unique_lock<sync::SpinLock> pg(parent->lock);
      if ((parent->version.load(std::memory_order_relaxed) & kUnlinked) ||
          node->parent.load(std::memory_order_acquire) != parent) {
        continue;  // re-read parent
      }
      std::unique_lock<sync::SpinLock> ng(node->lock);
      if (node->version.load(std::memory_order_relaxed) & kUnlinked) return;

      const std::int32_t hl =
          height_of(node->left.load(std::memory_order_relaxed));
      const std::int32_t hr =
          height_of(node->right.load(std::memory_order_relaxed));
      const std::int32_t bf = hl - hr;
      const std::int32_t new_h = 1 + (hl > hr ? hl : hr);

      if (bf > 1) {
        // LR case: rotate the pivot left first so the single right
        // rotation below restores balance.
        Node* pivot = node->left.load(std::memory_order_relaxed);
        if (pivot != nullptr &&
            height_of(pivot->left.load(std::memory_order_acquire)) <
                height_of(pivot->right.load(std::memory_order_acquire))) {
          std::lock_guard<sync::SpinLock> pvg(pivot->lock);
          rotate_left_locked(node, pivot);
        }
        rotate_right_locked(parent, node);
      } else if (bf < -1) {
        Node* pivot = node->right.load(std::memory_order_relaxed);
        if (pivot != nullptr &&
            height_of(pivot->right.load(std::memory_order_acquire)) <
                height_of(pivot->left.load(std::memory_order_acquire))) {
          std::lock_guard<sync::SpinLock> pvg(pivot->lock);
          rotate_right_locked(node, pivot);
        }
        rotate_left_locked(parent, node);
      } else {
        if (new_h == node->height.load(std::memory_order_relaxed)) return;
        node->height.store(new_h, std::memory_order_relaxed);
      }
      ng.unlock();
      pg.unlock();
      node = parent;
    }
  }

  /// Requires parent and node locks; acquires the pivot child's lock.
  /// Returns false if the shape changed and the caller should re-examine.
  bool rotate_right_locked(Node* parent, Node* node) {
    Node* pivot = node->left.load(std::memory_order_relaxed);
    if (pivot == nullptr) return true;  // stale heights; nothing to do
    std::lock_guard<sync::SpinLock> cg(pivot->lock);
    // node shrinks (moves down): fence off optimistic readers.
    node->version.fetch_or(kShrinking, std::memory_order_acq_rel);
    Node* pr = pivot->right.load(std::memory_order_relaxed);
    node->left.store(pr, std::memory_order_release);
    if (pr != nullptr) pr->parent.store(node, std::memory_order_release);
    pivot->right.store(node, std::memory_order_release);
    node->parent.store(pivot, std::memory_order_release);
    pivot->parent.store(parent, std::memory_order_release);
    if (parent->left.load(std::memory_order_relaxed) == node) {
      parent->left.store(pivot, std::memory_order_release);
    } else {
      parent->right.store(pivot, std::memory_order_release);
    }
    const std::int32_t nh =
        1 + std::max(height_of(node->left.load(std::memory_order_relaxed)),
                     height_of(node->right.load(std::memory_order_relaxed)));
    node->height.store(nh, std::memory_order_relaxed);
    pivot->height.store(
        1 + std::max(height_of(pivot->left.load(std::memory_order_relaxed)),
                     nh),
        std::memory_order_relaxed);
    // End of the shrink: bump the version and clear the bit.
    const std::uint64_t v = node->version.load(std::memory_order_relaxed);
    node->version.store((v + kShrinkIncr) & ~kShrinking,
                        std::memory_order_release);
    return true;
  }

  bool rotate_left_locked(Node* parent, Node* node) {
    Node* pivot = node->right.load(std::memory_order_relaxed);
    if (pivot == nullptr) return true;
    std::lock_guard<sync::SpinLock> cg(pivot->lock);
    node->version.fetch_or(kShrinking, std::memory_order_acq_rel);
    Node* pl = pivot->left.load(std::memory_order_relaxed);
    node->right.store(pl, std::memory_order_release);
    if (pl != nullptr) pl->parent.store(node, std::memory_order_release);
    pivot->left.store(node, std::memory_order_release);
    node->parent.store(pivot, std::memory_order_release);
    pivot->parent.store(parent, std::memory_order_release);
    if (parent->left.load(std::memory_order_relaxed) == node) {
      parent->left.store(pivot, std::memory_order_release);
    } else {
      parent->right.store(pivot, std::memory_order_release);
    }
    const std::int32_t nh =
        1 + std::max(height_of(node->left.load(std::memory_order_relaxed)),
                     height_of(node->right.load(std::memory_order_relaxed)));
    node->height.store(nh, std::memory_order_relaxed);
    pivot->height.store(
        1 + std::max(nh, height_of(pivot->right.load(
                             std::memory_order_relaxed))),
        std::memory_order_relaxed);
    const std::uint64_t v = node->version.load(std::memory_order_relaxed);
    node->version.store((v + kShrinkIncr) & ~kShrinking,
                        std::memory_order_release);
    return true;
  }

  // ---- bulk reads ------------------------------------------------------

  // Routing ("zombie") nodes may sit anywhere, including on the spine, so
  // the extreme present key is found by an in-order sweep with early exit
  // (in a dense tree this still inspects only the first few spine nodes).
  std::optional<std::pair<K, V>> extreme(bool left) const {
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_until(root_holder_->right.load(std::memory_order_acquire), left,
                out);
    return out;
  }

  static bool visit_until(const Node* n, bool left,
                          std::optional<std::pair<K, V>>& out) {
    if (n == nullptr) return true;
    const Node* first = left ? n->left.load(std::memory_order_acquire)
                             : n->right.load(std::memory_order_acquire);
    const Node* second = left ? n->right.load(std::memory_order_acquire)
                              : n->left.load(std::memory_order_acquire);
    if (!visit_until(first, left, out)) return false;
    const V v = n->value.load(std::memory_order_acquire);
    if (n->present.load(std::memory_order_acquire)) {
      out = std::make_pair(n->key, v);
      return false;  // found the extreme present key
    }
    return visit_until(second, left, out);
  }

  template <typename F>
  static void visit(const Node* n, F& fn) {
    if (n == nullptr) return;
    visit(n->left.load(std::memory_order_acquire), fn);
    const V v = n->value.load(std::memory_order_acquire);
    if (n->present.load(std::memory_order_acquire)) fn(n->key, v);
    visit(n->right.load(std::memory_order_acquire), fn);
  }

  static void count_nodes(const Node* n, std::size_t& count) {
    if (n == nullptr) return;
    ++count;
    count_nodes(n->left.load(std::memory_order_acquire), count);
    count_nodes(n->right.load(std::memory_order_acquire), count);
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left.load(std::memory_order_relaxed));
    destroy(n->right.load(std::memory_order_relaxed));
    reclaim::delete_counted(n);
  }

  reclaim::EbrDomain* domain_;
  Compare comp_;
  Node* root_holder_;
};

}  // namespace lot::baselines
