// LLX/SCX: the multi-word synchronization primitive of Brown, Ellen,
// Ruppert ("A general technique for non-blocking trees", PPoPP 2014) that
// underlies their Chromatic tree.
//
//  * LLX(node) returns a snapshot of the node's mutable fields (children)
//    together with the node's current operation record, or FAIL if an
//    operation is in progress (after helping it).
//  * SCX(V, R, field, new) atomically: verifies no node in V changed since
//    its LLX, finalizes the nodes in R (they leave the data structure),
//    and writes `new` into one child field. Threads that encounter an
//    in-progress record help it complete, giving lock-free progress.
//
// Records are reference-counted by the nodes whose info pointer holds
// them and reclaimed through EBR once the count drops to zero (readers
// may still dereference a displaced record under their guard).
//
// Record lifetime: once refs reaches zero it must never rise again — a
// slow helper that unconditionally incremented the count could resurrect
// an already-retired record, drive it back to zero, and retire it twice
// (the heap-use-after-free TSan used to catch under the Chromatic stress
// tests). Helpers therefore use try_inc_ref, which refuses to revive a
// released record; a refused helper knows the operation finished long ago
// and just reads the (now immutable) final state under its EBR guard.
// Fields a helper reads (v, infos, field, old/new child, finalize) are
// atomics: written before the record is published by the freeze CAS, read
// relaxed afterwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>

#include "reclaim/ebr.hpp"

namespace lot::baselines::llxscx {

template <typename NodeT>
struct ScxRecord {
  static constexpr std::size_t kMaxV = 4;
  enum State : int { kInProgress = 0, kCommitted = 1, kAborted = 2 };

  std::atomic<int> state{kInProgress};
  std::atomic<bool> all_frozen{false};

  // Helper-read fields. The originator writes them (relaxed) before the
  // record is published by its first freeze CAS; helpers reach the record
  // through an acquire load of node->info, so relaxed reads suffice.
  std::atomic<NodeT*> v[kMaxV] = {};
  std::atomic<ScxRecord*> infos[kMaxV] = {};
  std::atomic<std::size_t> v_count{0};

  std::atomic<std::atomic<NodeT*>*> field{nullptr};
  std::atomic<NodeT*> old_child{nullptr};
  std::atomic<NodeT*> new_child{nullptr};

  std::atomic<NodeT*> finalize[kMaxV] = {};
  std::atomic<std::size_t> finalize_count{0};

  // Nodes referencing this record through their info pointer, plus one
  // virtual reference held by the in-flight operation until it completes.
  std::atomic<std::int64_t> refs{1};
};

/// The permanently-committed dummy record every node starts with.
template <typename NodeT>
ScxRecord<NodeT>* dummy_record() {
  static ScxRecord<NodeT> dummy;
  static const bool initialized = [] {
    dummy.state.store(ScxRecord<NodeT>::kCommitted,
                      std::memory_order_relaxed);
    dummy.refs.store(1'000'000'000, std::memory_order_relaxed);  // permanent
    return true;
  }();
  (void)initialized;
  return &dummy;
}

template <typename NodeT>
void dec_ref(ScxRecord<NodeT>* rec, reclaim::EbrDomain& domain) {
  if (rec == dummy_record<NodeT>()) return;
  if (rec->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    domain.retire(rec);
  }
}

/// Takes a reference iff the record is still alive (refs > 0). A record
/// whose count reached zero has been retired; incrementing it again would
/// resurrect it and eventually retire it a second time (use-after-free).
template <typename NodeT>
bool try_inc_ref(ScxRecord<NodeT>* rec) {
  std::int64_t cur = rec->refs.load(std::memory_order_acquire);
  while (cur > 0) {
    if (rec->refs.compare_exchange_weak(cur, cur + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      return true;
    }
  }
  return false;
}

/// Result of LLX: the record observed (nullptr on FAIL) plus the snapshot
/// of the node's child pointers.
template <typename NodeT>
struct LlxResult {
  ScxRecord<NodeT>* info = nullptr;
  NodeT* left = nullptr;
  NodeT* right = nullptr;
  bool ok() const { return info != nullptr; }
};

template <typename NodeT>
bool help_scx(ScxRecord<NodeT>* rec, reclaim::EbrDomain& domain);

/// LLX. Helps any in-progress operation it runs into, then fails so the
/// caller re-reads fresh state.
template <typename NodeT>
LlxResult<NodeT> llx(NodeT* node, reclaim::EbrDomain& domain) {
  const bool marked = node->finalized.load(std::memory_order_acquire);
  ScxRecord<NodeT>* info = node->info.load(std::memory_order_acquire);
  const int state = info->state.load(std::memory_order_acquire);
  if ((state == ScxRecord<NodeT>::kCommitted ||
       state == ScxRecord<NodeT>::kAborted) &&
      !marked) {
    LlxResult<NodeT> res;
    res.left = node->left.load(std::memory_order_acquire);
    res.right = node->right.load(std::memory_order_acquire);
    if (node->info.load(std::memory_order_acquire) == info) {
      res.info = info;
      return res;  // consistent snapshot
    }
    return {};
  }
  if (state == ScxRecord<NodeT>::kInProgress) help_scx(info, domain);
  return {};
}

/// The helping core of SCX. Returns true iff the record committed.
template <typename NodeT>
bool help_scx(ScxRecord<NodeT>* rec, reclaim::EbrDomain& domain) {
  using Rec = ScxRecord<NodeT>;
  // Freeze every node in V by installing `rec` as its info.
  const std::size_t v_count = rec->v_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < v_count; ++i) {
    NodeT* node = rec->v[i].load(std::memory_order_relaxed);
    ScxRecord<NodeT>* expected = rec->infos[i].load(std::memory_order_relaxed);
    if (!try_inc_ref(rec)) {
      // Every reference is gone: the operation finished long ago and the
      // record was retired (our EBR guard keeps the memory readable). Its
      // final state is immutable now — report it without touching refs.
      return rec->state.load(std::memory_order_acquire) == Rec::kCommitted;
    }
    if (!node->info.compare_exchange_strong(expected, rec,
                                            std::memory_order_acq_rel)) {
      dec_ref(rec, domain);  // CAS lost: take the tentative count back
      if (node->info.load(std::memory_order_acquire) != rec) {
        // Frozen by someone else (or moved on): if the operation already
        // reached the all-frozen point some helper will finish it.
        if (rec->all_frozen.load(std::memory_order_acquire)) return true;
        int exp = Rec::kInProgress;
        rec->state.compare_exchange_strong(exp, Rec::kAborted,
                                           std::memory_order_acq_rel);
        return false;
      }
      // info == rec: another helper froze this node; its old info ref was
      // already released by that helper.
      continue;
    }
    // We won the freeze: release the displaced record's reference.
    dec_ref(expected, domain);
  }
  rec->all_frozen.store(true, std::memory_order_release);
  const std::size_t finalize_count =
      rec->finalize_count.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < finalize_count; ++i) {
    rec->finalize[i].load(std::memory_order_relaxed)
        ->finalized.store(true, std::memory_order_release);
  }
  NodeT* expected_child = rec->old_child.load(std::memory_order_relaxed);
  rec->field.load(std::memory_order_relaxed)
      ->compare_exchange_strong(expected_child,
                                rec->new_child.load(std::memory_order_relaxed),
                                std::memory_order_acq_rel);
  rec->state.store(Rec::kCommitted, std::memory_order_release);
  return true;
}

/// SCX proper. `v`/`infos` come from successful LLXs on each node (the
/// node holding `field` must be among them). Returns true on commit; the
/// caller (originator) then owns retiring the finalized nodes.
template <typename NodeT>
bool scx(NodeT* const* v, ScxRecord<NodeT>* const* infos, std::size_t v_count,
         NodeT* const* finalize, std::size_t finalize_count,
         std::atomic<NodeT*>* field, NodeT* old_child, NodeT* new_child,
         reclaim::EbrDomain& domain) {
  using Rec = ScxRecord<NodeT>;
  Rec* rec = reclaim::make_counted<Rec>();
  rec->v_count.store(v_count, std::memory_order_relaxed);
  for (std::size_t i = 0; i < v_count; ++i) {
    rec->v[i].store(v[i], std::memory_order_relaxed);
    rec->infos[i].store(infos[i], std::memory_order_relaxed);
  }
  rec->finalize_count.store(finalize_count, std::memory_order_relaxed);
  for (std::size_t i = 0; i < finalize_count; ++i) {
    rec->finalize[i].store(finalize[i], std::memory_order_relaxed);
  }
  rec->field.store(field, std::memory_order_relaxed);
  rec->old_child.store(old_child, std::memory_order_relaxed);
  rec->new_child.store(new_child, std::memory_order_relaxed);
  const bool committed = help_scx(rec, domain);
  dec_ref(rec, domain);  // drop the operation's own reference
  return committed;
}

}  // namespace lot::baselines::llxscx
