// Non-blocking external binary search tree of Ellen, Fatourou, Ruppert and
// van Breugel (PODC 2010) — the paper's "EFRB-Tree" baseline (Table 2).
//
// External tree: internal nodes are routing-only, every internal node has
// exactly two children, keys live in the leaves. Updates coordinate through
// Info records flagged into the parent's (and grandparent's) `update` word
// with a 2-bit state (CLEAN / IFLAG / DFLAG / MARK); any thread that
// encounters a flagged node helps the pending operation to completion, so
// all operations are lock-free.
//
// Reclamation: the operation's *originator* (whose flag CAS committed the
// operation exactly once) retires the unlinked nodes and the Info record;
// helpers may still dereference them under their EBR guards.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>

#include "reclaim/ebr.hpp"

namespace lot::baselines {

template <typename K, typename V, typename Compare = std::less<K>>
class EfrbMap {
 public:
  using key_type = K;
  using mapped_type = V;

  explicit EfrbMap(reclaim::EbrDomain& domain =
                       reclaim::EbrDomain::global_domain(),
                   Compare comp = Compare())
      : domain_(&domain), comp_(std::move(comp)) {
    // Initial tree: root Internal(inf2) with leaves inf1 / inf2; every
    // real key is smaller than both sentinels and sinks into the left.
    Node* l1 = reclaim::make_counted<Node>(K{}, V{}, SentTag::kInf1, true);
    Node* l2 = reclaim::make_counted<Node>(K{}, V{}, SentTag::kInf2, true);
    root_ = reclaim::make_counted<Node>(K{}, V{}, SentTag::kInf2, false);
    root_->left.store(l1, std::memory_order_relaxed);
    root_->right.store(l2, std::memory_order_relaxed);
  }

  ~EfrbMap() {
    destroy(root_);
  }

  EfrbMap(const EfrbMap&) = delete;
  EfrbMap& operator=(const EfrbMap&) = delete;

  static std::string_view name() { return "efrb-external-bst"; }

  bool contains(const K& k) const {
    auto g = domain_->guard();
    const Node* l = find_leaf(k);
    return leaf_matches(l, k);
  }

  std::optional<V> get(const K& k) const {
    auto g = domain_->guard();
    const Node* l = find_leaf(k);
    if (!leaf_matches(l, k)) return std::nullopt;
    return l->value;
  }

  bool insert(const K& k, const V& v) {
    auto g = domain_->guard();
    for (;;) {
      SearchResult sr = search(k);
      if (leaf_matches(sr.l, k)) return false;
      if (state_of(sr.pupdate) != State::kClean) {
        help(sr.pupdate);
        continue;
      }
      Node* new_leaf = reclaim::make_counted<Node>(k, v, SentTag::kNone, true);
      // New internal routes between the old leaf and the new one; the old
      // leaf is reused as a child (EFRB reuses, no copy).
      const bool new_goes_left = node_less(new_leaf, sr.l);
      Node* new_internal = reclaim::make_counted<Node>(
          K{}, V{}, SentTag::kNone, false);
      // Routing key = the larger of the two.
      const Node* bigger = new_goes_left ? sr.l : new_leaf;
      new_internal->set_routing_key(*bigger);
      new_internal->left.store(new_goes_left ? new_leaf : sr.l,
                               std::memory_order_relaxed);
      new_internal->right.store(new_goes_left ? sr.l : new_leaf,
                                std::memory_order_relaxed);
      Info* op = reclaim::make_counted<Info>();
      op->type = Info::kInsert;
      op->parent = sr.p;
      op->leaf = sr.l;
      op->new_internal = new_internal;
      std::uintptr_t expected = sr.pupdate;
      if (sr.p->update.compare_exchange_strong(
              expected, pack(op, State::kIFlag),
              std::memory_order_acq_rel)) {
        help_insert(op);
        domain_->retire(op);  // committed exactly once: originator retires
        return true;
      }
      reclaim::delete_counted(new_leaf);      // never published
      reclaim::delete_counted(new_internal);  // never published
      reclaim::delete_counted(op);
      help(sr.p->update.load(std::memory_order_acquire));
    }
  }

  bool erase(const K& k) {
    auto g = domain_->guard();
    for (;;) {
      SearchResult sr = search(k);
      if (!leaf_matches(sr.l, k)) return false;
      if (state_of(sr.gpupdate) != State::kClean) {
        help(sr.gpupdate);
        continue;
      }
      if (state_of(sr.pupdate) != State::kClean) {
        help(sr.pupdate);
        continue;
      }
      Info* op = reclaim::make_counted<Info>();
      op->type = Info::kDelete;
      op->grandparent = sr.gp;
      op->parent = sr.p;
      op->leaf = sr.l;
      op->pupdate = sr.pupdate;
      std::uintptr_t expected = sr.gpupdate;
      if (sr.gp->update.compare_exchange_strong(
              expected, pack(op, State::kDFlag),
              std::memory_order_acq_rel)) {
        if (help_delete(op)) {
          // Unlinked: p and l left the tree; retire them + the record.
          domain_->retire(sr.p);
          domain_->retire(sr.l);
          domain_->retire(op);
          return true;
        }
        domain_->retire(op);  // backtracked; helpers may still hold refs
        continue;
      }
      reclaim::delete_counted(op);  // flag CAS failed: never published
      help(sr.gp->update.load(std::memory_order_acquire));
    }
  }

  std::optional<std::pair<K, V>> min() const {
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_in_order(root_, [&](const Node* leaf) {
      if (!out) out = std::make_pair(leaf->key, leaf->value);
      return !out.has_value();  // stop after the first real leaf
    });
    return out;
  }

  std::optional<std::pair<K, V>> max() const {
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_in_order(root_, [&](const Node* leaf) {
      out = std::make_pair(leaf->key, leaf->value);
      return true;  // keep going; the last real leaf wins
    });
    return out;
  }

  template <typename F>
  void for_each(F&& fn) const {
    auto g = domain_->guard();
    visit_in_order(root_, [&](const Node* leaf) {
      fn(leaf->key, leaf->value);
      return true;
    });
  }

  /// Ordered scan over [lo, hi) via the in-order leaf walk, stopping once
  /// past hi. The DFS has no key-guided descent, so reaching the range's
  /// start is O(n); weakly consistent like for_each. Fine for differential
  /// tests; use the lo trees or the skiplist when range cost matters.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    auto g = domain_->guard();
    visit_in_order(root_, [&](const Node* leaf) {
      if (comp_(leaf->key, lo)) return true;    // below the range
      if (!comp_(leaf->key, hi)) return false;  // past the range: stop
      fn(leaf->key, leaf->value);
      return true;
    });
  }

  std::optional<std::pair<K, V>> first_in_range(const K& lo,
                                                const K& hi) const {
    if (!comp_(lo, hi)) return std::nullopt;
    auto g = domain_->guard();
    std::optional<std::pair<K, V>> out;
    visit_in_order(root_, [&](const Node* leaf) {
      if (comp_(leaf->key, lo)) return true;
      if (comp_(leaf->key, hi)) out = std::make_pair(leaf->key, leaf->value);
      return false;  // first leaf at/above lo settles it either way
    });
    return out;
  }

  std::optional<std::pair<K, V>> last_in_range(const K& lo,
                                               const K& hi) const {
    std::optional<std::pair<K, V>> out;
    range(lo, hi,
          [&out](const K& k, const V& v) { out = std::make_pair(k, v); });
    return out;
  }

  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each([&n](const K&, const V&) { ++n; });
    return n;
  }

  bool empty() const { return size_slow() == 0; }

 private:
  enum class SentTag : std::int8_t { kNone = 0, kInf1 = 1, kInf2 = 2 };
  enum class State : std::uintptr_t {
    kClean = 0,
    kIFlag = 1,
    kDFlag = 2,
    kMark = 3
  };

  struct Info;

  struct Node {
    K key;
    V value;
    SentTag tag;
    const bool is_leaf;
    std::atomic<Node*> left{nullptr};
    std::atomic<Node*> right{nullptr};
    std::atomic<std::uintptr_t> update{0};  // Info* | State in low 2 bits

    Node(K k, V v, SentTag t, bool leaf)
        : key(std::move(k)), value(std::move(v)), tag(t), is_leaf(leaf) {}

    // Internal nodes are created blank and given the routing key of one of
    // their future children before publication.
    void set_routing_key(const Node& src) {
      key = src.key;
      tag = src.tag;
    }
  };

  struct Info {
    enum Type { kInsert, kDelete } type = kInsert;
    Node* grandparent = nullptr;
    Node* parent = nullptr;
    Node* leaf = nullptr;
    Node* new_internal = nullptr;
    std::uintptr_t pupdate = 0;  // parent's update word seen by the deleter
  };

  struct SearchResult {
    Node* gp = nullptr;
    Node* p = nullptr;
    Node* l = nullptr;
    std::uintptr_t pupdate = 0;
    std::uintptr_t gpupdate = 0;
  };

  static std::uintptr_t pack(Info* info, State s) {
    return reinterpret_cast<std::uintptr_t>(info) |
           static_cast<std::uintptr_t>(s);
  }
  static Info* info_of(std::uintptr_t w) {
    return reinterpret_cast<Info*>(w & ~std::uintptr_t{3});
  }
  static State state_of(std::uintptr_t w) {
    return static_cast<State>(w & 3);
  }

  // key-vs-node comparison with sentinel handling: every real key is
  // smaller than inf1 < inf2.
  bool key_less_node(const K& k, const Node* n) const {
    if (n->tag != SentTag::kNone) return true;
    return comp_(k, n->key);
  }
  bool node_less(const Node* a, const Node* b) const {
    if (a->tag != SentTag::kNone || b->tag != SentTag::kNone) {
      return static_cast<int>(a->tag) < static_cast<int>(b->tag);
    }
    return comp_(a->key, b->key);
  }
  bool leaf_matches(const Node* l, const K& k) const {
    return l->tag == SentTag::kNone && !comp_(l->key, k) && !comp_(k, l->key);
  }

  SearchResult search(const K& k) const {
    SearchResult sr;
    sr.l = root_;
    while (!sr.l->is_leaf) {
      sr.gp = sr.p;
      sr.gpupdate = sr.pupdate;
      sr.p = sr.l;
      sr.pupdate = sr.p->update.load(std::memory_order_acquire);
      sr.l = key_less_node(k, sr.p)
                 ? sr.p->left.load(std::memory_order_acquire)
                 : sr.p->right.load(std::memory_order_acquire);
    }
    return sr;
  }

  const Node* find_leaf(const K& k) const {
    const Node* n = root_;
    while (!n->is_leaf) {
      n = key_less_node(k, n) ? n->left.load(std::memory_order_acquire)
                              : n->right.load(std::memory_order_acquire);
    }
    return n;
  }

  void help(std::uintptr_t w) {
    Info* op = info_of(w);
    switch (state_of(w)) {
      case State::kIFlag:
        help_insert(op);
        break;
      case State::kMark:
        help_marked(op);
        break;
      case State::kDFlag:
        help_delete(op);
        break;
      case State::kClean:
        break;
    }
  }

  void cas_child(Node* parent, Node* old_child, Node* new_child) {
    auto& slot = node_less(new_child, parent) ? parent->left : parent->right;
    Node* expected = old_child;
    slot.compare_exchange_strong(expected, new_child,
                                 std::memory_order_acq_rel);
  }

  void help_insert(Info* op) {
    cas_child(op->parent, op->leaf, op->new_internal);
    std::uintptr_t expected = pack(op, State::kIFlag);
    op->parent->update.compare_exchange_strong(
        expected, pack(op, State::kClean), std::memory_order_acq_rel);
  }

  bool help_delete(Info* op) {
    // Try to mark the parent; succeed if we or a helper already did.
    std::uintptr_t expected = op->pupdate;
    const std::uintptr_t marked = pack(op, State::kMark);
    if (op->parent->update.compare_exchange_strong(
            expected, marked, std::memory_order_acq_rel) ||
        expected == marked) {
      help_marked(op);
      return true;
    }
    // Someone else owns the parent: help them, then back the DFLAG out.
    help(op->parent->update.load(std::memory_order_acquire));
    std::uintptr_t dflag = pack(op, State::kDFlag);
    op->grandparent->update.compare_exchange_strong(
        dflag, pack(op, State::kClean), std::memory_order_acq_rel);
    return false;
  }

  void help_marked(Info* op) {
    // The sibling of the deleted leaf replaces the parent.
    Node* l = op->parent->left.load(std::memory_order_acquire);
    Node* other = (l == op->leaf)
                      ? op->parent->right.load(std::memory_order_acquire)
                      : l;
    cas_child_for_delete(op->grandparent, op->parent, other, op->leaf);
    std::uintptr_t expected = pack(op, State::kDFlag);
    op->grandparent->update.compare_exchange_strong(
        expected, pack(op, State::kClean), std::memory_order_acq_rel);
  }

  // For deletion the side under the grandparent is determined by where the
  // parent currently hangs, not by key comparison (the sibling may route
  // anywhere relative to the grandparent's key).
  void cas_child_for_delete(Node* gp, Node* old_child, Node* new_child,
                            const Node* /*removed_leaf*/) {
    Node* expected = old_child;
    if (gp->left.load(std::memory_order_acquire) == old_child) {
      gp->left.compare_exchange_strong(expected, new_child,
                                       std::memory_order_acq_rel);
    } else {
      gp->right.compare_exchange_strong(expected, new_child,
                                        std::memory_order_acq_rel);
    }
  }

  /// In-order DFS over the leaves; fn returns false to stop early.
  /// Weakly consistent, like the lock-free iterators elsewhere.
  template <typename F>
  static bool visit_in_order(const Node* n, F&& fn) {
    if (n->is_leaf) {
      if (n->tag != SentTag::kNone) return true;  // skip sentinels
      return fn(n);
    }
    const Node* l = n->left.load(std::memory_order_acquire);
    const Node* r = n->right.load(std::memory_order_acquire);
    if (l != nullptr && !visit_in_order(l, fn)) return false;
    if (r != nullptr && !visit_in_order(r, fn)) return false;
    return true;
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    if (!n->is_leaf) {
      destroy(n->left.load(std::memory_order_relaxed));
      destroy(n->right.load(std::memory_order_relaxed));
    }
    reclaim::delete_counted(n);
  }

  reclaim::EbrDomain* domain_;
  Compare comp_;
  Node* root_;
};

}  // namespace lot::baselines
