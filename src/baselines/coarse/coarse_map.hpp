// Sanity baseline: std::map under a single global mutex. The floor every
// concurrent structure must beat under contention, and a convenient
// always-correct comparator in differential tests.
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string_view>
#include <utility>

namespace lot::baselines {

template <typename K, typename V, typename Compare = std::less<K>>
class CoarseMap {
 public:
  using key_type = K;
  using mapped_type = V;

  static std::string_view name() { return "coarse-std-map"; }

  bool insert(const K& k, const V& v) {
    std::lock_guard<std::mutex> g(mu_);
    return map_.emplace(k, v).second;
  }

  bool erase(const K& k) {
    std::lock_guard<std::mutex> g(mu_);
    return map_.erase(k) > 0;
  }

  bool contains(const K& k) const {
    std::lock_guard<std::mutex> g(mu_);
    return map_.count(k) > 0;
  }

  std::optional<V> get(const K& k) const {
    std::lock_guard<std::mutex> g(mu_);
    auto it = map_.find(k);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  std::optional<std::pair<K, V>> min() const {
    std::lock_guard<std::mutex> g(mu_);
    if (map_.empty()) return std::nullopt;
    return std::make_pair(map_.begin()->first, map_.begin()->second);
  }

  std::optional<std::pair<K, V>> max() const {
    std::lock_guard<std::mutex> g(mu_);
    if (map_.empty()) return std::nullopt;
    return std::make_pair(map_.rbegin()->first, map_.rbegin()->second);
  }

  template <typename F>
  void for_each(F&& fn) const {
    std::lock_guard<std::mutex> g(mu_);
    for (const auto& [k, v] : map_) fn(k, v);
  }

  /// Ordered scan over [lo, hi). Unlike the concurrent structures this is
  /// an actual atomic snapshot of the range (the global mutex is held for
  /// the whole scan) — which makes it the reference implementation in
  /// differential range tests.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    std::lock_guard<std::mutex> g(mu_);
    if (!map_.key_comp()(lo, hi)) return;
    for (auto it = map_.lower_bound(lo);
         it != map_.end() && map_.key_comp()(it->first, hi); ++it) {
      fn(it->first, it->second);
    }
  }

  std::optional<std::pair<K, V>> first_in_range(const K& lo,
                                                const K& hi) const {
    std::lock_guard<std::mutex> g(mu_);
    if (!map_.key_comp()(lo, hi)) return std::nullopt;
    auto it = map_.lower_bound(lo);
    if (it == map_.end() || !map_.key_comp()(it->first, hi)) {
      return std::nullopt;
    }
    return std::make_pair(it->first, it->second);
  }

  std::optional<std::pair<K, V>> last_in_range(const K& lo,
                                               const K& hi) const {
    std::lock_guard<std::mutex> g(mu_);
    if (!map_.key_comp()(lo, hi)) return std::nullopt;
    auto it = map_.lower_bound(hi);
    if (it == map_.begin()) return std::nullopt;
    --it;
    if (map_.key_comp()(it->first, lo)) return std::nullopt;
    return std::make_pair(it->first, it->second);
  }

  std::size_t size_slow() const {
    std::lock_guard<std::mutex> g(mu_);
    return map_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<K, V, Compare> map_;
};

}  // namespace lot::baselines
