// Umbrella for the overload governor (DESIGN.md §14).
//
//  * health/state.hpp — published State + the policy predicates the hot
//    layers read (dependency-free; safe below reclaim/).
//  * health/governor.hpp — the sampling state machine, thresholds,
//    transition log, and the writer admission gate.
#pragma once

#include "health/governor.hpp"
#include "health/state.hpp"
