// Process-wide health state: the cheap, dependency-free half of the
// overload governor (src/health/governor.hpp holds the state machine that
// decides transitions; this header holds the published state and the
// policy predicates the hot layers consult).
//
// Why two headers: the policy consumers — the EBR drain path
// (reclaim/ebr.cpp), the pool's emergency reserve (reclaim/pool.cpp) and
// the rebalance shedding check (lo/rebalance.hpp) — sit *below* the layers
// the governor samples, so they must not include governor.hpp (which pulls
// in reclaim/ebr.hpp). Everything here is a relaxed atomic read on a
// function-local static: one load on the hot path, no allocation, no
// headers beyond <atomic>.
//
// Compile-out: -DLOT_HEALTH=OFF (CMake option) defines LOT_DISABLE_HEALTH,
// collapsing every hook to an empty inline (and health::Governor to an
// empty type — tests/test_health.cpp static_asserts it stays one), so the
// pre-governor behaviour is recoverable bit-for-bit, mirroring the
// LOT_DISABLE_OBS / LOT_REBALANCE_THROTTLE_OFF idiom.
#pragma once

#include <cstdint>

#if !defined(LOT_DISABLE_HEALTH)
#include <atomic>
#endif

namespace lot::health {

/// Process health, ordered by severity. The governor escalates directly to
/// whatever severity the signals demand but de-escalates one level at a
/// time (hysteresis; see governor.hpp).
enum class State : std::uint8_t {
  kHealthy = 0,   // all signals below entry thresholds
  kPressured,     // early pressure: admission backoff only
  kDegraded,      // sustained pressure: + rotation shedding, drain boost,
                  //   pool emergency reserve unlocked
  kCritical,      // survival mode: maximum backoff, everything above
};

inline constexpr std::uint8_t kStateCount = 4;

constexpr const char* state_name(State s) {
  switch (s) {
    case State::kHealthy:   return "healthy";
    case State::kPressured: return "pressured";
    case State::kDegraded:  return "degraded";
    case State::kCritical:  return "critical";
  }
  return "?";
}

#if !defined(LOT_DISABLE_HEALTH)

inline constexpr bool kHealthCompiled = true;

namespace detail {

/// The published state plus the governor-maintained odometers that obs
/// snapshots. Function-local static: immortal, no destruction-order
/// hazards, reachable for LeakSanitizer.
struct StateCell {
  std::atomic<std::uint8_t> state{0};           // State, relaxed-published
  std::atomic<std::uint64_t> transitions{0};    // monotonic transition count
  std::atomic<std::uint64_t> ticks{0};          // governor samples taken
  std::atomic<std::uint64_t> contention_events{0};  // heat events, all threads
  std::atomic<bool> policies{true};             // master switch (bench B arm)
};

inline StateCell& state_cell() {
  static StateCell cell;
  return cell;
}

}  // namespace detail

inline State current_state() {
  return static_cast<State>(
      detail::state_cell().state.load(std::memory_order_relaxed));
}

/// Governor-only: publish a new state. Not for general use.
inline void publish_state(State s) {
  detail::state_cell().state.store(static_cast<std::uint8_t>(s),
                                   std::memory_order_relaxed);
}

inline std::uint64_t transition_count() {
  return detail::state_cell().transitions.load(std::memory_order_relaxed);
}

inline std::uint64_t tick_count() {
  return detail::state_cell().ticks.load(std::memory_order_relaxed);
}

/// Cross-thread contention odometer: the process-wide companion of the TLS
/// heat score in lo/rebalance.hpp (ROADMAP item 2(c)). Fed by
/// contention_heat_add(); the governor differentiates it per tick.
inline void note_contention() {
  auto& c = detail::state_cell().contention_events;
  c.fetch_add(1, std::memory_order_relaxed);
}

inline std::uint64_t contention_events() {
  return detail::state_cell().contention_events.load(
      std::memory_order_relaxed);
}

/// Master policy switch: when off, the state machine still runs (signals
/// are still fused and published — obs keeps reporting) but every
/// degradation policy below reports "do nothing". This is the governor-off
/// arm of bench/ablation_storm.cpp and the storm campaign's negative
/// control, as a runtime knob so both arms come from one binary.
inline void set_policies_enabled(bool on) {
  detail::state_cell().policies.store(on, std::memory_order_relaxed);
}

inline bool policies_enabled() {
  return detail::state_cell().policies.load(std::memory_order_relaxed);
}

// ---- policy predicates (signals -> states -> policies; DESIGN.md §14) ----

/// Rebalance shedding: at Degraded or worse every thread defers rotations,
/// not just the ones whose TLS heat ran hot — the governor's state is the
/// cross-thread heat signal the TLS throttle cannot see.
inline bool shed_rotations() {
  return current_state() >= State::kDegraded && policies_enabled();
}

/// EBR drain boost: how many positions to right-shift the retire-scan
/// threshold (halving/quartering it), so reclamation scans come earlier
/// while the process is pressured and backlogs collapse faster.
inline unsigned ebr_drain_shift() {
  if (!policies_enabled()) return 0;
  switch (current_state()) {
    case State::kDegraded: return 1;
    case State::kCritical: return 2;
    default: return 0;
  }
}

/// Pool break-glass: at Degraded or worse the pool prefers its pre-armed
/// emergency slab over the operator-new fallback path (the fallback is
/// exactly what tends to fail under the memory pressure that put us here).
inline bool prefer_emergency_reserve() {
  return current_state() >= State::kDegraded && policies_enabled();
}

/// Writer admission backoff intensity: pauses a writer takes *before*
/// pinning an epoch (0 = none). Bounded and jittered at the call site via
/// sync::JitterBackoff, so admission delay never becomes unbounded and
/// colliding writers do not re-collide in lockstep.
inline unsigned admission_backoff_level() {
  if (!policies_enabled()) return 0;
  switch (current_state()) {
    case State::kPressured: return 1;
    case State::kDegraded:  return 2;
    case State::kCritical:  return 4;
    default: return 0;
  }
}

#else  // LOT_DISABLE_HEALTH — every hook compiles away.

inline constexpr bool kHealthCompiled = false;

inline State current_state() { return State::kHealthy; }
inline void publish_state(State) {}
inline std::uint64_t transition_count() { return 0; }
inline std::uint64_t tick_count() { return 0; }
inline void note_contention() {}
inline std::uint64_t contention_events() { return 0; }
inline void set_policies_enabled(bool) {}
inline bool policies_enabled() { return false; }
inline bool shed_rotations() { return false; }
inline unsigned ebr_drain_shift() { return 0; }
inline bool prefer_emergency_reserve() { return false; }
inline unsigned admission_backoff_level() { return 0; }

#endif  // LOT_DISABLE_HEALTH

}  // namespace lot::health
