#include "health/governor.hpp"

#if !defined(LOT_DISABLE_HEALTH)

#include <algorithm>
#include <chrono>
#include <limits>

namespace lot::health {

namespace {

std::uint64_t steady_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Severity (0..3) of one value against a threshold triple. `div` selects
/// the side: 1 = entry thresholds, 2 = exit (entry/2, clamped to >= 1 so a
/// signal whose entry threshold is already 1 can still read calm at 0).
unsigned severity_against(std::uint64_t v, const std::uint64_t (&th)[3],
                          unsigned div) {
  for (unsigned lvl = 3; lvl >= 1; --lvl) {
    const std::uint64_t t = th[lvl - 1];
    if (t == std::numeric_limits<std::uint64_t>::max()) continue;  // disabled
    if (v >= std::max<std::uint64_t>(1, t / div)) return lvl;
  }
  return 0;
}

struct Severity {
  unsigned level = 0;
  const char* cause = "calm";
};

/// Fused severity of a sample: the max across signals, with the dominant
/// signal named. Signal order breaks ties (a stall outranks the backlog it
/// causes in the log's "cause" column).
Severity fuse(const Signals& s, const Thresholds& th, bool exit_side,
              std::uint32_t lag_run) {
  const unsigned div = exit_side ? 2 : 1;
  Severity out;
  if (s.stalled_now) out = {2, "stall-watchdog"};
  if (unsigned v = severity_against(s.backlog, th.backlog, div);
      v > out.level) {
    out = {v, "ebr-backlog"};
  }
  if (unsigned v = severity_against(s.fallback_outstanding, th.fallback, div);
      v > out.level) {
    out = {v, "pool-fallback"};
  }
  if (unsigned v = severity_against(std::max(s.heat_delta, s.restart_delta),
                                    th.heat, div);
      v > out.level) {
    out = {v, "contention-heat"};
  }
  // Epoch lag is a *persistence* signal, not a magnitude one: try_advance
  // fails outright on any straggler, so the lag never grows past ~2 — what
  // distinguishes a stuck reader from normal jitter is the lag refusing to
  // clear across consecutive ticks.
  if (lag_run >= th.lag_ticks && out.level < 1) out = {1, "epoch-lag"};
  return out;
}

}  // namespace

void Governor::set_thresholds(const Thresholds& t) {
  std::lock_guard<std::mutex> lk(mu_);
  thresholds_ = t;
}

Thresholds Governor::thresholds() const {
  std::lock_guard<std::mutex> lk(mu_);
  return thresholds_;
}

Signals Governor::sample_signals(reclaim::EbrDomain& domain) {
  std::lock_guard<std::mutex> lk(mu_);
  return sample_signals_locked(domain);
}

Signals Governor::sample_signals_locked(reclaim::EbrDomain& domain) {
  // Pressure anywhere is pressure everywhere: the published state is
  // process-wide, so the reclamation signals fold over EVERY live domain
  // (the registry enumeration), not just the caller's — a sharded map's
  // stalled shard must degrade the process even when the sampling writer
  // lives on a different shard. Backlog sums (total unreclaimed garbage),
  // lag and stall take the worst domain (one wedged reader is the
  // failure), and the pool fallback count is already process-global.
  Signals s;
  (void)domain;  // the caller's domain matters to sample()'s drain boost,
                 // not to the observation
  reclaim::EbrDomain::for_each_domain([&s](reclaim::EbrDomain& d) {
    const auto st = d.stats();
    s.backlog += st.pending_retired;
    s.epoch_lag =
        std::max(s.epoch_lag, static_cast<std::uint32_t>(st.epoch_lag));
    s.stalled_now = s.stalled_now || st.stalled_now;
  });
  s.fallback_outstanding =
      reclaim::PoolStats::snapshot().fallback_outstanding();
  const std::uint64_t heat = contention_events();
  s.heat_delta = heat - last_heat_;
  last_heat_ = heat;
  const std::uint64_t restarts =
      obs::counter_total(obs::Counter::kValidationFallbacks) +
      obs::counter_total(obs::Counter::kBalanceRestarts) +
      obs::counter_total(obs::Counter::kRemovalLockRetries);
  s.restart_delta = restarts - last_restarts_;
  last_restarts_ = restarts;
  return s;
}

void Governor::record_transition(State from, State to, const char* cause) {
  log_[log_count_ % kLogCapacity] =
      Transition{tick_count(), from, to, cause};
  ++log_count_;
  detail::state_cell().transitions.fetch_add(1, std::memory_order_relaxed);
}

State Governor::apply_locked(const Signals& s) {
  detail::state_cell().ticks.fetch_add(1, std::memory_order_relaxed);
  lag_run_ = s.epoch_lag >= thresholds_.lag_floor ? lag_run_ + 1 : 0;

  const State cur = current_state();
  const auto cur_lvl = static_cast<unsigned>(cur);

  // Escalation is immediate and jumps straight to the demanded severity:
  // overload is when the process can least afford a slow reaction.
  const Severity entry = fuse(s, thresholds_, /*exit_side=*/false, lag_run_);
  if (entry.level > cur_lvl) {
    const auto next = static_cast<State>(entry.level);
    record_transition(cur, next, entry.cause);
    publish_state(next);
    calm_run_ = 0;
    return next;
  }

  // De-escalation needs recover_ticks consecutive samples calm against the
  // exit thresholds, then steps ONE level — a signal flapping between
  // entry and entry/2 holds the state, it cannot oscillate it.
  const Severity exit = fuse(s, thresholds_, /*exit_side=*/true, lag_run_);
  if (cur_lvl > 0 && exit.level < cur_lvl) {
    if (++calm_run_ >= thresholds_.recover_ticks) {
      const auto next = static_cast<State>(cur_lvl - 1);
      record_transition(cur, next, "recovery");
      publish_state(next);
      calm_run_ = 0;
      return next;
    }
  } else {
    calm_run_ = 0;
  }
  return cur;
}

State Governor::apply(const Signals& s) {
  std::lock_guard<std::mutex> lk(mu_);
  return apply_locked(s);
}

State Governor::sample(reclaim::EbrDomain& domain) {
  std::unique_lock<std::mutex> lk(mu_, std::try_to_lock);
  // A sample is a whole-process observation any thread can take; a caller
  // racing an in-flight sample learns nothing new by waiting for its own.
  if (!lk.owns_lock()) return current_state();
  const Signals s = sample_signals_locked(domain);
  const State next = apply_locked(s);
  lk.unlock();
  // Drain boost outside the lock: flush() walks every record and may free
  // a large backlog; other ticks can keep skipping past meanwhile.
  if (next >= State::kDegraded && policies_enabled()) domain.flush();
  return next;
}

State Governor::timed_sample(reclaim::EbrDomain& domain) {
  const std::uint64_t now = steady_us();
  std::uint64_t next = next_sample_us_.load(std::memory_order_relaxed);
  if (now < next) return current_state();
  if (!next_sample_us_.compare_exchange_strong(
          next, now + min_interval_us_.load(std::memory_order_relaxed),
          std::memory_order_relaxed)) {
    return current_state();  // another thread claimed this interval
  }
  return sample(domain);
}

std::vector<Transition> Governor::transition_log() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<Transition> out;
  const std::uint64_t n = std::min<std::uint64_t>(log_count_, kLogCapacity);
  out.reserve(static_cast<std::size_t>(n));
  const std::uint64_t start = log_count_ - n;
  for (std::uint64_t i = 0; i < n; ++i) {
    out.push_back(log_[(start + i) % kLogCapacity]);
  }
  return out;
}

void Governor::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  thresholds_ = Thresholds{};
  calm_run_ = 0;
  lag_run_ = 0;
  log_count_ = 0;
  auto& cell = detail::state_cell();
  cell.state.store(0, std::memory_order_relaxed);
  cell.transitions.store(0, std::memory_order_relaxed);
  cell.ticks.store(0, std::memory_order_relaxed);
  cell.contention_events.store(0, std::memory_order_relaxed);
  cell.policies.store(true, std::memory_order_relaxed);
  last_heat_ = 0;
  // obs counters are process-monotonic and not ours to reset; re-baseline
  // so the first post-reset delta is clean.
  last_restarts_ = obs::counter_total(obs::Counter::kValidationFallbacks) +
                   obs::counter_total(obs::Counter::kBalanceRestarts) +
                   obs::counter_total(obs::Counter::kRemovalLockRetries);
  next_sample_us_.store(0, std::memory_order_relaxed);
}

Governor& governor() {
  static Governor g;
  return g;
}

namespace detail {

void admission_pause() {
  const unsigned level = admission_backoff_level();
  thread_local sync::JitterBackoff backoff;
  if (level == 0) {
    // Policies off, or the state recovered between the gate's fast-path
    // check and here: let the window cool for the next episode.
    backoff.reset();
    return;
  }
  for (unsigned i = 0; i < level; ++i) backoff.pause();
}

}  // namespace detail

}  // namespace lot::health

#endif  // LOT_DISABLE_HEALTH
