// The overload governor: fuses the process's independent pressure signals
// — EBR backlog / epoch lag / stall watchdog, pool fallback debt,
// cross-thread contention heat, obs restart counters — into the single
// health state published through health/state.hpp, with hysteresis so a
// flapping signal cannot make the policies oscillate.
//
// Sampling model: there is no governor thread. Writers tick the governor
// on a stride (maybe_sample_tick, every kSampleStride-th write per
// thread), the tick is clock-gated (timed_sample, at most one sample per
// min_interval), and concurrent ticks resolve by try-lock — whoever loses
// simply skips, since a sample is a whole-process observation any thread
// can take. Tests drive ticks explicitly through sample()/apply() with
// the interval gate bypassed.
//
// State machine (DESIGN.md §14): each sample computes a severity per
// signal against the *entry* thresholds and escalates immediately to the
// maximum. De-escalation is one level per `recover_ticks` consecutive calm
// samples, where calm means every signal is below the *exit* thresholds
// (entry/2) — a signal flapping between entry and entry/2 therefore holds
// the state rather than oscillating it. From Critical, recovery to Healthy
// takes 3 * recover_ticks calm samples; recovery_bound() adds slack for
// the drain itself and is the bound the storm campaign asserts.
#pragma once

#include <cstdint>

#include "health/state.hpp"
#include "reclaim/ebr.hpp"

#if !defined(LOT_DISABLE_HEALTH)
#include <atomic>
#include <mutex>
#include <vector>

#include "obs/counters.hpp"
#include "sync/backoff.hpp"
#endif

namespace lot::health {

/// What obs embeds in a Snapshot. Defined in both build flavours so
/// obs/obs.hpp needs no gate of its own; the OFF build reports zeros.
struct View {
  State state = State::kHealthy;
  std::uint64_t transitions = 0;
  std::uint64_t ticks = 0;
  std::uint64_t contention_events = 0;
};

#if !defined(LOT_DISABLE_HEALTH)

/// Entry thresholds per target state (index 0 → Pressured, 1 → Degraded,
/// 2 → Critical); exit thresholds are entry/2. A value of UINT64_MAX
/// disables that signal/level (the storm campaign's negative control sets
/// everything unreachable to model the ungoverned build).
///
/// The backlog defaults sit well above a healthy churning domain's
/// steady state (~5-11k pending at 4-thread full-tilt churn with the
/// default EBR knobs — measured in EXPERIMENTS.md A10). A governor whose
/// Pressured line is inside normal operating range rides the threshold
/// and taxes fault-free throughput with backoff it was never meant to
/// apply; genuine reclamation distress (a pinned epoch under churn)
/// accumulates tens of thousands of retires per hundred milliseconds and
/// crosses these lines almost immediately. Campaigns with small working
/// sets (the storm stress) override these to match their own scale.
struct Thresholds {
  std::uint64_t backlog[3] = {32768, 131072, 524288};  // pending retired nodes
  std::uint64_t fallback[3] = {1, 8, 64};           // outstanding new-fallbacks
  std::uint64_t heat[3] = {256, 1024, 4096};        // contention events / tick
  std::uint32_t lag_floor = 2;     // epoch_lag at/above this counts as lagging
  std::uint32_t lag_ticks = 4;     // consecutive lagging ticks → Pressured
  std::uint32_t recover_ticks = 2; // calm ticks per de-escalation level
};

/// One sample's fused inputs. sample_signals() fills this from a live
/// domain; tests hand apply() synthetic ones.
struct Signals {
  std::uint64_t backlog = 0;              // EbrDomain pending_retired
  std::uint32_t epoch_lag = 0;            // epoch - min pinned epoch
  bool stalled_now = false;               // stall watchdog currently firing
  std::uint64_t fallback_outstanding = 0; // pool operator-new debt
  std::uint64_t heat_delta = 0;           // contention events since last tick
  std::uint64_t restart_delta = 0;        // obs restart counters since last tick
};

struct Transition {
  std::uint64_t tick = 0;
  State from = State::kHealthy;
  State to = State::kHealthy;
  const char* cause = "";  // dominant signal, or "recovery"
};

class Governor {
 public:
  /// Replace the thresholds (quiescent callers only; campaign setup).
  void set_thresholds(const Thresholds& t);
  Thresholds thresholds() const;

  State state() const { return current_state(); }

  /// Collect live signals, folded across EVERY registered EbrDomain —
  /// backlog sums, epoch lag and the stall flag take the worst domain —
  /// so shard-private domains (shard/sharded_map.hpp) are observed no
  /// matter which domain's writer ticks the governor. Also advances the
  /// heat/restart differencing baselines. Public so tests can inspect
  /// what a sample would see without applying it; `domain` is the
  /// caller's home domain and only directs the drain boost in sample().
  Signals sample_signals(reclaim::EbrDomain& domain);

  /// Feed one sample through the state machine. Returns the new state.
  /// Synthetic-signal entry point for the unit tests; skips the drain
  /// boost (no domain at hand).
  State apply(const Signals& s);

  /// One full governor tick: collect (all domains), apply, and — at
  /// Degraded or worse with policies enabled — boost the drain by
  /// flushing the CALLER's domain only. Each pressured domain's own
  /// writers flush it on their ticks; flushing every registered domain
  /// here would make the sampling thread acquire an EBR record in each
  /// (and overflow the fixed TLS record cache in heavily sharded
  /// processes). Concurrent callers skip (try-lock); returns the state
  /// either way.
  State sample(reclaim::EbrDomain& domain);

  /// Clock-gated sample: at most one per min_interval_us. The writers'
  /// stride tick lands here.
  State timed_sample(reclaim::EbrDomain& domain);

  void set_min_interval_us(std::uint64_t us) {
    min_interval_us_.store(us, std::memory_order_relaxed);
  }

  /// Documented recovery bound, in governor ticks: after the storm
  /// releases and signals go calm, the state machine needs at most
  /// 3 * recover_ticks calm samples from Critical, plus slack (4 ticks)
  /// for the boosted drain to get the signals below the exit thresholds.
  std::uint32_t recovery_bound() const {
    return 4 + 3 * thresholds().recover_ticks;
  }

  std::uint64_t transitions() const { return transition_count(); }
  std::uint64_t ticks() const { return tick_count(); }

  /// Copy of the transition log, oldest first (bounded ring of the most
  /// recent kLogCapacity transitions).
  std::vector<Transition> transition_log() const;

  /// Test isolation: back to Healthy, zeroed log/ticks/odometers, default
  /// thresholds, policies on. Quiescent callers only.
  void reset();

  static constexpr std::size_t kLogCapacity = 64;

 private:
  Signals sample_signals_locked(reclaim::EbrDomain& domain);
  State apply_locked(const Signals& s);
  void record_transition(State from, State to, const char* cause);

  mutable std::mutex mu_;  // serializes sample/apply/log/reset
  Thresholds thresholds_{};
  std::uint32_t calm_run_ = 0;  // consecutive calm samples at current state
  std::uint32_t lag_run_ = 0;   // consecutive lagging samples
  std::uint64_t last_heat_ = 0;     // differencing baselines
  std::uint64_t last_restarts_ = 0;
  Transition log_[kLogCapacity] = {};
  std::uint64_t log_count_ = 0;
  std::atomic<std::uint64_t> min_interval_us_{1000};
  std::atomic<std::uint64_t> next_sample_us_{0};  // steady-clock deadline
};

/// The process-wide governor (the state it publishes is process-wide, so
/// there is exactly one). Multi-domain processes tick it from whichever
/// domain their writers live in; the observation itself folds over the
/// whole domain registry — pressure anywhere is pressure everywhere.
Governor& governor();

/// Per-thread write-op stride between governor ticks. Coarse on purpose:
/// the tick itself is clock-gated, the stride only bounds how much TLS
/// arithmetic the fault-free hot path pays.
inline constexpr std::uint32_t kSampleStride = 2048;

inline void maybe_sample_tick(reclaim::EbrDomain& domain) {
  thread_local std::uint32_t countdown = 1;
  if (--countdown == 0) {
    countdown = kSampleStride;
    governor().timed_sample(domain);
  }
}

namespace detail {
/// Out-of-line slow path: bounded jittered pauses per the current
/// admission level (governor.cpp).
void admission_pause();
}  // namespace detail

/// The writer admission gate. Call *before* taking the EBR guard: a
/// backing-off writer must not pin an epoch, or the backoff would hold
/// back exactly the reclamation it is trying to help. Fault-free cost is
/// one TLS decrement plus one relaxed load.
inline void writer_gate(reclaim::EbrDomain& domain) {
  maybe_sample_tick(domain);
  if (current_state() == State::kHealthy) return;
  detail::admission_pause();
}

inline View view() {
  return View{current_state(), transition_count(), tick_count(),
              contention_events()};
}

#else  // LOT_DISABLE_HEALTH — empty types, empty inlines.

/// Kept an empty type (tests/test_health.cpp static_asserts it) so an OFF
/// build provably carries no governor state.
struct Governor {};

inline Governor& governor() {
  static Governor g;
  return g;
}

inline void maybe_sample_tick(reclaim::EbrDomain&) {}
inline void writer_gate(reclaim::EbrDomain&) {}
inline View view() { return View{}; }

#endif  // LOT_DISABLE_HEALTH

}  // namespace lot::health
