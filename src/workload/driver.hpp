// The throughput-trial driver reproducing the paper's §6 methodology:
// prefill the structure to its steady-state size running the same mix and
// thread count as the trial, then run a timed trial in which every thread
// draws operations from the spec's distribution and keys uniformly from
// the range, and report aggregate million-operations-per-second.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "check/history.hpp"
#include "obs/histogram.hpp"
#include "sync/barrier.hpp"
#include "util/random.hpp"
#include "util/stopwatch.hpp"
#include "workload/spec.hpp"

namespace lot::workload {

struct TrialResult {
  std::uint64_t total_ops = 0;
  double seconds = 0;
  double mops_per_sec = 0;
  std::uint64_t final_size = 0;
};

/// Runs the spec's operation mix from `threads` threads for `seconds`.
/// `map` must already be prefilled (see prefill()).
template <typename MapT>
TrialResult run_trial(MapT& map, const Spec& spec, unsigned threads,
                      double seconds, std::uint64_t seed) {
  std::atomic<bool> stop{false};
  std::vector<std::uint64_t> ops(threads, 0);
  sync::ThreadBarrier barrier(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(threads);

  // Scan results escape through one relaxed add per thread so the range
  // walk cannot be optimized into a no-op.
  std::atomic<std::uint64_t> scan_sink{0};

  // Skewed specs share one read-only CDF table across the workers; the
  // per-draw cost is a binary search over it.
  const std::vector<double> zipf =
      spec.zipf_s > 0 ? zipf_cdf(spec.zipf_s, spec.key_range)
                      : std::vector<double>{};

  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      using K = typename MapT::key_type;
      using V = typename MapT::mapped_type;
      util::Xoshiro256 rng(seed * 1315423911ULL + t);
      std::uint64_t local = 0;
      std::uint64_t sink = 0;
      // Hoisted out of the loop: the map calls below are opaque to the
      // optimizer, so reading the knob through `spec` per op would reload
      // it every iteration.
      const unsigned sample_every =
          obs::kEnabled ? spec.latency_sample_every : 0;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const auto key =
            zipf.empty()
                ? static_cast<std::int64_t>(rng.next_below(
                      static_cast<std::uint64_t>(spec.key_range)))
                : zipf_draw(zipf, rng.next());
        const auto dice = rng.next_below(100);
        // Timing every op would put two clock reads on the hot path and
        // drown the structure's own cost; sample 1-in-N per worker instead.
        // Driver-level timing covers the baselines too, not just lot maps.
        const bool sampled = sample_every != 0 && local % sample_every == 0;
        if (dice < spec.contains_pct) {
          obs::ScopedLatency lat(obs::OpKind::kContains, sampled);
          map.contains(key);
        } else if (dice < spec.contains_pct + spec.insert_pct) {
          obs::ScopedLatency lat(obs::OpKind::kInsert, sampled);
          map.insert(key, key);
        } else if (dice < spec.contains_pct + spec.insert_pct +
                              spec.remove_pct) {
          obs::ScopedLatency lat(obs::OpKind::kErase, sampled);
          map.erase(key);
        } else {
          // Range scan over [key, key + scan_len). Implementations without
          // the ordered surface (hash-style baselines) degrade to a point
          // lookup so mixed specs still run everywhere.
          if constexpr (requires {
                          map.range(key, key, [](const K&, const V&) {});
                        }) {
            obs::ScopedLatency lat(obs::OpKind::kScan, sampled);
            map.range(key, key + spec.scan_len,
                      [&sink](const K& k, const V&) {
                        sink += static_cast<std::uint64_t>(k);
                      });
          } else {
            obs::ScopedLatency lat(obs::OpKind::kContains, sampled);
            map.contains(key);
          }
        }
        ++local;
      }
      ops[t] = local;
      scan_sink.fetch_add(sink, std::memory_order_relaxed);
    });
  }

  util::Stopwatch watch;
  barrier.arrive_and_wait();
  watch.restart();
  while (watch.elapsed_seconds() < seconds) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  const double elapsed = watch.elapsed_seconds();
  for (auto& w : workers) w.join();

  TrialResult r;
  for (auto o : ops) r.total_ops += o;
  r.seconds = elapsed;
  r.mops_per_sec = static_cast<double>(r.total_ops) / elapsed / 1e6;
  return r;
}

/// History-capture mode: the trial's operation mix with every operation
/// recorded into `rec` for offline linearizability checking (src/check/).
/// Ops-bounded rather than time-bounded so the per-thread log capacity can
/// be sized up front (rec must hold `threads` logs of >= ops_per_thread
/// events). The same mix/key distribution as run_trial; throughput numbers
/// from recorded runs are NOT comparable to unrecorded ones — the logical
/// clock is a shared atomic the paper's hot path does not have.
template <typename MapT>
TrialResult run_recorded_trial(
    MapT& map, const Spec& spec, unsigned threads,
    std::uint64_t ops_per_thread, std::uint64_t seed,
    check::HistoryRecorder<typename MapT::key_type>& rec) {
  using K = typename MapT::key_type;
  sync::ThreadBarrier barrier(threads + 1);
  std::vector<std::thread> workers;
  workers.reserve(threads);

  const std::vector<double> zipf =
      spec.zipf_s > 0 ? zipf_cdf(spec.zipf_s, spec.key_range)
                      : std::vector<double>{};

  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(seed * 1315423911ULL + t);
      barrier.arrive_and_wait();
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        const auto key =
            zipf.empty()
                ? static_cast<K>(rng.next_below(
                      static_cast<std::uint64_t>(spec.key_range)))
                : static_cast<K>(zipf_draw(zipf, rng.next()));
        const auto dice = rng.next_below(100);
        if (dice < spec.contains_pct) {
          rec.record(t, check::Op::kContains, key,
                     [&] { return map.contains(key); });
        } else if (dice < spec.contains_pct + spec.insert_pct) {
          rec.record(t, check::Op::kInsert, key,
                     [&] { return map.insert(key, key); });
        } else if (dice < spec.contains_pct + spec.insert_pct +
                              spec.remove_pct) {
          rec.record(t, check::Op::kRemove, key,
                     [&] { return map.erase(key); });
        } else {
          // Recorded range scan: the recorder decomposes the observed key
          // set into per-key contains observations (check/history.hpp).
          if constexpr (requires {
                          map.range(key, key,
                                    [](const K&, const
                                       typename MapT::mapped_type&) {});
                        }) {
            rec.record_scan(t, key, static_cast<K>(key + spec.scan_len),
                            [&](const K& lo, const K& hi, auto&& sink) {
                              map.range(lo, hi, sink);
                            });
          } else {
            rec.record(t, check::Op::kContains, key,
                       [&] { return map.contains(key); });
          }
        }
      }
    });
  }

  util::Stopwatch watch;
  barrier.arrive_and_wait();
  watch.restart();
  for (auto& w : workers) w.join();

  TrialResult r;
  r.total_ops = static_cast<std::uint64_t>(threads) * ops_per_thread;
  r.seconds = watch.elapsed_seconds();
  r.mops_per_sec = static_cast<double>(r.total_ops) / r.seconds / 1e6;
  return r;
}

/// Prefills to the spec's steady-state size. The paper prefills "running
/// the same workload until reaching the desired size" — but the desired
/// size *is* the mix's fixed point, where the net growth of that process
/// is zero and convergence degenerates into an unbiased random walk
/// (hours for the 2e6 range). We keep the spirit with bounded time:
///   phase 1: parallel random inserts straight to the target size;
///   phase 2: one target-sized round of the trial's own update mix, so
///            the physical shape (rotation history, zombie population,
///            node placement) matches the steady-state process.
template <typename MapT>
void prefill(MapT& map, const Spec& spec, unsigned threads,
             std::uint64_t seed) {
  const auto target = static_cast<std::uint64_t>(spec.prefill_target());
  if (target == 0) return;
  // Skewed specs prefill from the same distribution as the trial, so the
  // steady-state population (hot set resident, sparse tail) matches.
  const std::vector<double> zipf =
      spec.zipf_s > 0 ? zipf_cdf(spec.zipf_s, spec.key_range)
                      : std::vector<double>{};
  std::atomic<std::uint64_t> inserted{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(seed * 2654435761ULL + t);
      while (inserted.load(std::memory_order_relaxed) < target) {
        const auto key =
            zipf.empty()
                ? static_cast<std::int64_t>(rng.next_below(
                      static_cast<std::uint64_t>(spec.key_range)))
                : zipf_draw(zipf, rng.next());
        if (map.insert(key, key)) inserted.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  workers.clear();

  if (spec.insert_pct + spec.remove_pct == 0) return;
  const unsigned insert_share =
      100u * spec.insert_pct / (spec.insert_pct + spec.remove_pct);
  const std::uint64_t per_thread = target / threads + 1;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      util::Xoshiro256 rng(seed * 40503ULL + t);
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        const auto key =
            zipf.empty()
                ? static_cast<std::int64_t>(rng.next_below(
                      static_cast<std::uint64_t>(spec.key_range)))
                : zipf_draw(zipf, rng.next());
        if (rng.next_below(100) < insert_share) {
          map.insert(key, key);
        } else {
          map.erase(key);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace lot::workload
