// Workload specification mirroring the paper's evaluation (§6): an
// operation mix (contains/insert/remove percentages), a key range, and the
// prefill discipline.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace lot::workload {

struct Spec {
  std::string name;        // e.g. "70C-20I-10R"
  unsigned contains_pct;   // percentage of contains ops
  unsigned insert_pct;     // percentage of insert ops
  unsigned remove_pct;     // percentage of remove ops
  std::int64_t key_range;  // keys drawn uniformly from [0, key_range)

  // Range-scan mixing (PR 4's ordered layer; not part of the paper's own
  // mixes, which is why these default to zero and sit after the aggregate
  // fields the paper mixes initialize). When scan_pct > 0, that share of
  // the dice budget is taken from the *tail* of the distribution (after
  // contains/insert/remove), and each scan walks range(key, key+scan_len).
  unsigned scan_pct = 0;       // percentage of range-scan ops
  std::int64_t scan_len = 64;  // keys spanned per scan: [k, k+scan_len)

  // Latency sampling (obs/ layer): when nonzero, every Nth operation per
  // worker is timed into the per-op-kind histograms. 0 disables sampling
  // entirely (no clock reads on the hot path).
  unsigned latency_sample_every = 0;

  // Key-distribution skew (bench/ablation_restart.cpp's contended arms).
  // 0 keeps the paper's uniform draw; s > 0 draws keys Zipf(s)-ranked over
  // [0, key_range) — rank 0 hottest — via a CDF table the driver builds
  // once per trial (zipf_cdf below). Low ranks are adjacent keys, so the
  // hot set also shares tree intervals, concentrating write contention.
  double zipf_s = 0.0;

  /// Steady-state size the structure is prefilled to before the timed
  /// trial. The paper fills to 1/2 of the range for symmetric mixes and to
  /// 2/3 for the 2:1 insert:remove mix (the expected steady-state size).
  std::int64_t prefill_target() const {
    if (insert_pct == remove_pct) return key_range / 2;
    const double ratio = static_cast<double>(insert_pct) /
                         static_cast<double>(insert_pct + remove_pct);
    return static_cast<std::int64_t>(static_cast<double>(key_range) * ratio);
  }
};

/// Normalized cumulative distribution of Zipf(s) over ranks 0..n-1:
/// cdf[i] = P(rank <= i), cdf[n-1] == 1.0. Built once per trial — the
/// per-draw cost is a binary search, no pow() on the hot path.
std::vector<double> zipf_cdf(double s, std::int64_t n);

/// Maps one uniform 64-bit draw through the CDF table to a key rank.
inline std::int64_t zipf_draw(const std::vector<double>& cdf,
                              std::uint64_t bits) {
  // Top 53 bits -> uniform double in [0, 1).
  const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return it == cdf.end() ? static_cast<std::int64_t>(cdf.size()) - 1
                         : static_cast<std::int64_t>(it - cdf.begin());
}

/// The three mixes evaluated in the paper.
enum class Mix { k100C, k70C20I10R, k50C25I25R };

Spec make_spec(Mix mix, std::int64_t key_range);
std::string mix_name(Mix mix);

/// The paper's key ranges: 2e4, 2e5, 2e6.
std::vector<std::int64_t> paper_key_ranges();

/// All paper mixes in the order of Table 1's columns.
std::vector<Mix> paper_mixes();

}  // namespace lot::workload
