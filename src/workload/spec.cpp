#include "workload/spec.hpp"

#include <cmath>

namespace lot::workload {

std::vector<double> zipf_cdf(double s, std::int64_t n) {
  std::vector<double> cdf(static_cast<std::size_t>(n > 0 ? n : 1), 1.0);
  double sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[static_cast<std::size_t>(i)] = sum;
  }
  for (auto& c : cdf) c /= sum;
  // Guard the binary search against floating-point shortfall at the tail.
  cdf.back() = 1.0;
  return cdf;
}

Spec make_spec(Mix mix, std::int64_t key_range) {
  switch (mix) {
    case Mix::k100C:
      return {"100C-0I-0R", 100, 0, 0, key_range};
    case Mix::k70C20I10R:
      return {"70C-20I-10R", 70, 20, 10, key_range};
    case Mix::k50C25I25R:
      return {"50C-25I-25R", 50, 25, 25, key_range};
  }
  return {"100C-0I-0R", 100, 0, 0, key_range};
}

std::string mix_name(Mix mix) { return make_spec(mix, 0).name; }

std::vector<std::int64_t> paper_key_ranges() {
  return {20'000, 200'000, 2'000'000};
}

std::vector<Mix> paper_mixes() {
  return {Mix::k50C25I25R, Mix::k70C20I10R, Mix::k100C};
}

}  // namespace lot::workload
