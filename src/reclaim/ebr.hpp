// Epoch-based memory reclamation (EBR).
//
// The logical-ordering trees (and the lock-free baselines) traverse nodes
// without holding locks, including nodes that have already been unlinked.
// The paper's Java implementation leans on the JVM garbage collector for
// this; in C++ we must guarantee ourselves that a node is not freed while
// some thread may still dereference it. EBR provides exactly that:
//
//  * every operation executes under a Guard, which pins the thread to the
//    current global epoch;
//  * removed nodes are retire()d, not deleted; a retired node is freed only
//    once the global epoch has advanced twice past its retirement epoch,
//    which implies every guard that could have seen the node has ended.
//
// The domain owns a pool of per-thread records, organised as a chain of
// fixed-size chunks that grows on demand — oversubscription past the
// initial kMaxThreads slots allocates another chunk instead of aborting.
// A thread lazily acquires a record on first use and caches it in a
// thread-local table; the record (and any not-yet-freed retired objects in
// it) returns to the pool when the thread exits, so no memory is orphaned.
//
// Hardening (DESIGN.md §9 failure model):
//  * stall watchdog — a record pinned at the same epoch across
//    stall_strike_limit failed advance attempts (i.e. across that many
//    retire cycles) is flagged, with owner diagnostics surfaced through
//    stats(); the flag clears when the straggler unpins.
//  * backlog backpressure — a retire that finds its record's list beyond
//    backlog_high_water forces advance+free regardless of the scan
//    threshold, so a drained stall collapses the backlog promptly and a
//    healthy domain can never accumulate more than one high-water mark of
//    garbage per thread.
//  * quiescent steal — flush() adopts the retired lists of records whose
//    owner threads have exited, so their backlog drains through the
//    caller's normal retire cycles instead of waiting for reacquisition.
//  * OOM-safe bookkeeping — if growing a retire list throws bad_alloc the
//    domain frees eligible entries in place to make room and, in the
//    degenerate fully-pinned-and-OOM case, deliberately leaks the one
//    object (counted in stats) rather than risk use-after-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "reclaim/alloc_stats.hpp"
#include "sync/cacheline.hpp"

namespace lot::reclaim {

class EbrDomain {
 public:
  /// Record slots per pool chunk (and the initial pool capacity). More
  /// simultaneous threads than this grow the pool instead of failing.
  static constexpr std::size_t kMaxThreads = 64;
  static constexpr std::size_t kDefaultRetireThreshold = 128;
  /// Per-record retired-list length beyond which every retire forces an
  /// advance+free attempt (backpressure), bypassing the scan threshold.
  static constexpr std::size_t kDefaultBacklogHighWater = 4096;
  /// Failed advance attempts against the same pinned epoch before the
  /// stall watchdog flags the record.
  static constexpr std::uint32_t kDefaultStallStrikeLimit = 64;
  /// Wall-clock persistence a strike episode must ALSO show before it is
  /// reported. Strike counts alone are attempt-rate-dependent: at
  /// full-tilt churn the retire paths attempt advances so often that a
  /// healthy microseconds-long pin can eat the whole strike limit; a
  /// genuinely wedged straggler is distinguished by the episode's age,
  /// not its attempt count. The default sits above the round-robin
  /// latency of an oversubscribed-but-healthy box (threads × scheduler
  /// slice can reach tens of ms on small CI machines) so routine
  /// preemption does not flap the governor; a genuinely wedged reader is
  /// stuck for far longer, and the epoch-lag persistence signal in the
  /// governor covers the window below this line. 0 restores attempt-only
  /// semantics (tests).
  static constexpr std::uint64_t kDefaultStallReportUs = 50'000;
  /// While a straggler pins the epoch, only every N-th over-high-water
  /// retire pays for the forced advance attempt (the attempt is a full
  /// O(record_capacity) scan that is doomed until the straggler moves);
  /// any epoch movement re-arms an immediate attempt so a drained stall
  /// still collapses the backlog promptly.
  static constexpr std::size_t kDefaultBackpressureStride = 16;

  EbrDomain();
  ~EbrDomain();
  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  /// Process-wide default domain shared by all trees unless a test passes
  /// its own.
  static EbrDomain& global_domain();

  /// Enumerates every live domain (including global_domain() once it has
  /// been touched) under the registry mutex — safe against concurrent
  /// construction/destruction because the destructor unregisters *before*
  /// it starts tearing the domain down. Multi-domain consumers (the
  /// overload governor, the obs snapshot) use this instead of assuming
  /// the global domain is the only one; sharded maps register one domain
  /// per shard. `fn` must not construct or destroy domains (deadlock).
  template <typename F>
  static void for_each_domain(F&& fn) {
    for_each_domain_impl(
        [](EbrDomain& d, void* ctx) { (*static_cast<F*>(ctx))(d); },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }
  static std::size_t live_domain_count();

  /// Stable identity for this domain incarnation (registry uids start at
  /// 1 and never repeat, even if a new domain reuses this address).
  std::uint64_t uid() const { return uid_; }

  /// Shard-scoped contention odometers (ROADMAP 2(c)). The write paths'
  /// heat accounting (lo/rebalance.hpp) attributes contention events and
  /// deferred rotations to the domain the structure retires through, so a
  /// hot shard's pressure is visible per shard instead of dissolving into
  /// one process-wide number. Relaxed: these are monotonic telemetry.
  void note_contention_event() {
    contention_events_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_rotation_deferred() {
    rotations_deferred_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t contention_events() const {
    return contention_events_.load(std::memory_order_relaxed);
  }
  std::uint64_t rotations_deferred() const {
    return rotations_deferred_.load(std::memory_order_relaxed);
  }

  class Guard;

  /// RAII epoch pin. Re-entrant: nested guards on the same thread are
  /// cheap (a depth increment). A thread's first guard on a domain may
  /// throw std::bad_alloc if the record pool must grow and the allocator
  /// refuses; no domain state changes in that case.
  Guard guard();

  /// Defers `delete_counted(p)` until no guard can reference `p`.
  template <typename T>
  void retire(T* p) {
    retire_raw(p, [](void* q) {
      AllocStats::freed().fetch_add(1, std::memory_order_relaxed);
      delete static_cast<T*>(q);
    });
  }

  /// Defers `Alloc::destroy(p)` until no guard can reference `p` — how the
  /// trees return nodes to whatever allocation policy created them
  /// (reclaim/pool.hpp). With the pool policy the grace period is what
  /// makes slot recycling safe: the slot re-enters a free list only after
  /// every guard that could reach the node has ended, so the pool itself
  /// needs no quarantine of its own. The deleter runs on whichever thread
  /// drains the backlog, which is why the pool's cross-thread free path
  /// (remote-free stacks) is the common case, not the exception.
  template <typename Alloc, typename T>
  void retire_via(T* p) {
    retire_raw(p, [](void* q) { Alloc::template destroy<T>(static_cast<T*>(q)); });
  }

  /// Type-erased variant; `deleter` must be callable from any thread.
  void retire_raw(void* p, void (*deleter)(void*));

  /// Attempts to advance the epoch and free everything eligible, from every
  /// record. Call at quiescence (no active guards) to reach a clean state;
  /// with active guards it frees what it safely can. Retired lists left
  /// behind by exited threads are stolen into the caller's record so they
  /// keep draining through normal retire cycles.
  void flush();

  /// Number of retired-but-not-yet-freed objects (approximate under
  /// concurrency; exact at quiescence).
  std::size_t pending_retired() const;

  /// Lower threshold = more frequent reclamation attempts. Exposed for the
  /// failure-injection tests which force reclamation on every retire.
  void set_retire_threshold(std::size_t n) {
    retire_threshold_.store(n, std::memory_order_relaxed);
  }

  /// Backpressure knob: per-record backlog length beyond which every
  /// retire forces an advance+free attempt.
  void set_backlog_high_water(std::size_t n) {
    backlog_high_water_.store(n, std::memory_order_relaxed);
  }

  /// Watchdog knob: failed advances against one pinned epoch before the
  /// record is reported stalled.
  void set_stall_strike_limit(std::uint32_t n) {
    stall_strike_limit_.store(n, std::memory_order_relaxed);
  }

  /// Watchdog knob: minimum age (µs) of a strike episode before it may be
  /// reported. 0 = attempt-count-only (deterministic test mode).
  void set_stall_report_us(std::uint64_t us) {
    stall_report_us_.store(us, std::memory_order_relaxed);
  }

  /// Amortization knob for the backpressure path: over-high-water retires
  /// between forced advance attempts while the epoch is stuck (1 restores
  /// the attempt-per-retire seed behaviour).
  void set_backpressure_stride(std::size_t n) {
    backpressure_stride_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }

  std::uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  /// Point-in-time snapshot of the domain's health counters. Counters are
  /// monotonic; the stalled_* diagnostics describe the most recent
  /// watchdog episode (stalled_now says whether it is still in progress).
  struct Stats {
    std::uint64_t epoch = 0;
    /// Oldest epoch any guard currently pins (0 when nothing is pinned)
    /// and its distance from the global epoch. A lag that keeps growing
    /// is the signature of a stalled reader holding reclamation back —
    /// the leading indicator the stall watchdog later confirms.
    std::uint64_t min_pinned_epoch = 0;
    std::uint64_t epoch_lag = 0;
    std::size_t pending_retired = 0;
    /// High-water mark of any single record's retired-list length (the
    /// quantity backlog_high_water throttles); monotonic.
    std::size_t backlog_peak = 0;
    std::size_t records_in_use = 0;
    std::size_t record_capacity = 0;
    std::uint64_t pool_growths = 0;       // extra chunks allocated
    std::uint64_t backpressure_hits = 0;  // forced advance+free retires
    /// Over-high-water retires that skipped the forced advance because the
    /// epoch was stuck and the record was inside its stride cooldown.
    std::uint64_t backpressure_throttled = 0;
    std::uint64_t backlog_steals = 0;     // entries adopted by flush()
    std::uint64_t emergency_leaks = 0;    // OOM'd retire bookkeeping
    std::uint64_t stall_watchdog_fires = 0;
    /// Shard-scoped contention odometers (note_contention_event /
    /// note_rotation_deferred) — per-domain views of what the obs-layer
    /// counters report process-wide.
    std::uint64_t contention_events = 0;
    std::uint64_t rotations_deferred = 0;
    bool stalled_now = false;
    std::size_t stalled_record = static_cast<std::size_t>(-1);
    std::uint64_t stalled_epoch = 0;  // the epoch the straggler pins
    std::uint64_t stalled_owner = 0;  // hashed owner thread id
    // Slab-pool allocator health (process-global, reclaim/alloc_stats.hpp)
    // in the same snapshot, so a reclamation stall and the allocation
    // pressure it causes are visible side by side.
    PoolSnapshot pool;
  };
  Stats stats() const;

 private:
  static void for_each_domain_impl(void (*fn)(EbrDomain&, void*), void* ctx);

  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  struct alignas(sync::kCacheLineSize) Record {
    std::atomic<std::uint64_t> pinned_epoch{0};  // 0 = not pinned
    std::atomic<bool> in_use{false};
    unsigned guard_depth = 0;        // owner thread only
    // `retired` is mutated by the owning thread and swept by flush();
    // list_lock arbitrates between them (uncontended on the owner's fast
    // path — flush only try-locks records with a live owner). retired_count
    // mirrors retired.size() so monitoring reads (stats, pending_retired,
    // the backpressure check) never touch the vector itself.
    std::atomic_flag list_lock = ATOMIC_FLAG_INIT;
    std::atomic<std::size_t> retired_count{0};
    std::vector<Retired> retired;
    std::size_t since_last_scan = 0; // owner thread only
    // Backpressure amortization (owner thread only): retires left before
    // the next forced advance attempt, and the epoch the last attempt
    // observed — any movement re-arms an immediate attempt.
    std::size_t bp_cooldown = 0;
    std::uint64_t bp_last_epoch = 0;
    // Epoch free_eligible last scanned this list at. A rescan at the same
    // epoch is provably a no-op (entries pushed since carry the current
    // epoch, never ≤ epoch-2), so the retire paths skip it — without this
    // the backpressure path degrades to an O(backlog) scan per retire
    // while a straggler holds the epoch still. Zeroed when flush() steals
    // into (or hands back) a list, since spliced entries carry old epochs.
    std::atomic<std::uint64_t> last_scan_epoch{0};
    // Watchdog state: how many failed advances observed this record pinned
    // at stall_epoch_seen, when that episode began (steady µs), and
    // whether it was already reported.
    std::atomic<std::uint64_t> stall_epoch_seen{0};
    std::atomic<std::uint64_t> stall_since_us{0};
    std::atomic<std::uint32_t> stall_strikes{0};
    std::atomic<bool> stall_reported{false};
    std::atomic<std::uint64_t> owner{0};  // hashed owner thread id
  };

  /// The record pool grows by whole chunks; records never move, so cached
  /// pointers and in-flight scans stay valid. The `next` links are seq_cst
  /// on both sides: a scanner whose seq_cst loads follow a record's
  /// seq_cst pin in the total order is then guaranteed to observe the
  /// chunk publication that preceded the pin, so try_advance can never
  /// miss a pinned record in a freshly grown chunk.
  struct RecordChunk {
    Record records[kMaxThreads];
    std::atomic<RecordChunk*> next{nullptr};
  };

  Record* acquire_record();
  void pin(Record& rec);
  void unpin(Record& rec);
  bool try_advance();
  void note_stall(Record& rec, std::size_t index, std::uint64_t pinned);
  static void lock_list(Record& rec) {
    while (rec.list_lock.test_and_set(std::memory_order_acquire)) {
    }
  }
  static bool try_lock_list(Record& rec) {
    return !rec.list_lock.test_and_set(std::memory_order_acquire);
  }
  static void unlock_list(Record& rec) {
    rec.list_lock.clear(std::memory_order_release);
  }
  void free_eligible(Record& rec);         // takes list_lock
  void free_eligible_locked(Record& rec);  // caller holds list_lock
  /// push_back with the OOM fallback described in the header comment.
  /// Returns false iff the object had to be leaked. Caller holds list_lock.
  bool push_retired(Record& rec, const Retired& r);
  void release_record_of_exiting_thread(Record* rec);

  template <typename F>
  void for_each_record(F&& fn) {
    std::size_t index = 0;
    for (RecordChunk* c = &head_chunk_; c != nullptr;
         c = c->next.load(std::memory_order_seq_cst)) {
      for (auto& rec : c->records) fn(rec, index++);
    }
  }
  template <typename F>
  void for_each_record(F&& fn) const {
    const_cast<EbrDomain*>(this)->for_each_record(
        [&fn](Record& rec, std::size_t i) {
          fn(static_cast<const Record&>(rec), i);
        });
  }

  std::atomic<std::uint64_t> global_epoch_{1};
  std::uint64_t uid_;  // distinguishes reincarnated domains at one address
  std::atomic<std::size_t> retire_threshold_{kDefaultRetireThreshold};
  std::atomic<std::size_t> backlog_high_water_{kDefaultBacklogHighWater};
  std::atomic<std::uint32_t> stall_strike_limit_{kDefaultStallStrikeLimit};
  std::atomic<std::uint64_t> stall_report_us_{kDefaultStallReportUs};
  std::atomic<std::size_t> backpressure_stride_{kDefaultBackpressureStride};
  RecordChunk head_chunk_;

  // Health counters (stats()).
  std::atomic<std::uint64_t> pool_growths_{0};
  std::atomic<std::size_t> backlog_peak_{0};
  std::atomic<std::uint64_t> backpressure_hits_{0};
  std::atomic<std::uint64_t> backpressure_throttled_{0};
  std::atomic<std::uint64_t> backlog_steals_{0};
  std::atomic<std::uint64_t> emergency_leaks_{0};
  std::atomic<std::uint64_t> stall_fires_{0};
  std::atomic<std::size_t> stalled_record_{static_cast<std::size_t>(-1)};
  std::atomic<std::uint64_t> stalled_epoch_{0};
  std::atomic<std::uint64_t> stalled_owner_{0};
  std::atomic<std::uint64_t> contention_events_{0};
  std::atomic<std::uint64_t> rotations_deferred_{0};

  friend class Guard;
  friend struct TlsCache;
};

class EbrDomain::Guard {
 public:
  Guard(Guard&& o) noexcept : domain_(o.domain_), rec_(o.rec_) {
    o.rec_ = nullptr;
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
  ~Guard() {
    if (rec_ != nullptr && --rec_->guard_depth == 0) domain_->unpin(*rec_);
  }

 private:
  Guard(EbrDomain* d, Record* r) : domain_(d), rec_(r) {}
  EbrDomain* domain_;
  Record* rec_;
  friend class EbrDomain;
};

}  // namespace lot::reclaim
