// Epoch-based memory reclamation (EBR).
//
// The logical-ordering trees (and the lock-free baselines) traverse nodes
// without holding locks, including nodes that have already been unlinked.
// The paper's Java implementation leans on the JVM garbage collector for
// this; in C++ we must guarantee ourselves that a node is not freed while
// some thread may still dereference it. EBR provides exactly that:
//
//  * every operation executes under a Guard, which pins the thread to the
//    current global epoch;
//  * removed nodes are retire()d, not deleted; a retired node is freed only
//    once the global epoch has advanced twice past its retirement epoch,
//    which implies every guard that could have seen the node has ended.
//
// The domain owns a fixed pool of per-thread records. A thread lazily
// acquires a record on first use and caches it in a thread-local table;
// the record (and any not-yet-freed retired objects in it) returns to the
// pool when the thread exits, so no memory is orphaned.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "reclaim/alloc_stats.hpp"
#include "sync/cacheline.hpp"

namespace lot::reclaim {

class EbrDomain {
 public:
  static constexpr std::size_t kMaxThreads = 64;
  static constexpr std::size_t kDefaultRetireThreshold = 128;

  EbrDomain();
  ~EbrDomain();
  EbrDomain(const EbrDomain&) = delete;
  EbrDomain& operator=(const EbrDomain&) = delete;

  /// Process-wide default domain shared by all trees unless a test passes
  /// its own.
  static EbrDomain& global_domain();

  class Guard;

  /// RAII epoch pin. Re-entrant: nested guards on the same thread are
  /// cheap (a depth increment).
  Guard guard();

  /// Defers `delete_counted(p)` until no guard can reference `p`.
  template <typename T>
  void retire(T* p) {
    retire_raw(p, [](void* q) {
      AllocStats::freed().fetch_add(1, std::memory_order_relaxed);
      delete static_cast<T*>(q);
    });
  }

  /// Type-erased variant; `deleter` must be callable from any thread.
  void retire_raw(void* p, void (*deleter)(void*));

  /// Attempts to advance the epoch and free everything eligible, from every
  /// record. Call at quiescence (no active guards) to reach a clean state;
  /// with active guards it frees what it safely can.
  void flush();

  /// Number of retired-but-not-yet-freed objects (approximate under
  /// concurrency; exact at quiescence).
  std::size_t pending_retired() const;

  /// Lower threshold = more frequent reclamation attempts. Exposed for the
  /// failure-injection tests which force reclamation on every retire.
  void set_retire_threshold(std::size_t n) { retire_threshold_ = n; }

  std::uint64_t epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

 private:
  struct Retired {
    void* ptr;
    void (*deleter)(void*);
    std::uint64_t epoch;
  };

  struct alignas(sync::kCacheLineSize) Record {
    std::atomic<std::uint64_t> pinned_epoch{0};  // 0 = not pinned
    std::atomic<bool> in_use{false};
    unsigned guard_depth = 0;        // owner thread only
    std::vector<Retired> retired;    // owner thread, or domain at flush
    std::size_t since_last_scan = 0; // owner thread only
  };

  Record* acquire_record();
  void pin(Record& rec);
  void unpin(Record& rec);
  bool try_advance();
  void free_eligible(Record& rec);
  void release_record_of_exiting_thread(Record* rec);

  std::atomic<std::uint64_t> global_epoch_{1};
  std::uint64_t uid_;  // distinguishes reincarnated domains at one address
  std::size_t retire_threshold_ = kDefaultRetireThreshold;
  Record records_[kMaxThreads];

  friend class Guard;
  friend struct TlsCache;
};

class EbrDomain::Guard {
 public:
  Guard(Guard&& o) noexcept : domain_(o.domain_), rec_(o.rec_) {
    o.rec_ = nullptr;
  }
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
  ~Guard() {
    if (rec_ != nullptr && --rec_->guard_depth == 0) domain_->unpin(*rec_);
  }

 private:
  Guard(EbrDomain* d, Record* r) : domain_(d), rec_(r) {}
  EbrDomain* domain_;
  Record* rec_;
  friend class EbrDomain;
};

}  // namespace lot::reclaim
