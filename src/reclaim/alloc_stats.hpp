// Global allocation counters used by the memory-footprint experiments
// (DESIGN.md ablation A2: on-time deletion vs "zombie" logical removal).
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <utility>

namespace lot::reclaim {

struct AllocStats {
  static std::atomic<std::uint64_t>& allocated() {
    static std::atomic<std::uint64_t> v{0};
    return v;
  }
  static std::atomic<std::uint64_t>& freed() {
    static std::atomic<std::uint64_t> v{0};
    return v;
  }

  static std::uint64_t live() {
    return allocated().load(std::memory_order_relaxed) -
           freed().load(std::memory_order_relaxed);
  }

  static void reset() {
    allocated().store(0, std::memory_order_relaxed);
    freed().store(0, std::memory_order_relaxed);
  }
};

/// Point-in-time copy of the global pool counters (see PoolStats). Plain
/// integers so it can be embedded in other snapshot structs
/// (EbrDomain::Stats) and compared across checkpoints in tests.
struct PoolSnapshot {
  std::uint64_t slabs = 0;            // slab chunks carved from the OS
  std::uint64_t allocs = 0;           // slots handed out (excludes fallback)
  std::uint64_t frees = 0;            // slots returned (excludes fallback)
  std::uint64_t remote_frees = 0;     // frees routed via a remote-free stack
  std::uint64_t harvests = 0;         // owner sweeps that drained a remote stack
  std::uint64_t fallback_allocs = 0;  // operator-new fallback allocations
  std::uint64_t fallback_frees = 0;
  std::uint64_t caches_created = 0;   // fresh per-thread caches
  std::uint64_t caches_adopted = 0;   // orphaned caches re-used by new threads
  std::uint64_t emergency_grants = 0; // pre-armed reserve slabs consumed

  std::uint64_t live_slots() const { return allocs - frees; }
  /// Operator-new fallback debt still outstanding — a pressure gauge: the
  /// pool is living beyond its slabs for exactly this many nodes.
  std::uint64_t fallback_outstanding() const {
    return fallback_allocs - fallback_frees;
  }
};

/// Global counters for the slab/pool allocator (reclaim/pool.hpp),
/// aggregated across every SizePool instance — the pool-side companion of
/// the node-count counters above. Exported through EbrDomain::stats() so
/// reclamation monitoring sees allocation health in the same snapshot.
struct PoolStats {
#define LOT_POOL_COUNTER(name)                       \
  static std::atomic<std::uint64_t>& name() {        \
    static std::atomic<std::uint64_t> v{0};          \
    return v;                                        \
  }
  LOT_POOL_COUNTER(slabs)
  LOT_POOL_COUNTER(allocs)
  LOT_POOL_COUNTER(frees)
  LOT_POOL_COUNTER(remote_frees)
  LOT_POOL_COUNTER(harvests)
  LOT_POOL_COUNTER(fallback_allocs)
  LOT_POOL_COUNTER(fallback_frees)
  LOT_POOL_COUNTER(caches_created)
  LOT_POOL_COUNTER(caches_adopted)
  LOT_POOL_COUNTER(emergency_grants)
#undef LOT_POOL_COUNTER

  static PoolSnapshot snapshot() {
    PoolSnapshot s;
    s.slabs = slabs().load(std::memory_order_relaxed);
    s.allocs = allocs().load(std::memory_order_relaxed);
    s.frees = frees().load(std::memory_order_relaxed);
    s.remote_frees = remote_frees().load(std::memory_order_relaxed);
    s.harvests = harvests().load(std::memory_order_relaxed);
    s.fallback_allocs = fallback_allocs().load(std::memory_order_relaxed);
    s.fallback_frees = fallback_frees().load(std::memory_order_relaxed);
    s.caches_created = caches_created().load(std::memory_order_relaxed);
    s.caches_adopted = caches_adopted().load(std::memory_order_relaxed);
    s.emergency_grants = emergency_grants().load(std::memory_order_relaxed);
    return s;
  }
};

/// Counted allocation used for all tree nodes so experiments can observe
/// live-node counts without instrumenting every implementation separately.
/// The count moves only after `new` succeeds: a throwing allocation must
/// leave the counters balanced or every OOM would fake a leak.
template <typename T, typename... Args>
T* make_counted(Args&&... args) {
  T* p = new T(std::forward<Args>(args)...);
  AllocStats::allocated().fetch_add(1, std::memory_order_relaxed);
  return p;
}

template <typename T>
void delete_counted(T* p) {
  if (p == nullptr) return;
  AllocStats::freed().fetch_add(1, std::memory_order_relaxed);
  delete p;
}

}  // namespace lot::reclaim
