// Global allocation counters used by the memory-footprint experiments
// (DESIGN.md ablation A2: on-time deletion vs "zombie" logical removal).
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <utility>

namespace lot::reclaim {

struct AllocStats {
  static std::atomic<std::uint64_t>& allocated() {
    static std::atomic<std::uint64_t> v{0};
    return v;
  }
  static std::atomic<std::uint64_t>& freed() {
    static std::atomic<std::uint64_t> v{0};
    return v;
  }

  static std::uint64_t live() {
    return allocated().load(std::memory_order_relaxed) -
           freed().load(std::memory_order_relaxed);
  }

  static void reset() {
    allocated().store(0, std::memory_order_relaxed);
    freed().store(0, std::memory_order_relaxed);
  }
};

/// Counted allocation used for all tree nodes so experiments can observe
/// live-node counts without instrumenting every implementation separately.
/// The count moves only after `new` succeeds: a throwing allocation must
/// leave the counters balanced or every OOM would fake a leak.
template <typename T, typename... Args>
T* make_counted(Args&&... args) {
  T* p = new T(std::forward<Args>(args)...);
  AllocStats::allocated().fetch_add(1, std::memory_order_relaxed);
  return p;
}

template <typename T>
void delete_counted(T* p) {
  if (p == nullptr) return;
  AllocStats::freed().fetch_add(1, std::memory_order_relaxed);
  delete p;
}

}  // namespace lot::reclaim
