#include "reclaim/pool.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "health/state.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define LOT_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LOT_POOL_ASAN 1
#endif
#endif

#if defined(LOT_POOL_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace lot::reclaim {
namespace {

constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

// Registry of live pools, so thread-exit cleanup never touches a pool that
// was already destroyed (a thread's cached Cache pointer may outlive a
// test-scoped pool). Same shape as ebr.cpp's domain registry.
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_set<SizePool*>& live_pools() {
  static std::unordered_set<SizePool*> s;
  return s;
}

std::uint64_t next_pool_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Process-global fallback registry. A fallback pointer came from plain
// `operator new`, so no slab-header mask can recover its owner — and
// route_free has no pool in hand at all. One shared ptr → alignment map
// (the alignment is needed for the sized operator delete) serves every
// pool, guarded by one outstanding-count gate so the common all-slab case
// pays a single relaxed-ish atomic load, never the mutex.
std::mutex& fallback_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<void*, std::size_t>& fallback_registry() {
  static std::unordered_map<void*, std::size_t> s;
  return s;
}

std::atomic<std::size_t>& fallback_outstanding() {
  static std::atomic<std::size_t> n{0};
  return n;
}

// Frees p through the registry if it is a fallback pointer. Must be called
// only after the acquire gate saw a non-zero outstanding count.
bool try_free_fallback_global(void* p) {
  std::size_t align = 0;
  {
    std::lock_guard<std::mutex> lock(fallback_mutex());
    auto it = fallback_registry().find(p);
    if (it == fallback_registry().end()) return false;
    align = it->second;
    fallback_registry().erase(it);
    fallback_outstanding().fetch_sub(1, std::memory_order_release);
  }
  ::operator delete(p, std::align_val_t{align});
  PoolStats::fallback_frees().fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace

/// Slab header, placed at the start of each kSlabBytes-aligned chunk so
/// `reinterpret_cast<Slab*>(uintptr(p) & ~(kSlabBytes - 1))` recovers it
/// from any slot pointer. The remote-free stack head sits on its own cache
/// line: it is the only word of the header written after construction, and
/// it is contended by whichever threads drain the EBR backlog.
struct SizePool::Slab {
  SizePool* pool;
  Cache* owner;  // never changes after creation (caches move between
                 // threads whole; slabs never move between caches)
  Slab* next_in_cache;
  alignas(sync::kCacheLineSize) std::atomic<void*> remote_head{nullptr};
};

/// Per-thread (at a time) allocation state. Only the owning thread touches
/// the free list / bump window; other threads interact with the cache's
/// slabs exclusively through their remote-free stacks. Ownership transfers
/// wholesale: thread exit parks the cache on the pool's orphan list, the
/// next new thread adopts it, and the TLS-destructor/adoption handoffs
/// happen under the pool mutex, which orders them.
struct SizePool::Cache {
  void* free_head = nullptr;   // LIFO of freed slots; link in slot word 0
  Slab* slabs = nullptr;       // slabs this cache carved (harvest targets)
  char* bump_ptr = nullptr;    // unissued tail of the newest slab
  char* bump_end = nullptr;
  Cache* next_orphan = nullptr;
};

/// Per-thread map from (pool, uid) to the thread's adopted Cache — the
/// pool-side twin of ebr.cpp's TlsCache, with the same fixed linear table
/// and the same destructor contract: give the cache back, but only to a
/// pool that still exists.
struct PoolTls {
  static constexpr std::size_t kEntries = 8;
  struct Entry {
    SizePool* pool = nullptr;
    std::uint64_t uid = 0;
    SizePool::Cache* cache = nullptr;
  };
  Entry entries[kEntries];

  ~PoolTls() {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (auto& e : entries) {
      if (e.pool != nullptr && e.cache != nullptr &&
          live_pools().count(e.pool) > 0 && e.pool->uid_ == e.uid) {
        e.pool->release_cache_of_exiting_thread(e.cache);
      }
    }
  }

  SizePool::Cache*& slot_for(SizePool* p, std::uint64_t uid) {
    for (auto& e : entries) {
      if (e.pool == p && e.uid == uid) return e.cache;
    }
    for (auto& e : entries) {
      if (e.pool == nullptr || e.cache == nullptr) {
        e.pool = p;
        e.uid = uid;
        e.cache = nullptr;
        return e.cache;
      }
    }
    // A thread juggling more than kEntries pools: orphan slot 0's cache (if
    // its pool is still alive) and recycle the slot. Never happens here —
    // one pool per node type — but must not leak if it ever does.
    {
      std::lock_guard<std::mutex> lock(registry_mutex());
      Entry& e = entries[0];
      if (e.cache != nullptr && live_pools().count(e.pool) > 0 &&
          e.pool->uid_ == e.uid) {
        e.pool->release_cache_of_exiting_thread(e.cache);
      }
    }
    entries[0].pool = p;
    entries[0].uid = uid;
    entries[0].cache = nullptr;
    return entries[0].cache;
  }

  SizePool::Cache* lookup(SizePool* p, std::uint64_t uid) {
    for (auto& e : entries) {
      if (e.pool == p && e.uid == uid) return e.cache;
    }
    return nullptr;
  }
};

namespace {
PoolTls& pool_tls() {
  thread_local PoolTls tls;
  return tls;
}
}  // namespace

SizePool::SizePool(std::size_t object_bytes, std::size_t object_align)
    : uid_(next_pool_uid()) {
  slot_align_ = std::max(object_align, std::size_t{sync::kCacheLineSize});
  slot_bytes_ =
      round_up(std::max(object_bytes, sizeof(void*)), slot_align_);
  payload_offset_ = round_up(sizeof(Slab), slot_align_);
  assert(payload_offset_ + slot_bytes_ <= kSlabBytes &&
         "object too large for one slab");
  slots_per_slab_ = (kSlabBytes - payload_offset_) / slot_bytes_;
#if defined(LOT_POOL_ASAN) || !defined(NDEBUG)
  poison_.store(true, std::memory_order_relaxed);
#else
  poison_.store(false, std::memory_order_relaxed);
#endif
  // Arm the emergency reserve while memory is (presumably) plentiful.
  // Nothrow: a pool constructed under pressure simply starts unarmed.
  emergency_mem_.store(::operator new(kSlabBytes, std::align_val_t{kSlabBytes},
                                      std::nothrow),
                       std::memory_order_release);
  std::lock_guard<std::mutex> lock(registry_mutex());
  live_pools().insert(this);
}

SizePool::~SizePool() {
  // Contract (mirrors EbrDomain): no outstanding slots, no concurrent
  // calls. Threads that cached a Cache* may still be running; the registry
  // erase below makes their TLS destructors skip this pool, and stale TLS
  // entries are ignored by uid on any later pool at the same address.
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    live_pools().erase(this);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (Cache* c : caches_) delete c;
  for (void* s : slabs_) {
#if defined(LOT_POOL_ASAN)
    // Hand the chunk back unpoisoned: the underlying allocator (and any
    // future reuse of the address range) must see it addressable.
    ASAN_UNPOISON_MEMORY_REGION(s, kSlabBytes);
#endif
    static_cast<Slab*>(s)->~Slab();
    ::operator delete(s, std::align_val_t{kSlabBytes});
  }
  // An unconsumed reserve is raw memory, never constructed as a Slab.
  if (void* mem = emergency_mem_.load(std::memory_order_relaxed)) {
    ::operator delete(mem, std::align_val_t{kSlabBytes});
  }
}

SizePool::Cache& SizePool::local_cache() {
  Cache*& cached = pool_tls().slot_for(this, uid_);
  if (cached == nullptr) cached = acquire_cache();
  return *cached;
}

SizePool::Cache* SizePool::local_cache_if_cached() {
  return pool_tls().lookup(this, uid_);
}

SizePool::Cache* SizePool::acquire_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (orphans_ != nullptr) {
    Cache* c = orphans_;
    orphans_ = c->next_orphan;
    c->next_orphan = nullptr;
    PoolStats::caches_adopted().fetch_add(1, std::memory_order_relaxed);
    return c;
  }
  Cache* c = new Cache;  // bad_alloc propagates with no state changed
  try {
    caches_.push_back(c);
  } catch (...) {
    delete c;
    throw;
  }
  PoolStats::caches_created().fetch_add(1, std::memory_order_relaxed);
  return c;
}

void SizePool::release_cache_of_exiting_thread(Cache* c) {
  // Registry mutex held (TLS destructor path). The cache keeps its slabs,
  // free list and pending remote frees; the next adopter inherits it all.
  std::lock_guard<std::mutex> lock(mutex_);
  c->next_orphan = orphans_;
  orphans_ = c;
}

void* SizePool::allocate() {
  Cache& c = local_cache();  // may throw; nothing else has happened yet

  for (int attempt = 0; attempt < 2; ++attempt) {
    if (c.free_head != nullptr) {
      void* p = c.free_head;
      unpoison_slot(p);
      c.free_head = *static_cast<void**>(p);
      PoolStats::allocs().fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    if (c.bump_ptr != nullptr &&
        c.bump_ptr + slot_bytes_ <= c.bump_end) {
      void* p = c.bump_ptr;
      c.bump_ptr += slot_bytes_;
      PoolStats::allocs().fetch_add(1, std::memory_order_relaxed);
      return p;
    }
    // Local list dry and bump window exhausted: pull back everything other
    // threads freed into our slabs, and only then consider growing.
    if (harvest_remote(c)) continue;
    break;
  }

  if (Slab* s = try_new_slab(c)) {
    (void)s;
    void* p = c.bump_ptr;
    c.bump_ptr += slot_bytes_;
    PoolStats::allocs().fetch_add(1, std::memory_order_relaxed);
    return p;
  }
  // Break glass before the operator-new fallback, but only while the
  // governor says the process is Degraded or worse — a Healthy pool that
  // merely hit a test's slab_limit must keep its seed exhaustion
  // behaviour (fallback or throw), reserve untouched.
  if (health::prefer_emergency_reserve()) {
    if (Slab* s = try_emergency_slab(c)) {
      (void)s;
      void* p = c.bump_ptr;
      c.bump_ptr += slot_bytes_;
      PoolStats::allocs().fetch_add(1, std::memory_order_relaxed);
      return p;
    }
  }
  if (fallback_enabled_.load(std::memory_order_relaxed)) {
    return fallback_allocate();
  }
  throw std::bad_alloc{};
}

void SizePool::deallocate(void* p) noexcept {
  assert(p != nullptr);
  if (fallback_outstanding().load(std::memory_order_acquire) != 0 &&
      try_free_fallback_global(p)) {
    return;
  }
  // Not a fallback pointer, so it came from a slab and the mask is safe.
  auto* slab = reinterpret_cast<Slab*>(reinterpret_cast<std::uintptr_t>(p) &
                                       ~(kSlabBytes - 1));
  assert(slab->pool == this && "pointer freed into the wrong pool");
  free_slot(slab, p);
}

void SizePool::route_free(void* p) noexcept {
  assert(p != nullptr);
  if (fallback_outstanding().load(std::memory_order_acquire) != 0 &&
      try_free_fallback_global(p)) {
    return;
  }
  // Not a fallback pointer: the slab header names the owning pool, which
  // may be a per-shard instance or a pool_for<T>() singleton — either way
  // the slot goes home without the caller knowing which.
  auto* slab = reinterpret_cast<Slab*>(reinterpret_cast<std::uintptr_t>(p) &
                                       ~(kSlabBytes - 1));
  slab->pool->free_slot(slab, p);
}

void SizePool::free_slot(Slab* slab, void* p) noexcept {
  poison_slot(p);
  PoolStats::frees().fetch_add(1, std::memory_order_relaxed);

  Cache* mine = local_cache_if_cached();
  if (mine == slab->owner) {
    *static_cast<void**>(p) = mine->free_head;
    mine->free_head = p;
    return;
  }
  // Cross-thread free: Treiber push onto the slab's remote stack. Push-only
  // from this side (the owner takes the whole stack with exchange), so
  // there is no ABA window.
  PoolStats::remote_frees().fetch_add(1, std::memory_order_relaxed);
  void* head = slab->remote_head.load(std::memory_order_relaxed);
  do {
    *static_cast<void**>(p) = head;
  } while (!slab->remote_head.compare_exchange_weak(
      head, p, std::memory_order_release, std::memory_order_relaxed));
}

bool SizePool::harvest_remote(Cache& c) {
  bool got_any = false;
  for (Slab* s = c.slabs; s != nullptr; s = s->next_in_cache) {
    if (s->remote_head.load(std::memory_order_relaxed) == nullptr) continue;
    void* chain = s->remote_head.exchange(nullptr, std::memory_order_acquire);
    if (chain == nullptr) continue;
    got_any = true;
    // Splice the whole chain in front of the local list. Link words of
    // freed slots are never poisoned, so the tail walk is clean under ASan.
    void* tail = chain;
    while (*static_cast<void**>(tail) != nullptr) {
      tail = *static_cast<void**>(tail);
    }
    *static_cast<void**>(tail) = c.free_head;
    c.free_head = chain;
  }
  if (got_any) {
    PoolStats::harvests().fetch_add(1, std::memory_order_relaxed);
  }
  return got_any;
}

SizePool::Slab* SizePool::try_new_slab(Cache& c) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t limit = slab_limit_.load(std::memory_order_relaxed);
  if (limit != 0 && slab_count_.load(std::memory_order_relaxed) >= limit) {
    return nullptr;
  }
  void* mem = ::operator new(kSlabBytes, std::align_val_t{kSlabBytes},
                             std::nothrow);
  if (mem == nullptr) return nullptr;
  try {
    slabs_.push_back(mem);
  } catch (...) {
    ::operator delete(mem, std::align_val_t{kSlabBytes});
    return nullptr;
  }
  Slab* s = ::new (mem) Slab{this, &c, c.slabs};
  c.slabs = s;
  c.bump_ptr = static_cast<char*>(mem) + payload_offset_;
  c.bump_end = static_cast<char*>(mem) + kSlabBytes;
  slab_count_.fetch_add(1, std::memory_order_relaxed);
  PoolStats::slabs().fetch_add(1, std::memory_order_relaxed);
  return s;
}

SizePool::Slab* SizePool::try_emergency_slab(Cache& c) {
  std::lock_guard<std::mutex> lock(mutex_);
  void* mem = emergency_mem_.exchange(nullptr, std::memory_order_acq_rel);
  if (mem == nullptr) return nullptr;  // unarmed, or another thread won
  try {
    slabs_.push_back(mem);
  } catch (...) {
    // Could not record it for dtor cleanup; put the reserve back intact.
    emergency_mem_.store(mem, std::memory_order_release);
    return nullptr;
  }
  // From here on it is an ordinary slab of this cache — deliberately
  // *above* slab_limit (the limit models steady-state memory budget; the
  // reserve is the break-glass exception, visible as emergency_grants).
  Slab* s = ::new (mem) Slab{this, &c, c.slabs};
  c.slabs = s;
  c.bump_ptr = static_cast<char*>(mem) + payload_offset_;
  c.bump_end = static_cast<char*>(mem) + kSlabBytes;
  slab_count_.fetch_add(1, std::memory_order_relaxed);
  PoolStats::slabs().fetch_add(1, std::memory_order_relaxed);
  PoolStats::emergency_grants().fetch_add(1, std::memory_order_relaxed);
  return s;
}

bool SizePool::rearm_emergency_reserve() {
  if (emergency_mem_.load(std::memory_order_acquire) != nullptr) return true;
  void* mem =
      ::operator new(kSlabBytes, std::align_val_t{kSlabBytes}, std::nothrow);
  if (mem == nullptr) return false;
  void* expected = nullptr;
  if (!emergency_mem_.compare_exchange_strong(expected, mem,
                                              std::memory_order_acq_rel)) {
    ::operator delete(mem, std::align_val_t{kSlabBytes});  // lost the race
  }
  return true;
}

void* SizePool::fallback_allocate() {
  void* p = ::operator new(slot_bytes_, std::align_val_t{slot_align_});
  {
    std::lock_guard<std::mutex> lock(fallback_mutex());
    try {
      fallback_registry().emplace(p, slot_align_);
    } catch (...) {
      ::operator delete(p, std::align_val_t{slot_align_});
      throw;
    }
  }
  // Release: the non-zero count must be visible to any thread that later
  // observes this pointer (through the node's own publication/retire
  // chain) and reaches the free paths' acquire gate.
  fallback_outstanding().fetch_add(1, std::memory_order_release);
  PoolStats::fallback_allocs().fetch_add(1, std::memory_order_relaxed);
  return p;
}

void SizePool::poison_slot(void* p) noexcept {
  if (!poison_.load(std::memory_order_relaxed)) return;
  // Word 0 carries the free-list link; everything past it is dead.
  std::memset(static_cast<char*>(p) + sizeof(void*), kPoisonByte,
              slot_bytes_ - sizeof(void*));
#if defined(LOT_POOL_ASAN)
  ASAN_POISON_MEMORY_REGION(static_cast<char*>(p) + sizeof(void*),
                            slot_bytes_ - sizeof(void*));
#endif
}

void SizePool::unpoison_slot(void* p) noexcept {
#if defined(LOT_POOL_ASAN)
  ASAN_UNPOISON_MEMORY_REGION(p, slot_bytes_);
#else
  (void)p;
#endif
}

}  // namespace lot::reclaim
