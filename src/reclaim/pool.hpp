// Per-thread slab/pool node allocator (DESIGN.md §10).
//
// The paper's Java implementation gets node allocation nearly for free: a
// TLAB bump pointer on allocation, and the GC recycles removed nodes
// without any explicit free. Our C++ substitution paid a global
// `operator new`/`delete` on every insert/erase — the dominant cost of the
// update-heavy Table-1 mixes. This pool closes that gap:
//
//  * memory comes in 64 KiB slabs aligned to their own size, so any slot
//    pointer finds its slab header with one mask (`p & ~(kSlabBytes-1)`),
//    jemalloc/mimalloc style — no per-slot header, no lookup table;
//  * each slab is carved into cacheline-aligned fixed-size slots; a slab
//    belongs to the per-thread cache that carved it;
//  * allocation is a thread-local LIFO free-list pop (or a bump carve from
//    the cache's newest slab) — no atomics on the fast path;
//  * a free from the owning thread pushes back onto the local list; a free
//    from any other thread (the common case under EBR, where whoever
//    advances the epoch frees the backlog) pushes onto the slab's lock-free
//    remote-free *stack*, and the owner harvests those stacks in bulk when
//    its local list runs dry — so every slot eventually returns to the
//    cache that owns its slab;
//  * when a thread exits, its cache (slabs, free list, pending remote
//    frees) is parked on an orphan list and adopted wholesale by the next
//    new thread, mirroring EbrDomain's record recycling;
//  * if slab allocation fails (or a test caps it via set_slab_limit), the
//    pool falls back to a plain aligned `operator new` per object, tracked
//    in a process-global side registry so any free path — including the
//    pool-blind static route_free below — can route those frees back to
//    `operator delete`; with the fallback disabled too, allocate() throws
//    std::bad_alloc — which the insert paths surface *before* taking any
//    lock (the PR-2 strong exception-safety contract).
//
// Reclamation safety: the pool itself imposes no grace period — callers
// free through EbrDomain::retire_via<Alloc>, whose deleter runs only after
// two epoch advances, so a slot can never re-enter a free list while a
// parked Guard could still dereference it (DESIGN.md §10 has the argument).
//
// Debug hardening: freed slots are poisoned — pattern-filled (0xDB) in
// !NDEBUG builds and additionally ASan-poisoned under
// AddressSanitizer — so a use-after-recycle reads garbage (or faults under
// ASan) instead of silently observing the next occupant. The first word of
// a freed slot stays unpoisoned: it carries the free-list link.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <string_view>
#include <utility>
#include <vector>

#include "inject/inject.hpp"
#include "reclaim/alloc_stats.hpp"
#include "sync/cacheline.hpp"

namespace lot::reclaim {

/// Fixed-slot-size pool. One instance serves one object size/alignment —
/// either the per-type process singleton (pool_for<T>() below) or a
/// per-structure instance handed to PoolNodeAlloc (the sharded maps give
/// each shard its own pool so remote-free traffic stays shard-local). The
/// class itself is untyped so the machinery is compiled once, not once per
/// node type.
///
/// Thread safety: allocate()/deallocate() are safe from any thread.
/// Destruction requires quiescence (no outstanding slots, no concurrent
/// calls) — like EbrDomain, a registry keeps thread-exit cleanup from
/// touching a pool that died first.
class SizePool {
 public:
  /// Slab size and alignment. Power of two so slot → slab is one mask.
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 16;

  SizePool(std::size_t object_bytes, std::size_t object_align);
  ~SizePool();
  SizePool(const SizePool&) = delete;
  SizePool& operator=(const SizePool&) = delete;

  /// One cacheline-aligned slot of slot_bytes(). Throws std::bad_alloc
  /// when a new slab cannot be had and the fallback is disabled (or the
  /// fallback allocation itself fails); no pool state changes in that case.
  void* allocate();

  /// Returns a slot from any thread. Owner thread: local free-list push.
  /// Other threads: lock-free push onto the slot's slab's remote stack.
  void deallocate(void* p) noexcept;

  /// Pool-blind free: recovers the owning pool from the slab header (one
  /// mask) and routes the slot home — or, for an operator-new fallback
  /// pointer, through the global fallback registry. This is what lets
  /// PoolNodeAlloc::destroy stay a *static* policy hook (EbrDomain's
  /// retire_via stores stateless `void(*)(void*)` deleters) while
  /// allocation goes through per-instance pool handles.
  static void route_free(void* p) noexcept;

  std::size_t slot_bytes() const { return slot_bytes_; }
  std::size_t slots_per_slab() const { return slots_per_slab_; }

  /// Test/ops knobs. slab_limit 0 = unlimited. With the limit reached and
  /// the fallback disabled, allocate() throws — how tests drive the
  /// exhaustion path deterministically.
  void set_slab_limit(std::size_t n) {
    slab_limit_.store(n, std::memory_order_relaxed);
  }
  void set_fallback_enabled(bool on) {
    fallback_enabled_.store(on, std::memory_order_relaxed);
  }
  /// Poison freed slots (pattern 0xDB past the link word). Defaults to on
  /// in !NDEBUG and ASan builds, off in plain release builds.
  void set_poison(bool on) { poison_.store(on, std::memory_order_relaxed); }

  /// Emergency-reserve break glass (overload governor, DESIGN.md §14).
  /// One slab is pre-armed at construction and granted — bypassing
  /// slab_limit, preferred over the operator-new fallback — only while
  /// health::prefer_emergency_reserve() says the process is Degraded or
  /// worse. Rationale: under real memory pressure the fallback's own
  /// operator new is exactly what is about to fail, while the reserve was
  /// paid for back when memory was plentiful.
  bool emergency_armed() const {
    return emergency_mem_.load(std::memory_order_acquire) != nullptr;
  }
  /// Re-arm after a grant consumed the reserve (recovery path / tests).
  /// Returns false if the slab cannot be had right now.
  bool rearm_emergency_reserve();

  std::size_t slab_count() const {
    return slab_count_.load(std::memory_order_relaxed);
  }

  static constexpr unsigned char kPoisonByte = 0xDB;

 private:
  struct Slab;
  struct Cache;

  Cache& local_cache();            // may create/adopt (can throw bad_alloc)
  Cache* local_cache_if_cached();  // never creates
  Cache* acquire_cache();          // mutex: orphan pop or fresh Cache
  void release_cache_of_exiting_thread(Cache* c);

  bool harvest_remote(Cache& c);   // splice remote stacks into the free list
  Slab* try_new_slab(Cache& c);    // nullptr if capped or OOM
  Slab* try_emergency_slab(Cache& c);  // consume the pre-armed reserve
  void* fallback_allocate();       // operator-new path; may throw
  void free_slot(Slab* slab, void* p) noexcept;  // slab slot → home list
  void poison_slot(void* p) noexcept;
  void unpoison_slot(void* p) noexcept;

  std::size_t slot_bytes_ = 0;
  std::size_t slot_align_ = 0;
  std::size_t payload_offset_ = 0;
  std::size_t slots_per_slab_ = 0;
  std::uint64_t uid_;  // distinguishes reincarnated pools at one address

  std::atomic<std::size_t> slab_limit_{0};
  std::atomic<bool> fallback_enabled_{true};
  std::atomic<bool> poison_;
  std::atomic<std::size_t> slab_count_{0};

  // The pre-armed emergency slab chunk (raw, not yet a Slab). Exchanged
  // out under mutex_ on grant; null when unarmed (construction-time OOM or
  // a grant not yet re-armed).
  std::atomic<void*> emergency_mem_{nullptr};

  std::mutex mutex_;            // cache acquire/release, slab creation
  Cache* orphans_ = nullptr;    // caches of exited threads, adoptable
  std::vector<Cache*> caches_;  // every cache ever created (dtor cleanup)
  std::vector<void*> slabs_;    // every slab chunk (dtor cleanup)

  // Fallback bookkeeping lives in a process-global registry (pool.cpp):
  // route_free cannot know the owning pool for an operator-new pointer (no
  // slab header to mask to), so the ptr → alignment map and the
  // outstanding-count gate that guards the mask are shared by all pools.

  friend struct PoolTls;
};

/// The per-type pool singleton. Deliberately immortal (never destroyed):
/// the global EbrDomain can flush retired nodes during static destruction,
/// after any destructible function-local static would already be gone. The
/// pointer lives in static storage, so LeakSanitizer sees the slabs as
/// reachable, not leaked.
template <typename T>
SizePool& pool_for() {
  static SizePool* pool = new SizePool(sizeof(T), alignof(T));
  return *pool;
}

/// Allocation policy threaded through LoMap/PartialMap: plain counted
/// new/delete — the pre-pool behaviour, kept for A/B runs
/// (LOT_POOL_ALLOC=OFF and the allocator ablation).
struct NewNodeAlloc {
  static constexpr std::string_view name() { return "new"; }

  template <typename T, typename... Args>
  static T* create(Args&&... args) {
    return make_counted<T>(std::forward<Args>(args)...);
  }

  template <typename T>
  static void destroy(T* p) {
    delete_counted(p);
  }
};

/// Allocation policy backed by a SizePool. Default-constructed it uses the
/// per-type pool_for<T>() singleton (the seed behaviour); constructed over
/// an explicit SizePool it becomes a per-instance handle — how ShardedMap
/// gives every shard its own slab arena. Keeps the AllocStats node counters
/// moving exactly like make_counted/delete_counted, so the leak-accounting
/// tests hold for either policy. The kPoolAlloc injection site fires here
/// (in instrumented TUs) so the fault campaign can attack pool exhaustion
/// on top of the insert-site injector.
///
/// create() is an instance method (the handle decides where memory comes
/// from); destroy() is deliberately *static* — EbrDomain::retire_via
/// stores stateless `void(*)(void*)` deleters, so the free path recovers
/// the owning pool from the pointer itself (SizePool::route_free).
struct PoolNodeAlloc {
  static constexpr std::string_view name() { return "pool"; }

  constexpr PoolNodeAlloc() = default;
  explicit PoolNodeAlloc(SizePool& pool) : pool_(&pool) {}

  template <typename T, typename... Args>
  T* create(Args&&... args) const {
    inject::throw_if_alloc_fault(inject::Site::kPoolAlloc);
    SizePool& pool = pool_ != nullptr ? *pool_ : pool_for<T>();
    void* mem = pool.allocate();
    T* p;
    try {
      p = ::new (mem) T(std::forward<Args>(args)...);
    } catch (...) {
      pool.deallocate(mem);
      throw;
    }
    AllocStats::allocated().fetch_add(1, std::memory_order_relaxed);
    return p;
  }

  template <typename T>
  static void destroy(T* p) {
    if (p == nullptr) return;
    AllocStats::freed().fetch_add(1, std::memory_order_relaxed);
    p->~T();
    SizePool::route_free(p);
  }

 private:
  SizePool* pool_ = nullptr;
};

/// What LoMap/PartialMap default to. LOT_POOL_ALLOC=OFF (CMake) defines
/// LOT_DISABLE_POOL_ALLOC and restores plain new/delete everywhere, the
/// A/B escape hatch for benchmarks and sanitizer bisection.
#if defined(LOT_DISABLE_POOL_ALLOC)
using DefaultNodeAlloc = NewNodeAlloc;
#else
using DefaultNodeAlloc = PoolNodeAlloc;
#endif

}  // namespace lot::reclaim
