#include "reclaim/ebr.hpp"

#include <cassert>
#include <mutex>
#include <unordered_set>

namespace lot::reclaim {
namespace {

// Registry of live domains, so thread-exit cleanup never touches a domain
// that was already destroyed (a thread's cached record pointer may outlive
// a test-scoped domain).
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_set<EbrDomain*>& live_domains() {
  static std::unordered_set<EbrDomain*> s;
  return s;
}

std::uint64_t next_domain_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// Per-thread cache mapping domains to acquired records. Fixed-size linear
// table: a thread realistically touches one or two domains.
struct TlsCache {
  static constexpr std::size_t kEntries = 8;
  struct Entry {
    EbrDomain* domain = nullptr;
    std::uint64_t uid = 0;
    EbrDomain::Record* record = nullptr;
  };
  Entry entries[kEntries];

  ~TlsCache() {
    // Release records back to their domains — but only for domains that
    // still exist.
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (auto& e : entries) {
      if (e.domain != nullptr && live_domains().count(e.domain) > 0 &&
          e.domain->uid_ == e.uid) {
        e.domain->release_record_of_exiting_thread(e.record);
      }
    }
  }

  EbrDomain::Record*& slot_for(EbrDomain* d, std::uint64_t uid) {
    for (auto& e : entries) {
      if (e.domain == d && e.uid == uid) return e.record;
    }
    for (auto& e : entries) {
      if (e.domain == nullptr || e.record == nullptr) {
        e.domain = d;
        e.uid = uid;
        e.record = nullptr;
        return e.record;
      }
    }
    // A thread juggling more than kEntries domains: recycle the first slot.
    // (Never happens in this codebase; documented limitation.)
    entries[0].domain = d;
    entries[0].uid = uid;
    entries[0].record = nullptr;
    return entries[0].record;
  }
};

namespace {
TlsCache& tls_cache() {
  thread_local TlsCache cache;
  return cache;
}
}  // namespace

EbrDomain::EbrDomain() : uid_(next_domain_uid()) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  live_domains().insert(this);
}

EbrDomain::~EbrDomain() {
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    live_domains().erase(this);
  }
  // By contract no guards are active at destruction; everything retired is
  // now safe to free.
  for (auto& rec : records_) {
    assert(rec.pinned_epoch.load(std::memory_order_relaxed) == 0);
    for (auto& r : rec.retired) r.deleter(r.ptr);
    rec.retired.clear();
  }
}

EbrDomain& EbrDomain::global_domain() {
  static EbrDomain domain;
  return domain;
}

EbrDomain::Record* EbrDomain::acquire_record() {
  auto*& cached = tls_cache().slot_for(this, uid_);
  if (cached != nullptr) return cached;
  for (auto& rec : records_) {
    bool expected = false;
    if (!rec.in_use.load(std::memory_order_relaxed) &&
        rec.in_use.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel)) {
      cached = &rec;
      return cached;
    }
  }
  // More simultaneous threads than kMaxThreads. Fail loudly: silently
  // sharing a record would corrupt guard accounting.
  assert(false && "EbrDomain: out of thread records");
  std::abort();
}

void EbrDomain::release_record_of_exiting_thread(Record* rec) {
  // Called with the registry mutex held, from the exiting thread's TLS
  // destructor. The retired list stays with the record; the next owner (or
  // flush / the domain destructor) frees it when eligible.
  rec->guard_depth = 0;
  rec->pinned_epoch.store(0, std::memory_order_release);
  rec->in_use.store(false, std::memory_order_release);
}

EbrDomain::Guard EbrDomain::guard() {
  Record* rec = acquire_record();
  if (rec->guard_depth++ == 0) pin(*rec);
  return Guard(this, rec);
}

void EbrDomain::pin(Record& rec) {
  // The store must be visible before we re-check the global epoch, or a
  // concurrent advance could miss this pin; hence seq_cst on both sides.
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    rec.pinned_epoch.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) return;
    e = now;
  }
}

void EbrDomain::unpin(Record& rec) {
  rec.pinned_epoch.store(0, std::memory_order_release);
}

void EbrDomain::retire_raw(void* p, void (*deleter)(void*)) {
  Record* rec = acquire_record();
  rec->retired.push_back(
      {p, deleter, global_epoch_.load(std::memory_order_acquire)});
  if (++rec->since_last_scan >= retire_threshold_) {
    rec->since_last_scan = 0;
    try_advance();
    free_eligible(*rec);
  }
}

bool EbrDomain::try_advance() {
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (const auto& rec : records_) {
    const std::uint64_t pinned =
        rec.pinned_epoch.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned < e) return false;  // straggler in old epoch
  }
  std::uint64_t expected = e;
  global_epoch_.compare_exchange_strong(expected, e + 1,
                                        std::memory_order_seq_cst);
  return true;  // someone advanced (us or a racing thread)
}

void EbrDomain::free_eligible(Record& rec) {
  // Safe to free anything retired at least two epochs ago: every guard
  // active at (or before) the retire epoch has ended, and no newer guard
  // can reach an object that was unlinked before retirement.
  const std::uint64_t safe_before =
      global_epoch_.load(std::memory_order_acquire);
  if (safe_before < 3) return;
  auto& list = rec.retired;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].epoch <= safe_before - 2) {
      list[i].deleter(list[i].ptr);
    } else {
      list[kept++] = list[i];
    }
  }
  list.resize(kept);
}

void EbrDomain::flush() {
  // Two advances move everything currently retired out of the danger
  // window (when no guards are pinned; otherwise we free what we can).
  try_advance();
  try_advance();
  for (auto& rec : records_) {
    // Only touch lists of records not owned by a running thread, plus our
    // own. Concurrent mutation of someone else's vector would race; flush
    // is specified for quiescent use, so in practice all records are
    // either ours or idle.
    free_eligible(rec);
  }
}

std::size_t EbrDomain::pending_retired() const {
  std::size_t n = 0;
  for (const auto& rec : records_) n += rec.retired.size();
  return n;
}

}  // namespace lot::reclaim
