#include "reclaim/ebr.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "health/state.hpp"

namespace lot::reclaim {
namespace {

// Registry of live domains, so thread-exit cleanup never touches a domain
// that was already destroyed (a thread's cached record pointer may outlive
// a test-scoped domain).
std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_set<EbrDomain*>& live_domains() {
  static std::unordered_set<EbrDomain*> s;
  return s;
}

// Serializes record-pool growth (rare: once per kMaxThreads of peak
// oversubscription). Shared across domains; growth is far off any hot path.
std::mutex& grow_mutex() {
  static std::mutex m;
  return m;
}

std::uint64_t next_domain_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t this_thread_hash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

// Per-thread cache mapping domains to acquired records. Fixed-size linear
// table: a thread realistically touches one or two domains.
struct TlsCache {
  static constexpr std::size_t kEntries = 8;
  struct Entry {
    EbrDomain* domain = nullptr;
    std::uint64_t uid = 0;
    EbrDomain::Record* record = nullptr;
  };
  Entry entries[kEntries];

  ~TlsCache() {
    // Release records back to their domains — but only for domains that
    // still exist.
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (auto& e : entries) {
      if (e.domain != nullptr && live_domains().count(e.domain) > 0 &&
          e.domain->uid_ == e.uid) {
        e.domain->release_record_of_exiting_thread(e.record);
      }
    }
  }

  EbrDomain::Record*& slot_for(EbrDomain* d, std::uint64_t uid) {
    for (auto& e : entries) {
      if (e.domain == d && e.uid == uid) return e.record;
    }
    for (auto& e : entries) {
      if (e.domain == nullptr || e.record == nullptr) {
        e.domain = d;
        e.uid = uid;
        e.record = nullptr;
        return e.record;
      }
    }
    // A thread juggling more than kEntries domains: recycle the first slot.
    // (Never happens in this codebase; documented limitation.)
    entries[0].domain = d;
    entries[0].uid = uid;
    entries[0].record = nullptr;
    return entries[0].record;
  }
};

namespace {
TlsCache& tls_cache() {
  thread_local TlsCache cache;
  return cache;
}
}  // namespace

EbrDomain::EbrDomain() : uid_(next_domain_uid()) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  live_domains().insert(this);
}

EbrDomain::~EbrDomain() {
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    live_domains().erase(this);
  }
  // By contract no guards are active at destruction; everything retired is
  // now safe to free. Overflow chunks go with the domain.
  RecordChunk* chunk = &head_chunk_;
  while (chunk != nullptr) {
    for (auto& rec : chunk->records) {
      assert(rec.pinned_epoch.load(std::memory_order_relaxed) == 0);
      for (auto& r : rec.retired) r.deleter(r.ptr);
      rec.retired.clear();
    }
    RecordChunk* next = chunk->next.load(std::memory_order_relaxed);
    if (chunk != &head_chunk_) delete chunk;
    chunk = next;
  }
}

void EbrDomain::for_each_domain_impl(void (*fn)(EbrDomain&, void*),
                                     void* ctx) {
  // Safe under the registry mutex: a destructing domain erases itself
  // here *before* freeing anything, so every enumerated pointer is alive
  // for the duration of the lock.
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (EbrDomain* d : live_domains()) fn(*d, ctx);
}

std::size_t EbrDomain::live_domain_count() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  return live_domains().size();
}

EbrDomain& EbrDomain::global_domain() {
  static EbrDomain domain;
  return domain;
}

EbrDomain::Record* EbrDomain::acquire_record() {
  auto*& cached = tls_cache().slot_for(this, uid_);
  if (cached != nullptr) return cached;
  const std::uint64_t owner = this_thread_hash();
  for (;;) {
    RecordChunk* last = &head_chunk_;
    for (RecordChunk* c = &head_chunk_; c != nullptr;
         c = c->next.load(std::memory_order_seq_cst)) {
      last = c;
      for (auto& rec : c->records) {
        bool expected = false;
        if (!rec.in_use.load(std::memory_order_relaxed) &&
            rec.in_use.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
          rec.owner.store(owner, std::memory_order_relaxed);
          cached = &rec;
          return cached;
        }
      }
    }
    // More simultaneous threads than the pool holds: grow by one chunk
    // rather than failing. Double-checked under the mutex — a racing
    // grower may have appended already, in which case just rescan. A
    // bad_alloc here propagates with no domain state changed (the caller's
    // operation has touched nothing yet).
    std::lock_guard<std::mutex> lock(grow_mutex());
    if (last->next.load(std::memory_order_seq_cst) == nullptr) {
      RecordChunk* fresh = new RecordChunk;
      last->next.store(fresh, std::memory_order_seq_cst);
      pool_growths_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void EbrDomain::release_record_of_exiting_thread(Record* rec) {
  // Called with the registry mutex held, from the exiting thread's TLS
  // destructor. The retired list stays with the record; the next owner,
  // flush()'s steal path, or the domain destructor frees it when eligible.
  rec->guard_depth = 0;
  rec->pinned_epoch.store(0, std::memory_order_release);
  rec->in_use.store(false, std::memory_order_release);
}

EbrDomain::Guard EbrDomain::guard() {
  Record* rec = acquire_record();
  if (rec->guard_depth++ == 0) pin(*rec);
  return Guard(this, rec);
}

void EbrDomain::pin(Record& rec) {
  // The store must be visible before we re-check the global epoch, or a
  // concurrent advance could miss this pin; hence seq_cst on both sides.
  std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    rec.pinned_epoch.store(e, std::memory_order_seq_cst);
    const std::uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
    if (now == e) return;
    e = now;
  }
}

void EbrDomain::unpin(Record& rec) {
  rec.pinned_epoch.store(0, std::memory_order_release);
  // End of any watchdog episode this record was accumulating; the load is
  // on a line this thread owns, so the common no-stall case stays cheap.
  if (rec.stall_strikes.load(std::memory_order_relaxed) != 0) {
    rec.stall_strikes.store(0, std::memory_order_relaxed);
    rec.stall_epoch_seen.store(0, std::memory_order_relaxed);
    rec.stall_reported.store(false, std::memory_order_relaxed);
  }
}

void EbrDomain::retire_raw(void* p, void (*deleter)(void*)) {
  Record* rec = acquire_record();
  lock_list(*rec);
  const bool pushed = push_retired(
      *rec, {p, deleter, global_epoch_.load(std::memory_order_acquire)});
  unlock_list(*rec);
  if (!pushed) {
    return;  // emergency leak, counted; nothing more we can safely do
  }
  const std::size_t backlog =
      rec->retired_count.load(std::memory_order_relaxed);
  // Retire-backlog high-water gauge (stats().backlog_peak). The peak only
  // rarely moves, so the common case is one relaxed load and no RMW.
  std::size_t peak = backlog_peak_.load(std::memory_order_relaxed);
  while (backlog > peak &&
         !backlog_peak_.compare_exchange_weak(peak, backlog,
                                              std::memory_order_relaxed)) {
  }
  if (backlog >=
      backlog_high_water_.load(std::memory_order_relaxed)) {
    // Backpressure: past the high-water mark retires pay for full
    // reclamation attempts. Two advances move this record's whole backlog
    // out of the danger window when nothing is pinned; a straggler stops
    // the loop early (and accrues a watchdog strike inside try_advance).
    // Amortization: each advance attempt is an O(record_capacity) scan
    // that is doomed while the straggler pins the epoch still, so while
    // the epoch has not moved since this record's last attempt, only every
    // stride-th retire repeats it. Any epoch movement re-arms an immediate
    // attempt — a drained stall collapses the backlog on the very next
    // retire, not a stride later.
    const std::uint64_t seen = global_epoch_.load(std::memory_order_acquire);
    if (seen != rec->bp_last_epoch || rec->bp_cooldown == 0) {
      backpressure_hits_.fetch_add(1, std::memory_order_relaxed);
      for (int i = 0; i < 2; ++i) {
        if (!try_advance()) break;
      }
      if (global_epoch_.load(std::memory_order_acquire) !=
          rec->last_scan_epoch.load(std::memory_order_relaxed)) {
        free_eligible(*rec);
      }
      rec->bp_last_epoch = global_epoch_.load(std::memory_order_acquire);
      rec->bp_cooldown =
          backpressure_stride_.load(std::memory_order_relaxed) - 1;
    } else {
      --rec->bp_cooldown;
      backpressure_throttled_.fetch_add(1, std::memory_order_relaxed);
    }
    rec->since_last_scan = 0;
  } else {
    // Governor drain boost: under pressure the scan threshold shrinks
    // (halved per ebr_drain_shift level), so reclamation attempts come
    // earlier and backlogs collapse faster while the process recovers.
    std::size_t threshold = retire_threshold_.load(std::memory_order_relaxed);
    if (const unsigned shift = health::ebr_drain_shift(); shift != 0) {
      threshold = std::max<std::size_t>(1, threshold >> shift);
    }
    if (++rec->since_last_scan >= threshold) {
      rec->since_last_scan = 0;
      try_advance();
      if (global_epoch_.load(std::memory_order_acquire) !=
          rec->last_scan_epoch.load(std::memory_order_relaxed)) {
        free_eligible(*rec);
      }
    }
  }
}

bool EbrDomain::push_retired(Record& rec, const Retired& r) {
  if (rec.retired.size() == rec.retired.capacity()) {
    // Growth imminent and growth can fail. On bad_alloc, free eligible
    // entries in place (rewrites the vector without allocating) and retry
    // within the existing capacity.
    try {
      rec.retired.push_back(r);
      rec.retired_count.store(rec.retired.size(), std::memory_order_relaxed);
      return true;
    } catch (const std::bad_alloc&) {
      try_advance();
      try_advance();
      free_eligible_locked(rec);
      if (rec.retired.size() < rec.retired.capacity()) {
        rec.retired.push_back(r);
        rec.retired_count.store(rec.retired.size(),
                                std::memory_order_relaxed);
        return true;
      }
      // Fully pinned *and* out of memory: deliberately leak this one
      // object. Freeing it could be a use-after-free (guards may hold
      // it); blocking could deadlock against the pinned straggler.
      emergency_leaks_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  rec.retired.push_back(r);
  rec.retired_count.store(rec.retired.size(), std::memory_order_relaxed);
  return true;
}

bool EbrDomain::try_advance() {
  const std::uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  std::size_t index = 0;
  for (RecordChunk* c = &head_chunk_; c != nullptr;
       c = c->next.load(std::memory_order_seq_cst)) {
    for (auto& rec : c->records) {
      const std::uint64_t pinned =
          rec.pinned_epoch.load(std::memory_order_seq_cst);
      if (pinned != 0 && pinned < e) {
        note_stall(rec, index, pinned);  // straggler in an old epoch
        return false;
      }
      ++index;
    }
  }
  std::uint64_t expected = e;
  global_epoch_.compare_exchange_strong(expected, e + 1,
                                        std::memory_order_seq_cst);
  return true;  // someone advanced (us or a racing thread)
}

namespace {
std::uint64_t steady_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

void EbrDomain::note_stall(Record& rec, std::size_t index,
                           std::uint64_t pinned) {
  if (rec.stall_epoch_seen.load(std::memory_order_relaxed) != pinned) {
    // New episode (or the straggler finally moved): restart the count.
    rec.stall_epoch_seen.store(pinned, std::memory_order_relaxed);
    rec.stall_since_us.store(steady_now_us(), std::memory_order_relaxed);
    rec.stall_strikes.store(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t strikes =
      rec.stall_strikes.fetch_add(1, std::memory_order_relaxed) + 1;
  if (strikes < stall_strike_limit_.load(std::memory_order_relaxed)) return;
  // Strike counts are attempt-rate-dependent — full-tilt churn can burn
  // the whole limit inside one healthy microseconds-long pin — so a
  // report additionally requires the episode to have *aged*: only a
  // straggler that is both struck often and stuck long is a stall. The
  // clock is only read at/after the strike limit, never on the common
  // transient-strike path.
  const std::uint64_t min_age = stall_report_us_.load(std::memory_order_relaxed);
  if (min_age != 0 &&
      steady_now_us() -
              rec.stall_since_us.load(std::memory_order_relaxed) <
          min_age) {
    return;
  }
  if (!rec.stall_reported.exchange(true, std::memory_order_relaxed)) {
    stall_fires_.fetch_add(1, std::memory_order_relaxed);
    stalled_record_.store(index, std::memory_order_relaxed);
    stalled_epoch_.store(pinned, std::memory_order_relaxed);
    stalled_owner_.store(rec.owner.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }
}

void EbrDomain::free_eligible(Record& rec) {
  lock_list(rec);
  free_eligible_locked(rec);
  unlock_list(rec);
}

void EbrDomain::free_eligible_locked(Record& rec) {
  // Safe to free anything retired at least two epochs ago: every guard
  // active at (or before) the retire epoch has ended, and no newer guard
  // can reach an object that was unlinked before retirement. Deleters run
  // under the list lock, so they must not retire into the same domain —
  // they never do here (node destructors don't retire), and even the
  // unlocked seed code relied on that (a reentrant retire would have
  // mutated the vector mid-scan).
  const std::uint64_t safe_before =
      global_epoch_.load(std::memory_order_acquire);
  rec.last_scan_epoch.store(safe_before, std::memory_order_relaxed);
  if (safe_before < 3) return;
  auto& list = rec.retired;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    if (list[i].epoch <= safe_before - 2) {
      list[i].deleter(list[i].ptr);
    } else {
      list[kept++] = list[i];
    }
  }
  list.resize(kept);
  rec.retired_count.store(kept, std::memory_order_relaxed);
}

void EbrDomain::flush() {
  // Two advances move everything currently retired out of the danger
  // window (when no guards are pinned; otherwise we free what we can).
  try_advance();
  try_advance();
  Record* mine = acquire_record();
  for_each_record([&](Record& rec, std::size_t) {
    if (&rec == mine) return;
    // Claim records whose owner threads have exited so their leftover
    // backlog can be stolen; records of running threads are swept only if
    // their list lock is free (a busy owner will reclaim through its own
    // retire cycles — never block it, never race it).
    bool expected = false;
    if (rec.in_use.load(std::memory_order_relaxed) ||
        !rec.in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      if (try_lock_list(rec)) {
        free_eligible_locked(rec);
        unlock_list(rec);
      }
      return;
    }
    // Claimed an ownerless record. Free what's eligible, then steal the
    // remainder into the caller's record: it drains through the caller's
    // ordinary retire cycles instead of waiting for this slot to be
    // reacquired. The swap-through-a-temporary keeps us from ever holding
    // two list locks at once (lock-order cycles between concurrent
    // flushers), and swap itself cannot throw.
    lock_list(rec);
    free_eligible_locked(rec);
    std::vector<Retired> stolen;
    stolen.swap(rec.retired);
    rec.retired_count.store(0, std::memory_order_relaxed);
    unlock_list(rec);
    if (!stolen.empty()) {
      lock_list(*mine);
      try {
        mine->retired.insert(mine->retired.end(), stolen.begin(),
                             stolen.end());
        mine->retired_count.store(mine->retired.size(),
                                  std::memory_order_relaxed);
        mine->last_scan_epoch.store(0, std::memory_order_relaxed);
        backlog_steals_.fetch_add(stolen.size(), std::memory_order_relaxed);
        stolen.clear();
      } catch (const std::bad_alloc&) {
        // No room to adopt it; hand the list back to the idle slot below.
      }
      unlock_list(*mine);
      if (!stolen.empty()) {
        lock_list(rec);
        rec.retired.swap(stolen);
        rec.retired_count.store(rec.retired.size(),
                                std::memory_order_relaxed);
        rec.last_scan_epoch.store(0, std::memory_order_relaxed);
        unlock_list(rec);
      }
    }
    rec.since_last_scan = 0;
    rec.in_use.store(false, std::memory_order_release);
  });
  free_eligible(*mine);
}

std::size_t EbrDomain::pending_retired() const {
  std::size_t n = 0;
  for_each_record([&n](const Record& rec, std::size_t) {
    n += rec.retired_count.load(std::memory_order_relaxed);
  });
  return n;
}

EbrDomain::Stats EbrDomain::stats() const {
  Stats s;
  s.epoch = global_epoch_.load(std::memory_order_acquire);
  for_each_record([&s](const Record& rec, std::size_t) {
    ++s.record_capacity;
    s.pending_retired += rec.retired_count.load(std::memory_order_relaxed);
    if (rec.in_use.load(std::memory_order_relaxed)) ++s.records_in_use;
    const std::uint64_t pinned =
        rec.pinned_epoch.load(std::memory_order_acquire);
    if (pinned != 0 &&
        (s.min_pinned_epoch == 0 || pinned < s.min_pinned_epoch)) {
      s.min_pinned_epoch = pinned;
    }
    if (rec.stall_reported.load(std::memory_order_relaxed) &&
        rec.pinned_epoch.load(std::memory_order_relaxed) != 0) {
      s.stalled_now = true;
    }
  });
  if (s.min_pinned_epoch != 0 && s.epoch > s.min_pinned_epoch) {
    s.epoch_lag = s.epoch - s.min_pinned_epoch;
  }
  s.backlog_peak = backlog_peak_.load(std::memory_order_relaxed);
  s.pool_growths = pool_growths_.load(std::memory_order_relaxed);
  s.backpressure_hits = backpressure_hits_.load(std::memory_order_relaxed);
  s.backpressure_throttled =
      backpressure_throttled_.load(std::memory_order_relaxed);
  s.backlog_steals = backlog_steals_.load(std::memory_order_relaxed);
  s.emergency_leaks = emergency_leaks_.load(std::memory_order_relaxed);
  s.stall_watchdog_fires = stall_fires_.load(std::memory_order_relaxed);
  s.stalled_record = stalled_record_.load(std::memory_order_relaxed);
  s.stalled_epoch = stalled_epoch_.load(std::memory_order_relaxed);
  s.stalled_owner = stalled_owner_.load(std::memory_order_relaxed);
  s.contention_events = contention_events_.load(std::memory_order_relaxed);
  s.rotations_deferred = rotations_deferred_.load(std::memory_order_relaxed);
  s.pool = PoolStats::snapshot();
  return s;
}

}  // namespace lot::reclaim
