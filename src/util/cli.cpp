#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace lot::util {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      // Bare flag, e.g. --verbose
      values_[arg.substr(2)] = "1";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::int64_t Cli::get_int(const std::string& key,
                          std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Cli::get_string(const std::string& key,
                            const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& key, std::vector<std::int64_t> fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out.empty() ? fallback : out;
}

}  // namespace lot::util
