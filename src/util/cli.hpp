// Minimal --key=value flag parser shared by the benchmark drivers and
// examples. Deliberately tiny: no subcommands, no help generation beyond a
// usage dump of registered flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lot::util {

class Cli {
 public:
  /// Parses argv of the form: prog --threads=4 --range=20000 --secs=2
  /// Unknown flags are collected and reported by unknown_flags().
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  /// Comma-separated integer list, e.g. --threads=1,2,4,8
  std::vector<std::int64_t> get_int_list(
      const std::string& key, std::vector<std::int64_t> fallback) const;

  const std::vector<std::string>& unknown_flags() const { return unknown_; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> unknown_;
  std::vector<std::string> positional_;
};

}  // namespace lot::util
