// Monotonic wall-clock stopwatch for the throughput trials.
#pragma once

#include <chrono>
#include <cstdint>

namespace lot::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t elapsed_nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lot::util
