// Small, fast PRNGs for workload generation. std::mt19937_64 is both slow
// and large; benchmark loops want a few nanoseconds per draw so the PRNG
// does not dominate the measured data-structure cost.
#pragma once

#include <cstdint>

namespace lot::util {

/// SplitMix64 — used to seed the main generator and for cheap one-shot
/// hashing of thread ids into seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna — the workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// (biased by at most 2^-64, irrelevant for workload sampling).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw: true with probability pct/100.
  bool percent(unsigned pct) noexcept { return next_below(100) < pct; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace lot::util
