// Summary statistics for repeated benchmark trials.
#pragma once

#include <cstddef>
#include <vector>

namespace lot::util {

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  std::size_t n = 0;
};

/// Arithmetic mean / sample stddev / extrema of a set of trial results.
Summary summarize(const std::vector<double>& samples);

/// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> samples, double p);

}  // namespace lot::util
