// Summary statistics for repeated benchmark trials.
#pragma once

#include <cstddef>
#include <vector>

namespace lot::util {

struct Summary {
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;
  std::size_t n = 0;
};

/// Arithmetic mean / sample stddev / extrema of a set of trial results.
Summary summarize(const std::vector<double>& samples);

/// The one definition of the percentile→rank mapping, shared by
/// percentile() below and the obs latency histogram's quantile walk
/// (obs/histogram.hpp), so "p50" means the same thing in a benchmark
/// summary and a telemetry report. Maps p in [0,100] over n sorted
/// samples to the fractional 0-based order-statistic rank
/// p/100 * (n-1), clamped to [0, n-1]; the fractional part is the
/// linear-interpolation weight between the two adjacent order
/// statistics (the "linear" / R-7 convention).
double percentile_rank(double p, std::size_t n);

/// p in [0,100]; linear interpolation between order statistics at the
/// percentile_rank() position.
double percentile(std::vector<double> samples, double p);

}  // namespace lot::util
