#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace lot::util {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.n = samples.size();
  if (samples.empty()) return s;
  s.min = s.max = samples[0];
  double sum = 0;
  for (double v : samples) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0;
    for (double v : samples) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  return s;
}

double percentile_rank(double p, std::size_t n) {
  if (n == 0) return 0;
  const double max_rank = static_cast<double>(n - 1);
  const double rank = p / 100.0 * max_rank;
  if (rank < 0) return 0;
  if (rank > max_rank) return max_rank;
  return rank;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = percentile_rank(p, samples.size());
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

}  // namespace lot::util
