#include "obs/obs.hpp"

#include <cinttypes>
#include <cstdio>

#include "reclaim/alloc_stats.hpp"

namespace lot::obs {

namespace {

// Bounded-append helpers: the report is a few KiB of controlled
// identifiers and integers, so snprintf into a std::string is plenty.
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[256];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

}  // namespace

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Snapshot Registry::snapshot(const reclaim::EbrDomain* domain) const {
  Snapshot s;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    s.counters[i] = counter_total(static_cast<Counter>(i));
  }
#if !defined(LOT_DISABLE_OBS)
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    s.latency[i] = latency_histogram(static_cast<OpKind>(i)).stats();
  }
#endif
  const reclaim::EbrDomain& d =
      domain != nullptr ? *domain : reclaim::EbrDomain::global_domain();
  s.ebr = d.stats();
  // One row per live domain. stats() only reads atomics, so taking it
  // inside the registry enumeration is safe — the registry mutex orders
  // us against domain construction/destruction, nothing else.
  s.domains.reserve(reclaim::EbrDomain::live_domain_count());
  reclaim::EbrDomain::for_each_domain([&s](reclaim::EbrDomain& dom) {
    const auto st = dom.stats();
    Snapshot::DomainRow row;
    row.uid = dom.uid();
    row.epoch = st.epoch;
    row.epoch_lag = st.epoch_lag;
    row.pending_retired = st.pending_retired;
    row.backlog_peak = st.backlog_peak;
    row.contention_events = st.contention_events;
    row.rotations_deferred = st.rotations_deferred;
    row.stalled_now = st.stalled_now;
    s.domains.push_back(row);
  });
  s.health = health::view();
  s.live_nodes = reclaim::AllocStats::live();
  s.counter_shards = counter_shards();
  return s;
}

void Registry::reset() {
  reset_counters();
  reset_latency_histograms();
}

std::string Snapshot::to_text() const {
  std::string out;
  out += "== obs snapshot ==\n";
  appendf(out, "counters (%zu shards):\n", counter_shards);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    appendf(out, "  %-22s %12" PRIu64 "\n",
            counter_name(static_cast<Counter>(i)), counters[i]);
  }
  appendf(out, "  %-22s %12lld  (derived; 0 == the paper's claim)\n",
          "contains_restarts", static_cast<long long>(contains_restarts()));
  out += "latency (sampled, ns):\n";
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    const HistogramStats& h = latency[i];
    if (h.count == 0) continue;
    appendf(out,
            "  %-8s n=%-9" PRIu64 " p50=%-8.0f p90=%-8.0f p99=%-8.0f "
            "max=%" PRIu64 " mean=%.0f\n",
            op_kind_name(static_cast<OpKind>(i)), h.count, h.p50_ns, h.p90_ns,
            h.p99_ns, h.max_ns, h.mean_ns);
  }
  out += "gauges:\n";
  appendf(out, "  epoch=%" PRIu64 " min_pinned=%" PRIu64 " lag=%" PRIu64
               " pending_retired=%zu backlog_peak=%zu\n",
          ebr.epoch, ebr.min_pinned_epoch, ebr.epoch_lag, ebr.pending_retired,
          ebr.backlog_peak);
  appendf(out, "  records=%zu/%zu pool_growths=%" PRIu64
               " backpressure=%" PRIu64 "/%" PRIu64 " steals=%" PRIu64
               " leaks=%" PRIu64 "\n",
          ebr.records_in_use, ebr.record_capacity, ebr.pool_growths,
          ebr.backpressure_hits, ebr.backpressure_throttled,
          ebr.backlog_steals, ebr.emergency_leaks);
  appendf(out, "  stall_fires=%" PRIu64 " stalled_now=%s "
               "fallback_outstanding=%" PRIu64 "\n",
          ebr.stall_watchdog_fires, ebr.stalled_now ? "true" : "false",
          ebr.pool.fallback_outstanding());
  appendf(out, "  domains=%zu total_pending=%zu max_lag=%" PRIu64
               " any_stalled=%s\n",
          domains.size(), total_pending_retired(), max_epoch_lag(),
          any_stalled() ? "true" : "false");
  for (const DomainRow& d : domains) {
    appendf(out, "    domain[%" PRIu64 "]: epoch=%" PRIu64 " lag=%" PRIu64
                 " pending=%zu backlog_peak=%zu heat=%" PRIu64
                 " rot_deferred=%" PRIu64 " stalled=%s\n",
            d.uid, d.epoch, d.epoch_lag, d.pending_retired, d.backlog_peak,
            d.contention_events, d.rotations_deferred,
            d.stalled_now ? "true" : "false");
  }
  appendf(out, "  health=%s transitions=%" PRIu64 " ticks=%" PRIu64
               " contention_events=%" PRIu64 "\n",
          health::state_name(health.state), health.transitions, health.ticks,
          health.contention_events);
  appendf(out, "  pool: slabs=%" PRIu64 " allocs=%" PRIu64 " frees=%" PRIu64
               " remote_frees=%" PRIu64 " harvests=%" PRIu64 "\n",
          ebr.pool.slabs, ebr.pool.allocs, ebr.pool.frees,
          ebr.pool.remote_frees, ebr.pool.harvests);
  appendf(out, "  pool: fallback=%" PRIu64 "/%" PRIu64
               " emergency_grants=%" PRIu64 " caches=%" PRIu64 "+%" PRIu64
               " adopted; live_nodes=%" PRIu64 "\n",
          ebr.pool.fallback_allocs, ebr.pool.fallback_frees,
          ebr.pool.emergency_grants, ebr.pool.caches_created,
          ebr.pool.caches_adopted, live_nodes);
  return out;
}

std::string Snapshot::to_json() const {
  std::string out;
  out += "{\n  \"schema\": \"lot-obs-v1\",\n";
  appendf(out, "  \"enabled\": %s,\n", kEnabled ? "true" : "false");
  out += "  \"counters\": {";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    appendf(out, "%s\"%s\": %" PRIu64, i == 0 ? "" : ", ",
            counter_name(static_cast<Counter>(i)), counters[i]);
  }
  out += "},\n";
  appendf(out, "  \"contains_restarts\": %lld,\n",
          static_cast<long long>(contains_restarts()));
  out += "  \"latency_ns\": {";
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    const HistogramStats& h = latency[i];
    appendf(out,
            "%s\"%s\": {\"count\": %" PRIu64 ", \"p50\": %.1f, "
            "\"p90\": %.1f, \"p99\": %.1f, \"max\": %" PRIu64
            ", \"mean\": %.1f}",
            i == 0 ? "" : ", ", op_kind_name(static_cast<OpKind>(i)), h.count,
            h.p50_ns, h.p90_ns, h.p99_ns, h.max_ns, h.mean_ns);
  }
  out += "},\n";
  out += "  \"gauges\": {";
  appendf(out, "\"epoch\": %" PRIu64 ", \"min_pinned_epoch\": %" PRIu64
               ", \"epoch_lag\": %" PRIu64 ", \"pending_retired\": %zu, "
               "\"backlog_peak\": %zu, \"records_in_use\": %zu, "
               "\"record_capacity\": %zu, ",
          ebr.epoch, ebr.min_pinned_epoch, ebr.epoch_lag, ebr.pending_retired,
          ebr.backlog_peak, ebr.records_in_use, ebr.record_capacity);
  appendf(out, "\"pool_growths\": %" PRIu64 ", \"backpressure_hits\": %" PRIu64
               ", \"backpressure_throttled\": %" PRIu64
               ", \"backlog_steals\": %" PRIu64 ", \"emergency_leaks\": %" PRIu64
               ", \"stall_watchdog_fires\": %" PRIu64 ", \"stalled_now\": %s"
               ", \"fallback_outstanding\": %" PRIu64 ", ",
          ebr.pool_growths, ebr.backpressure_hits, ebr.backpressure_throttled,
          ebr.backlog_steals, ebr.emergency_leaks, ebr.stall_watchdog_fires,
          ebr.stalled_now ? "true" : "false",
          ebr.pool.fallback_outstanding());
  appendf(out, "\"health_state\": \"%s\", \"health_state_level\": %u, "
               "\"health_transitions\": %" PRIu64 ", \"health_ticks\": %" PRIu64
               ", \"health_contention_events\": %" PRIu64 ", ",
          health::state_name(health.state),
          static_cast<unsigned>(health.state), health.transitions,
          health.ticks, health.contention_events);
  appendf(out, "\"pool_slabs\": %" PRIu64 ", \"pool_allocs\": %" PRIu64
               ", \"pool_frees\": %" PRIu64 ", \"pool_remote_frees\": %" PRIu64
               ", \"pool_harvests\": %" PRIu64 ", \"pool_fallback_allocs\": %" PRIu64
               ", \"pool_fallback_frees\": %" PRIu64
               ", \"pool_caches_created\": %" PRIu64
               ", \"pool_caches_adopted\": %" PRIu64
               ", \"pool_emergency_grants\": %" PRIu64
               ", \"live_nodes\": %" PRIu64 "},\n",
          ebr.pool.slabs, ebr.pool.allocs, ebr.pool.frees,
          ebr.pool.remote_frees, ebr.pool.harvests, ebr.pool.fallback_allocs,
          ebr.pool.fallback_frees, ebr.pool.caches_created,
          ebr.pool.caches_adopted, ebr.pool.emergency_grants, live_nodes);
  appendf(out, "  \"domains_total_pending_retired\": %zu,\n"
               "  \"domains_max_epoch_lag\": %" PRIu64 ",\n"
               "  \"domains_any_stalled\": %s,\n",
          total_pending_retired(), max_epoch_lag(),
          any_stalled() ? "true" : "false");
  out += "  \"domains\": [";
  for (std::size_t i = 0; i < domains.size(); ++i) {
    const DomainRow& d = domains[i];
    appendf(out,
            "%s{\"uid\": %" PRIu64 ", \"epoch\": %" PRIu64
            ", \"epoch_lag\": %" PRIu64 ", \"pending_retired\": %zu"
            ", \"backlog_peak\": %zu, \"contention_events\": %" PRIu64
            ", \"rotations_deferred\": %" PRIu64 ", \"stalled_now\": %s}",
            i == 0 ? "" : ", ", d.uid, d.epoch, d.epoch_lag,
            d.pending_retired, d.backlog_peak, d.contention_events,
            d.rotations_deferred, d.stalled_now ? "true" : "false");
  }
  out += "]\n}\n";
  return out;
}

}  // namespace lot::obs
