// Log-bucketed latency histograms (HDR-histogram style), the second half
// of the observability layer's hot-path surface (counters.hpp is the
// first; obs/obs.hpp aggregates both into snapshots).
//
// Bucketing: log-linear with kSubBits sub-buckets per power of two —
// values below 2^(kSubBits+1) get exact unit buckets, larger values land
// in buckets of relative width 2^-kSubBits (3.125% at kSubBits = 5), so a
// quantile read is off by at most one bucket width plus the within-bucket
// interpolation error (tests/test_obs.cpp pins this against a sorted
// reference). The quantile walk shares util::percentile_rank with
// util::percentile so "p99" means the same thing everywhere.
//
// Recording is a handful of relaxed fetch_adds on shared atomics; unlike
// the counters this is NOT contention-free, which is why the workload
// driver only records a 1-in-N sample of operations
// (workload::Spec::latency_sample_every). Credible comparisons need
// latency distributions, not just throughput means; sampling keeps the
// distribution honest without perturbing what it measures.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/stats.hpp"

namespace lot::obs {

/// Operation classes with their own latency distribution.
enum class OpKind : std::uint8_t { kContains, kInsert, kErase, kScan, kCount };

inline constexpr std::size_t kOpKindCount =
    static_cast<std::size_t>(OpKind::kCount);

constexpr const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kContains: return "contains";
    case OpKind::kInsert:   return "insert";
    case OpKind::kErase:    return "erase";
    case OpKind::kScan:     return "scan";
    case OpKind::kCount:    break;
  }
  return "?";
}

/// Per-op-kind summary embedded in obs::Snapshot. Defined outside the
/// LOT_DISABLE_OBS gate: snapshots exist (zeroed) even in OFF builds so
/// reporting code needs no #ifdefs.
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t max_ns = 0;   // exact (tracked separately from buckets)
  double mean_ns = 0;
  double p50_ns = 0;
  double p90_ns = 0;
  double p99_ns = 0;
};

#if !defined(LOT_DISABLE_OBS)

/// One latency distribution over uint64 nanoseconds.
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 5;           // 32 sub-buckets / octave
  static constexpr std::uint64_t kSub = 1ull << kSubBits;
  // Unit buckets cover [0, 2*kSub); each further octave adds kSub buckets.
  static constexpr std::size_t kBucketCount =
      ((64 - kSubBits - 1) << kSubBits) + 2 * kSub;

  /// Bucket index for a value; monotone, total over uint64.
  static constexpr std::size_t bucket_index(std::uint64_t v) {
    if (v < 2 * kSub) return static_cast<std::size_t>(v);
    const unsigned top = std::bit_width(v) - 1;     // >= kSubBits + 1
    const unsigned shift = top - kSubBits;
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(shift) << kSubBits) +
        ((v >> shift) & (kSub - 1)) + kSub);
  }

  /// Inclusive lower edge of a bucket (the smallest value mapping to it).
  static constexpr std::uint64_t bucket_lower(std::size_t i) {
    if (i < 2 * kSub) return i;
    const std::uint64_t adj = i - kSub;
    const unsigned shift = static_cast<unsigned>(adj >> kSubBits);
    const std::uint64_t sub = adj & (kSub - 1);
    return (kSub + sub) << shift;
  }

  /// Bucket width (exclusive upper edge = lower + width).
  static constexpr std::uint64_t bucket_width(std::size_t i) {
    if (i < 2 * kSub) return 1;
    return 1ull << static_cast<unsigned>((i - kSub) >> kSubBits);
  }

  void record(std::uint64_t ns) {
    buckets_[bucket_index(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t m = max_.load(std::memory_order_relaxed);
    while (ns > m && !max_.compare_exchange_weak(m, ns,
                                                 std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  /// Value at quantile p (percent). Within the located bucket the samples
  /// are assumed uniform; the rank convention is util::percentile_rank, so
  /// on unit buckets this degrades gracefully toward the exact order
  /// statistic.
  double quantile(double p) const {
    const std::uint64_t n = count_.load(std::memory_order_relaxed);
    if (n == 0) return 0;
    const double rank = util::percentile_rank(p, static_cast<std::size_t>(n));
    std::uint64_t before = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
      const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
      if (c == 0) continue;
      if (rank < static_cast<double>(before + c)) {
        const double frac = (rank - static_cast<double>(before)) /
                            static_cast<double>(c);
        return static_cast<double>(bucket_lower(i)) +
               frac * static_cast<double>(bucket_width(i));
      }
      before += c;
    }
    // rank == n-1 exactly and the loop consumed every bucket: the max.
    return static_cast<double>(max_.load(std::memory_order_relaxed));
  }

  HistogramStats stats() const {
    HistogramStats s;
    s.count = count_.load(std::memory_order_relaxed);
    if (s.count == 0) return s;
    s.max_ns = max_.load(std::memory_order_relaxed);
    s.mean_ns = static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                static_cast<double>(s.count);
    s.p50_ns = quantile(50.0);
    s.p90_ns = quantile(90.0);
    s.p99_ns = quantile(99.0);
    return s;
  }

  /// Zeroes the distribution. Only meaningful at quiescence (benchmarks
  /// reset between cells); concurrent records may be lost, never corrupt.
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

namespace detail {
inline LatencyHistogram* latency_histograms() {
  // Immortal (never destroyed, reachable from this static for LSan), like
  // the counter shard list: snapshots may race process teardown.
  static LatencyHistogram* h = new LatencyHistogram[kOpKindCount];
  return h;
}
}  // namespace detail

inline LatencyHistogram& latency_histogram(OpKind k) {
  return detail::latency_histograms()[static_cast<std::size_t>(k)];
}

inline void record_latency(OpKind k, std::uint64_t ns) {
  latency_histogram(k).record(ns);
}

inline void reset_latency_histograms() {
  for (std::size_t i = 0; i < kOpKindCount; ++i) {
    detail::latency_histograms()[i].reset();
  }
}

/// RAII op timer: two steady_clock reads around the op when `active`,
/// nothing otherwise. The driver activates it on 1-in-N sampled ops.
class ScopedLatency {
 public:
  ScopedLatency(OpKind kind, bool active) : kind_(kind), active_(active) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency() {
    if (!active_) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    record_latency(kind_, ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  OpKind kind_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

#else  // LOT_DISABLE_OBS

inline void record_latency(OpKind, std::uint64_t) {}
inline void reset_latency_histograms() {}

/// Empty handle (tests/test_obs.cpp static_asserts it stays empty).
struct ScopedLatency {
  ScopedLatency(OpKind, bool) {}
};

#endif  // LOT_DISABLE_OBS

}  // namespace lot::obs
