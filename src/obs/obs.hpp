// The observability registry: one place that aggregates the per-thread
// counter shards (obs/counters.hpp), the latency histograms
// (obs/histogram.hpp) and the reclamation/pool gauges
// (EbrDomain::stats(), which already embeds PoolSnapshot) into a single
// structured Snapshot, with text and JSON (schema "lot-obs-v1")
// serializers.
//
// Snapshots are safe to take while threads are running: counters are
// single-writer monotone atomics, so a live snapshot is a consistent
// lower bound per counter and exact at quiescence. The derived
// contains_restarts() audit (DESIGN.md §12) should therefore be read at
// quiescence — the stress harness snapshots at its phase barriers.
//
// Building with LOT_DISABLE_OBS keeps this entire API compilable —
// Snapshot comes back with zeroed counters/latency and live EBR/pool
// gauges — only the hot-path hooks vanish.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "health/governor.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "reclaim/ebr.hpp"

namespace lot::obs {

/// Point-in-time aggregate of every telemetry source.
struct Snapshot {
  /// One row per registered EbrDomain (the global domain plus every
  /// shard-private one alive at snapshot time) — the reclamation gauges a
  /// ShardedMap spreads across its shards, re-surfaced per shard. Rows
  /// are keyed by the domain's process-unique uid, not an address: a
  /// domain destroyed between snapshots simply stops appearing.
  struct DomainRow {
    std::uint64_t uid = 0;
    std::uint64_t epoch = 0;
    std::uint64_t epoch_lag = 0;
    std::size_t pending_retired = 0;
    std::size_t backlog_peak = 0;
    std::uint64_t contention_events = 0;
    std::uint64_t rotations_deferred = 0;
    bool stalled_now = false;
  };

  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<HistogramStats, kOpKindCount> latency{};
  reclaim::EbrDomain::Stats ebr{};    // incl. PoolSnapshot gauges
  std::vector<DomainRow> domains;     // every live domain, global included
  health::View health{};              // governor state + odometers
  std::uint64_t live_nodes = 0;       // AllocStats::live()
  std::size_t counter_shards = 0;

  /// Aggregates over `domains` — the process-wide reclamation picture no
  /// single domain's Stats can give once maps stop sharing one domain.
  /// Same fold the health governor samples (sum backlog, worst lag/stall).
  std::size_t total_pending_retired() const {
    std::size_t n = 0;
    for (const DomainRow& d : domains) n += d.pending_retired;
    return n;
  }
  std::uint64_t max_epoch_lag() const {
    std::uint64_t lag = 0;
    for (const DomainRow& d : domains) lag = std::max(lag, d.epoch_lag);
    return lag;
  }
  bool any_stalled() const {
    for (const DomainRow& d : domains) {
      if (d.stalled_now) return true;
    }
    return false;
  }

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }

  /// The paper's "contains never restarts" claim as a measured number
  /// (DESIGN.md §12): every tree descent (Algorithm 1, counted inside
  /// search() itself) must be accounted for by exactly one locating read
  /// or one write attempt. Reads perform one descent per call by
  /// construction of the algorithm — if any read path ever re-descended,
  /// descents would exceed the accounted sum and this would go positive.
  /// Writes re-descend only when a failed validation exhausts its resume
  /// budget, which the restart counters measure independently; in-place
  /// resumes (kLocateResumes) perform no descent and so do not enter the
  /// identity. MVCC snapshot reads (DESIGN.md §16) stay inside it by
  /// construction: a snapshot contains/get/range performs one descent and
  /// bumps the same per-op counter as its live twin, snapshot cursor
  /// opens count kOrderedLocates, and the snapshot-only counters
  /// (kSnapshotAcquires, kVersionsRetired, kVersionChainWalks) track
  /// non-descent work, so none of them enters the sum.
  /// The companion cross-check is kValidationFallbacks ==
  /// kInsertRestarts + kEraseRestarts in fault-free runs. Signed: a mid-run
  /// transiently see more ops than descents (the descent is counted
  /// before the op completes); at quiescence the value is exact.
  std::int64_t contains_restarts() const {
    const std::uint64_t accounted =
        counter(Counter::kContainsOps) + counter(Counter::kGetOps) +
        counter(Counter::kRangeOps) + counter(Counter::kOrderedLocates) +
        counter(Counter::kInsertOps) + counter(Counter::kInsertRestarts) +
        counter(Counter::kEraseOps) + counter(Counter::kEraseRestarts);
    return static_cast<std::int64_t>(counter(Counter::kTreeDescents)) -
           static_cast<std::int64_t>(accounted);
  }

  /// The same audit over a window of counter deltas. Process-lifetime
  /// balance is meaningless in binaries that bump counters synthetically
  /// (tests), and benchmarks want the audit per cell — both diff two
  /// quiescent snapshots instead.
  static std::int64_t contains_restarts_between(const Snapshot& s0,
                                                const Snapshot& s1) {
    Snapshot d;
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      d.counters[i] = s1.counters[i] - s0.counters[i];
    }
    return d.contains_restarts();
  }

  /// Human-readable multi-line report (scripts/obs_report.sh,
  /// examples/orderbook.cpp).
  std::string to_text() const;

  /// Schema "lot-obs-v1": flat JSON object with counters{}, latency{},
  /// gauges{} and the derived contains_restarts.
  std::string to_json() const;
};

/// Process-wide singleton front door.
class Registry {
 public:
  static Registry& instance();

  /// Aggregates counters + histograms + gauges. `domain` selects which
  /// domain fills the headline `ebr` gauges (default: the global domain);
  /// `domains` always carries one row per live registered domain
  /// regardless.
  Snapshot snapshot(const reclaim::EbrDomain* domain = nullptr) const;

  /// Zeroes counters and histograms (gauges are owned by their layers and
  /// stay). Quiescence only — benchmark cells reset between runs.
  void reset();

 private:
  Registry() = default;
};

}  // namespace lot::obs
