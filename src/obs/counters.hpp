// Per-thread sharded event counters — the contention-free half of the
// observability layer (obs/obs.hpp holds the registry and serializers).
//
// Design (DESIGN.md §12):
//  * One cacheline-isolated shard per thread. A shard is strictly
//    single-writer: the owning thread bumps its slots with a relaxed
//    load+store pair (a plain `add` instruction after optimization — no
//    lock-prefixed RMW on the hot path), while snapshot readers sum the
//    same atomics with relaxed loads. Coherence makes each slot's value
//    monotone under a single writer, so a snapshot taken mid-run is a
//    consistent *lower bound* per counter and exact at quiescence.
//  * Shards are immortal and live on a grow-only lock-free list. A thread
//    acquires a shard on first use (reusing a released one if available)
//    and releases it — values intact — when it exits, so counters are
//    process-monotonic and totals never lose an exited thread's events.
//    The release/acquire handshake on `in_use` publishes the dying
//    thread's final relaxed stores to the adopter ("thread-exit counter
//    adoption", tested in tests/test_obs.cpp).
//  * Compile-time gate: building with LOT_DISABLE_OBS (CMake -DLOT_OBS=OFF)
//    replaces every hook with an empty inline on an empty handle type, so
//    the instrumented call sites in lo/core.hpp compile to nothing.
//
// Counter semantics and the claims they audit are catalogued in
// DESIGN.md §12; the key derived invariant is contains_restarts == 0
// (obs/obs.hpp, Snapshot::contains_restarts).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "sync/cacheline.hpp"

namespace lot::obs {

/// Every event the trees and the reclamation layer count. Keep in sync
/// with counter_name() below and the DESIGN.md §12 catalogue.
enum class Counter : std::uint16_t {
  // Enum order is shard-slot order. The first eight counters share the
  // shard's first cacheline on purpose: they are the read-path hot set
  // (a contains bumps kTreeDescents + kContainsOps + kContainsHits), so
  // the whole read path touches exactly one line of its shard.

  // -- read-path work (the "contains never restarts" audit) --------------
  kTreeDescents,      // Algorithm 1 invocations (search())
  kLocateMarkBackoffs,// mark-backoff hops inside locate()'s ordering walk

  // -- operations (reconciled 1:1 against recorded histories) ------------
  kContainsOps,       // contains() calls
  kContainsHits,      // ... that returned true
  kGetOps,            // get() calls
  kInsertOps,         // insert() calls
  kInsertSuccess,     // ... that returned true
  kEraseOps,          // erase() calls
  kEraseSuccess,      // ... that returned true
  kRangeOps,          // range() scans that performed a descent
  kRangeKeysReported, // keys handed to a range() sink
  kOrderedLocates,    // first/last_in_range, next, prev descents
  kMinMaxOps,         // min()/max() chain walks (no descent)

  // -- write-path restarts (the paper's §5.1 try-lock discipline) --------
  kInsertRestarts,    // insert re-descents from the root (fallback path)
  kEraseRestarts,     // erase re-descents from the root (fallback path)
  kRemovalLockRetries,// acquire_removal_locks try_lock-failure restarts
  kBalanceRestarts,   // restart_balance invocations (rebalance try_lock)
  kLocateResumes,     // failed write validations resumed in place (no descent)
  kValidationFallbacks,// resume budget exhausted -> full root re-descent

  // -- structure maintenance ---------------------------------------------
  kRotations,         // single rotations applied (a double counts twice)
  kHeightPasses,      // rebalance climb-loop iterations (height recompute)
  kEraseRelocations,  // two-children erases relocating the successor
  kEraseLogical,      // two-children erases downgraded to `deleted` (LR)
  kInsertRevives,     // inserts reviving a zombie in place (LR)
  kPurgeAttempts,     // try_purge attempts that reached the lock phase
  kPurgeSuccesses,    // ... that physically removed the zombie
  kRotationsDeferred, // rebalance climbs that skipped rotations (throttle hot)

  // -- MVCC snapshot machinery (DESIGN.md §16) ---------------------------
  kSnapshotAcquires,  // snapshot() epoch draws (no descent of their own)
  kVersionsRetired,   // version records retired (truncation, node death)
  kVersionChainWalks, // version-chain resolutions (one per node resolved)

  kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

constexpr const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kContainsOps:        return "contains_ops";
    case Counter::kContainsHits:       return "contains_hits";
    case Counter::kGetOps:             return "get_ops";
    case Counter::kInsertOps:          return "insert_ops";
    case Counter::kInsertSuccess:      return "insert_success";
    case Counter::kEraseOps:           return "erase_ops";
    case Counter::kEraseSuccess:       return "erase_success";
    case Counter::kRangeOps:           return "range_ops";
    case Counter::kRangeKeysReported:  return "range_keys_reported";
    case Counter::kOrderedLocates:     return "ordered_locates";
    case Counter::kMinMaxOps:          return "minmax_ops";
    case Counter::kTreeDescents:       return "tree_descents";
    case Counter::kLocateMarkBackoffs: return "locate_mark_backoffs";
    case Counter::kInsertRestarts:     return "insert_restarts";
    case Counter::kEraseRestarts:      return "erase_restarts";
    case Counter::kRemovalLockRetries: return "removal_lock_retries";
    case Counter::kBalanceRestarts:    return "balance_restarts";
    case Counter::kLocateResumes:      return "locate_resumes";
    case Counter::kValidationFallbacks:return "validation_fallbacks";
    case Counter::kRotations:          return "rotations";
    case Counter::kHeightPasses:       return "height_passes";
    case Counter::kEraseRelocations:   return "erase_relocations";
    case Counter::kEraseLogical:       return "erase_logical";
    case Counter::kInsertRevives:      return "insert_revives";
    case Counter::kPurgeAttempts:      return "purge_attempts";
    case Counter::kPurgeSuccesses:     return "purge_successes";
    case Counter::kRotationsDeferred:  return "rotations_deferred";
    case Counter::kSnapshotAcquires:   return "snapshot_acquires";
    case Counter::kVersionsRetired:    return "versions_retired";
    case Counter::kVersionChainWalks:  return "version_chain_walks";
    case Counter::kCount:              break;
  }
  return "?";
}

#if !defined(LOT_DISABLE_OBS)

inline constexpr bool kEnabled = true;

/// One thread's counter block, alone on its cache lines. Single-writer
/// (the owner); see the header comment for why the adds are load+store,
/// not fetch_add.
struct alignas(sync::kCacheLineSize) CounterShard {
  std::atomic<std::uint64_t> v[kCounterCount];
  std::atomic<bool> in_use{false};
  CounterShard* next = nullptr;  // immutable once the shard is published

  CounterShard() {
    for (auto& c : v) c.store(0, std::memory_order_relaxed);
  }
};

namespace detail {

inline std::atomic<CounterShard*>& shard_head() {
  // Function-local static: the list stays reachable from a root for
  // LeakSanitizer, and needs no global-destruction ordering.
  static std::atomic<CounterShard*> head{nullptr};
  return head;
}

inline CounterShard* acquire_shard() {
  auto& head = shard_head();
  // Prefer adopting a shard released by an exited thread; its counters
  // are kept (totals are process-monotonic), we only take over writing.
  for (CounterShard* s = head.load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    bool expected = false;
    if (!s->in_use.load(std::memory_order_relaxed) &&
        s->in_use.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      return s;
    }
  }
  auto* s = new CounterShard();
  s->in_use.store(true, std::memory_order_relaxed);
  CounterShard* old = head.load(std::memory_order_relaxed);
  do {
    s->next = old;
  } while (!head.compare_exchange_weak(old, s, std::memory_order_release,
                                       std::memory_order_relaxed));
  return s;
}

// Thread-exit hook: releasing (not zeroing) the shard makes it adoptable.
// The release store pairs with the adopter's acquire CAS, publishing the
// dying thread's final relaxed counter stores.
struct ShardReleaser {
  CounterShard* shard = nullptr;
  ~ShardReleaser() {
    if (shard != nullptr) shard->in_use.store(false, std::memory_order_release);
  }
};

// Cold path: acquires the shard and registers the thread-exit release.
// The dtor-bearing thread_local lives here so only the first call per
// thread pays the TLS-wrapper (guard + __cxa_thread_atexit) machinery.
inline CounterShard* acquire_tls_shard() {
  thread_local ShardReleaser tls;
  tls.shard = acquire_shard();
  return tls.shard;
}

inline CounterShard& tls_shard() {
  // Trivially-destructible cache: access compiles to a direct TLS load
  // (no wrapper call), which is what the per-op hooks actually hit.
  thread_local CounterShard* cached = nullptr;
  if (cached == nullptr) cached = acquire_tls_shard();
  return *cached;
}

}  // namespace detail

/// The per-thread counting handle: a shard pointer. Grab one per operation
/// (obs::tls()) and bump several counters without re-resolving the TLS.
class Tls {
 public:
  void add(Counter c, std::uint64_t n = 1) const {
    auto& slot = shard_->v[static_cast<std::size_t>(c)];
    // Single-writer: a relaxed load+store pair is exact and avoids the
    // lock-prefixed RMW a fetch_add would cost on the hot path.
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }

 private:
  explicit Tls(CounterShard* s) : shard_(s) {}
  CounterShard* shard_;
  friend inline Tls tls();
};

inline Tls tls() { return Tls(&detail::tls_shard()); }

/// Single-increment convenience for cold sites.
inline void count(Counter c, std::uint64_t n = 1) { tls().add(c, n); }

/// Sum of one counter across every shard, live or released.
inline std::uint64_t counter_total(Counter c) {
  std::uint64_t sum = 0;
  for (const CounterShard* s =
           detail::shard_head().load(std::memory_order_acquire);
       s != nullptr; s = s->next) {
    sum += s->v[static_cast<std::size_t>(c)].load(std::memory_order_relaxed);
  }
  return sum;
}

/// Shards ever allocated (== peak concurrent counting threads). Exposed
/// for the adoption test.
inline std::size_t counter_shards() {
  std::size_t n = 0;
  for (const CounterShard* s =
           detail::shard_head().load(std::memory_order_acquire);
       s != nullptr; s = s->next) {
    ++n;
  }
  return n;
}

/// Zeroes every shard. Only meaningful at quiescence (no concurrent
/// writers); concurrent increments may be lost, never corrupted.
inline void reset_counters() {
  for (CounterShard* s = detail::shard_head().load(std::memory_order_acquire);
       s != nullptr; s = s->next) {
    for (auto& c : s->v) c.store(0, std::memory_order_relaxed);
  }
}

#else  // LOT_DISABLE_OBS

inline constexpr bool kEnabled = false;

/// Empty handle: every hook compiles to nothing (tests/test_obs.cpp
/// static_asserts this stays an empty type).
struct Tls {
  void add(Counter, std::uint64_t = 1) const {}
};

inline Tls tls() { return Tls{}; }
inline void count(Counter, std::uint64_t = 1) {}
inline std::uint64_t counter_total(Counter) { return 0; }
inline std::size_t counter_shards() { return 0; }
inline void reset_counters() {}

#endif  // LOT_DISABLE_OBS

}  // namespace lot::obs
