// Structural validation for ShardedMap: every shard is a complete
// logical-ordering tree, so validation is the per-shard lo::validate
// folded into one report (shard-prefixed errors, summed node counts, max
// height). Same quiescent-point contract as lo/validate.hpp.
//
// The overload lives in namespace lot::lo so generic harnesses that call
// `lo::validate(map, ...)` (tests/stress/stress_common.hpp) pick it up by
// ordinary overload resolution. Include this header BEFORE such a harness
// header: qualified dependent calls are looked up at the template's point
// of definition, not instantiation.
#pragma once

#include <string>

#include "lo/validate.hpp"
#include "shard/sharded_map.hpp"

namespace lot::lo {

template <typename MapT, unsigned Shards>
ValidationReport validate(const shard::ShardedMap<MapT, Shards>& map,
                          bool check_heights, bool partial = false) {
  ValidationReport rep;
  for (unsigned i = 0; i < Shards; ++i) {
    const ValidationReport r =
        validate(map.shard_map(i), check_heights, partial);
    rep.chain_nodes += r.chain_nodes;
    rep.tree_nodes += r.tree_nodes;
    if (r.height > rep.height) rep.height = r.height;
    if (!r.ok) {
      rep.ok = false;
      for (const auto& e : r.errors) {
        rep.fail("shard " + std::to_string(i) + ": " + e);
      }
    }
  }
  return rep;
}

}  // namespace lot::lo
