// Shard router (DESIGN.md §15): key → shard assignment plus per-shard
// routing telemetry.
//
// Partitioning is *striped block* partitioning over a power-of-two shard
// count: the key space is cut into contiguous blocks of 2^kBlockShift
// keys and block b lands on shard b mod N (one shift, one mask — no
// division, no per-key hashing state). Two properties motivate the
// stripe over a contiguous split of the key range:
//
//  * no resize/estimation problem — a contiguous split needs to know the
//    key distribution up front or rebalance later; stripes spread any
//    dense key interval across all shards automatically;
//  * locality within a block — workloads that scan short ranges (the
//    driver's scan_len is comparable to a block) mostly stay inside one
//    shard per block hop, while a zipfian point-op workload concentrates
//    its hottest ranks (0..2^kBlockShift-1) in a single shard — which is
//    exactly the hot-shard scenario the per-shard EBR/heat isolation is
//    built for, and what bench/ablation_shard.cpp measures.
//
// Correctness never depends on the assignment: every shard's cursor is
// sorted and the cross-shard ordered API re-merges globally (merge.hpp),
// so shard_of is pure routing policy. It must only be deterministic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "sync/cacheline.hpp"

namespace lot::shard {

/// log2 of the stripe block size: 64 consecutive keys per block, sized to
/// keep short range scans shard-local while still interleaving at a
/// granularity far below any realistic hot range.
inline constexpr unsigned kBlockShift = 6;

/// Shard index for key k over `nshards` (power of two) shards. Signed
/// keys go through make_unsigned — negative keys wrap high, which is fine:
/// the assignment only needs to be deterministic, not order-preserving.
template <typename K>
constexpr std::size_t shard_of(const K& k, std::size_t nshards) {
  static_assert(std::is_integral_v<K>,
                "the shard router partitions integral key spaces; wrap "
                "other key types in an order-preserving encoding first");
  using U = std::make_unsigned_t<K>;
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(static_cast<U>(k)) >> kBlockShift) &
      (nshards - 1));
}

/// Per-shard routing counters, one cacheline each so two shards' routing
/// hot paths never false-share. Point ops (insert/erase/contains/get)
/// count against the one shard they route to; ordered ops (min/max/
/// for_each/range/first/last_in_range/cursor) touch every shard and count
/// once per shard they enter. Relaxed monotonic telemetry, same contract
/// as the obs counters.
struct alignas(sync::kCacheLineSize) RouterShardStats {
  std::atomic<std::uint64_t> point_ops{0};
  std::atomic<std::uint64_t> ordered_ops{0};

  void note_point() { point_ops.fetch_add(1, std::memory_order_relaxed); }
  void note_ordered() { ordered_ops.fetch_add(1, std::memory_order_relaxed); }
};

struct RouterStatsSnapshot {
  std::uint64_t point_ops = 0;
  std::uint64_t ordered_ops = 0;
};

}  // namespace lot::shard
