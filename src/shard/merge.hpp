// K-way merge over per-shard ordered cursors (DESIGN.md §15).
//
// Each shard's Cursor yields its keys in strictly ascending order, and the
// router gives every key to exactly one shard, so merging the per-shard
// streams by a binary min-heap on the head key reproduces the global
// ascending order with no deduplication step. Cost: O(log k) comparisons
// per yielded key over k shards, after k initial cursor opens.
//
// Consistency: the merge inherits each shard cursor's per-key weak
// consistency (DESIGN.md §11) and adds nothing across shards — two keys
// yielded by different shards were each present at some instant during
// the merge, but not necessarily the *same* instant. See the ShardedMap
// header for the full caveat.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace lot::shard {

/// Merges k ordered streams from cursors yielding
/// std::optional<std::pair<K, V>>. Cursors are consumed (moved in) and
/// never relocated afterwards — map cursors are move-constructible but
/// not move-assignable (they carry an EBR guard), so the heap holds
/// {head, index} entries and indexes into the stable cursor vector.
template <typename Cursor, typename K, typename V, typename Compare>
class KWayMerge {
 public:
  KWayMerge(std::vector<Cursor> cursors, Compare comp)
      : comp_(std::move(comp)), cursors_(std::move(cursors)) {
    heap_.reserve(cursors_.size());
    for (std::size_t i = 0; i < cursors_.size(); ++i) {
      if (auto head = cursors_[i].next(); head.has_value()) {
        heap_.push_back(Entry{std::move(*head), i});
      }
    }
    for (std::size_t i = heap_.size(); i-- > 0;) sift_down(i);
  }

  /// Smallest remaining head across all streams, or empty when every
  /// stream is exhausted.
  std::optional<std::pair<K, V>> next() {
    if (heap_.empty()) return std::nullopt;
    std::optional<std::pair<K, V>> out = std::move(heap_[0].head);
    if (auto head = cursors_[heap_[0].index].next(); head.has_value()) {
      heap_[0].head = std::move(*head);
    } else {
      heap_[0] = std::move(heap_.back());
      heap_.pop_back();
    }
    if (!heap_.empty()) sift_down(0);
    return out;
  }

 private:
  struct Entry {
    std::pair<K, V> head;
    std::size_t index;  // into cursors_
  };

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && comp_(heap_[l].head.first, heap_[smallest].head.first)) {
        smallest = l;
      }
      if (r < n && comp_(heap_[r].head.first, heap_[smallest].head.first)) {
        smallest = r;
      }
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  Compare comp_;
  std::vector<Cursor> cursors_;  // stable: heap entries index into it
  std::vector<Entry> heap_;      // min-heap by head key
};

}  // namespace lot::shard
