// ShardedMap: the shard-routed scale-out layer (DESIGN.md §15, ROADMAP 1).
//
// Partitions an integral key space across N inner maps ("shards"), each a
// complete LoCore-backed tree with its OWN reclamation universe:
//
//  * a private EbrDomain — one shard's stalled reader or retire backlog
//    pins that shard's epoch only; the other shards keep reclaiming.
//    Writers' contention heat is scoped to the shard's domain too
//    (lo/rebalance.hpp HeatScope), so a hot shard sheds its own rotations
//    without throttling cold shards — ROADMAP 2(c) closed at shard
//    granularity;
//  * a private SizePool (when the inner map's Alloc is pool-backed) —
//    remote-free traffic and slab growth stay shard-local instead of all
//    shards fighting over the per-type pool_for<T>() singleton's caches.
//
// Point ops route directly (router.hpp: striped block partitioning, one
// shift+mask). The full adapters::OrderedMap surface is preserved:
// min/max/first_in_range/last_in_range reduce over per-shard answers, and
// for_each/range/Cursor run a k-way merge over per-shard cursors
// (merge.hpp), yielding the global ascending order because every key
// belongs to exactly one shard.
//
// Consistency caveat (vs DESIGN.md §11): a single shard's scan is weakly
// consistent per key. The cross-shard merge holds one cursor — hence one
// pinned epoch — PER SHARD for the duration of the iteration, and the
// per-key verdicts of different shards are justified at different
// instants. Nothing new is promised across shards: like the single-tree
// scan, a cross-shard scan is not a snapshot. (Keep merges short-lived on
// update-heavy maps: k epochs stay pinned while one is open.)
//
// Teardown contract: like the inner maps, destruction requires quiescence.
// Per shard, the members are declared pool → domain → map so destruction
// runs map (returns live nodes) → domain (drains retired nodes through
// SizePool::route_free, which needs the slab headers alive) → pool.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "lo/mvcc.hpp"
#include "obs/counters.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/pool.hpp"
#include "shard/merge.hpp"
#include "shard/router.hpp"

namespace lot::shard {

/// `MapT` is any LoCore instantiation (LoMap / PartialMap, AVL or BST);
/// `Shards` is a power of two. shards=1 is the degenerate case: one inner
/// map on a private domain/pool, every op a straight pass-through — the
/// configuration the equivalence tests pin against the unsharded tree.
template <typename MapT, unsigned Shards = 8>
class ShardedMap {
  static_assert(Shards >= 1 && (Shards & (Shards - 1)) == 0,
                "shard count must be a power of two (router mask)");

 public:
  using key_type = typename MapT::key_type;
  using mapped_type = typename MapT::mapped_type;
  using key_compare = typename MapT::key_compare;
  using inner_map_type = MapT;
  using K = key_type;
  using V = mapped_type;

  /// Forwarded tree traits, so harnesses generic over the LO maps (the
  /// stress runner, validation) treat a sharded map like its inner tree.
  static constexpr bool kBalanced = MapT::kBalanced;
  static constexpr bool kLogicalRemoving = MapT::kLogicalRemoving;

  /// True when the inner map's allocation policy accepts a per-instance
  /// pool handle (reclaim::PoolNodeAlloc); plain new/delete policies get
  /// no pool and simply share the heap.
  static constexpr bool kPooledAlloc =
      std::is_constructible_v<typename MapT::alloc_type,
                              reclaim::SizePool&>;

  ShardedMap() : ShardedMap(key_compare()) {}

  explicit ShardedMap(key_compare comp) : comp_(std::move(comp)) {
    shards_.reserve(Shards);
    for (unsigned i = 0; i < Shards; ++i) {
      shards_.push_back(std::make_unique<ShardSlot>(comp_));
    }
#if !defined(LOT_DISABLE_MVCC)
    // One clock for all shards: per-shard version stamps and snapshot
    // cuts draw from the same totally-ordered source, which is what
    // makes the composite snapshot() below a single cut (DESIGN.md §16).
    for (auto& s : shards_) s->map.use_epoch_source(epoch_src_);
#endif
  }

  ShardedMap(const ShardedMap&) = delete;
  ShardedMap& operator=(const ShardedMap&) = delete;

  static std::string_view name() {
    static const std::string n =
        std::string(MapT::name()) + "-x" + std::to_string(Shards);
    return n;
  }

  static constexpr unsigned shard_count() { return Shards; }

  // ------------------------------------------------------------ point ops

  bool insert(const K& k, const V& v) {
    ShardSlot& s = slot_for(k);
    note_point(s);
    return s.map.insert(k, v);
  }

  bool erase(const K& k) {
    ShardSlot& s = slot_for(k);
    note_point(s);
    return s.map.erase(k);
  }

  bool contains(const K& k) const {
    ShardSlot& s = slot_for(k);
    note_point(s);
    return s.map.contains(k);
  }

  std::optional<V> get(const K& k) const {
    ShardSlot& s = slot_for(k);
    note_point(s);
    return s.map.get(k);
  }

  // ---------------------------------------------------------- ordered API

  std::optional<std::pair<K, V>> min() const {
    std::optional<std::pair<K, V>> best;
    for (const auto& s : shards_) {
      note_ordered(*s);
      auto m = s->map.min();
      if (m.has_value() &&
          (!best.has_value() || comp_(m->first, best->first))) {
        best = std::move(m);
      }
    }
    return best;
  }

  std::optional<std::pair<K, V>> max() const {
    std::optional<std::pair<K, V>> best;
    for (const auto& s : shards_) {
      note_ordered(*s);
      auto m = s->map.max();
      if (m.has_value() &&
          (!best.has_value() || comp_(best->first, m->first))) {
        best = std::move(m);
      }
    }
    return best;
  }

  std::optional<std::pair<K, V>> first_in_range(const K& lo,
                                                const K& hi) const {
    std::optional<std::pair<K, V>> best;
    for (const auto& s : shards_) {
      note_ordered(*s);
      auto m = s->map.first_in_range(lo, hi);
      if (m.has_value() &&
          (!best.has_value() || comp_(m->first, best->first))) {
        best = std::move(m);
      }
    }
    return best;
  }

  std::optional<std::pair<K, V>> last_in_range(const K& lo,
                                               const K& hi) const {
    std::optional<std::pair<K, V>> best;
    for (const auto& s : shards_) {
      note_ordered(*s);
      auto m = s->map.last_in_range(lo, hi);
      if (m.has_value() &&
          (!best.has_value() || comp_(best->first, m->first))) {
        best = std::move(m);
      }
    }
    return best;
  }

  /// Global ascending iteration: k-way merge over one cursor per shard.
  template <typename F>
  void for_each(F&& fn) const {
    Merge merge = merge_from_start();
    while (auto kv = merge.next()) fn(kv->first, kv->second);
  }

  /// Ordered scan over [lo, hi): every shard's cursor enters at its first
  /// key >= lo (one descent per shard), then the merge walks the global
  /// order and stops at hi. Same per-key weak consistency as the inner
  /// map's range — see the header caveat for what the merge does NOT add.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    // Counted here, at the layer that owns the op: the inner cursors
    // account their own open descents as kOrderedLocates, so a sharded
    // scan reads as one kRangeOps plus Shards ordered locates (see the
    // shifted contains_restarts identity in tests/stress/stress_lo_shards).
    const auto tc = obs::tls();
    tc.add(obs::Counter::kRangeOps);
    std::uint64_t reported = 0;
    Merge merge = merge_from(lo);
    while (auto kv = merge.next()) {
      if (comp_(kv->first, lo)) continue;   // defensive: below the range
      if (!comp_(kv->first, hi)) break;     // past the range: done
      fn(kv->first, kv->second);
      ++reported;
    }
    if (reported != 0) tc.add(obs::Counter::kRangeKeysReported, reported);
  }

  /// Cross-shard ordered cursor. Holds one inner cursor — one pinned
  /// reclamation epoch — per shard for its whole lifetime.
  class Cursor {
   public:
    std::optional<std::pair<K, V>> next() { return merge_.next(); }

   private:
    explicit Cursor(KWayMerge<typename MapT::Cursor, K, V, key_compare> m)
        : merge_(std::move(m)) {}
    KWayMerge<typename MapT::Cursor, K, V, key_compare> merge_;
    friend class ShardedMap;
  };

  Cursor cursor() const { return Cursor(merge_from_start()); }

#if !defined(LOT_DISABLE_MVCC)
  // --------------------------------------------------- composite snapshot

  /// One consistent cut of the WHOLE sharded map (DESIGN.md §16): every
  /// shard holds an epoch-pinned SnapshotView adopted at the same E from
  /// the shared clock, so cross-shard reads — unlike the live merge's
  /// per-shard caveat above — all linearize at that single point.
  /// Holds one registry slot plus one reclamation pin PER SHARD; keep it
  /// as short-lived as any view.
  class Snapshot {
   public:
    Snapshot(Snapshot&&) noexcept = default;
    Snapshot(const Snapshot&) = delete;
    Snapshot& operator=(const Snapshot&) = delete;
    Snapshot& operator=(Snapshot&&) = delete;

    /// The cut every shard adopted.
    std::uint64_t epoch() const { return epoch_; }

    bool contains(const K& k) const {
      return views_[shard_of(k, Shards)].contains(k);
    }

    std::optional<V> get(const K& k) const {
      return views_[shard_of(k, Shards)].get(k);
    }

    /// Ordered scan of [lo, hi) as of the cut: k-way merge over the
    /// per-shard snapshot cursors, counted at this layer exactly like
    /// the live sharded range (one kRangeOps, inner opens count their
    /// own kOrderedLocates).
    template <typename F>
    void range(const K& lo, const K& hi, F&& fn) const {
      if (!comp_(lo, hi)) return;
      const auto tc = obs::tls();
      tc.add(obs::Counter::kRangeOps);
      std::uint64_t reported = 0;
      SnapMerge merge = merge_from(lo);
      while (auto kv = merge.next()) {
        if (comp_(kv->first, lo)) continue;
        if (!comp_(kv->first, hi)) break;
        fn(kv->first, kv->second);
        ++reported;
      }
      if (reported != 0) tc.add(obs::Counter::kRangeKeysReported, reported);
    }

    /// Full ordered iteration as of the cut.
    template <typename F>
    void for_each(F&& fn) const {
      std::vector<typename MapT::SnapshotView::Cursor> cursors;
      cursors.reserve(views_.size());
      for (const auto& v : views_) cursors.push_back(v.cursor());
      SnapMerge merge(std::move(cursors), comp_);
      while (auto kv = merge.next()) fn(kv->first, kv->second);
    }

    /// Drops every shard's registry slot and reclamation pin early (the
    /// destructor does the same); reads afterwards return empty.
    void release() {
      for (auto& v : views_) v.release();
    }

   private:
    using SnapMerge =
        KWayMerge<typename MapT::SnapshotView::Cursor, K, V, key_compare>;

    Snapshot(std::vector<typename MapT::SnapshotView> views,
             std::uint64_t e, key_compare comp)
        : views_(std::move(views)), epoch_(e), comp_(std::move(comp)) {}

    SnapMerge merge_from(const K& lo) const {
      std::vector<typename MapT::SnapshotView::Cursor> cursors;
      cursors.reserve(views_.size());
      for (const auto& v : views_) cursors.push_back(v.cursor(lo));
      return SnapMerge(std::move(cursors), comp_);
    }

    std::vector<typename MapT::SnapshotView> views_;
    std::uint64_t epoch_;
    key_compare comp_;
    friend class ShardedMap;
  };

  /// Two-phase composite snapshot: every shard RESERVES its registry
  /// slot first (publishing its pin floor to that shard's writers), then
  /// one cut E is drawn from the shared clock and adopted by all. A
  /// write on any shard stamped at or before E is visible through the
  /// snapshot, one stamped after E is not — shard-independently, which
  /// is exactly the single-cut claim tests/test_lo_ordered_api pins.
  Snapshot snapshot() const {
    std::vector<std::uint64_t> tokens;
    tokens.reserve(Shards);
    for (const auto& s : shards_) {
      note_ordered(*s);
      tokens.push_back(s->map.snapshot_reserve());
    }
    const std::uint64_t e = epoch_src_.now();
    std::vector<typename MapT::SnapshotView> views;
    views.reserve(Shards);
    for (unsigned i = 0; i < Shards; ++i) {
      views.push_back(shards_[i]->map.snapshot_adopt(tokens[i], e));
    }
    return Snapshot(std::move(views), e, comp_);
  }

  /// The shared clock (tests: stamp-source identity across shards).
  lo::mvcc::EpochSource& epoch_source() const { return epoch_src_; }
#endif  // !LOT_DISABLE_MVCC

  // ------------------------------------------------------- conveniences

  std::size_t size_slow() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->map.size_slow();
    return n;
  }

  /// Quiescent-only, like the inner maps' (DESIGN.md §13): converge every
  /// shard's throttle-deferred rotations. Total repairs across shards.
  std::size_t repair_balance()
    requires(MapT::kBalanced)
  {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->map.repair_balance();
    return n;
  }

  /// Logical-removing variants: purge every shard's zombies. Total purged.
  std::size_t purge_all()
    requires(MapT::kLogicalRemoving)
  {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s->map.purge_all();
    return n;
  }

  bool empty() const {
    for (const auto& s : shards_) {
      if (!s->map.empty()) return false;
    }
    return true;
  }

  // ------------------------------------------- shard-level introspection

  /// The shard a key routes to (tests: shard-boundary keys).
  static constexpr std::size_t shard_index_of(const K& k) {
    return shard_of(k, Shards);
  }

  reclaim::EbrDomain& shard_domain(std::size_t i) const {
    return shards_[i]->domain;
  }

  /// The shard's private pool, or nullptr for non-pooled allocation
  /// policies (tests: per-shard slab accounting).
  reclaim::SizePool* shard_pool(std::size_t i) const {
    return shards_[i]->pool.get();
  }

  MapT& shard_map(std::size_t i) { return shards_[i]->map; }
  const MapT& shard_map(std::size_t i) const { return shards_[i]->map; }

  RouterStatsSnapshot shard_stats(std::size_t i) const {
    const RouterShardStats& st = shards_[i]->stats;
    RouterStatsSnapshot snap;
    snap.point_ops = st.point_ops.load(std::memory_order_relaxed);
    snap.ordered_ops = st.ordered_ops.load(std::memory_order_relaxed);
    return snap;
  }

  key_compare key_comp() const { return comp_; }

 private:
  struct ShardSlot {
    // Declaration order IS the teardown argument (header comment): map is
    // destroyed first, domain second (its deleters route slots back
    // through the pool), pool last.
    std::unique_ptr<reclaim::SizePool> pool;
    reclaim::EbrDomain domain;
    MapT map;
    RouterShardStats stats;

    explicit ShardSlot(const key_compare& comp)
        : pool(make_pool()), map(domain, comp, make_alloc(pool.get())) {}

    static std::unique_ptr<reclaim::SizePool> make_pool() {
      if constexpr (kPooledAlloc) {
        using NodeT = typename MapT::NodeT;
        return std::make_unique<reclaim::SizePool>(sizeof(NodeT),
                                                   alignof(NodeT));
      } else {
        return nullptr;
      }
    }

    static typename MapT::alloc_type make_alloc(reclaim::SizePool* pool) {
      if constexpr (kPooledAlloc) {
        return typename MapT::alloc_type(*pool);
      } else {
        (void)pool;
        return typename MapT::alloc_type();
      }
    }
  };

  using Merge = KWayMerge<typename MapT::Cursor, K, V, key_compare>;

  ShardSlot& slot_for(const K& k) const {
    return *shards_[shard_of(k, Shards)];
  }

  Merge merge_from_start() const {
    std::vector<typename MapT::Cursor> cursors;
    cursors.reserve(Shards);
    for (const auto& s : shards_) {
      note_ordered(*s);
      cursors.push_back(s->map.cursor());
    }
    return Merge(std::move(cursors), comp_);
  }

  Merge merge_from(const K& lo) const {
    std::vector<typename MapT::Cursor> cursors;
    cursors.reserve(Shards);
    for (const auto& s : shards_) {
      note_ordered(*s);
      cursors.push_back(s->map.cursor(lo));
    }
    return Merge(std::move(cursors), comp_);
  }

  static void note_point(ShardSlot& s) {
    if constexpr (obs::kEnabled) s.stats.note_point();
  }
  static void note_ordered(ShardSlot& s) {
    if constexpr (obs::kEnabled) s.stats.note_ordered();
  }

  key_compare comp_;
  // unique_ptr, not ShardSlot by value: slots hold a whole map plus a
  // cacheline-aligned stats block, and the vector must never relocate a
  // live domain.
  std::vector<std::unique_ptr<ShardSlot>> shards_;
#if !defined(LOT_DISABLE_MVCC)
  // Declared after shards_ so it outlives no shard during construction;
  // mutable because snapshot() is a read on a const map. Shards are
  // rebound to it in the constructor, before any op can run.
  mutable lo::mvcc::EpochSource epoch_src_;
#endif
};

}  // namespace lot::shard
