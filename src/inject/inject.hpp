// Named fault-injection points: deterministic, seeded injectors for
// allocation failure and artificial guard stalls.
//
// The schedule perturbation in check/perturb.hpp widens the algorithm's
// *race* windows; this layer attacks its *resource* windows instead: what
// happens when the allocator refuses mid-insert, and what happens when a
// thread parks while pinning a reclamation epoch. Both are environmental
// failures a production deployment will eventually produce (memory
// pressure, preemption, debugger stops, page faults on cold NUMA nodes),
// and both are exactly where a GC'd reference implementation gets its
// robustness for free while our C++ substitution must earn it.
//
// Idiom mirrors perturb.hpp: every site is a named enumerator, the hooks
// are empty inline functions unless the translation unit defines
// LOT_FAULT_INJECT, and instrumented binaries are separate build targets
// (tests/stress/) rather than a runtime switch, so the production hot path
// carries no injection code at all.
//
// Determinism: draws come from a per-thread xorshift64* stream seeded from
// the campaign seed (set_seed) and a per-thread registration counter, with
// the site index mixed into every draw — the same seed, thread count, and
// operation sequence replays the same injection decisions.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(LOT_FAULT_INJECT)
#include <atomic>
#include <chrono>
#include <new>
#include <thread>
#endif

namespace lot::inject {

enum class Site : std::uint8_t {
  kLoInsertAlloc = 0,   // lo::LoMap::insert node allocation (pre-lock)
  kPartialInsertAlloc,  // lo::PartialMap::insert node allocation (pre-lock)
  kGuardStallReader,    // reader parks while pinning an epoch (contains/get)
  kGuardStallWriter,    // writer parks while pinning an epoch (insert/erase)
  kPoolAlloc,           // reclaim::PoolNodeAlloc::create (slab exhaustion)
  kCount
};

inline constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount);

inline const char* site_name(Site s) {
  switch (s) {
    case Site::kLoInsertAlloc: return "lo-insert-alloc";
    case Site::kPartialInsertAlloc: return "partial-insert-alloc";
    case Site::kGuardStallReader: return "guard-stall-reader";
    case Site::kGuardStallWriter: return "guard-stall-writer";
    case Site::kPoolAlloc: return "pool-alloc";
    default: return "?";
  }
}

#if defined(LOT_FAULT_INJECT)

inline constexpr bool kFaultInject = true;

struct InjectState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> seed{1};
  std::atomic<std::uint32_t> stall_max_us{200};
  std::atomic<std::uint32_t> fire_permille[kSiteCount] = {};
  std::atomic<std::uint64_t> fires[kSiteCount] = {};
  std::atomic<std::uint64_t> thread_counter{0};
};

inline InjectState& inject_state() {
  static InjectState state;
  return state;
}

inline void set_seed(std::uint64_t seed) {
  inject_state().seed.store(seed | 1, std::memory_order_relaxed);
}

inline void set_site_rate(Site s, std::uint32_t fire_permille) {
  inject_state().fire_permille[static_cast<std::size_t>(s)].store(
      fire_permille, std::memory_order_relaxed);
}

inline void set_stall_max_us(std::uint32_t us) {
  inject_state().stall_max_us.store(us, std::memory_order_relaxed);
}

inline void enable_injection(bool on) {
  inject_state().enabled.store(on, std::memory_order_relaxed);
}

inline std::uint64_t fires(Site s) {
  return inject_state().fires[static_cast<std::size_t>(s)].load(
      std::memory_order_relaxed);
}

inline void reset_fire_counts() {
  for (auto& f : inject_state().fires) f.store(0, std::memory_order_relaxed);
}

/// One seeded draw for `site`; true iff the injector fires. Threads get
/// independent deterministic streams: the first draw lazily seeds the
/// thread's rng from the campaign seed and its registration index.
inline bool should_fire(Site site) {
  auto& st = inject_state();
  if (!st.enabled.load(std::memory_order_relaxed)) return false;
  const std::uint32_t permille =
      st.fire_permille[static_cast<std::size_t>(site)].load(
          std::memory_order_relaxed);
  if (permille == 0) return false;
  thread_local std::uint64_t rng = [&st] {
    // splitmix64 of (seed, thread index) — a well-mixed per-thread stream.
    std::uint64_t z = st.seed.load(std::memory_order_relaxed) +
                      0x9E3779B97F4A7C15ULL *
                          (st.thread_counter.fetch_add(
                               1, std::memory_order_relaxed) +
                           1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return (z ^ (z >> 31)) | 1;
  }();
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  const std::uint64_t draw =
      (rng + static_cast<std::uint64_t>(site) * 0x9E3779B97F4A7C15ULL) *
      0x2545F4914F6CDD1DULL;
  if (draw % 1000 >= permille) return false;
  st.fires[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

/// Allocation-failure site: throws std::bad_alloc when the injector fires.
/// Call sites place this where a real allocator failure could surface, and
/// *before* the allocation itself so counters (AllocStats) stay balanced.
inline void throw_if_alloc_fault(Site site) {
  if (should_fire(site)) throw std::bad_alloc();
}

/// Guard-stall site: parks the calling thread for a seeded duration of up
/// to stall_max_us while the caller holds its EBR guard, pinning that
/// epoch — the adversarial schedule the reclamation watchdog and the
/// backlog backpressure exist to survive.
inline void stall_point(Site site) {
  if (!should_fire(site)) return;
  const std::uint32_t cap =
      inject_state().stall_max_us.load(std::memory_order_relaxed);
  std::this_thread::sleep_for(std::chrono::microseconds(cap ? cap : 1));
}

#else  // !LOT_FAULT_INJECT — every hook compiles away.

inline constexpr bool kFaultInject = false;

inline void set_seed(std::uint64_t) {}
inline void set_site_rate(Site, std::uint32_t) {}
inline void set_stall_max_us(std::uint32_t) {}
inline void enable_injection(bool) {}
inline std::uint64_t fires(Site) { return 0; }
inline void reset_fire_counts() {}
inline bool should_fire(Site) { return false; }
inline void throw_if_alloc_fault(Site) {}
inline void stall_point(Site) {}

#endif  // LOT_FAULT_INJECT

}  // namespace lot::inject
