// Seeded fault-storm scheduler: time-phased bursts over the named
// injection sites (inject.hpp), with ramp / hold / release envelopes.
//
// A single site rate models steady background faults; what it cannot model
// is *weather* — memory pressure that builds, peaks, and clears, or a
// swarm of preempted readers that all stall within one window. The storm
// scheduler drives the per-site fire rates through exactly that shape:
//
//   rate(t) = peak_permille * envelope(t)
//   envelope: 0 → 1 linearly over ramp_ms, 1 for hold_ms, 1 → 0 linearly
//   over release_ms, then 0 (storm over).
//
// The recovery campaign (tests/stress/stress_lo_storm.cpp) asserts two
// different things on the two sides of that envelope: linearizability and
// bounded obs drift *during* the storm, and the governor's return to
// Healthy within its recovery bound *after* release.
//
// Determinism: which operations fail is decided by inject.hpp's seeded
// per-thread streams; the scheduler only modulates the rates. The envelope
// itself is wall-clock-phased, so storm runs are statistically — not
// bitwise — reproducible; the campaign's assertions are envelope-level
// (states reached, recovery bound, exact reconciliation) rather than
// event-level for exactly that reason.
//
// Idiom matches inject.hpp: everything compiles away without
// LOT_FAULT_INJECT; instrumented binaries are separate build targets.
#pragma once

#include <cstdint>

#include "inject/inject.hpp"

#if defined(LOT_FAULT_INJECT)
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>
#endif

namespace lot::inject {

enum class StormPhase : std::uint8_t {
  kIdle = 0,  // not started
  kRamp,      // rates climbing toward peak
  kHold,      // rates at peak
  kRelease,   // rates falling back to zero
  kDone,      // storm over, all site rates zeroed
};

inline const char* storm_phase_name(StormPhase p) {
  switch (p) {
    case StormPhase::kIdle: return "idle";
    case StormPhase::kRamp: return "ramp";
    case StormPhase::kHold: return "hold";
    case StormPhase::kRelease: return "release";
    case StormPhase::kDone: return "done";
  }
  return "?";
}

/// One attacked site and its peak intensity (fires per mille at hold).
struct StormSiteSpec {
  Site site;
  std::uint32_t peak_permille = 0;
};

struct StormSpec {
  std::uint64_t seed = 1;        // campaign seed handed to inject::set_seed
  std::uint32_t ramp_ms = 50;
  std::uint32_t hold_ms = 100;
  std::uint32_t release_ms = 50;
  std::uint32_t step_ms = 5;     // scheduler update granularity
  std::uint32_t stall_max_us = 200;  // cap for guard-stall sites
#if defined(LOT_FAULT_INJECT)
  std::vector<StormSiteSpec> sites;
#endif
  std::uint32_t total_ms() const { return ramp_ms + hold_ms + release_ms; }
};

/// Envelope intensity in [0, 1000] at `elapsed_ms` into the storm.
inline std::uint32_t storm_envelope_permille(const StormSpec& spec,
                                             std::uint64_t elapsed_ms) {
  if (elapsed_ms < spec.ramp_ms) {
    return spec.ramp_ms == 0
               ? 1000
               : static_cast<std::uint32_t>(elapsed_ms * 1000 / spec.ramp_ms);
  }
  elapsed_ms -= spec.ramp_ms;
  if (elapsed_ms < spec.hold_ms) return 1000;
  elapsed_ms -= spec.hold_ms;
  if (elapsed_ms < spec.release_ms) {
    return static_cast<std::uint32_t>(
        (spec.release_ms - elapsed_ms) * 1000 / spec.release_ms);
  }
  return 0;
}

inline StormPhase storm_phase_at(const StormSpec& spec,
                                 std::uint64_t elapsed_ms) {
  if (elapsed_ms < spec.ramp_ms) return StormPhase::kRamp;
  if (elapsed_ms < spec.ramp_ms + spec.hold_ms) return StormPhase::kHold;
  if (elapsed_ms < spec.total_ms()) return StormPhase::kRelease;
  return StormPhase::kDone;
}

#if defined(LOT_FAULT_INJECT)

/// Drives the injector's site rates through one storm envelope on a
/// background thread. start() seeds the injector and enables injection;
/// when the envelope completes, every attacked site's rate returns to 0
/// (injection stays enabled — the owner disables it when the campaign
/// ends). Single storm per scheduler instance.
class StormScheduler {
 public:
  StormScheduler() = default;
  ~StormScheduler() { stop(); }
  StormScheduler(const StormScheduler&) = delete;
  StormScheduler& operator=(const StormScheduler&) = delete;

  void start(StormSpec spec) {
    stop();
    spec_ = std::move(spec);
    set_seed(spec_.seed);
    set_stall_max_us(spec_.stall_max_us);
    for (const auto& s : spec_.sites) set_site_rate(s.site, 0);
    enable_injection(true);
    phase_.store(static_cast<std::uint8_t>(StormPhase::kRamp),
                 std::memory_order_relaxed);
    stop_.store(false, std::memory_order_relaxed);
    driver_ = std::thread([this] { run(); });
  }

  StormPhase phase() const {
    return static_cast<StormPhase>(phase_.load(std::memory_order_relaxed));
  }

  bool done() const { return phase() == StormPhase::kDone; }

  /// Blocks until the envelope has fully played out (rates back at 0).
  void wait() {
    if (driver_.joinable()) driver_.join();
  }

  /// Early abort: zeroes the attacked sites and joins the driver.
  void stop() {
    stop_.store(true, std::memory_order_relaxed);
    wait();
  }

 private:
  void run() {
    const auto t0 = std::chrono::steady_clock::now();
    for (;;) {
      const auto elapsed_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      if (stop_.load(std::memory_order_relaxed) ||
          elapsed_ms >= spec_.total_ms()) {
        break;
      }
      const std::uint32_t env = storm_envelope_permille(spec_, elapsed_ms);
      for (const auto& s : spec_.sites) {
        set_site_rate(s.site, s.peak_permille * env / 1000);
      }
      phase_.store(static_cast<std::uint8_t>(storm_phase_at(spec_, elapsed_ms)),
                   std::memory_order_relaxed);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(spec_.step_ms ? spec_.step_ms : 1));
    }
    for (const auto& s : spec_.sites) set_site_rate(s.site, 0);
    phase_.store(static_cast<std::uint8_t>(StormPhase::kDone),
                 std::memory_order_relaxed);
  }

  StormSpec spec_;
  std::thread driver_;
  std::atomic<std::uint8_t> phase_{
      static_cast<std::uint8_t>(StormPhase::kIdle)};
  std::atomic<bool> stop_{false};
};

#else  // !LOT_FAULT_INJECT — the scheduler compiles away with the injector.

class StormScheduler {
 public:
  void start(StormSpec) {}
  StormPhase phase() const { return StormPhase::kDone; }
  bool done() const { return true; }
  void wait() {}
  void stop() {}
};

#endif  // LOT_FAULT_INJECT

}  // namespace lot::inject
