// Convenience alias: the relaxed-balance logical-ordering AVL tree
// (paper §4.1–4.5). Strictly AVL-balanced at quiescence (Bougé et al.).
#pragma once

#include "lo/map.hpp"

namespace lot::lo {

/// Concurrent internal AVL map with lock-free contains/get, on-time
/// deletion, and relaxed balancing decoupled from lookups. See LoMap for
/// the full API. Translation units that define LOT_SCHEDULE_PERTURB get
/// the schedule-perturbation hooks inside the update and rotation race
/// windows (tests/stress/).
template <typename K, typename V, typename Compare = std::less<K>,
          typename Alloc = reclaim::DefaultNodeAlloc>
using AvlMap = LoMap<K, V, Compare, /*Balanced=*/true, Alloc>;

}  // namespace lot::lo
