// The paper's "logical removing" variation (§6): a partially-external
// logical-ordering tree. A removal of a node with two children only flags
// the node `deleted` — it stays in both layouts — and a later insert of
// the same key revives it in place, saving an allocation. The node is
// physically removed only once a subsequent operation finds it with at
// most one child (opportunistic purge). This trades the main algorithm's
// on-time deletion for allocation reuse, exactly the tradeoff Table 1/2
// compare ("logical removing" series).
//
// Since PR 4 this is a thin instantiation of the shared engine in
// lo/core.hpp: PartialMap = LoCore over the LogicalRemoving removal policy
// and the PartialNode layout (lo/node.hpp), which own the `deleted` flag
// and the atomic value slot. The `deleted` flag is protected by the
// predecessor's succ_lock (the same interval lock that guards
// insertion/removal of the key), so revive and logical-delete serialize;
// lock-free readers pair an acquire load of `deleted` with an atomic value
// slot (hence the TriviallyCopyable bound).
#pragma once

#include <functional>
#include <string_view>
#include <type_traits>

#include "lo/core.hpp"
#include "lo/node.hpp"
#include "reclaim/pool.hpp"

namespace lot::lo {

template <typename K, typename V, typename Compare = std::less<K>,
          bool Balanced = true,
          typename Alloc = reclaim::DefaultNodeAlloc>
class PartialMap : public LoCore<K, V, Compare, Balanced, Alloc,
                                 LogicalRemoving, PartialNode> {
  static_assert(std::is_trivially_copyable_v<V>,
                "the logical-removing variant stores values in an atomic "
                "slot so revive can race with lock-free gets");

  using Base =
      LoCore<K, V, Compare, Balanced, Alloc, LogicalRemoving, PartialNode>;

 public:
  using Base::Base;

  static std::string_view name() {
    return Balanced ? "lo-avl-logical-removing" : "lo-bst-logical-removing";
  }
};

/// Table 1's "logical removing" AVL series.
template <typename K, typename V, typename Compare = std::less<K>,
          typename Alloc = reclaim::DefaultNodeAlloc>
using PartialAvlMap = PartialMap<K, V, Compare, true, Alloc>;

/// Table 2's "logical removing" BST series.
template <typename K, typename V, typename Compare = std::less<K>,
          typename Alloc = reclaim::DefaultNodeAlloc>
using PartialBstMap = PartialMap<K, V, Compare, false, Alloc>;

}  // namespace lot::lo
