// The paper's "logical removing" variation (§6): a partially-external
// logical-ordering tree. A removal of a node with two children only flags
// the node `deleted` — it stays in both layouts — and a later insert of
// the same key revives it in place, saving an allocation. The node is
// physically removed only once a subsequent operation finds it with at
// most one child (opportunistic purge). This trades the main algorithm's
// on-time deletion for allocation reuse, exactly the tradeoff Table 1/2
// compare ("logical removing" series).
//
// The `deleted` flag is protected by the predecessor's succ_lock (the same
// interval lock that guards insertion/removal of the key), so revive and
// logical-delete serialize; lock-free readers pair an acquire load of
// `deleted` with an atomic value slot (hence the TriviallyCopyable bound).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>
#include <type_traits>
#include <utility>

#include "inject/inject.hpp"
#include "lo/detail.hpp"
#include "lo/node.hpp"
#include "lo/rebalance.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/pool.hpp"
#include "sync/backoff.hpp"

namespace lot::lo {

template <typename K, typename V, typename Compare = std::less<K>,
          bool Balanced = true,
          typename Alloc = reclaim::DefaultNodeAlloc>
class PartialMap {
  static_assert(std::is_trivially_copyable_v<V>,
                "the logical-removing variant stores values in an atomic "
                "slot so revive can race with lock-free gets");

 public:
  using key_type = K;
  using mapped_type = V;
  using alloc_type = Alloc;

  // Same hot/cold split as lo::Node: the lock-free read path (which here
  // also loads `deleted` and the atomic value slot) on the first line,
  // tree-layout state and both locks on the second.
  struct alignas(sync::kCacheLineSize) NodeT {
    const K key;
    const Tag tag;
    std::atomic<bool> mark{false};     // removed from the ordering layout
    std::atomic<bool> deleted{false};  // logically absent, physically kept
    std::atomic<NodeT*> pred{nullptr};
    std::atomic<NodeT*> succ{nullptr};
    std::atomic<V> value;

    alignas(sync::kCacheLineSize) std::atomic<NodeT*> left{nullptr};
    std::atomic<NodeT*> right{nullptr};
    std::atomic<NodeT*> parent{nullptr};
    std::atomic<std::int16_t> left_height{0};
    std::atomic<std::int16_t> right_height{0};
    sync::SpinLock tree_lock;
    sync::SpinLock succ_lock;

    NodeT(K k, V v, Tag t = Tag::kNormal)
        : key(std::move(k)), tag(t), value(v) {}

    bool is_sentinel() const { return tag != Tag::kNormal; }
    std::int32_t balance_factor() const {
      return left_height.load(std::memory_order_relaxed) -
             right_height.load(std::memory_order_relaxed);
    }
  };

  explicit PartialMap(reclaim::EbrDomain& domain =
                          reclaim::EbrDomain::global_domain(),
                      Compare comp = Compare())
      : domain_(&domain), comp_(std::move(comp)) {
    // Sentinels go through the same allocation policy as ordinary nodes
    // (and are freed through it in the destructor), so alloc_stats — and
    // the pool's slot accounting — balance to zero at teardown.
    neg_ = Alloc::template create<NodeT>(K{}, V{}, Tag::kNegInf);
    try {
      pos_ = Alloc::template create<NodeT>(K{}, V{}, Tag::kPosInf);
    } catch (...) {
      Alloc::template destroy<NodeT>(neg_);
      throw;
    }
    neg_->succ.store(pos_, std::memory_order_relaxed);
    pos_->pred.store(neg_, std::memory_order_relaxed);
    root_ = pos_;
  }

  ~PartialMap() {
    NodeT* node = neg_;
    while (node != nullptr) {
      NodeT* next = node->succ.load(std::memory_order_relaxed);
      Alloc::template destroy<NodeT>(node);
      node = next;
    }
  }

  PartialMap(const PartialMap&) = delete;
  PartialMap& operator=(const PartialMap&) = delete;

  static std::string_view name() {
    return Balanced ? "lo-avl-logical-removing" : "lo-bst-logical-removing";
  }

  // ---------------------------------------------------------------- reads

  bool contains(const K& k) const {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallReader);
    const NodeT* node = locate(k);
    return cmp(node, k) == 0 && is_present(node);
  }

  std::optional<V> get(const K& k) const {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallReader);
    const NodeT* node = locate(k);
    if (cmp(node, k) != 0) return std::nullopt;
    // Read the value before re-checking presence so a racing revive
    // cannot hand us a value newer than the presence decision.
    const V v = node->value.load(std::memory_order_acquire);
    if (!is_present(node)) return std::nullopt;
    return v;
  }

  std::optional<std::pair<K, V>> min() const {
    auto g = domain_->guard();
    NodeT* node = neg_->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      const V v = node->value.load(std::memory_order_acquire);
      if (is_present(node)) return std::make_pair(node->key, v);
      node = node->succ.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  std::optional<std::pair<K, V>> max() const {
    auto g = domain_->guard();
    NodeT* node = pos_->pred.load(std::memory_order_acquire);
    while (node != neg_) {
      const V v = node->value.load(std::memory_order_acquire);
      if (is_present(node)) return std::make_pair(node->key, v);
      node = node->pred.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  template <typename F>
  void for_each(F&& fn) const {
    auto g = domain_->guard();
    NodeT* node = neg_->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      const V v = node->value.load(std::memory_order_acquire);
      if (is_present(node)) fn(node->key, v);
      node = node->succ.load(std::memory_order_acquire);
    }
  }

  /// Lock-free ordered range scan over [lo, hi); skips zombies.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    auto g = domain_->guard();
    const NodeT* node = locate(lo);
    while (node != pos_ &&
           (node->tag == Tag::kNegInf || comp_(node->key, hi))) {
      if (node->tag == Tag::kNormal && !comp_(node->key, lo)) {
        const V v = node->value.load(std::memory_order_acquire);
        if (is_present(node)) fn(node->key, v);
      }
      node = node->succ.load(std::memory_order_acquire);
    }
  }

  /// Smallest present key strictly greater than k.
  std::optional<std::pair<K, V>> next(const K& k) const {
    auto g = domain_->guard();
    const NodeT* node = locate(k);
    if (cmp(node, k) == 0) node = node->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      const V v = node->value.load(std::memory_order_acquire);
      if (is_present(node) && node->tag == Tag::kNormal &&
          comp_(k, node->key)) {
        return std::make_pair(node->key, v);
      }
      node = node->succ.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  /// Largest present key strictly smaller than k.
  std::optional<std::pair<K, V>> prev(const K& k) const {
    auto g = domain_->guard();
    const NodeT* node = locate(k);
    while (node != neg_) {
      const V v = node->value.load(std::memory_order_acquire);
      if (is_present(node) && node->tag == Tag::kNormal &&
          comp_(node->key, k)) {
        return std::make_pair(node->key, v);
      }
      node = node->pred.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each([&n](const K&, const V&) { ++n; });
    return n;
  }

  /// Nodes on the ordering chain, including deleted ("zombie") ones —
  /// the memory-footprint metric of ablation A2.
  std::size_t physical_nodes_slow() const {
    auto g = domain_->guard();
    std::size_t n = 0;
    NodeT* node = neg_->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      ++n;
      node = node->succ.load(std::memory_order_acquire);
    }
    return n;
  }

  bool empty() const { return size_slow() == 0; }

  // -------------------------------------------------------------- updates

  /// Strong exception guarantee under allocation failure, like
  /// LoMap::insert, but with lazy allocation so the revive path keeps its
  /// allocation-free property (the point of this variant, ablation A2):
  /// the node is allocated only once the key is observed absent, and
  /// always with the interval lock dropped — the validation then restarts,
  /// so a bad_alloc propagates with no locks held and the map untouched.
  bool insert(const K& k, const V& v) {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallWriter);
    NodeT* nn = nullptr;
    for (;;) {
      NodeT* node = search(k);
      NodeT* p = cmp(node, k) >= 0
                     ? node->pred.load(std::memory_order_acquire)
                     : node;
      p->succ_lock.lock();
      NodeT* s = p->succ.load(std::memory_order_relaxed);
      if (cmp(p, k) < 0 && cmp(s, k) >= 0 &&
          !p->mark.load(std::memory_order_acquire)) {
        if (cmp(s, k) == 0) {
          // Physically present. Revive if it was logically deleted.
          if (!s->deleted.load(std::memory_order_acquire)) {
            p->succ_lock.unlock();
            Alloc::template destroy<NodeT>(nn);  // from a lost race, if any
            return false;
          }
          s->value.store(v, std::memory_order_relaxed);
          s->deleted.store(false, std::memory_order_release);
          p->succ_lock.unlock();
          Alloc::template destroy<NodeT>(nn);  // revived in place instead
          return true;
        }
        if (nn == nullptr) {
          // Key absent, so a node is needed — but never allocate while
          // holding the interval lock. Drop it, allocate, revalidate.
          p->succ_lock.unlock();
          inject::throw_if_alloc_fault(inject::Site::kPartialInsertAlloc);
          nn = Alloc::template create<NodeT>(k, v);
          continue;
        }
        NodeT* parent = choose_parent(p, s, node);
        nn->succ.store(s, std::memory_order_relaxed);
        nn->pred.store(p, std::memory_order_relaxed);
        nn->parent.store(parent, std::memory_order_relaxed);
        // Succ link first — it is the linearization point and the
        // authoritative chain direction; the pred hint follows (see the
        // store-order note in lo/map.hpp insert()).
        p->succ.store(nn, std::memory_order_release);
        s->pred.store(nn, std::memory_order_release);
        p->succ_lock.unlock();
        insert_to_tree(parent, nn);
        return true;
      }
      p->succ_lock.unlock();
    }
  }

  bool erase(const K& k) {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallWriter);
    for (;;) {
      NodeT* node = search(k);
      NodeT* p = cmp(node, k) >= 0
                     ? node->pred.load(std::memory_order_acquire)
                     : node;
      p->succ_lock.lock();
      NodeT* s = p->succ.load(std::memory_order_relaxed);
      if (cmp(p, k) < 0 && cmp(s, k) >= 0 &&
          !p->mark.load(std::memory_order_acquire)) {
        if (cmp(s, k) > 0 || s->deleted.load(std::memory_order_acquire)) {
          p->succ_lock.unlock();
          return false;
        }
        // Succ locks strictly precede tree locks (paper §5.1), so take
        // s's interval lock before inspecting the physical neighbourhood.
        s->succ_lock.lock();
        NodeT* np = nullptr;
        NodeT* child = nullptr;
        if (!acquire_unlink_locks(s, np, child)) {
          // Two children: logical removal only.
          s->deleted.store(true, std::memory_order_release);
          s->succ_lock.unlock();
          p->succ_lock.unlock();
          return true;
        }
        // At most one child: physical removal, as in the main algorithm.
        s->mark.store(true, std::memory_order_release);
        NodeT* s_succ = s->succ.load(std::memory_order_relaxed);
        s_succ->pred.store(p, std::memory_order_release);
        p->succ.store(s_succ, std::memory_order_release);
        s->succ_lock.unlock();
        p->succ_lock.unlock();
        unlink_and_rebalance(s, np, child);
        domain_->template retire_via<Alloc>(s);
        // Opportunistic purge (paper: deleted nodes become physically
        // removable when their child count drops): np may now qualify.
        try_purge(np);
        return true;
      }
      p->succ_lock.unlock();
    }
  }

  /// Quiescent cleanup: physically remove every deleted node that has at
  /// most one child, repeating until a fixpoint. Exposed for tests and the
  /// zombie ablation; concurrent-safe but intended for quiet periods.
  std::size_t purge_all() {
    std::size_t purged = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      auto g = domain_->guard();
      NodeT* node = neg_->succ.load(std::memory_order_acquire);
      while (node != pos_) {
        NodeT* next = node->succ.load(std::memory_order_acquire);
        if (node->deleted.load(std::memory_order_acquire) &&
            try_purge(node)) {
          ++purged;
          progress = true;
        }
        node = next;
      }
    }
    return purged;
  }

  // ---------------------------------------------------- introspection API

  NodeT* debug_root() const { return root_; }
  NodeT* debug_neg_sentinel() const { return neg_; }
  NodeT* debug_pos_sentinel() const { return pos_; }
  Compare key_comp() const { return comp_; }

 private:
  static bool is_present(const NodeT* n) {
    return !n->mark.load(std::memory_order_acquire) &&
           !n->deleted.load(std::memory_order_acquire);
  }

  int cmp(const NodeT* n, const K& k) const {
    if (n->tag != Tag::kNormal) return n->tag == Tag::kNegInf ? -1 : 1;
    if (comp_(n->key, k)) return -1;
    if (comp_(k, n->key)) return 1;
    return 0;
  }

  NodeT* search(const K& k) const {
    NodeT* node = root_;
    for (;;) {
      const int c = cmp(node, k);
      if (c == 0) return node;
      NodeT* child = c < 0 ? node->right.load(std::memory_order_acquire)
                           : node->left.load(std::memory_order_acquire);
      if (child == nullptr) return node;
      node = child;
    }
  }

  const NodeT* locate(const K& k) const {
    const NodeT* node = search(k);
    while (cmp(node, k) > 0) {
      node = node->pred.load(std::memory_order_acquire);
    }
    // Back off marked (physically unlinked) nodes before walking forward,
    // exactly as in LoMap::locate: a stale duplicate still reachable in
    // the tree layout must not shadow a re-inserted key on the chain.
    // (`deleted` zombies stay on the chain and are NOT skipped — presence
    // is decided by the caller.)
    while (node->mark.load(std::memory_order_acquire)) {
      node = node->pred.load(std::memory_order_acquire);
    }
    while (cmp(node, k) < 0) {
      node = node->succ.load(std::memory_order_acquire);
    }
    return node;
  }

  NodeT* choose_parent(NodeT* p, NodeT* s, NodeT* first_cand) {
    NodeT* candidate = (first_cand == p || first_cand == s) ? first_cand : p;
    if (candidate == neg_) candidate = s;
    for (;;) {
      candidate->tree_lock.lock();
      if (candidate == p) {
        if (candidate->right.load(std::memory_order_relaxed) == nullptr) {
          return candidate;
        }
        candidate->tree_lock.unlock();
        candidate = s;
      } else {
        if (candidate->left.load(std::memory_order_relaxed) == nullptr) {
          return candidate;
        }
        candidate->tree_lock.unlock();
        candidate = (p == neg_) ? s : p;
      }
    }
  }

  void insert_to_tree(NodeT* parent, NodeT* nn) {
    const bool to_right = cmp(parent, nn->key) < 0;
    if (to_right) {
      parent->right.store(nn, std::memory_order_release);
      if constexpr (Balanced) {
        parent->right_height.store(1, std::memory_order_relaxed);
      }
    } else {
      parent->left.store(nn, std::memory_order_release);
      if constexpr (Balanced) {
        parent->left_height.store(1, std::memory_order_relaxed);
      }
    }
    if constexpr (Balanced) {
      if (parent == root_) {
        parent->tree_lock.unlock();
        return;
      }
      NodeT* grandparent = detail::lock_parent(parent);
      detail::rebalance(
          root_, grandparent, parent,
          grandparent->left.load(std::memory_order_relaxed) == parent);
    } else {
      parent->tree_lock.unlock();
    }
  }

  /// Locks n, its parent, and (if it exists) its only child. Returns true
  /// with np/child set when n has at most one child; returns false with
  /// no tree locks held when n has two children.
  bool acquire_unlink_locks(NodeT* n, NodeT*& np, NodeT*& child) {
    // Pause between retries so a child-lock holder blocked on n can run on
    // a uniprocessor (see restart_balance in lo/rebalance.hpp).
    sync::Backoff backoff;
    for (;;) {
      backoff.pause();
      n->tree_lock.lock();
      np = detail::lock_parent(n);
      NodeT* r = n->right.load(std::memory_order_relaxed);
      NodeT* l = n->left.load(std::memory_order_relaxed);
      if (r != nullptr && l != nullptr) {
        np->tree_lock.unlock();
        n->tree_lock.unlock();
        return false;
      }
      child = r != nullptr ? r : l;
      if (child != nullptr && !child->tree_lock.try_lock()) {
        np->tree_lock.unlock();
        n->tree_lock.unlock();
        continue;
      }
      return true;
    }
  }

  /// Physically unlinks n (known to have at most one child; n, np, child
  /// tree-locked) and rebalances. Consumes all three locks.
  void unlink_and_rebalance(NodeT* n, NodeT* np, NodeT* child) {
    const bool was_left = np->left.load(std::memory_order_relaxed) == n;
    detail::update_child(np, n, child);
    n->tree_lock.unlock();
    if constexpr (Balanced) {
      detail::rebalance(root_, np, child, was_left);
    } else {
      if (child != nullptr) child->tree_lock.unlock();
      np->tree_lock.unlock();
    }
  }

  /// Best-effort physical removal of a deleted node that may have dropped
  /// to at most one child. Uses try_lock on the interval locks (a purge is
  /// an optimization; giving up is always safe). Returns true on success.
  bool try_purge(NodeT* q) {
    if (q == nullptr || q->is_sentinel() ||
        !q->deleted.load(std::memory_order_acquire) ||
        q->mark.load(std::memory_order_acquire)) {
      return false;
    }
    NodeT* p = q->pred.load(std::memory_order_acquire);
    if (!p->succ_lock.try_lock()) return false;
    // Validate: p is still q's predecessor and both are live.
    if (p->succ.load(std::memory_order_relaxed) != q ||
        p->mark.load(std::memory_order_acquire) ||
        !q->deleted.load(std::memory_order_acquire)) {
      p->succ_lock.unlock();
      return false;
    }
    // Succ lock before tree locks; p < q so blocking respects key order.
    q->succ_lock.lock();
    NodeT* np = nullptr;
    NodeT* child = nullptr;
    if (!acquire_unlink_locks(q, np, child)) {
      q->succ_lock.unlock();
      p->succ_lock.unlock();
      return false;  // still two children
    }
    q->mark.store(true, std::memory_order_release);
    NodeT* q_succ = q->succ.load(std::memory_order_relaxed);
    q_succ->pred.store(p, std::memory_order_release);
    p->succ.store(q_succ, std::memory_order_release);
    q->succ_lock.unlock();
    p->succ_lock.unlock();
    unlink_and_rebalance(q, np, child);
    domain_->template retire_via<Alloc>(q);
    return true;
  }

  reclaim::EbrDomain* domain_;
  Compare comp_;
  NodeT* root_;
  NodeT* neg_;
  NodeT* pos_;
};

/// Table 1's "logical removing" AVL series.
template <typename K, typename V, typename Compare = std::less<K>,
          typename Alloc = reclaim::DefaultNodeAlloc>
using PartialAvlMap = PartialMap<K, V, Compare, true, Alloc>;

/// Table 2's "logical removing" BST series.
template <typename K, typename V, typename Compare = std::less<K>,
          typename Alloc = reclaim::DefaultNodeAlloc>
using PartialBstMap = PartialMap<K, V, Compare, false, Alloc>;

// Layout guards for the nested node, mirroring lo/node.hpp's.
namespace detail {
using ProbePartialNode = PartialMap<std::int64_t, std::int64_t>::NodeT;
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
#endif
static_assert(alignof(ProbePartialNode) == sync::kCacheLineSize &&
                  sizeof(ProbePartialNode) == 2 * sync::kCacheLineSize,
              "logical-removing node is one hot line + one cold line");
static_assert(offsetof(ProbePartialNode, value) + sizeof(std::int64_t) <=
                      sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, succ) + sizeof(void*) <=
                      sync::kCacheLineSize,
              "lock-free read path must fit in the first cache line");
static_assert(offsetof(ProbePartialNode, left) == sync::kCacheLineSize,
              "tree fields and locks belong on the cold line");
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
}  // namespace detail

}  // namespace lot::lo
