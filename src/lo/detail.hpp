// Shared low-level physical-layout helpers (paper Algorithms 6, 10, 11,
// 13) used by the unbalanced BST, the AVL tree, and the partially-external
// variant. All functions here require the caller to hold the tree locks
// stated in their contracts.
#pragma once

#include <algorithm>
#include <cstdint>

#include "lo/node.hpp"

namespace lot::lo::detail {

/// Algorithm 10. Requires: parent's and (if non-null) new_child's relevant
/// tree locks per the caller's protocol. Replaces `old_child` under
/// `parent` with `new_child` and reparents `new_child`.
template <typename N>
void update_child(N* parent, N* old_child, N* new_child) {
  if (parent->left.load(std::memory_order_relaxed) == old_child) {
    parent->left.store(new_child, std::memory_order_release);
  } else {
    parent->right.store(new_child, std::memory_order_release);
  }
  if (new_child != nullptr) {
    new_child->parent.store(parent, std::memory_order_release);
  }
}

/// Algorithm 6. Requires: node->tree_lock held. Locks and returns node's
/// current parent. The parent pointer can change while the parent is
/// unlocked (rotations re-parent a node while holding only the two parents'
/// locks), hence the validate-and-retry loop. Blocking is safe: we lock
/// upward, which matches the bottom-up tree-lock order (paper §5.1).
template <typename N>
N* lock_parent(N* node) {
  for (;;) {
    N* p = node->parent.load(std::memory_order_acquire);
    p->tree_lock.lock();
    if (node->parent.load(std::memory_order_acquire) == p &&
        !p->mark.load(std::memory_order_acquire)) {
      return p;
    }
    p->tree_lock.unlock();
  }
}

/// Algorithm 13. Requires: node (and child if non-null) tree-locked.
/// Refreshes node's cached height of the subtree rooted at `child` and
/// reports whether it changed (the paper's pseudocode returns the negation;
/// we return "changed" because that is what the caller branches on).
template <typename N>
bool update_height(N* child, N* node, bool is_left) {
  const std::int32_t new_h =
      child == nullptr ? 0
                       : std::max(child->left_height.load(
                                      std::memory_order_relaxed),
                                  child->right_height.load(
                                      std::memory_order_relaxed)) +
                             1;
  auto& field = is_left ? node->left_height : node->right_height;
  const std::int32_t old_h = field.load(std::memory_order_relaxed);
  field.store(new_h, std::memory_order_relaxed);
  return old_h != new_h;
}

/// Algorithm 11. Requires: parent, n, child all tree-locked; for a left
/// rotation child == n->right, else child == n->left. The displaced
/// grandchild's parent changes from `child` to `n` — both locked, which is
/// exactly the re-parenting rule.
template <typename N>
void rotate(N* child, N* n, N* parent, bool left_rotation) {
  update_child(parent, n, child);
  n->parent.store(child, std::memory_order_release);
  if (left_rotation) {
    update_child(n, child, child->left.load(std::memory_order_relaxed));
    child->left.store(n, std::memory_order_release);
    n->right_height.store(
        child->left_height.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    child->left_height.store(
        std::max(n->left_height.load(std::memory_order_relaxed),
                 n->right_height.load(std::memory_order_relaxed)) +
            1,
        std::memory_order_relaxed);
  } else {
    update_child(n, child, child->right.load(std::memory_order_relaxed));
    child->right.store(n, std::memory_order_release);
    n->left_height.store(
        child->right_height.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    child->right_height.store(
        std::max(n->left_height.load(std::memory_order_relaxed),
                 n->right_height.load(std::memory_order_relaxed)) +
            1,
        std::memory_order_relaxed);
  }
}

}  // namespace lot::lo::detail
