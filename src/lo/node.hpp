// Node layout for the logical-ordering trees (paper Figure 3).
//
// Every node participates in two layouts:
//   * the physical tree layout: parent / left / right (+ subtree heights
//     for the AVL variant), protected by tree_lock;
//   * the logical ordering layout: pred / succ, a doubly linked list in
//     key order delimited by the -inf / +inf sentinels, protected by
//     succ_lock (node N's succ_lock guards the interval (N, succ(N)):
//     N's succ field and succ(N)'s pred field).
//
// Fields read by lock-free operations (search, contains, get, ordered
// iteration) are std::atomic and accessed with acquire/release; fields
// only ever touched under their lock (the heights) are relaxed atomics so
// that an accidental unlocked read is at worst stale, never UB.
//
// Layout is cache-conscious (DESIGN.md §10): the node is cacheline-aligned
// with the lock-free read path — key, tag, mark, pred, succ, value (plus
// `deleted` in the logical-removing layout) — grouped on the first line,
// and the write-side state — the tree layout fields, both spinlocks, the
// heights (packed to int16_t; AVL heights fit trivially) — pushed onto the
// second. A contains() that walks the ordering layout touches one line per
// node instead of two, and writers bouncing tree_lock/succ_lock lines
// never invalidate the line readers are traversing. Static asserts below
// pin the contract.
//
// Two layouts, one per removal policy (lo/core.hpp): `Node` for on-time
// removal (plain immutable value, no deleted flag) and `PartialNode` for
// the logical-removing variant, which owns the `deleted` flag and stores
// the value in an atomic slot because revive-in-place races with lock-free
// gets.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "sync/cacheline.hpp"
#include "sync/spinlock.hpp"

namespace lot::lo {

namespace mvcc {
// lo/mvcc.hpp; the node only stores a pointer, so the forward
// declaration keeps this header free of the MVCC machinery.
template <typename V>
struct PastVersion;
}  // namespace mvcc

/// Sentinel tag. Sentinels compare below/above every normal key so that K
/// itself needs no infinity values (paper §3.1 adds -inf/+inf to the set).
enum class Tag : std::int8_t { kNegInf = -1, kNormal = 0, kPosInf = 1 };

template <typename K, typename V>
struct alignas(sync::kCacheLineSize) Node {
  using Self = Node<K, V>;

  // ---- hot line: everything the lock-free read path dereferences ----
  const K key;
  const Tag tag;

  /// True once the node is removed from the logical ordering. Shared
  /// meaning with the interval (node, succ(node)) being merged away.
  std::atomic<bool> mark{false};

  /// Relink stamp for the succ link: bumped under succ_lock on every store
  /// to `succ` (insert link, chain unlink). Writers capture (version, succ)
  /// before locking; a version match under the lock proves the captured
  /// succ is still current, and a mismatch resumes the ordering walk from
  /// the capture instead of re-descending from the root. Lives on the hot
  /// line because the capture rides the same ordering walk as readers.
  std::atomic<std::uint32_t> succ_version{0};

  // ---- logical ordering layout (succ_lock, on the cold line) ----
  std::atomic<Self*> pred{nullptr};
  std::atomic<Self*> succ{nullptr};

  V value;

#if !defined(LOT_DISABLE_MVCC)
  /// MVCC incarnation stamps (lo/mvcc.hpp, DESIGN.md §16): the epochs
  /// this node's key became present (vbirth) and absent (vdeath).
  /// 0 == mvcc::kUnstamped / mvcc::kAlive (the header is not included
  /// here; lo/core.hpp static_asserts the equality). On the hot line
  /// because snapshot scans resolve them during the same chain walk
  /// readers already take; live point reads never touch them. Mutated
  /// only by the single writer holding the node's interval lock, plus
  /// the help-finalize CAS readers are allowed (see mvcc.hpp).
  std::atomic<std::uint64_t> vbirth{0};
  std::atomic<std::uint64_t> vdeath{0};
#endif

  // ---- cold line: physical tree layout (tree_lock) + both locks ----
  alignas(sync::kCacheLineSize) std::atomic<Self*> left{nullptr};
  std::atomic<Self*> right{nullptr};
  std::atomic<Self*> parent{nullptr};
  std::atomic<std::int16_t> left_height{0};
  std::atomic<std::int16_t> right_height{0};
  sync::SpinLock tree_lock;
  sync::SpinLock succ_lock;

  Node(K k, V v, Tag t = Tag::kNormal)
      : key(std::move(k)), tag(t), value(std::move(v)) {}

  bool is_sentinel() const { return tag != Tag::kNormal; }

  std::int32_t height_of_subtrees() const {
    const std::int32_t lh = left_height.load(std::memory_order_relaxed);
    const std::int32_t rh = right_height.load(std::memory_order_relaxed);
    return lh > rh ? lh : rh;
  }

  std::int32_t balance_factor() const {
    return left_height.load(std::memory_order_relaxed) -
           right_height.load(std::memory_order_relaxed);
  }
};

/// Node layout owned by the LogicalRemoving policy (lo/core.hpp, paper
/// §6): adds the `deleted` flag — the node is logically absent but still
/// present in both layouts ("zombie") — and stores the value in an atomic
/// slot, because revive-in-place (insert over a zombie) writes the value
/// while lock-free gets read it. The atomic slot is why the partial
/// variant requires trivially-copyable V.
template <typename K, typename V>
struct alignas(sync::kCacheLineSize) PartialNode {
  using Self = PartialNode<K, V>;

  // ---- hot line: everything the lock-free read path dereferences ----
  const K key;
  const Tag tag;

  /// True once the node is removed from the logical ordering.
  std::atomic<bool> mark{false};

  /// Owned by the LogicalRemoving policy: logically absent, physically
  /// present in both layouts. Cleared by revive-in-place.
  std::atomic<bool> deleted{false};

  /// Relink stamp for the succ link; see Node::succ_version.
  std::atomic<std::uint32_t> succ_version{0};

  std::atomic<Self*> pred{nullptr};
  std::atomic<Self*> succ{nullptr};

  /// Atomic so revive's store can race with lock-free value reads.
  std::atomic<V> value;

#if !defined(LOT_DISABLE_MVCC)
  /// MVCC incarnation stamps; see Node::vbirth / Node::vdeath.
  std::atomic<std::uint64_t> vbirth{0};
  std::atomic<std::uint64_t> vdeath{0};

  /// Head of the past-incarnation chain (mvcc::PastVersion): only
  /// revive-in-place appends (the outgoing incarnation is folded into a
  /// record), so the on-time layout above carries no chain at all.
  std::atomic<mvcc::PastVersion<V>*> vhead{nullptr};
#endif

  // ---- cold line: physical tree layout (tree_lock) + both locks ----
  alignas(sync::kCacheLineSize) std::atomic<Self*> left{nullptr};
  std::atomic<Self*> right{nullptr};
  std::atomic<Self*> parent{nullptr};
  std::atomic<std::int16_t> left_height{0};
  std::atomic<std::int16_t> right_height{0};
  sync::SpinLock tree_lock;
  sync::SpinLock succ_lock;

  PartialNode(K k, V v, Tag t = Tag::kNormal)
      : key(std::move(k)), tag(t), value(std::move(v)) {}

  bool is_sentinel() const { return tag != Tag::kNormal; }

  std::int32_t height_of_subtrees() const {
    const std::int32_t lh = left_height.load(std::memory_order_relaxed);
    const std::int32_t rh = right_height.load(std::memory_order_relaxed);
    return lh > rh ? lh : rh;
  }

  std::int32_t balance_factor() const {
    return left_height.load(std::memory_order_relaxed) -
           right_height.load(std::memory_order_relaxed);
  }
};

// Layout guards, checked on the benchmark instantiation. offsetof on a
// non-standard-layout type is conditionally-supported; GCC and Clang both
// define it for this class shape, so silence their pedantic warning rather
// than lose the guard. A future field added in the wrong place fails the
// build here instead of silently re-splitting the hot line.
namespace detail {
using ProbeNode = Node<std::int64_t, std::int64_t>;
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winvalid-offsetof"
#endif
static_assert(alignof(ProbeNode) == sync::kCacheLineSize,
              "node must start on a cache line");
static_assert(sizeof(ProbeNode) == 2 * sync::kCacheLineSize,
              "node is one hot line + one cold line");
static_assert(offsetof(ProbeNode, key) < sync::kCacheLineSize &&
                  offsetof(ProbeNode, tag) < sync::kCacheLineSize &&
                  offsetof(ProbeNode, mark) < sync::kCacheLineSize &&
                  offsetof(ProbeNode, succ_version) + sizeof(std::uint32_t) <=
                      sync::kCacheLineSize &&
                  offsetof(ProbeNode, pred) + sizeof(void*) <=
                      sync::kCacheLineSize &&
                  offsetof(ProbeNode, succ) + sizeof(void*) <=
                      sync::kCacheLineSize &&
                  offsetof(ProbeNode, value) + sizeof(std::int64_t) <=
                      sync::kCacheLineSize,
              "lock-free read path must fit in the first cache line");
#if !defined(LOT_DISABLE_MVCC)
static_assert(offsetof(ProbeNode, vdeath) + sizeof(std::uint64_t) <=
                  sync::kCacheLineSize,
              "MVCC stamps must ride the hot line");
#endif
static_assert(offsetof(ProbeNode, left) == sync::kCacheLineSize &&
                  offsetof(ProbeNode, tree_lock) >= sync::kCacheLineSize &&
                  offsetof(ProbeNode, succ_lock) >= sync::kCacheLineSize,
              "tree fields and locks belong on the cold line");

// Same contract for the logical-removing layout: the extra `deleted` flag
// and the atomic value slot must not push the read path off the hot line.
using ProbePartialNode = PartialNode<std::int64_t, std::int64_t>;
static_assert(alignof(ProbePartialNode) == sync::kCacheLineSize,
              "partial node must start on a cache line");
static_assert(sizeof(ProbePartialNode) == 2 * sync::kCacheLineSize,
              "partial node is one hot line + one cold line");
static_assert(offsetof(ProbePartialNode, key) < sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, tag) < sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, mark) < sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, deleted) < sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, succ_version) +
                          sizeof(std::uint32_t) <=
                      sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, pred) + sizeof(void*) <=
                      sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, succ) + sizeof(void*) <=
                      sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, value) + sizeof(std::int64_t) <=
                      sync::kCacheLineSize,
              "lock-free read path must fit in the first cache line");
#if !defined(LOT_DISABLE_MVCC)
static_assert(offsetof(ProbePartialNode, vdeath) + sizeof(std::uint64_t) <=
                  sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, vhead) + sizeof(void*) <=
                      sync::kCacheLineSize,
              "MVCC stamps and the chain head must ride the hot line");
#endif
static_assert(offsetof(ProbePartialNode, left) == sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, tree_lock) >=
                      sync::kCacheLineSize &&
                  offsetof(ProbePartialNode, succ_lock) >=
                      sync::kCacheLineSize,
              "tree fields and locks belong on the cold line");
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
}  // namespace detail

}  // namespace lot::lo
