// Node layout for the logical-ordering trees (paper Figure 3).
//
// Every node participates in two layouts:
//   * the physical tree layout: parent / left / right (+ subtree heights
//     for the AVL variant), protected by tree_lock;
//   * the logical ordering layout: pred / succ, a doubly linked list in
//     key order delimited by the -inf / +inf sentinels, protected by
//     succ_lock (node N's succ_lock guards the interval (N, succ(N)):
//     N's succ field and succ(N)'s pred field).
//
// Fields read by lock-free operations (search, contains, get, ordered
// iteration) are std::atomic and accessed with acquire/release; fields
// only ever touched under their lock (the heights) are relaxed atomics so
// that an accidental unlocked read is at worst stale, never UB.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "sync/spinlock.hpp"

namespace lot::lo {

/// Sentinel tag. Sentinels compare below/above every normal key so that K
/// itself needs no infinity values (paper §3.1 adds -inf/+inf to the set).
enum class Tag : std::int8_t { kNegInf = -1, kNormal = 0, kPosInf = 1 };

template <typename K, typename V>
struct Node {
  using Self = Node<K, V>;

  const K key;
  const Tag tag;
  V value;

  /// True once the node is removed from the logical ordering. Shared
  /// meaning with the interval (node, succ(node)) being merged away.
  std::atomic<bool> mark{false};

  /// Used only by the "logical removing" (partially-external) variant:
  /// the node is logically absent but still present in both layouts.
  std::atomic<bool> deleted{false};

  // ---- physical tree layout (tree_lock) ----
  std::atomic<Self*> left{nullptr};
  std::atomic<Self*> right{nullptr};
  std::atomic<Self*> parent{nullptr};
  std::atomic<std::int32_t> left_height{0};
  std::atomic<std::int32_t> right_height{0};
  sync::SpinLock tree_lock;

  // ---- logical ordering layout (succ_lock) ----
  std::atomic<Self*> pred{nullptr};
  std::atomic<Self*> succ{nullptr};
  sync::SpinLock succ_lock;

  Node(K k, V v, Tag t = Tag::kNormal)
      : key(std::move(k)), tag(t), value(std::move(v)) {}

  bool is_sentinel() const { return tag != Tag::kNormal; }

  std::int32_t height_of_subtrees() const {
    const auto lh = left_height.load(std::memory_order_relaxed);
    const auto rh = right_height.load(std::memory_order_relaxed);
    return lh > rh ? lh : rh;
  }

  std::int32_t balance_factor() const {
    return left_height.load(std::memory_order_relaxed) -
           right_height.load(std::memory_order_relaxed);
  }
};

}  // namespace lot::lo
