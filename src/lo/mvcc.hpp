// MVCC scaffolding for the snapshot layer (DESIGN.md §16): the epoch
// source, the stamp-finalization protocol, the past-incarnation version
// records, the snapshot registry and the limbo list. The policy of *when*
// these are used lives in lo/core.hpp; this header owns the data types
// and the memory-ordering contract.
//
// Design. Every node carries two epoch stamps on its hot line
// (lo/node.hpp): `vbirth` — the epoch its current incarnation became
// present — and `vdeath` — the epoch its current (or, while a zombie is
// revived, previous) incarnation became absent. A snapshot is just an
// epoch E: a key is in the snapshot iff some incarnation's
// [birth, death) interval covers E. Only the logical-removing policy can
// re-incarnate a node (revive-in-place), and only revive therefore needs
// history: it folds the outgoing incarnation into a heap-allocated
// PastVersion record pushed on the node's `vhead` chain. The on-time
// policy never revives, so its chains are always empty and its MVCC cost
// is exactly the two stamps. Crucially this keeps erase() allocation-free
// — the fault-injection campaign's accounting (every injected pool fault
// equals one caught insert bad_alloc) depends on insert being the only
// fallible operation.
//
// Stamping protocol. Stamps are *unique and totally ordered*: a stamp is
// drawn with fetch_add on the process/shard-shared counter, so for any
// one node birth < death < next birth numerically, which is what lets
// readers detect incarnation turnover (the vbirth re-check in the
// resolver) and apply the "dead iff birth <= death <= E" rule without
// tie-breaking. A writer publishes a *pending* sentinel first (kUnstamped
// for births, kDying for deaths, both seq_cst) and finalizes it with a
// CAS to a freshly drawn stamp; any reader that observes the pending
// sentinel helps with the same CAS, so the stamp is single-assignment and
// every thread agrees on it. A reader helping stamps with a draw *later*
// than its own snapshot epoch, which pushes the concurrent (not yet
// returned) operation after the reader's cut — a legal linearization.
//
// Ordering argument (the whole-scan-atomicity proof leans on this):
//  * An operation that RETURNED before a snapshot read its epoch
//    (E = now()) finalized its stamp before returning, so its stamp is
//    <= E — the snapshot cannot miss it.
//  * A snapshot that misses a node's publication must order its epoch
//    load before the publisher's stamp draw: the publisher issues
//    `atomic_thread_fence(seq_cst)` between the publication store and
//    the draw, and the snapshot issues one between its epoch load and
//    its first chain read; if the snapshot's fence precedes the
//    publisher's in the seq_cst total order it missed the publication,
//    but then E precedes the draw, so the stamp lands strictly after E
//    ([atomics.order] fence-fence pairing). Either way the cut is
//    consistent.
//  * The same argument with the registry's `min_active` in place of the
//    chain makes the limbo decision safe: a remover that misses a
//    registering snapshot drew its death stamp before that snapshot's
//    epoch, so skipping the limbo park only ever hides nodes the
//    snapshot must report absent anyway.
//
// Compile-time gate: building with LOT_DISABLE_MVCC (CMake -DLOT_MVCC=OFF)
// replaces everything below with empty inline types, the node loses its
// stamp fields, and the trees keep the pre-MVCC weakly-consistent scan
// contract bit-for-bit (tests/test_lo_ordered_api.cpp static_asserts the
// types stay empty).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sync/spinlock.hpp"

namespace lot::lo::mvcc {

/// Pending-birth sentinel: the incarnation is published but its stamp is
/// not yet drawn. Readers help-finalize. Node fields initialize to this.
inline constexpr std::uint64_t kUnstamped = 0;

/// Pending-rebirth sentinel: a revive is mid-flight between pushing the
/// old incarnation onto the chain and storing the new value. Readers must
/// NOT help (the value slot is not theirs yet) — they resolve through the
/// chain instead, which is correct because the rebirth will stamp later
/// than any already-drawn snapshot epoch.
inline constexpr std::uint64_t kRenewing = ~std::uint64_t{0};

/// vdeath value while the incarnation is alive (also its initializer).
inline constexpr std::uint64_t kAlive = 0;

/// Pending-death sentinel; readers help-finalize.
inline constexpr std::uint64_t kDying = ~std::uint64_t{0};

/// SnapshotRegistry::min_active() when no snapshot is registered.
inline constexpr std::uint64_t kNoSnapshot = ~std::uint64_t{0};

#if !defined(LOT_DISABLE_MVCC)

inline constexpr bool kEnabled = true;

/// The epoch clock: one per map by default, one shared instance across
/// every shard of a ShardedMap (LoCore::use_epoch_source) so per-shard
/// snapshots compose into a single cut.
class EpochSource {
 public:
  /// Current epoch — what snapshot() adopts as its cut E. Does not
  /// advance the clock: consecutive snapshots with no writes in between
  /// are the same cut.
  std::uint64_t now() const { return counter_.load(std::memory_order_seq_cst); }

  /// Draws a fresh, unique stamp (strictly later than every stamp drawn
  /// before and than every snapshot epoch read before). Seq_cst RMW: the
  /// total order with snapshot epoch loads is the Dekker backbone above.
  std::uint64_t next_stamp() {
    return counter_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

 private:
  std::atomic<std::uint64_t> counter_{0};
};

/// Finalizes a pending stamp slot: CASes `pending` to a freshly drawn
/// stamp, helping if someone else already did. Returns the winning stamp
/// (never `pending`). Callers must know the slot already left its
/// not-yet-pending state (kAlive for deaths, kRenewing for births).
inline std::uint64_t finalize(std::atomic<std::uint64_t>& slot,
                              std::uint64_t pending, EpochSource& src) {
  std::uint64_t cur = slot.load(std::memory_order_seq_cst);
  while (cur == pending) {
    const std::uint64_t stamp = src.next_stamp();
    if (slot.compare_exchange_weak(cur, stamp, std::memory_order_seq_cst,
                                   std::memory_order_seq_cst)) {
      return stamp;
    }
    // cur was reloaded by the failed CAS; a competing finalize may have
    // won (the drawn stamp is simply wasted — gaps in the clock are fine).
  }
  return cur;
}

/// One folded-away incarnation of a logically-removing node: it was
/// present exactly over [birth, death). Immutable once published on the
/// node's vhead chain, except `next`, which truncation cuts to null.
/// Records are allocated empty *before* any lock is taken (same strong-
/// exception discipline as the node itself) and filled in under the
/// interval lock, where birth/death/value are finally known.
template <typename V>
struct PastVersion {
  std::uint64_t birth = kUnstamped;
  std::uint64_t death = kUnstamped;
  V value{};
  std::atomic<PastVersion*> next{nullptr};
};

/// The active-snapshot registry: what gives writers a safe lower bound
/// (`min_active`) on every live snapshot's epoch, for the limbo decision
/// and for chain truncation. Registration is *pessimistic*: a snapshot
/// reserves with the clock value read before it adopts its real epoch E,
/// so the registered value is <= E and min_active() never overshoots.
/// The reserve's seq_cst min store precedes the snapshot's epoch
/// adoption, completing the Dekker pairing with writers' min loads.
class SnapshotRegistry {
 public:
  /// Registers a snapshot-to-be and returns its token (the pessimistic
  /// epoch). Call *before* reading the cut epoch.
  std::uint64_t reserve(EpochSource& src) {
    lock_.lock();
    const std::uint64_t m = src.now();
    active_.push_back(m);
    recompute_min_locked();
    lock_.unlock();
    return m;
  }

  /// Deregisters; pass the token reserve() returned.
  void release(std::uint64_t token) {
    lock_.lock();
    for (std::size_t i = 0; i < active_.size(); ++i) {
      if (active_[i] == token) {
        active_[i] = active_.back();
        active_.pop_back();
        break;
      }
    }
    recompute_min_locked();
    lock_.unlock();
  }

  /// Lower bound on every registered snapshot's epoch; kNoSnapshot when
  /// none is registered. Seq_cst: writers' limbo/truncation decisions
  /// order against reserve() through this load.
  std::uint64_t min_active() const {
    return min_active_.load(std::memory_order_seq_cst);
  }

  std::size_t active_count() const {
    lock_.lock();
    const std::size_t n = active_.size();
    lock_.unlock();
    return n;
  }

 private:
  void recompute_min_locked() {
    std::uint64_t m = kNoSnapshot;
    for (const std::uint64_t e : active_) {
      if (e < m) m = e;
    }
    min_active_.store(m, std::memory_order_seq_cst);
  }

  mutable sync::SpinLock lock_;
  std::vector<std::uint64_t> active_;
  std::atomic<std::uint64_t> min_active_{kNoSnapshot};
};

/// Nodes unlinked from the ordering chain while a snapshot still needs
/// them (death stamp > min_active at unlink time) park here instead of
/// retiring: snapshot scans collect limbo *after* their chain walk, so a
/// node that vanished from the chain mid-walk is guaranteed already
/// parked (the remover parks before it splices). Entries are pruned when
/// snapshots release: death <= min_active means every live snapshot must
/// report the node absent, so it can finally retire.
template <typename Node>
class LimboList {
 public:
  void push(Node* node, std::uint64_t death) {
    lock_.lock();
    entries_.push_back({node, death});
    lock_.unlock();
  }

  /// Visits every parked entry under the list lock: fn(node, death).
  /// Keep fn short; scans use this to fold limbo into their cut.
  template <typename F>
  void for_each(F&& fn) const {
    lock_.lock();
    for (const Entry& e : entries_) fn(e.node, e.death);
    lock_.unlock();
  }

  /// Disposes every entry no live snapshot can need (death <=
  /// min_active), via `dispose(node)` outside the lock. Returns how many.
  template <typename F>
  std::size_t prune(std::uint64_t min_active, F&& dispose) {
    std::vector<Entry> dead;
    lock_.lock();
    std::size_t i = 0;
    while (i < entries_.size()) {
      if (entries_[i].death <= min_active) {
        dead.push_back(entries_[i]);
        entries_[i] = entries_.back();
        entries_.pop_back();
      } else {
        ++i;
      }
    }
    lock_.unlock();
    for (const Entry& e : dead) dispose(e.node);
    return dead.size();
  }

  std::size_t size() const {
    lock_.lock();
    const std::size_t n = entries_.size();
    lock_.unlock();
    return n;
  }

 private:
  struct Entry {
    Node* node;
    std::uint64_t death;
  };
  mutable sync::SpinLock lock_;
  std::vector<Entry> entries_;
};

#else  // LOT_DISABLE_MVCC

inline constexpr bool kEnabled = false;

// Empty inline stand-ins: the hooks in lo/core.hpp compile to nothing and
// snapshot() disappears. tests/test_lo_ordered_api.cpp static_asserts
// these stay empty, like the LOT_OBS / LOT_HEALTH off-gates.

class EpochSource {
 public:
  std::uint64_t now() const { return 0; }
  std::uint64_t next_stamp() { return 0; }
};

/// Stub so discarded `if constexpr (mvcc::kEnabled)` branches in
/// lo/core.hpp still name-resolve; never called.
inline std::uint64_t finalize(std::atomic<std::uint64_t>&, std::uint64_t,
                              EpochSource&) {
  return 0;
}

template <typename V>
struct PastVersion;  // never defined: nothing may allocate one

class SnapshotRegistry {
 public:
  std::uint64_t reserve(EpochSource&) { return 0; }
  void release(std::uint64_t) {}
  std::uint64_t min_active() const { return kNoSnapshot; }
  std::size_t active_count() const { return 0; }
};

template <typename Node>
class LimboList {
 public:
  void push(Node*, std::uint64_t) {}
  template <typename F>
  void for_each(F&&) const {}
  template <typename F>
  std::size_t prune(std::uint64_t, F&&) {
    return 0;
  }
  std::size_t size() const { return 0; }
};

#endif  // LOT_DISABLE_MVCC

}  // namespace lot::lo::mvcc
