// Convenience alias: the unbalanced logical-ordering BST (paper §4.6).
#pragma once

#include "lo/map.hpp"

namespace lot::lo {

/// Concurrent internal BST with lock-free contains/get and on-time
/// deletion; no balancing (expected O(log n) paths only under uniform
/// keys). See LoMap for the full API. Translation units that define
/// LOT_SCHEDULE_PERTURB get the schedule-perturbation hooks inside the
/// insert/remove/relocate race windows (tests/stress/).
template <typename K, typename V, typename Compare = std::less<K>,
          typename Alloc = reclaim::DefaultNodeAlloc>
using BstMap = LoMap<K, V, Compare, /*Balanced=*/false, Alloc>;

}  // namespace lot::lo
