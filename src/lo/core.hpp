// The shared engine of the logical-ordering trees (paper Algorithms 1–10):
// one implementation of the two-layer protocol — lock-free search + ordering
// walk, succ-lock interval acquisition, insert linking, removal unlinking,
// and the ordered read layer built on the pred/succ chain — parameterized by
//
//   * `Balanced`       — AVL height maintenance + relaxed rebalancing
//                        (§4.1–4.5) vs the plain BST of §4.6;
//   * `Alloc`          — the node allocation policy (reclaim/pool.hpp);
//   * `RemovalPolicy`  — on-time deletion (OnTimeRemoval, §3.3: a removal
//                        physically unlinks the node before returning, two-
//                        children removals relocate the successor) vs the
//                        partially-external "logical removing" variation
//                        (LogicalRemoving, §6: a two-children removal only
//                        flags the node `deleted`, a later insert of the
//                        same key revives it in place, and physical removal
//                        happens opportunistically once the child count
//                        drops);
//   * `NodeTmpl`       — the node layout (lo/node.hpp; bench/ablation_alloc
//                        substitutes the pre-PR packed layout).
//
// `LoMap` (lo/map.hpp) and `PartialMap` (lo/partial.hpp) are thin
// instantiations of this class; they add nothing but a name.
//
// Properties reproduced from the paper:
//  * contains / get are lock-free and never restart: one tree descent that
//    tolerates concurrent rotations/relocations, then a pred/succ walk over
//    the logical ordering to reach a verdict (§3.2, Algorithms 1–2);
//  * ordered access (min/max/for_each/range/next/prev/cursor) reuses the
//    same chain, so every ordered read is lock-free as well (§4.7). Range
//    scans are weakly consistent *per key*: see range() and DESIGN.md §11;
//  * two-layer locking: per-node succ_lock over the ordering intervals,
//    per-node tree_lock over the physical layout, acquired in the global
//    order of §5.1 (succ locks first, ascending by key; tree locks
//    bottom-up; against-order acquisitions use try_lock + restart).
//
// Deviations from the paper's *pseudocode* (not its algorithm), documented
// in DESIGN.md §"pseudocode errata":
//  * Algorithms 3/7 line 3 read `node.key > k ? node.pred : node`; when
//    search returns the node with key k this selects a predecessor whose
//    interval can never contain k and the operation would restart forever.
//    The predecessor candidate must be chosen for `node.key >= k`.
//  * choose_parent may fall back to the predecessor, but the -inf sentinel
//    is never a physical parent (it is outside the tree layout, §4.1), so
//    the fallback skips to the successor in that case.
//  * Algorithm 2's ordering walk needs a third loop — back off marked
//    nodes via pred before walking succ — or a lookup that lands on a
//    removed-but-not-yet-tree-unlinked node with the sought key misses a
//    concurrently re-inserted key (stale-duplicate shadowing; see locate()
//    and DESIGN.md). The verified plankton model of this structure carries
//    the same loop.
//
// Instrumentation: the race windows this algorithm tolerates (node in the
// ordering layout but not the tree, marked but not yet unlinked, successor
// mid-relocation, a scan mid-walk) carry named check::perturb_point()
// hooks. They compile to nothing unless the translation unit defines
// LOT_SCHEDULE_PERTURB; the stress harness under tests/stress/ builds with
// it to widen those windows. LOT_INJECT_BUG (negative controls for the
// linearizability checker) is valued: ==1 breaks locate() into a tree-only
// lookup — exactly the naive design the logical ordering exists to fix —
// and ==2 skips the version bump on the insert relink, so a writer trusts
// a stale versioned capture and splices past a just-linked node (lost
// update). Either way perturbed runs yield non-linearizable histories the
// checker must reject.
// Fault injection (inject/inject.hpp, LOT_FAULT_INJECT) attacks the
// resource windows instead: seeded bad_alloc at the insert allocation site
// and seeded guard stalls in readers and writers.
//
// Failure model (DESIGN.md §9): insert offers the strong exception
// guarantee under allocation failure with either policy. OnTimeRemoval
// allocates the node *before* any lock is taken; LogicalRemoving allocates
// lazily (the revive path is allocation-free — the point of the variant)
// but always with the interval lock dropped, revalidating afterwards.
// Either way a bad_alloc propagates with no locks held, no node
// half-linked, and the map unchanged; erase allocates nothing on its own
// and can only fail inside EbrDomain::retire, which is itself OOM-safe.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "check/perturb.hpp"
#include "health/governor.hpp"
#include "inject/inject.hpp"
#include "lo/detail.hpp"
#include "lo/mvcc.hpp"
#include "lo/node.hpp"
#include "lo/rebalance.hpp"
#include "obs/counters.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/pool.hpp"
#include "sync/backoff.hpp"

namespace lot::lo {

/// Removal policy of the main algorithm (§3.3): every successful erase
/// physically unlinks its node before returning, relocating the successor
/// when the node has two children. Owns no NodeT field beyond `mark`;
/// values are plain (immutable after publication).
struct OnTimeRemoval {
  static constexpr bool kLogicalRemoving = false;
  static constexpr inject::Site kInsertAllocSite = inject::Site::kLoInsertAlloc;
};

/// Removal policy of the partially-external variation (§6). Owns the
/// `deleted` flag and the atomic value slot of PartialNode: a two-children
/// erase only sets `deleted` (the node stays in both layouts as a zombie),
/// insert revives a zombie in place by storing the value and clearing
/// `deleted`, and physical removal happens opportunistically (try_purge /
/// purge_all) once a zombie drops to at most one child.
struct LogicalRemoving {
  static constexpr bool kLogicalRemoving = true;
  static constexpr inject::Site kInsertAllocSite =
      inject::Site::kPartialInsertAlloc;
};

namespace detail {
inline std::atomic<std::uint32_t>& write_resume_limit_flag() {
  static std::atomic<std::uint32_t> limit{8};
  return limit;
}
}  // namespace detail

/// Resume budget for the versioned write path (DESIGN.md §13): a failed
/// interval validation resumes the ordering walk from its captured
/// predecessor up to this many times per descent before falling back to a
/// full root re-descent. 0 restores the pre-versioning root-restart
/// discipline exactly (bench/ablation_restart.cpp A/B arm).
inline void set_write_resume_limit(std::uint32_t n) {
  detail::write_resume_limit_flag().store(n, std::memory_order_relaxed);
}
inline std::uint32_t write_resume_limit() {
  return detail::write_resume_limit_flag().load(std::memory_order_relaxed);
}

template <typename K, typename V, typename Compare, bool Balanced,
          typename Alloc, typename RemovalPolicy,
          template <typename, typename> class NodeTmpl>
class LoCore {
 public:
  using key_type = K;
  using mapped_type = V;
  using key_compare = Compare;
  using alloc_type = Alloc;
  using removal_policy = RemovalPolicy;
  using NodeT = NodeTmpl<K, V>;

  static constexpr bool kBalanced = Balanced;
  static constexpr bool kLogicalRemoving = RemovalPolicy::kLogicalRemoving;

  /// `alloc` is the allocation *handle* (reclaim/pool.hpp): default-
  /// constructed it resolves the process-wide per-type pool, while a
  /// handle over an explicit SizePool makes this structure's nodes come
  /// from that pool alone — how ShardedMap keeps each shard's slab
  /// traffic shard-local. Destruction stays handle-free (Alloc::destroy
  /// is static and routes by pointer), so retire paths never need the
  /// handle threaded through.
  explicit LoCore(reclaim::EbrDomain& domain =
                      reclaim::EbrDomain::global_domain(),
                  Compare comp = Compare(), Alloc alloc = Alloc())
      : domain_(&domain), comp_(std::move(comp)), alloc_(std::move(alloc)) {
    // Sentinels use the same allocation policy as ordinary nodes and are
    // destroyed through it, so alloc_stats (and the pool's slot
    // accounting) balance to zero at teardown.
    neg_ = alloc_.template create<NodeT>(K{}, V{}, Tag::kNegInf);
    try {
      pos_ = alloc_.template create<NodeT>(K{}, V{}, Tag::kPosInf);
    } catch (...) {
      Alloc::template destroy<NodeT>(neg_);
      throw;
    }
    neg_->succ.store(pos_, std::memory_order_relaxed);
    pos_->pred.store(neg_, std::memory_order_relaxed);
    // The root is the +inf sentinel; -inf lives only in the ordering
    // layout (paper §4.1). The real tree hangs off root->left.
    root_ = pos_;
  }

  ~LoCore() {
    // At destruction no operations are in flight; every live node is on
    // the ordering chain (removed nodes were retired to the domain), plus
    // whatever the limbo list still parks for snapshots that no longer
    // exist. Version chains are owned by their node and die with it.
    NodeT* node = neg_;
    while (node != nullptr) {
      NodeT* next = node->succ.load(std::memory_order_relaxed);
      mvcc_destroy_versions(node);
      Alloc::template destroy<NodeT>(node);
      node = next;
    }
    limbo_.prune(mvcc::kNoSnapshot, [this](NodeT* n) {
      mvcc_destroy_versions(n);
      Alloc::template destroy<NodeT>(n);
    });
  }

  LoCore(const LoCore&) = delete;
  LoCore& operator=(const LoCore&) = delete;

  // ---------------------------------------------------------------- reads

  /// Lock-free membership test (Algorithm 2).
  bool contains(const K& k) const {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallReader);
    const auto tc = obs::tls();
    tc.add(obs::Counter::kContainsOps);
    const NodeT* node = locate(k, tc);
    const bool hit = cmp(node, k) == 0 && is_present(node);
    if (hit) tc.add(obs::Counter::kContainsHits);
    return hit;
  }

  /// Lock-free lookup; empty if the key is absent.
  std::optional<V> get(const K& k) const {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallReader);
    const auto tc = obs::tls();
    tc.add(obs::Counter::kGetOps);
    const NodeT* node = locate(k, tc);
    if (cmp(node, k) != 0) return std::nullopt;
    // Read the value before re-checking presence so (logical removing) a
    // racing revive cannot hand us a value newer than the presence
    // decision; with on-time removal values are immutable and the order is
    // immaterial.
    const V v = read_value(node);
    if (!is_present(node)) return std::nullopt;
    return v;
  }

  /// Smallest present key (paper §4.7): walk the chain from -inf past
  /// nodes that lost a race with a concurrent remove (or, logical
  /// removing, past zombies).
  std::optional<std::pair<K, V>> min() const {
    auto g = domain_->guard();
    obs::count(obs::Counter::kMinMaxOps);
    const NodeT* node = neg_->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      const V v = read_value(node);
      if (is_present(node)) return std::make_pair(node->key, v);
      node = node->succ.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  std::optional<std::pair<K, V>> max() const {
    auto g = domain_->guard();
    obs::count(obs::Counter::kMinMaxOps);
    const NodeT* node = pos_->pred.load(std::memory_order_acquire);
    while (node != neg_) {
      const V v = read_value(node);
      if (is_present(node)) return std::make_pair(node->key, v);
      node = node->pred.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  /// Ascending, weakly consistent iteration over the logical ordering
  /// (paper §4.7): sees every key present for the whole iteration, may or
  /// may not see concurrent updates.
  template <typename F>
  void for_each(F&& fn) const {
    auto g = domain_->guard();
    const NodeT* node = neg_->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      const V v = read_value(node);
      if (is_present(node)) fn(node->key, v);
      node = node->succ.load(std::memory_order_acquire);
    }
  }

  /// Lock-free ordered range scan over [lo, hi): descends once to the
  /// range's start, then walks the succ chain — O(log n + |range|) instead
  /// of a full iteration, with no locks and no restarts, like contains.
  ///
  /// Consistency guarantee (DESIGN.md §11): the scan is weakly consistent
  /// *per key*, not atomic over the range. Every key it reports was
  /// present at some instant within the scan's own interval, every in-range
  /// key it skips was absent at some instant within that interval (each
  /// verdict is justified at the instant the walk passes that key's chain
  /// position — the mark/deleted store is the remove's linearization
  /// point), and reported keys are strictly increasing. Keys inserted or
  /// removed mid-scan may or may not appear; a snapshot over the whole
  /// range is deliberately not offered.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallReader);
    const auto tc = obs::tls();
    tc.add(obs::Counter::kRangeOps);
    std::uint64_t reported = 0;
    const NodeT* node = locate(lo, tc);  // first node with key >= lo
    while (node != pos_ &&
           (node->tag == Tag::kNegInf || comp_(node->key, hi))) {
      check::perturb_point(check::PerturbPoint::kRangeStep);
      if (node->tag == Tag::kNormal && !comp_(node->key, lo)) {
        const V v = read_value(node);
        if (is_present(node)) {
          fn(node->key, v);
          ++reported;
        }
      }
      node = node->succ.load(std::memory_order_acquire);
    }
    if (reported != 0) tc.add(obs::Counter::kRangeKeysReported, reported);
  }

  /// Smallest present key in [lo, hi), or empty. Same consistency
  /// guarantee as range().
  std::optional<std::pair<K, V>> first_in_range(const K& lo,
                                                const K& hi) const {
    if (!comp_(lo, hi)) return std::nullopt;
    auto g = domain_->guard();
    const auto tc = obs::tls();
    tc.add(obs::Counter::kOrderedLocates);
    const NodeT* node = locate(lo, tc);
    while (node != pos_ &&
           (node->tag == Tag::kNegInf || comp_(node->key, hi))) {
      if (node->tag == Tag::kNormal && !comp_(node->key, lo)) {
        const V v = read_value(node);
        if (is_present(node)) return std::make_pair(node->key, v);
      }
      node = node->succ.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  /// Largest present key in [lo, hi), or empty: locate the range's end,
  /// then walk pred — O(log n + skipped) instead of scanning the whole
  /// range. Same consistency guarantee as range().
  std::optional<std::pair<K, V>> last_in_range(const K& lo,
                                               const K& hi) const {
    if (!comp_(lo, hi)) return std::nullopt;
    auto g = domain_->guard();
    const auto tc = obs::tls();
    tc.add(obs::Counter::kOrderedLocates);
    const NodeT* node = locate(hi, tc);  // first node with key >= hi
    while (node != neg_) {
      if (node->tag == Tag::kNormal) {
        if (comp_(node->key, lo)) break;  // walked below the range
        if (comp_(node->key, hi)) {
          const V v = read_value(node);
          if (is_present(node)) return std::make_pair(node->key, v);
        }
      }
      node = node->pred.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  /// Smallest present key strictly greater than k (lock-free, one descent
  /// plus succ hops — the logical ordering makes successor queries O(1)
  /// from a located node, paper §3.1).
  std::optional<std::pair<K, V>> next(const K& k) const {
    auto g = domain_->guard();
    const auto tc = obs::tls();
    tc.add(obs::Counter::kOrderedLocates);
    const NodeT* node = locate(k, tc);  // first node with key >= k
    if (cmp(node, k) == 0) node = node->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      const V v = read_value(node);
      if (node->tag == Tag::kNormal && is_present(node) &&
          comp_(k, node->key)) {
        return std::make_pair(node->key, v);
      }
      node = node->succ.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  /// Largest present key strictly smaller than k (mirror of next()).
  std::optional<std::pair<K, V>> prev(const K& k) const {
    auto g = domain_->guard();
    const auto tc = obs::tls();
    tc.add(obs::Counter::kOrderedLocates);
    const NodeT* node = locate(k, tc);
    while (node != neg_) {
      const V v = read_value(node);
      if (node->tag == Tag::kNormal && is_present(node) &&
          comp_(node->key, k)) {
        return std::make_pair(node->key, v);
      }
      node = node->pred.load(std::memory_order_acquire);
    }
    return std::nullopt;
  }

  /// Ordered cursor over the logical ordering (paper §4.7's first()/
  /// next(node) iteration): each advance is one succ hop, O(1), instead of
  /// a fresh descent. The cursor pins a reclamation epoch for its entire
  /// lifetime — keep cursors short-lived on update-heavy maps, or retired
  /// nodes pile up behind the pinned epoch.
  class Cursor {
   public:
    /// Yields the next present key in ascending order, or empty at the
    /// end. Weakly consistent, like for_each.
    std::optional<std::pair<K, V>> next() {
      if (pending_.has_value()) {
        auto kv = std::move(*pending_);
        pending_.reset();
        return kv;
      }
      if (node_ == map_->pos_) return std::nullopt;  // stay exhausted
      const NodeT* n = node_->succ.load(std::memory_order_acquire);
      while (n != map_->pos_) {
        // Same widened window as range()'s chain walk: cursor advances
        // race marks/unlinks, and the sharded merge holds cursors open
        // far longer than a single scan does.
        check::perturb_point(check::PerturbPoint::kRangeStep);
        const V v = read_value(n);
        if (is_present(n)) {
          node_ = n;
          return std::make_pair(n->key, v);
        }
        n = n->succ.load(std::memory_order_acquire);
      }
      node_ = n;
      return std::nullopt;
    }

   private:
    explicit Cursor(const LoCore& m)
        : guard_(m.domain_->guard()), map_(&m), node_(m.neg_) {}
    /// Positioned start: one descent to the first chain node with
    /// key >= lo. If that node is a present normal node it must be the
    /// first key this cursor yields, but next() advances *past* node_ —
    /// so its kv is captured eagerly (justified at this instant, the same
    /// per-key weak consistency as range()) and replayed by the first
    /// next() call.
    Cursor(const LoCore& m, const K& lo)
        : guard_(m.domain_->guard()), map_(&m) {
      // The open's descent must be accounted like any other ordered locate
      // or the contains_restarts audit (obs/obs.hpp) would see an orphan
      // kTreeDescents increment.
      const auto tc = obs::tls();
      tc.add(obs::Counter::kOrderedLocates);
      const NodeT* n = m.locate(lo, tc);
      node_ = n;
      if (n->tag == Tag::kNormal) {
        const V v = read_value(n);
        if (is_present(n)) pending_.emplace(n->key, v);
      }
    }
    reclaim::EbrDomain::Guard guard_;
    const LoCore* map_;
    const NodeT* node_;
    std::optional<std::pair<K, V>> pending_;
    friend class LoCore;
  };

  /// A cursor positioned before the smallest key.
  Cursor cursor() const { return Cursor(*this); }

  /// A cursor positioned before the smallest key >= lo: one O(log n)
  /// descent instead of walking the chain from -inf — what ShardedMap's
  /// cross-shard range merge uses to enter each shard at the range start.
  Cursor cursor(const K& lo) const { return Cursor(*this, lo); }

#if !defined(LOT_DISABLE_MVCC)
  /// An epoch-pinned consistent read view (DESIGN.md §16): every read
  /// through the view resolves against the single cut E adopted at
  /// snapshot() time — the whole scan linearizes at one point, unlike
  /// the live range()'s per-key weak consistency. The view pins a
  /// reclamation epoch and holds a registry slot for its lifetime (both
  /// block retirement behind it), so keep views short-lived on
  /// update-heavy maps, like cursors.
  class SnapshotView {
   public:
    SnapshotView(SnapshotView&& o) noexcept
        : guard_(std::move(o.guard_)),
          map_(o.map_),
          token_(o.token_),
          epoch_(o.epoch_),
          view_reads_(o.view_reads_) {
      o.map_ = nullptr;
    }
    SnapshotView(const SnapshotView&) = delete;
    SnapshotView& operator=(const SnapshotView&) = delete;
    SnapshotView& operator=(SnapshotView&&) = delete;
    ~SnapshotView() { release(); }

    /// The cut: every read reports the map as of this epoch.
    std::uint64_t epoch() const { return epoch_; }

    bool contains(const K& k) const {
      const auto tc = obs::tls();
      tc.add(obs::Counter::kContainsOps);
      const bool hit = lookup(k, tc).has_value();
      if (hit) tc.add(obs::Counter::kContainsHits);
      return hit;
    }

    std::optional<V> get(const K& k) const {
      const auto tc = obs::tls();
      tc.add(obs::Counter::kGetOps);
      return lookup(k, tc);
    }

    /// Ordered scan of [lo, hi) as of the cut — the atomic counterpart
    /// of the live range().
    template <typename F>
    void range(const K& lo, const K& hi, F&& fn) const {
      if (map_ == nullptr || !map_->comp_(lo, hi)) return;
      const auto tc = obs::tls();
      tc.add(obs::Counter::kRangeOps);
      const auto kvs = collect(&lo, &hi, tc);
      if (!kvs.empty()) {
        tc.add(obs::Counter::kRangeKeysReported, kvs.size());
      }
      for (const auto& kv : kvs) fn(kv.first, kv.second);
    }

    /// Full ordered iteration as of the cut.
    template <typename F>
    void for_each(F&& fn) const {
      if (map_ == nullptr) return;
      const auto kvs = collect(nullptr, nullptr, obs::tls());
      for (const auto& kv : kvs) fn(kv.first, kv.second);
    }

    /// Cursor over the cut. Materialized eagerly: limbo entries can
    /// appear mid-iteration, so a lazy chain walk could not fold them in
    /// at the right positions; the snapshot is immutable anyway.
    class Cursor {
     public:
      std::optional<std::pair<K, V>> next() {
        if (index_ >= kvs_.size()) return std::nullopt;
        return kvs_[index_++];
      }

     private:
      explicit Cursor(std::vector<std::pair<K, V>> kvs)
          : kvs_(std::move(kvs)) {}
      std::vector<std::pair<K, V>> kvs_;
      std::size_t index_ = 0;
      friend class SnapshotView;
    };

    Cursor cursor() const {
      if (map_ == nullptr) return Cursor({});
      return Cursor(collect(nullptr, nullptr, obs::tls()));
    }

    /// Positioned start, mirroring the live cursor(lo): the descent is
    /// paid for with an ordered-locate count, same as there.
    Cursor cursor(const K& lo) const {
      if (map_ == nullptr) return Cursor({});
      const auto tc = obs::tls();
      tc.add(obs::Counter::kOrderedLocates);
      return Cursor(collect(&lo, nullptr, tc));
    }

    /// Drops the registry slot and the reclamation pin early (the
    /// destructor calls this too) and prunes limbo entries the departure
    /// may have freed up. Reads after release() return empty.
    void release() {
      if (map_ == nullptr) return;
      const LoCore* m = map_;
      map_ = nullptr;
      m->snap_reg_.release(token_);
      guard_.reset();
      m->mvcc_prune_limbo();
    }

   private:
    SnapshotView(const LoCore& m, std::uint64_t token, std::uint64_t e)
        : guard_(m.domain_->guard()), map_(&m), token_(token), epoch_(e) {}

    /// Point read against the cut: resolve the chain node for k, then
    /// fall back to limbo — a node unlinked after the cut was parked
    /// before it left the chain, so the two probes cannot both miss.
    std::optional<V> lookup(const K& k, obs::Tls tc) const {
      if (map_ == nullptr) return std::nullopt;
      std::optional<V> out;
      const NodeT* node = map_->locate(k, tc);
      if (map_->cmp(node, k) == 0 && node->tag == Tag::kNormal) {
        out = map_->mvcc_resolve(node, epoch_, &view_reads_, tc);
      }
      if (!out.has_value()) {
        map_->limbo_.for_each([&](NodeT* n, std::uint64_t death) {
          if (out.has_value() || death <= epoch_) return;
          if (map_->cmp(n, k) == 0) {
            out = map_->mvcc_resolve(n, epoch_, &view_reads_, tc);
          }
        });
      }
      return out;
    }

    /// Materializes the cut over [lo, hi) (null = unbounded): resolve
    /// every in-range chain node, then fold in limbo — nodes spliced out
    /// mid-walk were parked first (erase parks *before* the splice), so
    /// the union cannot miss a key the cut contains. A key can surface
    /// from both probes (resolved on-chain, then spliced and parked
    /// before the limbo pass); at most one incarnation per key covers
    /// any epoch, so the duplicate is value-identical and unique() after
    /// the merge drops it.
    std::vector<std::pair<K, V>> collect(const K* lo, const K* hi,
                                         obs::Tls tc) const {
      std::vector<std::pair<K, V>> out;
      const NodeT* node = lo != nullptr
                              ? map_->locate(*lo, tc)
                              : map_->neg_->succ.load(std::memory_order_acquire);
      while (node != map_->pos_ &&
             (node->tag == Tag::kNegInf || hi == nullptr ||
              map_->comp_(node->key, *hi))) {
        check::perturb_point(check::PerturbPoint::kRangeStep);
        if (node->tag == Tag::kNormal &&
            (lo == nullptr || !map_->comp_(node->key, *lo))) {
          const auto v = map_->mvcc_resolve(node, epoch_, &view_reads_, tc);
          if (v.has_value()) out.emplace_back(node->key, *v);
        }
        node = node->succ.load(std::memory_order_acquire);
      }
      std::vector<std::pair<K, V>> parked;
      map_->limbo_.for_each([&](NodeT* n, std::uint64_t death) {
        if (death <= epoch_) return;  // absent at the cut; skip cheaply
        if (n->tag != Tag::kNormal) return;
        if (lo != nullptr && map_->comp_(n->key, *lo)) return;
        if (hi != nullptr && !map_->comp_(n->key, *hi)) return;
        const auto v = map_->mvcc_resolve(n, epoch_, &view_reads_, tc);
        if (v.has_value()) parked.emplace_back(n->key, *v);
      });
      if (!parked.empty()) {
        const auto less = [this](const std::pair<K, V>& a,
                                 const std::pair<K, V>& b) {
          return map_->comp_(a.first, b.first);
        };
        std::sort(parked.begin(), parked.end(), less);
        const auto mid = static_cast<std::ptrdiff_t>(out.size());
        out.insert(out.end(), parked.begin(), parked.end());
        std::inplace_merge(out.begin(), out.begin() + mid, out.end(), less);
        out.erase(std::unique(out.begin(), out.end(),
                              [this](const std::pair<K, V>& a,
                                     const std::pair<K, V>& b) {
                                return !map_->comp_(a.first, b.first) &&
                                       !map_->comp_(b.first, a.first);
                              }),
                  out.end());
      }
      return out;
    }

    std::optional<reclaim::EbrDomain::Guard> guard_;
    const LoCore* map_;
    std::uint64_t token_;
    std::uint64_t epoch_;
    /// Per-view resolution counter feeding the LOT_INJECT_BUG==3 arm
    /// (mvcc_resolve); dead weight otherwise.
    mutable std::uint64_t view_reads_ = 0;
    friend class LoCore;
  };

  /// Takes a consistent snapshot of the map: registers with the snapshot
  /// registry *first* (so writers' limbo decisions already see the
  /// reservation), then adopts the cut E. The fence pairs with the one
  /// in mvcc_stamp_fresh: a publication this snapshot missed stamps
  /// strictly after E (mvcc.hpp, ordering argument).
  SnapshotView snapshot() const {
    obs::count(obs::Counter::kSnapshotAcquires);
    const std::uint64_t token = snap_reg_.reserve(epoch_src());
    const std::uint64_t e = epoch_src().now();
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return SnapshotView(*this, token, e);
  }

  /// Two-phase snapshot for multi-shard composition (shard/sharded_map
  /// .hpp): every shard reserves first, then ONE cut E is drawn from the
  /// shared epoch source and adopted by all — per-shard views over the
  /// same E form a single consistent cut of the whole sharded map.
  /// Requires use_epoch_source() to have bound the shards together.
  std::uint64_t snapshot_reserve() const {
    return snap_reg_.reserve(epoch_src());
  }

  SnapshotView snapshot_adopt(std::uint64_t token, std::uint64_t e) const {
    obs::count(obs::Counter::kSnapshotAcquires);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return SnapshotView(*this, token, e);
  }

  /// Rebinds this map's epoch clock to a shared source — how ShardedMap
  /// makes per-shard snapshots compose. Call before any write or
  /// snapshot touches the map.
  void use_epoch_source(mvcc::EpochSource& src) { epoch_src_ = &src; }
  mvcc::EpochSource& epoch_source() const { return *epoch_src_; }

  std::size_t debug_limbo_size() const { return limbo_.size(); }
  std::size_t debug_active_snapshots() const {
    return snap_reg_.active_count();
  }
#endif  // !LOT_DISABLE_MVCC

  /// O(n) size via the ordering chain; exact at quiescence.
  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each([&n](const K&, const V&) { ++n; });
    return n;
  }

  /// Nodes on the ordering chain, present or not. With logical removing
  /// this includes deleted ("zombie") nodes — the memory-footprint metric
  /// of ablation A2; with on-time removal it can transiently exceed
  /// size_slow() only by nodes mid-unlink.
  std::size_t physical_nodes_slow() const {
    auto g = domain_->guard();
    std::size_t n = 0;
    const NodeT* node = neg_->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      ++n;
      node = node->succ.load(std::memory_order_acquire);
    }
    return n;
  }

  bool empty() const {
    auto g = domain_->guard();
    const NodeT* node = neg_->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      if (is_present(node)) return false;
      node = node->succ.load(std::memory_order_acquire);
    }
    return true;
  }

  // -------------------------------------------------------------- updates

  /// Insert-if-absent (Algorithm 3). Returns false if the key is present.
  /// With logical removing, inserting over a zombie revives it in place
  /// (allocation-free) and returns true.
  ///
  /// Allocation failure (std::bad_alloc) offers the strong guarantee with
  /// either policy; see the header comment for the per-policy discipline.
  bool insert(const K& k, const V& v) {
    // Admission gate before the guard: a writer backing off under pressure
    // must not pin an epoch while it waits (health/governor.hpp).
    health::writer_gate(*domain_);
    // Contention heat is accounted to this map's domain for the duration
    // of the write (ROADMAP 2(c)): a shard-private domain gets its own
    // TLS heat slot, so heat built here never throttles another shard.
    detail::HeatScope heat_scope(heat_scope_domain_());
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallWriter);
    const auto tc = obs::tls();
    NodeT* nn = nullptr;
    // Revive folds the zombie's outgoing incarnation into a PastVersion
    // record (DESIGN.md §16). Like the node itself, the record must be
    // allocated with no locks held (the pool's create throws under fault
    // injection), so the retry loop below pre-allocates one the moment a
    // revive looks likely and the locked revive stays allocation-free.
    mvcc::PastVersion<V>* vspare = nullptr;
    if constexpr (!kLogicalRemoving) {
      // Allocate before any lock acquisition or retry, so a throw leaves
      // the map untouched with no locks held.
      inject::throw_if_alloc_fault(RemovalPolicy::kInsertAllocSite);
      nn = alloc_.template create<NodeT>(k, v);
    }
    const std::uint32_t budget = write_resume_limit();
    std::uint32_t resumes = 0;
    NodeT* node = search(k, tc);
    for (;;) {
      node = ordering_walk(node, k, tc);  // first chain node with key >= k
      NodeT* p = node->pred.load(std::memory_order_acquire);
      // Versioned capture of p's interval (DESIGN.md §13): version first,
      // then succ. A relink stores succ before bumping the version, both
      // release, so when the version still matches under p's succ_lock the
      // captured succ is exactly p's current successor; any interleaved
      // relink is caught as a mismatch and merely costs a resume.
      const std::uint32_t ver = p->succ_version.load(std::memory_order_acquire);
      NodeT* s_cap = p->succ.load(std::memory_order_acquire);
      if (cmp(p, k) < 0) {
        if constexpr (kLogicalRemoving) {
          if (nn == nullptr && cmp(s_cap, k) > 0) {
            // The capture says the key is absent, so a node will be
            // needed. Allocate now, with no locks held — the revive path
            // below must stay allocation-free — instead of the pre-PR
            // lock-unlock-allocate-redescend round trip.
            try {
              inject::throw_if_alloc_fault(RemovalPolicy::kInsertAllocSite);
              nn = alloc_.template create<NodeT>(k, v);
            } catch (...) {
              // The throw abandons the descents already counted with no
              // insert op to pay for the last one; one restart count
              // keeps the descent audit balanced (DESIGN.md §12).
              mvcc_free_spare(vspare);
              tc.add(obs::Counter::kInsertRestarts);
              throw;
            }
          }
          if constexpr (mvcc::kEnabled) {
            if (vspare == nullptr && cmp(s_cap, k) == 0 &&
                s_cap->deleted.load(std::memory_order_acquire)) {
              // The capture says "zombie": the revive under the lock will
              // need a past-incarnation record. Same unwind accounting as
              // the lazy node allocation above on a throw.
              try {
                vspare = alloc_.template create<mvcc::PastVersion<V>>();
              } catch (...) {
                if (nn != nullptr) Alloc::template destroy<NodeT>(nn);
                tc.add(obs::Counter::kInsertRestarts);
                throw;
              }
            }
          }
        }
        check::perturb_point(check::PerturbPoint::kWriterCaptured);
        p->succ_lock.lock();
        NodeT* s;
        bool valid;
        if (p->succ_version.load(std::memory_order_relaxed) == ver &&
            !p->mark.load(std::memory_order_acquire) &&
            cmp(s_cap, k) >= 0) {
          // Fast validation: the version match makes s_cap current, and
          // keys are immutable, so the captured interval still brackets
          // k. The mark must be rechecked even on a match — unlinking a
          // node bumps its *predecessor's* version, never its own.
          s = s_cap;
          valid = true;
        } else {
          s = p->succ.load(std::memory_order_relaxed);
          valid = cmp(s, k) >= 0 && !p->mark.load(std::memory_order_acquire);
        }
        if (valid) {
          if (cmp(s, k) == 0) {
            // Physically present.
            if constexpr (kLogicalRemoving) {
              if (s->deleted.load(std::memory_order_acquire)) {
                if constexpr (mvcc::kEnabled) {
                  if (vspare == nullptr) {
                    // The capture missed the zombie (it was absent, or
                    // live, at capture time), so no record was
                    // pre-allocated. Never allocate under the interval
                    // lock: drop it and resume from p — the next capture
                    // sees the zombie and pre-allocates (same discipline
                    // as the nn==nullptr resume below).
                    p->succ_lock.unlock();
                    tc.add(obs::Counter::kLocateResumes);
                    node = p;
                    continue;
                  }
                  // Fold the outgoing incarnation into the spare record
                  // and flip vbirth to kRenewing *before* the live
                  // stores: snapshots resolve through the chain until
                  // the rebirth is stamped (DESIGN.md §16).
                  mvcc_begin_revive(s, vspare, tc);
                }
                // Revive in place: value first, then the presence flip.
                s->value.store(v, std::memory_order_relaxed);
                s->deleted.store(false, std::memory_order_release);
                p->succ_lock.unlock();
                // Stamp the rebirth now that the revive is published;
                // after the lock so the stamp's fence never rides a held
                // spinlock.
                mvcc_stamp_fresh(s);
                if (nn != nullptr) Alloc::template destroy<NodeT>(nn);
                tc.add(obs::Counter::kInsertOps);
                tc.add(obs::Counter::kInsertSuccess);
                tc.add(obs::Counter::kInsertRevives);
                return true;
              }
            }
            p->succ_lock.unlock();
            if (nn != nullptr) Alloc::template destroy<NodeT>(nn);
            mvcc_free_spare(vspare);
            tc.add(obs::Counter::kInsertOps);
            return false;  // unsuccessful insert
          }
          if constexpr (kLogicalRemoving) {
            if (nn == nullptr) {
              // The capture said present, but the interval moved on and
              // the key is absent after all. Never allocate while holding
              // the interval lock (the revive path must stay
              // allocation-free): drop it and resume from p — the next
              // capture allocates before relocking.
              p->succ_lock.unlock();
              tc.add(obs::Counter::kLocateResumes);
              node = p;
              continue;
            }
          }
          NodeT* parent = choose_parent(p, s, node);
          // nn's vbirth is still kUnstamped (its initializer): a snapshot
          // that sees the node before mvcc_stamp_fresh below help-stamps
          // it past its own cut.
          nn->succ.store(s, std::memory_order_relaxed);
          nn->pred.store(p, std::memory_order_relaxed);
          nn->parent.store(parent, std::memory_order_relaxed);
          // Linearization point of a successful insert (§5.2). The succ
          // link must be published *first*: succ pointers are the
          // authoritative chain, and pred pointers are only repair hints
          // that the ordering walk always re-validates by walking succ
          // afterwards. Storing s->pred before p->succ lets a pred-walking
          // reader observe nn before this linearization point while a
          // succ-walking reader still misses it — a real-time inversion
          // the perturbed stress harness caught as a non-linearizable
          // history (contains(k)=true then contains(k)=false with only
          // this insert in flight). The verified plankton model orders the
          // stores the same way as below. The version bump rides the same
          // lock, after the succ store, so capture readers ordered before
          // it see the mismatch.
          p->succ.store(nn, std::memory_order_release);
#if defined(LOT_INJECT_BUG) && LOT_INJECT_BUG == 2
          // Seeded bug (checker negative control): this relink "forgets"
          // its version bump, so a concurrent writer holding a capture of
          // p's old interval validates against the stale succ and splices
          // right past nn — a lost update / real-time inversion the
          // linearizability checker must reject
          // (tests/stress/stress_lo_stale_version.cpp).
#else
          bump_succ_version(p);
#endif
          check::perturb_point(check::PerturbPoint::kInsertHalfLinked);
          s->pred.store(nn, std::memory_order_release);
          p->succ_lock.unlock();
          // Stamp the initial version now that the node is published (the
          // fence inside orders the publication before the stamp's counter
          // load); after the lock so the stamp's fence never rides a held
          // spinlock.
          mvcc_stamp_fresh(nn);
          mvcc_free_spare(vspare);
          check::perturb_point(check::PerturbPoint::kInsertBeforeTreeLink);
          tc.add(obs::Counter::kInsertOps);
          tc.add(obs::Counter::kInsertSuccess);
          insert_to_tree(parent, nn);
          return true;
        }
        p->succ_lock.unlock();
      }
      // Failed attempt: either the interval moved under us or p no longer
      // sits below k at all (it was unlinked and the walk strayed).
      detail::contention_heat_add();
      if (resumes++ < budget) {
        // Resume in place: p's chain pointers stay valid (EBR keeps the
        // node alive, removed nodes keep outgoing pointers), so the
        // ordering walk re-anchors in a few hops — no descent.
        tc.add(obs::Counter::kLocateResumes);
        node = p;
      } else {
        // Resume budget exhausted: fall back to a full root re-descent.
        resumes = 0;
        tc.add(obs::Counter::kValidationFallbacks);
        tc.add(obs::Counter::kInsertRestarts);
        node = search(k, tc);
      }
    }
  }

  /// Remove-if-present (Algorithm 7). OnTimeRemoval physically unlinks the
  /// node before returning (two-children removals relocate the successor,
  /// §3.3); LogicalRemoving downgrades a two-children removal to flipping
  /// `deleted` and purges opportunistically. Allocates no node of its own;
  /// the only allocation is the retire-list bookkeeping inside
  /// EbrDomain::retire, which is OOM-safe (DESIGN.md §9).
  bool erase(const K& k) {
    // Admission gate before the guard; see insert().
    health::writer_gate(*domain_);
    detail::HeatScope heat_scope(heat_scope_domain_());  // see insert()
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallWriter);
    const auto tc = obs::tls();
    const std::uint32_t budget = write_resume_limit();
    std::uint32_t resumes = 0;
    NodeT* node = search(k, tc);
    for (;;) {
      node = ordering_walk(node, k, tc);  // first chain node with key >= k
      NodeT* p = node->pred.load(std::memory_order_acquire);
      // Versioned capture; see insert() for the ordering argument.
      const std::uint32_t ver = p->succ_version.load(std::memory_order_acquire);
      NodeT* s_cap = p->succ.load(std::memory_order_acquire);
      if (cmp(p, k) < 0) {
        check::perturb_point(check::PerturbPoint::kWriterCaptured);
        p->succ_lock.lock();
        NodeT* s;
        bool valid;
        if (p->succ_version.load(std::memory_order_relaxed) == ver &&
            !p->mark.load(std::memory_order_acquire) &&
            cmp(s_cap, k) >= 0) {
          // Fast validation; see insert() (mark recheck is mandatory).
          s = s_cap;
          valid = true;
        } else {
          s = p->succ.load(std::memory_order_relaxed);
          valid = cmp(s, k) >= 0 && !p->mark.load(std::memory_order_acquire);
        }
        if (valid) {
          bool absent = cmp(s, k) > 0;
          if constexpr (kLogicalRemoving) {
            absent = absent || s->deleted.load(std::memory_order_acquire);
          }
          if (absent) {
            p->succ_lock.unlock();
            tc.add(obs::Counter::kEraseOps);
            return false;  // unsuccessful remove
          }
          // Successful removal of s. Succ locks strictly precede tree
          // locks (paper §5.1): take s's interval lock, then tree locks.
          s->succ_lock.lock();
          NodeT* np = nullptr;
          NodeT* child = nullptr;
          const RemovalShape shape = acquire_removal_locks(s, np, child);
          if constexpr (kLogicalRemoving) {
            if (shape == RemovalShape::kTwoChildren) {
              // Logical removal only: s stays in both layouts as a zombie.
              // This store is the linearization point (§6). The death
              // stamp precedes it: a snapshot that already adopted a cut
              // below the stamp keeps reporting the key present off its
              // vbirth, and one that reads the pending kDying helps
              // finalize past its own cut (DESIGN.md §16).
              mvcc_mark_dead(s);
              s->deleted.store(true, std::memory_order_release);
              s->succ_lock.unlock();
              p->succ_lock.unlock();
              tc.add(obs::Counter::kEraseOps);
              tc.add(obs::Counter::kEraseSuccess);
              tc.add(obs::Counter::kEraseLogical);
              return true;
            }
          }
          // Death marker + limbo decision *before* the chain splice: a
          // snapshot scan collects limbo after its chain walk, so a node
          // it can still need must already be parked when it disappears
          // from the chain (DESIGN.md §16).
          bool limboed = false;
          if constexpr (mvcc::kEnabled) {
            limboed = mvcc_limbo_decision(s, mvcc_mark_dead(s));
          }
          unlink_from_chain(p, s);
          check::perturb_point(check::PerturbPoint::kEraseBeforeTreeUnlink);
          if (shape == RemovalShape::kOneChild) {
            unlink_node(s, np, child);
          } else {
            if constexpr (!kLogicalRemoving) {
              tc.add(obs::Counter::kEraseRelocations);
              relocate_successor(s);
            }
          }
          if (!limboed) {
            mvcc_retire_versions(s, tc);
            domain_->template retire_via<Alloc>(s);
          }
          tc.add(obs::Counter::kEraseOps);
          tc.add(obs::Counter::kEraseSuccess);
          if constexpr (kLogicalRemoving) {
            // Opportunistic purge (paper: deleted nodes become physically
            // removable when their child count drops): np may now qualify.
            try_purge(np);
          }
          return true;
        }
        p->succ_lock.unlock();
      }
      // Failed attempt: resume from the captured predecessor, or fall
      // back to a full re-descent once the budget runs out (see insert()).
      detail::contention_heat_add();
      if (resumes++ < budget) {
        tc.add(obs::Counter::kLocateResumes);
        node = p;
      } else {
        resumes = 0;
        tc.add(obs::Counter::kValidationFallbacks);
        tc.add(obs::Counter::kEraseRestarts);
        node = search(k, tc);
      }
    }
  }

  /// Quiescent cleanup (logical removing only): physically remove every
  /// deleted node that has at most one child, repeating until a fixpoint.
  /// Exposed for tests and the zombie ablation; concurrent-safe but
  /// intended for quiet periods.
  std::size_t purge_all()
    requires(RemovalPolicy::kLogicalRemoving)
  {
    std::size_t purged = 0;
    detail::HeatScope heat_scope(heat_scope_domain_());  // see insert()
    bool progress = true;
    while (progress) {
      progress = false;
      auto g = domain_->guard();
      NodeT* node = neg_->succ.load(std::memory_order_acquire);
      while (node != pos_) {
        NodeT* next = node->succ.load(std::memory_order_acquire);
        if (node->deleted.load(std::memory_order_acquire) &&
            try_purge(node)) {
          ++purged;
          progress = true;
        }
        node = next;
      }
    }
    return purged;
  }

  /// Quiescent repair for the contention-adaptive rotation throttle
  /// (lo/rebalance.hpp): rotations deferred while writers were hot leave
  /// |balance factor| >= 2 nodes behind, and an abandoned climb (a
  /// restart_balance mark-bail hands its pending height propagation to the
  /// remover, whose own climb may legitimately stop early) can leave a
  /// node whose *cached* heights say "balanced" while the true subtree
  /// heights do not. The deferral widens that window — a deferred
  /// imbalance, once rotated, shrinks its subtree by up to two levels in
  /// one step — so this repair does not trust the caches: each pass first
  /// re-derives every cached height bottom-up from the physical tree, then
  /// chain-scans for |bf| >= 2 anchors (now computed from exact heights)
  /// and re-runs the rebalance climb at each, until a fixpoint. Returns
  /// how many anchors were repaired. Concurrent-safe, but exact heights
  /// and strict AVL shape on return are only guaranteed with no writers
  /// racing the repair — call it before lo::validate(check_heights=true)
  /// after concurrent churn.
  std::size_t repair_balance()
    requires(Balanced)
  {
    std::size_t repaired = 0;
    bool progress = true;
    while (progress) {
      progress = false;
      // The repairing thread may itself still be hot from the churn that
      // caused the deferrals; a throttled repair would defer its own
      // repairs and never converge. Same for the governor's process-wide
      // shedding: the published state may still read Degraded right after
      // a storm, and repair is exactly how the tree gets *out* of that
      // state, so it bypasses the shed (RAII TLS override).
      detail::HeatScope heat_scope(heat_scope_domain_());  // see insert()
      detail::RotationShedOverride allow_rotations;
      detail::reset_contention_heat();
      auto g = domain_->guard();
      recompute_heights();
      NodeT* node = neg_->succ.load(std::memory_order_acquire);
      while (node != pos_) {
        NodeT* next = node->succ.load(std::memory_order_acquire);
        if (!node->mark.load(std::memory_order_acquire) &&
            std::abs(node->balance_factor()) >= 2) {
          detail::rebalance_at(root_, node);
          ++repaired;
          progress = true;
        }
        node = next;
      }
    }
    return repaired;
  }

  // ---------------------------------------------------- introspection API
  // Used by lo/validate.hpp and the white-box tests; not part of the map
  // interface proper.

  NodeT* debug_root() const { return root_; }
  NodeT* debug_neg_sentinel() const { return neg_; }
  NodeT* debug_pos_sentinel() const { return pos_; }
  reclaim::EbrDomain& domain() const { return *domain_; }
  Compare key_comp() const { return comp_; }

 private:
  /// The heat scope this map's writes install (lo/rebalance.hpp): null for
  /// maps on the global domain, so the single-map common case keeps using
  /// the default TLS slot — bit-identical to the pre-scoping behaviour and
  /// to what the scope-free test hooks manipulate.
  reclaim::EbrDomain* heat_scope_domain_() const {
    return domain_ == &reclaim::EbrDomain::global_domain() ? nullptr
                                                           : domain_;
  }

  /// Height of the subtree rooted at n, by its own cached values.
  static std::int32_t cached_height(const NodeT* n) {
    return std::max(n->left_height.load(std::memory_order_relaxed),
                    n->right_height.load(std::memory_order_relaxed)) +
           1;
  }

  /// repair_balance pass 1: re-derive every cached subtree height from the
  /// physical tree, bottom-up (iterative post-order, explicit stack). At
  /// quiescence the result is exact by construction; racing writers can
  /// re-stale individual links, which the repair contract already scopes
  /// out. Heights are performance metadata only — no search or removal
  /// path reads them for correctness — so the unlocked stores are safe.
  void recompute_heights()
    requires(Balanced)
  {
    NodeT* top = root_->left.load(std::memory_order_acquire);
    if (top == nullptr) return;
    struct Frame {
      NodeT* node;
      int stage;  // 0: descend left, 1: descend right, 2: derive heights
    };
    std::vector<Frame> stack;
    stack.push_back({top, 0});
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.stage == 0) {
        f.stage = 1;
        if (NodeT* l = f.node->left.load(std::memory_order_acquire)) {
          stack.push_back({l, 0});
        }
      } else if (f.stage == 1) {
        f.stage = 2;
        if (NodeT* r = f.node->right.load(std::memory_order_acquire)) {
          stack.push_back({r, 0});
        }
      } else {
        NodeT* const n = f.node;
        NodeT* const l = n->left.load(std::memory_order_acquire);
        NodeT* const r = n->right.load(std::memory_order_acquire);
        n->left_height.store(l == nullptr ? 0 : cached_height(l),
                             std::memory_order_relaxed);
        n->right_height.store(r == nullptr ? 0 : cached_height(r),
                              std::memory_order_relaxed);
        stack.pop_back();
      }
    }
  }

  /// The one presence predicate. OnTimeRemoval owns only `mark` (off the
  /// ordering chain == removed); LogicalRemoving additionally owns
  /// `deleted` (on the chain but logically absent).
  static bool is_present(const NodeT* n) {
    if (n->mark.load(std::memory_order_acquire)) return false;
    if constexpr (kLogicalRemoving) {
      if (n->deleted.load(std::memory_order_acquire)) return false;
    }
    return true;
  }

  /// The one value read. LogicalRemoving stores values in an atomic slot
  /// (revive races with lock-free reads); OnTimeRemoval values are plain
  /// and immutable after publication.
  static V read_value(const NodeT* n) {
    if constexpr (kLogicalRemoving) {
      return n->value.load(std::memory_order_acquire);
    } else {
      return n->value;
    }
  }

  // ------------------------------------------------- MVCC hooks (§16)
  // Every body below is `if constexpr (mvcc::kEnabled)`-gated, so with
  // LOT_DISABLE_MVCC the calls compile away and the write path is
  // bit-identical to the pre-MVCC tree. Stamp slots are mutated only by
  // the writer holding the node's interval lock, plus the bounded
  // help-finalize CAS (mvcc.hpp has the protocol).

  static_assert(mvcc::kUnstamped == 0 && mvcc::kAlive == 0,
                "node stamp fields initialize to 0 == kUnstamped/kAlive "
                "(lo/node.hpp cannot include lo/mvcc.hpp)");

  mvcc::EpochSource& epoch_src() const { return *epoch_src_; }

  /// Stamps the death of s's current incarnation and returns the stamp.
  /// Call under s's succ_lock with s live. Normalizes a still-pending
  /// rebirth first: holding the lock proves the previous revive's locked
  /// section (including its value store) completed, so helping the
  /// kRenewing -> kUnstamped transition is safe here — readers never may.
  std::uint64_t mvcc_mark_dead(NodeT* s) {
    if constexpr (mvcc::kEnabled) {
      std::uint64_t b = s->vbirth.load(std::memory_order_seq_cst);
      if (b == mvcc::kRenewing) {
        s->vbirth.compare_exchange_strong(b, mvcc::kUnstamped,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst);
      }
      mvcc::finalize(s->vbirth, mvcc::kUnstamped, epoch_src());
      s->vdeath.store(mvcc::kDying, std::memory_order_seq_cst);
      return mvcc::finalize(s->vdeath, mvcc::kDying, epoch_src());
    } else {
      (void)s;
      return 0;
    }
  }

  /// Help-finalizes an already-initiated death (a zombie's, stamped by
  /// the logical erase that zombified it) and returns the stamp. Never
  /// initiates: vdeath has left kAlive by the caller's precondition.
  std::uint64_t mvcc_finalize_death(NodeT* q) {
    if constexpr (mvcc::kEnabled) {
      return mvcc::finalize(q->vdeath, mvcc::kDying, epoch_src());
    } else {
      (void)q;
      return 0;
    }
  }

  /// The park-or-retire decision, made *before* the chain splice: if any
  /// registered snapshot could still need the node (min_active < death),
  /// park it in limbo and return true (the caller must not retire it).
  /// The remover drew `d` (seq_cst RMW) before this min load, and
  /// reserve() stores the min (seq_cst) before its caller adopts a cut,
  /// so a registrant this load misses adopted an epoch >= d — the node
  /// is absent in its snapshot anyway (mvcc.hpp, ordering argument).
  bool mvcc_limbo_decision(NodeT* s, std::uint64_t d) {
    if constexpr (mvcc::kEnabled) {
      if (snap_reg_.min_active() < d) {
        limbo_.push(s, d);
        return true;
      }
    } else {
      (void)s;
      (void)d;
    }
    return false;
  }

  /// Folds s's outgoing incarnation into `spare` (pushed on the vhead
  /// chain) and flips the node to the pending-rebirth state. Call under
  /// the interval lock, before the revive's value/deleted stores; the
  /// caller must call mvcc_stamp_fresh(s) after unlocking. Takes
  /// ownership of spare (nulls it).
  void mvcc_begin_revive(NodeT* s, mvcc::PastVersion<V>*& spare,
                         obs::Tls tc) {
    if constexpr (mvcc::kEnabled) {
      // Normalize + finalize the outgoing stamps (lock held: helping the
      // pending rebirth is safe, as in mvcc_mark_dead). The death is
      // already stamped — the logical erase finalized it under this same
      // interval lock — so finalize just reloads it.
      std::uint64_t b = s->vbirth.load(std::memory_order_seq_cst);
      if (b == mvcc::kRenewing) {
        s->vbirth.compare_exchange_strong(b, mvcc::kUnstamped,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst);
      }
      const std::uint64_t birth =
          mvcc::finalize(s->vbirth, mvcc::kUnstamped, epoch_src());
      const std::uint64_t death =
          mvcc::finalize(s->vdeath, mvcc::kDying, epoch_src());
      spare->birth = birth;
      spare->death = death;
      spare->value = s->value.load(std::memory_order_relaxed);
      spare->next.store(s->vhead.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
      s->vhead.store(spare, std::memory_order_seq_cst);
      spare = nullptr;
      // kRenewing *before* resetting vdeath: a resolver that already read
      // the old stamped vbirth must fail its seqlock re-check rather than
      // pair the old birth with the reset death slot.
      s->vbirth.store(mvcc::kRenewing, std::memory_order_seq_cst);
      s->vdeath.store(mvcc::kAlive, std::memory_order_seq_cst);
      mvcc_truncate(s, tc);
    } else {
      (void)s;
      (void)spare;
      (void)tc;
    }
  }

  /// Stamps a freshly published incarnation (new node or revive), after
  /// the publishing lock is dropped. The seq_cst fence orders the
  /// publication stores before the stamp's counter RMW: a snapshot that
  /// missed the publication read its epoch before this fence, so the
  /// stamp lands strictly after its cut (mvcc.hpp, ordering argument).
  /// CAS, not a plain store, out of kRenewing: a lock-holding helper may
  /// have normalized — and a reader then finalized — the slot already.
  void mvcc_stamp_fresh(NodeT* n) const {
    if constexpr (mvcc::kEnabled) {
      std::uint64_t b = n->vbirth.load(std::memory_order_seq_cst);
      if (b == mvcc::kRenewing) {
        n->vbirth.compare_exchange_strong(b, mvcc::kUnstamped,
                                          std::memory_order_seq_cst,
                                          std::memory_order_seq_cst);
      }
      std::atomic_thread_fence(std::memory_order_seq_cst);
      mvcc::finalize(n->vbirth, mvcc::kUnstamped, epoch_src());
    } else {
      (void)n;
    }
  }

  /// Cuts s's version chain below the oldest record any registered
  /// snapshot can reach. First-fit resolution stops at the first record
  /// with birth <= E, and every registered E is >= min_active, so the
  /// first record with death <= min_active is an absorbing boundary: no
  /// resolution walks past it. It stays; everything older retires.
  void mvcc_truncate(NodeT* s, obs::Tls tc) {
    if constexpr (mvcc::kEnabled && kLogicalRemoving) {
      const std::uint64_t m = snap_reg_.min_active();
      mvcc::PastVersion<V>* r = s->vhead.load(std::memory_order_relaxed);
      while (r != nullptr && r->death > m) {
        r = r->next.load(std::memory_order_relaxed);
      }
      if (r == nullptr) return;
      mvcc::PastVersion<V>* tail =
          r->next.exchange(nullptr, std::memory_order_seq_cst);
      std::uint64_t n = 0;
      while (tail != nullptr) {
        mvcc::PastVersion<V>* nx = tail->next.load(std::memory_order_relaxed);
        domain_->template retire_via<Alloc>(tail);
        ++n;
        tail = nx;
      }
      if (n != 0) tc.add(obs::Counter::kVersionsRetired, n);
    } else {
      (void)s;
      (void)tc;
    }
  }

  /// Retires s's whole version chain through EBR — the node is leaving
  /// the structure for good (physical removal with no snapshot needing
  /// it, or a limbo prune).
  void mvcc_retire_versions(NodeT* s, obs::Tls tc) const {
    if constexpr (mvcc::kEnabled && kLogicalRemoving) {
      mvcc::PastVersion<V>* r =
          s->vhead.exchange(nullptr, std::memory_order_relaxed);
      std::uint64_t n = 0;
      while (r != nullptr) {
        mvcc::PastVersion<V>* nx = r->next.load(std::memory_order_relaxed);
        domain_->template retire_via<Alloc>(r);
        ++n;
        r = nx;
      }
      if (n != 0) tc.add(obs::Counter::kVersionsRetired, n);
    } else {
      (void)s;
      (void)tc;
    }
  }

  /// Teardown-only variant: destroys the chain directly (no grace period
  /// — the destructor runs with no operations in flight).
  static void mvcc_destroy_versions(NodeT* n) {
    if constexpr (mvcc::kEnabled && kLogicalRemoving) {
      mvcc::PastVersion<V>* r =
          n->vhead.load(std::memory_order_relaxed);
      while (r != nullptr) {
        mvcc::PastVersion<V>* nx = r->next.load(std::memory_order_relaxed);
        Alloc::template destroy<mvcc::PastVersion<V>>(r);
        r = nx;
      }
    } else {
      (void)n;
    }
  }

  static void mvcc_free_spare(mvcc::PastVersion<V>* sp) {
    if constexpr (mvcc::kEnabled) {
      if (sp != nullptr) {
        Alloc::template destroy<mvcc::PastVersion<V>>(sp);
      }
    } else {
      (void)sp;
    }
  }

  /// Resolves a node against snapshot epoch `e`: the value its key had
  /// at the cut, or empty if absent. The vbirth re-read makes the loop a
  /// seqlock over (vbirth, vdeath, value): stamps are unique, so a match
  /// proves the incarnation did not turn over while we read.
  std::optional<V> mvcc_resolve(const NodeT* n, std::uint64_t e,
                                std::uint64_t* view_reads,
                                obs::Tls tc) const {
    if constexpr (mvcc::kEnabled) {
#if defined(LOT_INJECT_BUG) && LOT_INJECT_BUG == 3
      // Seeded bug (checker negative control): the snapshot's second node
      // resolution "forgets" its epoch bound and reads newest state — a
      // torn scan mixing two cuts, which cannot linearize at any single
      // point (tests/stress/stress_lo_torn_snapshot.cpp).
      if (view_reads != nullptr && ++*view_reads == 2) {
        e = mvcc::kNoSnapshot - 1;
      }
#else
      (void)view_reads;
#endif
      NodeT* node = const_cast<NodeT*>(n);
      for (;;) {
        const std::uint64_t b = node->vbirth.load(std::memory_order_seq_cst);
        if (b == mvcc::kRenewing) {
          // Rebirth mid-flight. Never help (the value slot is not ours
          // yet); the chain already holds the outgoing incarnation, and
          // the rebirth will stamp later than any adopted cut.
          return mvcc_resolve_chain(node, e, tc);
        }
        if (b == mvcc::kUnstamped) {
          // Published but unstamped: help draw. The drawn stamp is later
          // than our cut, so the next iteration routes to the chain.
          mvcc::finalize(node->vbirth, mvcc::kUnstamped, epoch_src());
          continue;
        }
        if (b > e) return mvcc_resolve_chain(node, e, tc);
        std::uint64_t d = node->vdeath.load(std::memory_order_seq_cst);
        if (d == mvcc::kDying) {
          d = mvcc::finalize(node->vdeath, mvcc::kDying, epoch_src());
        }
        const V val = read_value(node);
        if (node->vbirth.load(std::memory_order_seq_cst) != b) continue;
        if (d != mvcc::kAlive && d <= e) return std::nullopt;
        return val;
      }
    } else {
      (void)n;
      (void)e;
      (void)view_reads;
      (void)tc;
      return std::nullopt;
    }
  }

  /// Chain arm of the resolver: first record with birth <= e decides
  /// (absent iff its death <= e); no such record means the key did not
  /// exist at the cut. On-time nodes have no chain — always absent.
  std::optional<V> mvcc_resolve_chain(const NodeT* n, std::uint64_t e,
                                      obs::Tls tc) const {
    if constexpr (mvcc::kEnabled) {
      tc.add(obs::Counter::kVersionChainWalks);
      if constexpr (kLogicalRemoving) {
        const mvcc::PastVersion<V>* r =
            n->vhead.load(std::memory_order_seq_cst);
        while (r != nullptr && r->birth > e) {
          r = r->next.load(std::memory_order_seq_cst);
        }
        if (r == nullptr || r->death <= e) return std::nullopt;
        return r->value;
      } else {
        (void)n;
        return std::nullopt;
      }
    } else {
      (void)n;
      (void)e;
      (void)tc;
      return std::nullopt;
    }
  }

  /// Retires every limbo entry no registered snapshot can need. Runs on
  /// view release, so limbo only grows while snapshots are live.
  void mvcc_prune_limbo() const {
    if constexpr (mvcc::kEnabled) {
      limbo_.prune(snap_reg_.min_active(), [this](NodeT* n) {
        mvcc_retire_versions(n, obs::tls());
        domain_->template retire_via<Alloc>(n);
      });
    }
  }

  /// Publishes a relink of p->succ. Call under p's succ_lock, after the
  /// succ store: both stores are release, so a capture reader that loaded
  /// the bumped version (acquire) sees the new succ, and one that still
  /// validates against the old version under the lock is reading a succ
  /// this relink has not yet replaced.
  static void bump_succ_version(NodeT* p) {
    p->succ_version.store(p->succ_version.load(std::memory_order_relaxed) + 1,
                          std::memory_order_release);
  }

  // Three-way comparison of a node against a key, sentinel-aware:
  // negative if node < k, zero if equal, positive if node > k.
  int cmp(const NodeT* n, const K& k) const {
    if (n->tag != Tag::kNormal) return n->tag == Tag::kNegInf ? -1 : 1;
    if (comp_(n->key, k)) return -1;
    if (comp_(k, n->key)) return 1;
    return 0;
  }

  /// Algorithm 1: plain descent, no locks, no restarts. May stray from its
  /// path under concurrent rotations; the ordering walk compensates.
  NodeT* search(const K& k, obs::Tls tc = obs::tls()) const {
    // Counted inside the descent itself — independently of the per-op
    // counters at the call sites — so Snapshot::contains_restarts() is a
    // measured audit, not an identity (DESIGN.md §12). Callers that
    // already hold a Tls handle pass it in; the default resolves one.
    tc.add(obs::Counter::kTreeDescents);
    NodeT* node = root_;
    for (;;) {
      const int c = cmp(node, k);
      if (c == 0) return node;
      NodeT* child = c < 0 ? node->right.load(std::memory_order_acquire)
                           : node->left.load(std::memory_order_acquire);
      if (child == nullptr) return node;
      node = child;
    }
  }

  /// Algorithm 2's ordering walk from an arbitrary chain node: pred while
  /// above k, back off marked nodes, succ while below k. Returns the first
  /// node at or above k. Correct from *any* EBR-protected starting node —
  /// removed nodes keep outgoing pointers to strictly smaller (pred) /
  /// larger (succ) keys, so the walks terminate — which is what lets
  /// writers resume a failed validation from their captured predecessor
  /// instead of re-descending from the root (DESIGN.md §13).
  template <typename NodePtr>
  NodePtr ordering_walk(NodePtr node, const K& k, obs::Tls tc) const {
    while (cmp(node, k) > 0) {
      node = node->pred.load(std::memory_order_acquire);
    }
    // Back off marked nodes before walking forward. Without this a search
    // can land on a *stale duplicate*: a removed-but-not-yet-unlinked-from-
    // the-tree node with key == k, while a re-inserted k lives elsewhere on
    // the chain — the walk below would never move and the lookup would miss
    // a present key. (DESIGN.md pseudocode errata; the verified variant in
    // Wolff's plankton examples carries the same extra loop. Found by the
    // schedule-perturbed linearizability harness, tests/stress/.) Marked
    // nodes keep pred pointers to strictly smaller keys and -inf is never
    // marked, so this terminates. (`deleted` zombies stay on the chain and
    // are NOT backed off — presence is the caller's verdict.)
    std::uint64_t backoffs = 0;
    while (node->mark.load(std::memory_order_acquire)) {
      node = node->pred.load(std::memory_order_acquire);
      ++backoffs;
    }
    if (backoffs != 0) {
      tc.add(obs::Counter::kLocateMarkBackoffs, backoffs);
    }
    while (cmp(node, k) < 0) {
      node = node->succ.load(std::memory_order_acquire);
    }
    return node;
  }

  /// Algorithm 2: one descent, then the ordering walk.
  const NodeT* locate(const K& k, obs::Tls tc = obs::tls()) const {
    const NodeT* node = search(k, tc);
    check::perturb_point(check::PerturbPoint::kLocateAfterDescent);
#if defined(LOT_INJECT_BUG) && LOT_INJECT_BUG == 1
    // Intentionally broken linearization (checker negative control): trust
    // the physical descent alone. A key that momentarily lives only in the
    // ordering layout — mid-insert, or a successor detached during a
    // two-child removal — is reported absent even though it was inserted
    // long ago, which no linearization of the history can explain.
    return node;
#else
    return ordering_walk(node, k, tc);
#endif
  }

  /// Algorithm 4. Requires p's succ_lock held (so neither candidate can be
  /// removed from under us). Returns the chosen parent, tree-locked.
  NodeT* choose_parent(NodeT* p, NodeT* s, NodeT* first_cand) {
    NodeT* candidate = (first_cand == p || first_cand == s) ? first_cand : p;
    if (candidate == neg_) candidate = s;  // -inf never parents a node
    for (;;) {
      candidate->tree_lock.lock();
      if (candidate == p) {
        if (candidate->right.load(std::memory_order_relaxed) == nullptr) {
          return candidate;
        }
        candidate->tree_lock.unlock();
        candidate = s;
      } else {
        if (candidate->left.load(std::memory_order_relaxed) == nullptr) {
          return candidate;
        }
        candidate->tree_lock.unlock();
        candidate = (p == neg_) ? s : p;
      }
    }
  }

  /// Algorithm 5. Requires parent tree-locked; consumes that lock.
  void insert_to_tree(NodeT* parent, NodeT* nn) {
    const bool to_right = cmp(parent, nn->key) < 0;
    if (to_right) {
      parent->right.store(nn, std::memory_order_release);
      if constexpr (Balanced) {
        parent->right_height.store(1, std::memory_order_relaxed);
      }
    } else {
      parent->left.store(nn, std::memory_order_release);
      if constexpr (Balanced) {
        parent->left_height.store(1, std::memory_order_relaxed);
      }
    }
    if constexpr (Balanced) {
      if (parent == root_) {
        // The new node hangs directly off the +inf sentinel; there is
        // nothing above it to rebalance (the sentinel has no parent).
        parent->tree_lock.unlock();
        return;
      }
      NodeT* grandparent = detail::lock_parent(parent);
      detail::rebalance(
          root_, grandparent, parent,
          grandparent->left.load(std::memory_order_relaxed) == parent);
    } else {
      parent->tree_lock.unlock();
    }
  }

  enum class RemovalShape { kOneChild, kTwoChildren };

  /// Algorithm 8, the one definition of removal tree-lock acquisition for
  /// both policies. Requires n's succ_lock (and its predecessor's) held,
  /// so n cannot be removed and n->succ cannot change. Determines how many
  /// children n has, then:
  ///  * at most one child (either policy): additionally tree-locks n, its
  ///    parent and the child; np/child are out-parameters;
  ///  * two children, OnTimeRemoval: tree-locks everything the successor
  ///    relocation will touch — n, n's parent, n's successor, the
  ///    successor's parent and the successor's right child;
  ///  * two children, LogicalRemoving: releases every tree lock — the
  ///    caller only flips `deleted`.
  /// Locks taken downward are against the bottom-up order, so they are
  /// try_lock + full restart (paper §5.1), with a pause between retries:
  /// the holder of a failed try_lock target may be blocked on a lock we
  /// hold, and on a uniprocessor an immediate retry never lets it run
  /// (see restart_balance in lo/rebalance.hpp).
  RemovalShape acquire_removal_locks(NodeT* n, NodeT*& np, NodeT*& child) {
    // Jittered: two erasers whose downward try_locks collided retry on
    // decorrelated schedules (sync/backoff.hpp header comment).
    sync::JitterBackoff backoff;
    bool first = true;
    for (;;) {
      if (!first) {
        obs::count(obs::Counter::kRemovalLockRetries);
        detail::contention_heat_add();
      }
      first = false;
      backoff.pause();
      n->tree_lock.lock();
      np = detail::lock_parent(n);

      NodeT* r = n->right.load(std::memory_order_relaxed);
      NodeT* l = n->left.load(std::memory_order_relaxed);
      if (r == nullptr || l == nullptr) {
        child = r != nullptr ? r : l;
        if (child != nullptr && !child->tree_lock.try_lock()) {
          np->tree_lock.unlock();
          n->tree_lock.unlock();
          continue;
        }
        return RemovalShape::kOneChild;
      }

      if constexpr (kLogicalRemoving) {
        np->tree_lock.unlock();
        n->tree_lock.unlock();
        return RemovalShape::kTwoChildren;
      } else {
        // Two children: lock the successor machinery.
        NodeT* s = n->succ.load(std::memory_order_relaxed);
        NodeT* sp = s->parent.load(std::memory_order_acquire);
        bool sp_locked = false;
        if (sp != n) {
          if (!sp->tree_lock.try_lock()) {
            np->tree_lock.unlock();
            n->tree_lock.unlock();
            continue;
          }
          if (sp != s->parent.load(std::memory_order_acquire) ||
              sp->mark.load(std::memory_order_acquire)) {
            sp->tree_lock.unlock();
            np->tree_lock.unlock();
            n->tree_lock.unlock();
            continue;
          }
          sp_locked = true;
        }
        if (!s->tree_lock.try_lock()) {
          if (sp_locked) sp->tree_lock.unlock();
          np->tree_lock.unlock();
          n->tree_lock.unlock();
          continue;
        }
        NodeT* sr = s->right.load(std::memory_order_relaxed);
        if (sr != nullptr && !sr->tree_lock.try_lock()) {
          s->tree_lock.unlock();
          if (sp_locked) sp->tree_lock.unlock();
          np->tree_lock.unlock();
          n->tree_lock.unlock();
          continue;
        }
        return RemovalShape::kTwoChildren;
      }
    }
  }

  /// The one definition of the ordering-layer unlink: the remove's
  /// linearization point (the mark store) plus the chain splice. Requires
  /// p's and s's succ_locks held; consumes both.
  void unlink_from_chain(NodeT* p, NodeT* s) {
    // Linearization point of a successful remove (§5.2).
    s->mark.store(true, std::memory_order_release);
    check::perturb_point(check::PerturbPoint::kEraseAfterMark);
    NodeT* s_succ = s->succ.load(std::memory_order_relaxed);
    s_succ->pred.store(p, std::memory_order_release);
    check::perturb_point(check::PerturbPoint::kEraseHalfUnlinked);
    p->succ.store(s_succ, std::memory_order_release);
    // Note the bump lands on p, not on the marked s: captures anchored at
    // s itself are invalidated by the mark, which every validation — fast
    // path included — rechecks under the lock.
    bump_succ_version(p);
    s->succ_lock.unlock();
    p->succ_lock.unlock();
  }

  /// The one definition of the one-child physical unlink (Algorithm 9's
  /// easy case). Requires n, np, child tree-locked (acquire_removal_locks'
  /// kOneChild outcome); consumes all of them.
  void unlink_node(NodeT* n, NodeT* np, NodeT* child) {
    const bool was_left = np->left.load(std::memory_order_relaxed) == n;
    detail::update_child(np, n, child);
    n->tree_lock.unlock();
    if constexpr (Balanced) {
      detail::rebalance(root_, np, child, was_left);
    } else {
      if (child != nullptr) child->tree_lock.unlock();
      np->tree_lock.unlock();
    }
  }

  /// Algorithm 9's two-children case (OnTimeRemoval only): relocates n's
  /// successor into n's place — on-time deletion §3.3. Consumes every tree
  /// lock taken by acquire_removal_locks' kTwoChildren outcome.
  void relocate_successor(NodeT* n) {
    NodeT* np = n->parent.load(std::memory_order_relaxed);
    NodeT* s = n->succ.load(std::memory_order_relaxed);  // relocation target
    NodeT* child = s->right.load(std::memory_order_relaxed);
    NodeT* parent = s->parent.load(std::memory_order_relaxed);
    // Detach s, then read n's layout: when parent == n this order makes
    // n->right already point at child, which is exactly s's new right.
    detail::update_child(parent, s, child);
    // s is now reachable only through the logical ordering (§3.3) — the
    // window the paper's lock-free contains is designed to survive.
    check::perturb_point(check::PerturbPoint::kRelocateDetached);
    NodeT* nl = n->left.load(std::memory_order_relaxed);
    NodeT* nr = n->right.load(std::memory_order_relaxed);
    s->left.store(nl, std::memory_order_release);
    s->right.store(nr, std::memory_order_release);
    s->left_height.store(n->left_height.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    s->right_height.store(n->right_height.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    nl->parent.store(s, std::memory_order_release);
    if (nr != nullptr) nr->parent.store(s, std::memory_order_release);
    // While s was detached it stayed reachable through the logical
    // ordering — concurrent lock-free lookups cannot miss it (§3.3).
    detail::update_child(np, n, s);

    NodeT* rb_node;
    bool rb_was_left;
    if (parent == n) {
      rb_node = s;  // keeps its lock; rebalance starts at s itself
      rb_was_left = false;  // child replaced s's right subtree
    } else {
      s->tree_lock.unlock();
      rb_node = parent;
      rb_was_left = true;  // s was the leftmost (left) child of parent
    }
    np->tree_lock.unlock();
    n->tree_lock.unlock();
    if constexpr (Balanced) {
      detail::rebalance(root_, rb_node, child, rb_was_left);
      // Remover's obligation (§4.5): if a concurrent rebalance bailed out
      // on n's mark, the imbalance migrated to s — fix it here.
      detail::rebalance_at(root_, s);
    } else {
      if (child != nullptr) child->tree_lock.unlock();
      rb_node->tree_lock.unlock();
    }
  }

  /// Best-effort physical removal of a deleted node that may have dropped
  /// to at most one child (logical removing only). Uses try_lock on the
  /// interval locks (a purge is an optimization; giving up is always
  /// safe). Returns true on success.
  bool try_purge(NodeT* q)
    requires(RemovalPolicy::kLogicalRemoving)
  {
    if (q == nullptr || q->is_sentinel() ||
        !q->deleted.load(std::memory_order_acquire) ||
        q->mark.load(std::memory_order_acquire)) {
      return false;
    }
    obs::count(obs::Counter::kPurgeAttempts);
    NodeT* p = q->pred.load(std::memory_order_acquire);
    if (!p->succ_lock.try_lock()) return false;
    // Validate: p is still q's predecessor and both are live.
    if (p->succ.load(std::memory_order_relaxed) != q ||
        p->mark.load(std::memory_order_acquire) ||
        !q->deleted.load(std::memory_order_acquire)) {
      p->succ_lock.unlock();
      return false;
    }
    // Succ lock before tree locks; p < q so blocking respects key order.
    q->succ_lock.lock();
    NodeT* np = nullptr;
    NodeT* child = nullptr;
    if (acquire_removal_locks(q, np, child) == RemovalShape::kTwoChildren) {
      q->succ_lock.unlock();
      p->succ_lock.unlock();
      return false;  // still two children
    }
    // The zombie's death was stamped by the logical erase that zombified
    // it; no new stamp here — just help-finalize in case that erase's
    // finalize CAS has not landed yet, and reuse the stamp for the limbo
    // decision.
    bool limboed = false;
    if constexpr (mvcc::kEnabled) {
      limboed = mvcc_limbo_decision(q, mvcc_finalize_death(q));
    }
    unlink_from_chain(p, q);
    unlink_node(q, np, child);
    if (!limboed) {
      mvcc_retire_versions(q, obs::tls());
      domain_->template retire_via<Alloc>(q);
    }
    obs::count(obs::Counter::kPurgeSuccesses);
    return true;
  }

  reclaim::EbrDomain* domain_;
  Compare comp_;
  Alloc alloc_;  // allocation handle; empty for the singleton-pool policies
  NodeT* root_;  // == pos_ (the +inf sentinel)
  NodeT* neg_;
  NodeT* pos_;

  // MVCC state (lo/mvcc.hpp; empty stand-ins when compiled out, so the
  // declarations stay unconditional). The owned source is the default
  // clock; ShardedMap rebinds every shard to one shared source. Mutable:
  // snapshot() is a read and must work on const maps.
  mutable mvcc::EpochSource epoch_src_own_;
  mvcc::EpochSource* epoch_src_ = &epoch_src_own_;
  mutable mvcc::SnapshotRegistry snap_reg_;
  mutable mvcc::LimboList<NodeT> limbo_;
};

}  // namespace lot::lo
