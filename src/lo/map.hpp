// Concurrent internal BST / relaxed AVL map with explicit logical ordering
// (the paper's core contribution, Algorithms 1–10). Since PR 4 the whole
// two-layer protocol — search/locate, interval locking, linking, physical
// removal, the ordered read layer — lives in exactly one place, lo/core.hpp,
// parameterized by a removal policy. LoMap is the OnTimeRemoval
// instantiation (§3.3: every erase physically unlinks before returning,
// relocating the successor for two-children nodes); see lo/partial.hpp for
// the LogicalRemoving variation. `Balanced = true` gives the AVL variant of
// §4.1–4.5, `Balanced = false` the plain BST of §4.6 — the two differ only
// in height maintenance and rebalancing, exactly as in the paper.
//
// Algorithm properties, pseudocode errata, perturb/fault instrumentation
// and the failure model are documented on LoCore (lo/core.hpp) and in
// DESIGN.md §§8–11.
#pragma once

#include <functional>
#include <string_view>

#include "lo/core.hpp"
#include "lo/node.hpp"
#include "reclaim/pool.hpp"

namespace lot::lo {

// `Alloc` is the node allocation policy (reclaim/pool.hpp): the slab pool
// by default, plain counted new/delete under LOT_POOL_ALLOC=OFF or when a
// benchmark asks for the A/B explicitly. `NodeTmpl` exists for the layout
// ablation only — it lets bench/ablation_alloc.cpp instantiate the exact
// same algorithm over a deliberately packed (pre-PR) node layout.
template <typename K, typename V, typename Compare = std::less<K>,
          bool Balanced = true,
          typename Alloc = reclaim::DefaultNodeAlloc,
          template <typename, typename> class NodeTmpl = Node>
class LoMap : public LoCore<K, V, Compare, Balanced, Alloc, OnTimeRemoval,
                            NodeTmpl> {
  using Base =
      LoCore<K, V, Compare, Balanced, Alloc, OnTimeRemoval, NodeTmpl>;

 public:
  using Base::Base;

  static std::string_view name() {
    return Balanced ? "lo-avl" : "lo-bst";
  }
};

}  // namespace lot::lo
