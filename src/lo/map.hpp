// Concurrent internal BST / relaxed AVL map with explicit logical ordering
// (the paper's core contribution, Algorithms 1–10; balancing in
// lo/rebalance.hpp). `Balanced = true` gives the AVL variant of §4.1–4.5,
// `Balanced = false` the plain BST of §4.6 — the two differ only in height
// maintenance and rebalancing, exactly as in the paper.
//
// Properties reproduced from the paper:
//  * contains / get are lock-free and never restart: one tree descent that
//    tolerates concurrent rotations/relocations, then a pred/succ walk over
//    the logical ordering to reach a verdict (§3.2, Algorithms 1–2);
//  * on-time deletion: a removal — even of an internal node with two
//    children — physically unlinks the node before returning (§3.3);
//  * two-layer locking: per-node succ_lock over the ordering intervals,
//    per-node tree_lock over the physical layout, acquired in the global
//    order of §5.1 (succ locks first, ascending by key; tree locks
//    bottom-up; against-order acquisitions use try_lock + restart).
//
// Deviations from the paper's *pseudocode* (not its algorithm), documented
// in DESIGN.md §"pseudocode errata":
//  * Algorithms 3/7 line 3 read `node.key > k ? node.pred : node`; when
//    search returns the node with key k this selects a predecessor whose
//    interval can never contain k and the operation would restart forever.
//    The predecessor candidate must be chosen for `node.key >= k`.
//  * choose_parent may fall back to the predecessor, but the -inf sentinel
//    is never a physical parent (it is outside the tree layout, §4.1), so
//    the fallback skips to the successor in that case.
//  * Algorithm 2's ordering walk needs a third loop — back off marked
//    nodes via pred before walking succ — or a lookup that lands on a
//    removed-but-not-yet-tree-unlinked node with the sought key misses a
//    concurrently re-inserted key (stale-duplicate shadowing; see locate()
//    and DESIGN.md). The verified plankton model of this structure carries
//    the same loop.
//
// Instrumentation: the race windows this algorithm tolerates (node in the
// ordering layout but not the tree, marked but not yet unlinked, successor
// mid-relocation) carry named check::perturb_point() hooks. They compile to
// nothing unless the translation unit defines LOT_SCHEDULE_PERTURB; the
// stress harness under tests/stress/ builds with it to widen those windows.
// LOT_INJECT_BUG (negative control for the linearizability checker) breaks
// locate() into a tree-only lookup — exactly the naive design the logical
// ordering exists to fix — so perturbed runs yield non-linearizable
// histories the checker must reject. Fault injection (inject/inject.hpp,
// LOT_FAULT_INJECT) attacks the resource windows instead: seeded bad_alloc
// at the insert allocation site and seeded guard stalls in readers and
// writers.
//
// Failure model (DESIGN.md §9): insert offers the strong exception
// guarantee under allocation failure. The node is allocated *before* any
// lock is taken, so a bad_alloc propagates with no locks held, no node
// half-linked, and the map unchanged; erase allocates nothing on its own
// and can only fail inside EbrDomain::retire, which is itself OOM-safe.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>

#include "check/perturb.hpp"
#include "inject/inject.hpp"
#include "lo/detail.hpp"
#include "lo/node.hpp"
#include "lo/rebalance.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/pool.hpp"
#include "sync/backoff.hpp"

namespace lot::lo {

// `Alloc` is the node allocation policy (reclaim/pool.hpp): the slab pool
// by default, plain counted new/delete under LOT_POOL_ALLOC=OFF or when a
// benchmark asks for the A/B explicitly. `NodeTmpl` exists for the layout
// ablation only — it lets bench/ablation_alloc.cpp instantiate the exact
// same algorithm over a deliberately packed (pre-PR) node layout.
template <typename K, typename V, typename Compare = std::less<K>,
          bool Balanced = true,
          typename Alloc = reclaim::DefaultNodeAlloc,
          template <typename, typename> class NodeTmpl = Node>
class LoMap {
 public:
  using key_type = K;
  using mapped_type = V;
  using alloc_type = Alloc;
  using NodeT = NodeTmpl<K, V>;

  explicit LoMap(reclaim::EbrDomain& domain =
                     reclaim::EbrDomain::global_domain(),
                 Compare comp = Compare())
      : domain_(&domain), comp_(std::move(comp)) {
    // Sentinels use the same allocation policy as ordinary nodes and are
    // destroyed through it, so alloc_stats (and the pool's slot
    // accounting) balance to zero at teardown.
    neg_ = Alloc::template create<NodeT>(K{}, V{}, Tag::kNegInf);
    try {
      pos_ = Alloc::template create<NodeT>(K{}, V{}, Tag::kPosInf);
    } catch (...) {
      Alloc::template destroy<NodeT>(neg_);
      throw;
    }
    neg_->succ.store(pos_, std::memory_order_relaxed);
    pos_->pred.store(neg_, std::memory_order_relaxed);
    // The root is the +inf sentinel; -inf lives only in the ordering
    // layout (paper §4.1). The real tree hangs off root->left.
    root_ = pos_;
  }

  ~LoMap() {
    // At destruction no operations are in flight; every live node is on
    // the ordering chain (removed nodes were retired to the domain).
    NodeT* node = neg_;
    while (node != nullptr) {
      NodeT* next = node->succ.load(std::memory_order_relaxed);
      Alloc::template destroy<NodeT>(node);
      node = next;
    }
  }

  LoMap(const LoMap&) = delete;
  LoMap& operator=(const LoMap&) = delete;

  static std::string_view name() {
    return Balanced ? "lo-avl" : "lo-bst";
  }

  // ---------------------------------------------------------------- reads

  /// Lock-free membership test (Algorithm 2).
  bool contains(const K& k) const {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallReader);
    const NodeT* node = locate(k);
    return cmp(node, k) == 0 && !node->mark.load(std::memory_order_acquire);
  }

  /// Lock-free lookup; empty if the key is absent.
  std::optional<V> get(const K& k) const {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallReader);
    const NodeT* node = locate(k);
    if (cmp(node, k) == 0 && !node->mark.load(std::memory_order_acquire)) {
      return node->value;
    }
    return std::nullopt;
  }

  /// Smallest key (paper §4.7): one read of -inf's successor, retried only
  /// if that node lost a race with a concurrent remove.
  std::optional<std::pair<K, V>> min() const {
    auto g = domain_->guard();
    for (;;) {
      NodeT* m = neg_->succ.load(std::memory_order_acquire);
      if (m == pos_) return std::nullopt;
      if (!m->mark.load(std::memory_order_acquire)) {
        return std::make_pair(m->key, m->value);
      }
    }
  }

  std::optional<std::pair<K, V>> max() const {
    auto g = domain_->guard();
    for (;;) {
      NodeT* m = pos_->pred.load(std::memory_order_acquire);
      if (m == neg_) return std::nullopt;
      if (!m->mark.load(std::memory_order_acquire)) {
        return std::make_pair(m->key, m->value);
      }
    }
  }

  /// Ascending, weakly consistent iteration over the logical ordering
  /// (paper §4.7): sees every key present for the whole iteration, may or
  /// may not see concurrent updates.
  template <typename F>
  void for_each(F&& fn) const {
    auto g = domain_->guard();
    NodeT* node = neg_->succ.load(std::memory_order_acquire);
    while (node != pos_) {
      if (!node->mark.load(std::memory_order_acquire)) {
        fn(node->key, node->value);
      }
      node = node->succ.load(std::memory_order_acquire);
    }
  }

  /// Lock-free ordered range scan over [lo, hi): descends once to the
  /// range's start, then walks the succ chain — O(log n + |range|) instead
  /// of a full iteration. Weakly consistent like for_each.
  template <typename F>
  void range(const K& lo, const K& hi, F&& fn) const {
    if (!comp_(lo, hi)) return;
    auto g = domain_->guard();
    const NodeT* node = locate(lo);  // first node with key >= lo
    while (node != pos_ &&
           (node->tag == Tag::kNegInf || comp_(node->key, hi))) {
      if (node->tag == Tag::kNormal &&
          !node->mark.load(std::memory_order_acquire) &&
          !comp_(node->key, lo)) {
        fn(node->key, node->value);
      }
      node = node->succ.load(std::memory_order_acquire);
    }
  }

  /// Smallest key strictly greater than k (lock-free, one descent plus a
  /// succ hop — the logical ordering makes successor queries O(1) from a
  /// located node, paper §3.1).
  std::optional<std::pair<K, V>> next(const K& k) const {
    auto g = domain_->guard();
    for (;;) {
      const NodeT* node = locate(k);  // first node with key >= k
      if (cmp(node, k) == 0) {
        node = node->succ.load(std::memory_order_acquire);
      }
      // Skip nodes removed while we look at them.
      while (node != pos_ && node->mark.load(std::memory_order_acquire)) {
        node = node->succ.load(std::memory_order_acquire);
      }
      if (node == pos_) return std::nullopt;
      if (node->tag == Tag::kNormal && comp_(k, node->key)) {
        return std::make_pair(node->key, node->value);
      }
      // A concurrent insert slid in below us; re-locate.
    }
  }

  /// Ordered cursor over the logical ordering (paper §4.7's first()/
  /// next(node) iteration): each advance is one succ hop, O(1), instead of
  /// a fresh descent. The cursor pins a reclamation epoch for its entire
  /// lifetime — keep cursors short-lived on update-heavy maps, or retired
  /// nodes pile up behind the pinned epoch.
  class Cursor {
   public:
    /// Yields the next present key in ascending order, or empty at the
    /// end. Weakly consistent, like for_each.
    std::optional<std::pair<K, V>> next() {
      if (node_ == map_->pos_) return std::nullopt;  // stay exhausted
      const NodeT* n = node_->succ.load(std::memory_order_acquire);
      while (n != map_->pos_ && n->mark.load(std::memory_order_acquire)) {
        n = n->succ.load(std::memory_order_acquire);
      }
      node_ = n;
      if (n == map_->pos_) return std::nullopt;
      return std::make_pair(n->key, n->value);
    }

   private:
    explicit Cursor(const LoMap& m)
        : guard_(m.domain_->guard()), map_(&m), node_(m.neg_) {}
    reclaim::EbrDomain::Guard guard_;
    const LoMap* map_;
    const NodeT* node_;
    friend class LoMap;
  };

  /// A cursor positioned before the smallest key.
  Cursor cursor() const { return Cursor(*this); }

  /// Largest key strictly smaller than k (mirror of next()).
  std::optional<std::pair<K, V>> prev(const K& k) const {
    auto g = domain_->guard();
    for (;;) {
      const NodeT* node = locate(k);
      while (node != neg_ && (cmp(node, k) >= 0 ||
                              node->mark.load(std::memory_order_acquire))) {
        node = node->pred.load(std::memory_order_acquire);
      }
      if (node == neg_) return std::nullopt;
      if (node->tag == Tag::kNormal && comp_(node->key, k)) {
        return std::make_pair(node->key, node->value);
      }
    }
  }

  /// O(n) size via the ordering chain; exact at quiescence.
  std::size_t size_slow() const {
    std::size_t n = 0;
    for_each([&n](const K&, const V&) { ++n; });
    return n;
  }

  bool empty() const {
    auto g = domain_->guard();
    return neg_->succ.load(std::memory_order_acquire) == pos_;
  }

  // -------------------------------------------------------------- updates

  /// Insert-if-absent (Algorithm 3). Returns false if the key is present.
  ///
  /// Allocation failure (std::bad_alloc) offers the strong guarantee: the
  /// node is allocated here, before any lock acquisition or retry, so a
  /// throw leaves the map untouched with no locks held. The node is freed
  /// again if the key turns out to be present.
  bool insert(const K& k, const V& v) {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallWriter);
    inject::throw_if_alloc_fault(inject::Site::kLoInsertAlloc);
    NodeT* nn = Alloc::template create<NodeT>(k, v);
    for (;;) {
      NodeT* node = search(k);
      NodeT* p = cmp(node, k) >= 0
                     ? node->pred.load(std::memory_order_acquire)
                     : node;
      p->succ_lock.lock();
      NodeT* s = p->succ.load(std::memory_order_relaxed);
      if (cmp(p, k) < 0 && cmp(s, k) >= 0 &&
          !p->mark.load(std::memory_order_acquire)) {
        if (cmp(s, k) == 0) {
          p->succ_lock.unlock();
          Alloc::template destroy<NodeT>(nn);  // never published
          return false;  // unsuccessful insert
        }
        NodeT* parent = choose_parent(p, s, node);
        nn->succ.store(s, std::memory_order_relaxed);
        nn->pred.store(p, std::memory_order_relaxed);
        nn->parent.store(parent, std::memory_order_relaxed);
        // Linearization point of a successful insert (§5.2). The succ link
        // must be published *first*: succ pointers are the authoritative
        // chain, and pred pointers are only repair hints that the ordering
        // walk always re-validates by walking succ afterwards. Storing
        // s->pred before p->succ lets a pred-walking reader observe nn
        // before this linearization point while a succ-walking reader still
        // misses it — a real-time inversion the perturbed stress harness
        // caught as a non-linearizable history (contains(k)=true then
        // contains(k)=false with only this insert in flight). The verified
        // plankton model orders the stores the same way as below.
        p->succ.store(nn, std::memory_order_release);
        check::perturb_point(check::PerturbPoint::kInsertHalfLinked);
        s->pred.store(nn, std::memory_order_release);
        p->succ_lock.unlock();
        check::perturb_point(check::PerturbPoint::kInsertBeforeTreeLink);
        insert_to_tree(parent, nn);
        return true;
      }
      p->succ_lock.unlock();  // validation failed; restart
    }
  }

  /// Remove-if-present (Algorithm 7) with on-time physical deletion.
  /// Allocates no node of its own; the only allocation is the retire-list
  /// bookkeeping inside EbrDomain::retire, which is OOM-safe (DESIGN.md §9).
  bool erase(const K& k) {
    auto g = domain_->guard();
    inject::stall_point(inject::Site::kGuardStallWriter);
    for (;;) {
      NodeT* node = search(k);
      NodeT* p = cmp(node, k) >= 0
                     ? node->pred.load(std::memory_order_acquire)
                     : node;
      p->succ_lock.lock();
      NodeT* s = p->succ.load(std::memory_order_relaxed);
      if (cmp(p, k) < 0 && cmp(s, k) >= 0 &&
          !p->mark.load(std::memory_order_acquire)) {
        if (cmp(s, k) > 0) {
          p->succ_lock.unlock();
          return false;  // unsuccessful remove
        }
        // Successful removal of s.
        s->succ_lock.lock();
        const bool two_children = acquire_tree_locks(s);
        // Linearization point of a successful remove (§5.2).
        s->mark.store(true, std::memory_order_release);
        check::perturb_point(check::PerturbPoint::kEraseAfterMark);
        NodeT* s_succ = s->succ.load(std::memory_order_relaxed);
        s_succ->pred.store(p, std::memory_order_release);
        check::perturb_point(check::PerturbPoint::kEraseHalfUnlinked);
        p->succ.store(s_succ, std::memory_order_release);
        s->succ_lock.unlock();
        p->succ_lock.unlock();
        check::perturb_point(check::PerturbPoint::kEraseBeforeTreeUnlink);
        remove_from_tree(s, two_children);
        domain_->template retire_via<Alloc>(s);
        return true;
      }
      p->succ_lock.unlock();  // validation failed; restart
    }
  }

  // ---------------------------------------------------- introspection API
  // Used by lo/validate.hpp and the white-box tests; not part of the map
  // interface proper.

  NodeT* debug_root() const { return root_; }
  NodeT* debug_neg_sentinel() const { return neg_; }
  NodeT* debug_pos_sentinel() const { return pos_; }
  reclaim::EbrDomain& domain() const { return *domain_; }
  Compare key_comp() const { return comp_; }

 private:
  // Three-way comparison of a node against a key, sentinel-aware:
  // negative if node < k, zero if equal, positive if node > k.
  int cmp(const NodeT* n, const K& k) const {
    if (n->tag != Tag::kNormal) return n->tag == Tag::kNegInf ? -1 : 1;
    if (comp_(n->key, k)) return -1;
    if (comp_(k, n->key)) return 1;
    return 0;
  }

  /// Algorithm 1: plain descent, no locks, no restarts. May stray from its
  /// path under concurrent rotations; the ordering walk compensates.
  NodeT* search(const K& k) const {
    NodeT* node = root_;
    for (;;) {
      const int c = cmp(node, k);
      if (c == 0) return node;
      NodeT* child = c < 0 ? node->right.load(std::memory_order_acquire)
                           : node->left.load(std::memory_order_acquire);
      if (child == nullptr) return node;
      node = child;
    }
  }

  /// Algorithm 2's ordering walk: from wherever search ended, walk pred
  /// until at or below k, then succ until at or above k. Terminates
  /// because keys strictly decrease/increase along the walks (removed
  /// nodes keep their outgoing pointers; EBR keeps them alive).
  const NodeT* locate(const K& k) const {
    const NodeT* node = search(k);
    check::perturb_point(check::PerturbPoint::kLocateAfterDescent);
#if defined(LOT_INJECT_BUG)
    // Intentionally broken linearization (checker negative control): trust
    // the physical descent alone. A key that momentarily lives only in the
    // ordering layout — mid-insert, or a successor detached during a
    // two-child removal — is reported absent even though it was inserted
    // long ago, which no linearization of the history can explain.
    return node;
#else
    while (cmp(node, k) > 0) {
      node = node->pred.load(std::memory_order_acquire);
    }
    // Back off marked nodes before walking forward. Without this a search
    // can land on a *stale duplicate*: a removed-but-not-yet-unlinked-from-
    // the-tree node with key == k, while a re-inserted k lives elsewhere on
    // the chain — the walk below would never move and the lookup would miss
    // a present key. (DESIGN.md pseudocode errata; the verified variant in
    // Wolff's plankton examples carries the same extra loop. Found by the
    // schedule-perturbed linearizability harness, tests/stress/.) Marked
    // nodes keep pred pointers to strictly smaller keys and -inf is never
    // marked, so this terminates.
    while (node->mark.load(std::memory_order_acquire)) {
      node = node->pred.load(std::memory_order_acquire);
    }
    while (cmp(node, k) < 0) {
      node = node->succ.load(std::memory_order_acquire);
    }
    return node;
#endif
  }

  /// Algorithm 4. Requires p's succ_lock held (so neither candidate can be
  /// removed from under us). Returns the chosen parent, tree-locked.
  NodeT* choose_parent(NodeT* p, NodeT* s, NodeT* first_cand) {
    NodeT* candidate = (first_cand == p || first_cand == s) ? first_cand : p;
    if (candidate == neg_) candidate = s;  // -inf never parents a node
    for (;;) {
      candidate->tree_lock.lock();
      if (candidate == p) {
        if (candidate->right.load(std::memory_order_relaxed) == nullptr) {
          return candidate;
        }
        candidate->tree_lock.unlock();
        candidate = s;
      } else {
        if (candidate->left.load(std::memory_order_relaxed) == nullptr) {
          return candidate;
        }
        candidate->tree_lock.unlock();
        candidate = (p == neg_) ? s : p;
      }
    }
  }

  /// Algorithm 5. Requires parent tree-locked; consumes that lock.
  void insert_to_tree(NodeT* parent, NodeT* nn) {
    const bool to_right = cmp(parent, nn->key) < 0;
    if (to_right) {
      parent->right.store(nn, std::memory_order_release);
      if constexpr (Balanced) {
        parent->right_height.store(1, std::memory_order_relaxed);
      }
    } else {
      parent->left.store(nn, std::memory_order_release);
      if constexpr (Balanced) {
        parent->left_height.store(1, std::memory_order_relaxed);
      }
    }
    if constexpr (Balanced) {
      if (parent == root_) {
        // The new node hangs directly off the +inf sentinel; there is
        // nothing above it to rebalance (the sentinel has no parent).
        parent->tree_lock.unlock();
        return;
      }
      NodeT* grandparent = detail::lock_parent(parent);
      detail::rebalance(
          root_, grandparent, parent,
          grandparent->left.load(std::memory_order_relaxed) == parent);
    } else {
      parent->tree_lock.unlock();
    }
  }

  /// Algorithm 8. Requires n's succ_lock (and its predecessor's) held, so
  /// n cannot be removed and n->succ cannot change. Determines how many
  /// children n has and tree-locks everything its removal will touch:
  /// n, n's parent, and either n's only child, or (two-children case) n's
  /// successor, the successor's parent and the successor's child. Locks
  /// taken downward are against the bottom-up order, so they are try_lock
  /// + full restart (paper §5.1). Returns true iff n has two children.
  bool acquire_tree_locks(NodeT* n) {
    // Pause between retries: the holder of a failed try_lock target may be
    // blocked on a lock we hold, and on a uniprocessor an immediate retry
    // never lets it run (see restart_balance in lo/rebalance.hpp).
    sync::Backoff backoff;
    for (;;) {
      backoff.pause();
      n->tree_lock.lock();
      NodeT* np = detail::lock_parent(n);

      NodeT* r = n->right.load(std::memory_order_relaxed);
      NodeT* l = n->left.load(std::memory_order_relaxed);
      if (r == nullptr || l == nullptr) {
        NodeT* child = r != nullptr ? r : l;
        if (child != nullptr && !child->tree_lock.try_lock()) {
          np->tree_lock.unlock();
          n->tree_lock.unlock();
          continue;
        }
        return false;
      }

      // Two children: lock successor machinery.
      NodeT* s = n->succ.load(std::memory_order_relaxed);
      NodeT* sp = s->parent.load(std::memory_order_acquire);
      bool sp_locked = false;
      if (sp != n) {
        if (!sp->tree_lock.try_lock()) {
          np->tree_lock.unlock();
          n->tree_lock.unlock();
          continue;
        }
        if (sp != s->parent.load(std::memory_order_acquire) ||
            sp->mark.load(std::memory_order_acquire)) {
          sp->tree_lock.unlock();
          np->tree_lock.unlock();
          n->tree_lock.unlock();
          continue;
        }
        sp_locked = true;
      }
      if (!s->tree_lock.try_lock()) {
        if (sp_locked) sp->tree_lock.unlock();
        np->tree_lock.unlock();
        n->tree_lock.unlock();
        continue;
      }
      NodeT* sr = s->right.load(std::memory_order_relaxed);
      if (sr != nullptr && !sr->tree_lock.try_lock()) {
        s->tree_lock.unlock();
        if (sp_locked) sp->tree_lock.unlock();
        np->tree_lock.unlock();
        n->tree_lock.unlock();
        continue;
      }
      return true;
    }
  }

  /// Algorithm 9. Physically unlinks n (one-child case) or relocates n's
  /// successor into n's place (two-children case, on-time deletion §3.3).
  /// Consumes every tree lock taken by acquire_tree_locks.
  void remove_from_tree(NodeT* n, bool two_children) {
    NodeT* np = n->parent.load(std::memory_order_relaxed);
    if (!two_children) {
      NodeT* r = n->right.load(std::memory_order_relaxed);
      NodeT* child = r != nullptr ? r : n->left.load(std::memory_order_relaxed);
      const bool was_left = np->left.load(std::memory_order_relaxed) == n;
      detail::update_child(np, n, child);
      n->tree_lock.unlock();
      if constexpr (Balanced) {
        detail::rebalance(root_, np, child, was_left);
      } else {
        if (child != nullptr) child->tree_lock.unlock();
        np->tree_lock.unlock();
      }
      return;
    }

    NodeT* s = n->succ.load(std::memory_order_relaxed);  // relocation target
    NodeT* child = s->right.load(std::memory_order_relaxed);
    NodeT* parent = s->parent.load(std::memory_order_relaxed);
    // Detach s, then read n's layout: when parent == n this order makes
    // n->right already point at child, which is exactly s's new right.
    detail::update_child(parent, s, child);
    // s is now reachable only through the logical ordering (§3.3) — the
    // window the paper's lock-free contains is designed to survive.
    check::perturb_point(check::PerturbPoint::kRelocateDetached);
    NodeT* nl = n->left.load(std::memory_order_relaxed);
    NodeT* nr = n->right.load(std::memory_order_relaxed);
    s->left.store(nl, std::memory_order_release);
    s->right.store(nr, std::memory_order_release);
    s->left_height.store(n->left_height.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    s->right_height.store(n->right_height.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    nl->parent.store(s, std::memory_order_release);
    if (nr != nullptr) nr->parent.store(s, std::memory_order_release);
    // While s was detached it stayed reachable through the logical
    // ordering — concurrent lock-free lookups cannot miss it (§3.3).
    detail::update_child(np, n, s);

    NodeT* rb_node;
    bool rb_was_left;
    if (parent == n) {
      rb_node = s;  // keeps its lock; rebalance starts at s itself
      rb_was_left = false;  // child replaced s's right subtree
    } else {
      s->tree_lock.unlock();
      rb_node = parent;
      rb_was_left = true;  // s was the leftmost (left) child of parent
    }
    np->tree_lock.unlock();
    n->tree_lock.unlock();
    if constexpr (Balanced) {
      detail::rebalance(root_, rb_node, child, rb_was_left);
      // Remover's obligation (§4.5): if a concurrent rebalance bailed out
      // on n's mark, the imbalance migrated to s — fix it here.
      detail::rebalance_at(root_, s);
    } else {
      if (child != nullptr) child->tree_lock.unlock();
      rb_node->tree_lock.unlock();
    }
  }

  reclaim::EbrDomain* domain_;
  Compare comp_;
  NodeT* root_;  // == pos_ (the +inf sentinel)
  NodeT* neg_;
  NodeT* pos_;
};

}  // namespace lot::lo
