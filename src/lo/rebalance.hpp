// Relaxed AVL rebalancing (paper §4.5, Algorithms 12 and 14), following
// Bougé et al.: per-node cached subtree heights drive rotation decisions;
// the heights may be stale under concurrency, but repairing on the basis of
// the cached values still converges to a strict AVL tree at quiescence.
//
// Lock discipline: the walk climbs bottom-up taking tree locks upward
// (blocking, in-order). Rotations need a *downward* lock (the child /
// grandchild), which is against the order and therefore acquired with
// try_lock; on failure everything except the current node is dropped and
// the walk restarts from that node (restart_balance).
//
// Two deviations from the paper's pseudocode, both transcription slips in
// the paper (the published Java code behaves as implemented here):
//  * Algorithm 13 returns `oldH == newH` but Algorithm 12 line 5 treats the
//    result as "height changed"; we return "changed".
//  * When the removed node's child is null, `node.left == child` cannot
//    identify which side shrank (both sides may be null); the caller passes
//    the side explicitly for the first iteration.
#pragma once

#include <cstdlib>
#include <utility>

#include "check/perturb.hpp"
#include "lo/detail.hpp"
#include "lo/node.hpp"
#include "obs/counters.hpp"
#include "sync/backoff.hpp"

namespace lot::lo::detail {

/// Algorithm 14. On entry: node tree-locked, parent tree-locked or null,
/// child lock NOT held. Releases parent, then cycles node's lock until it
/// can pick (and lock) the child on the taller side. Returns false — with
/// every lock released — if node got removed meanwhile, in which case the
/// remover is responsible for any outstanding imbalance (paper §4.5
/// edge case). On true: node locked, child locked or null.
template <typename N>
bool restart_balance(N* node, N*& parent, N*& child) {
  obs::count(obs::Counter::kBalanceRestarts);
  if (parent != nullptr) {
    parent->tree_lock.unlock();
    parent = nullptr;
  }
  sync::Backoff backoff;
  for (;;) {
    node->tree_lock.unlock();
    // The pause between unlock and relock is load-bearing on a uniprocessor:
    // whoever holds the child lock we keep failing to take may itself be
    // blocked on *node* (a climber in lock_parent), and with a back-to-back
    // unlock/lock it can only slip in if the scheduler preempts us inside
    // that instruction-wide window — a livelock in practice (found by the
    // schedule-perturbed stress, tests/stress/, on the one-core CI box).
    backoff.pause();
    node->tree_lock.lock();
    if (node->mark.load(std::memory_order_acquire)) {
      node->tree_lock.unlock();
      return false;
    }
    const auto bf = node->balance_factor();
    child = bf >= 2 ? node->left.load(std::memory_order_relaxed)
                    : node->right.load(std::memory_order_relaxed);
    if (child == nullptr) return true;
    if (child->tree_lock.try_lock()) return true;
  }
}

/// Algorithm 12. On entry: node and child (possibly null) tree-locked;
/// `first_is_left` says on which side of node `child` hangs (needed when
/// child is null and both of node's child pointers are null). Consumes all
/// locks before returning. `root` is the +inf sentinel and is never
/// rotated or height-maintained.
template <typename N>
void rebalance(N* root, N* node, N* child, bool first_is_left) {
  N* parent = nullptr;
  bool first = true;
  while (node != root) {
    obs::count(obs::Counter::kHeightPasses);
    bool is_left = (child != nullptr || !first)
                       ? (node->left.load(std::memory_order_relaxed) == child)
                       : first_is_left;
    first = false;
    const bool changed = update_height(child, node, is_left);
    auto bf = node->balance_factor();
    if (!changed && std::abs(bf) < 2) break;

    while (std::abs(bf) >= 2) {
      // Make sure `child` is the child on the taller side; switching sides
      // needs a downward (against-order) lock.
      if ((is_left && bf <= -2) || (!is_left && bf >= 2)) {
        if (child != nullptr) child->tree_lock.unlock();
        child = is_left ? node->right.load(std::memory_order_relaxed)
                        : node->left.load(std::memory_order_relaxed);
        is_left = !is_left;
        if (!child->tree_lock.try_lock()) {
          child = nullptr;
          if (!restart_balance(node, parent, child)) return;
          bf = node->balance_factor();
          is_left = (node->left.load(std::memory_order_relaxed) == child);
          continue;
        }
      }

      // Double rotation: first rotate the child with its (taller-side
      // inner) grandchild.
      const auto ch_bf = child->balance_factor();
      if ((is_left && ch_bf < 0) || (!is_left && ch_bf > 0)) {
        N* grand = is_left ? child->right.load(std::memory_order_relaxed)
                           : child->left.load(std::memory_order_relaxed);
        if (!grand->tree_lock.try_lock()) {
          child->tree_lock.unlock();
          child = nullptr;
          if (!restart_balance(node, parent, child)) return;
          bf = node->balance_factor();
          is_left = (node->left.load(std::memory_order_relaxed) == child);
          continue;
        }
        check::perturb_point(check::PerturbPoint::kRotate);
        obs::count(obs::Counter::kRotations);
        rotate(grand, child, node, is_left);
        child->tree_lock.unlock();
        child = grand;
      }

      // Main rotation: node goes below its (taller) child.
      if (parent == nullptr) parent = lock_parent(node);
      check::perturb_point(check::PerturbPoint::kRotate);
      obs::count(obs::Counter::kRotations);
      rotate(child, node, parent, !is_left);

      bf = node->balance_factor();
      if (std::abs(bf) >= 2) {
        // Still imbalanced (stale heights): keep working on node, which
        // now hangs under its old child.
        parent->tree_lock.unlock();
        parent = child;  // locked; is node's parent after the rotation
        child = nullptr;
        is_left = bf >= 2 ? false : true;  // routes back through the
                                           // switch-sides branch above
        continue;
      }
      // Node is balanced; continue with its old child (now its parent).
      std::swap(node, child);
      is_left = (node->left.load(std::memory_order_relaxed) == child);
      bf = node->balance_factor();
    }

    // Climb one level.
    if (child != nullptr) child->tree_lock.unlock();
    child = node;
    node = parent != nullptr ? parent : lock_parent(node);
    parent = nullptr;
  }

  if (child != nullptr) child->tree_lock.unlock();
  node->tree_lock.unlock();
  if (parent != nullptr) parent->tree_lock.unlock();
}

/// Re-runs rebalancing anchored at `node` (used by removers after
/// relocating a successor into a removed node's place, and as the remover's
/// obligation when another thread's rebalance bailed out on our mark —
/// paper §4.5 final paragraph).
template <typename N>
void rebalance_at(N* root, N* node) {
  node->tree_lock.lock();
  if (node->mark.load(std::memory_order_acquire)) {
    node->tree_lock.unlock();
    return;
  }
  N* parent = nullptr;
  N* child = nullptr;
  // Borrow restart_balance's child-selection loop to lock the taller side.
  const auto bf = node->balance_factor();
  child = bf >= 2 ? node->left.load(std::memory_order_relaxed)
                  : node->right.load(std::memory_order_relaxed);
  if (child != nullptr && !child->tree_lock.try_lock()) {
    child = nullptr;
    if (!restart_balance(node, parent, child)) return;
  }
  const bool is_left =
      child != nullptr && node->left.load(std::memory_order_relaxed) == child;
  rebalance(root, node, child, is_left);
}

}  // namespace lot::lo::detail
