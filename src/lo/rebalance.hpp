// Relaxed AVL rebalancing (paper §4.5, Algorithms 12 and 14), following
// Bougé et al.: per-node cached subtree heights drive rotation decisions;
// the heights may be stale under concurrency, but repairing on the basis of
// the cached values still converges to a strict AVL tree at quiescence.
//
// Lock discipline: the walk climbs bottom-up taking tree locks upward
// (blocking, in-order). Rotations need a *downward* lock (the child /
// grandchild), which is against the order and therefore acquired with
// try_lock; on failure everything except the current node is dropped and
// the walk restarts from that node (restart_balance).
//
// Two deviations from the paper's pseudocode, both transcription slips in
// the paper (the published Java code behaves as implemented here):
//  * Algorithm 13 returns `oldH == newH` but Algorithm 12 line 5 treats the
//    result as "height changed"; we return "changed".
//  * When the removed node's child is null, `node.left == child` cannot
//    identify which side shrank (both sides may be null); the caller passes
//    the side explicitly for the first iteration.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <utility>

#include "check/perturb.hpp"
#include "health/state.hpp"
#include "lo/detail.hpp"
#include "lo/node.hpp"
#include "obs/counters.hpp"
#include "reclaim/ebr.hpp"
#include "sync/backoff.hpp"

namespace lot::lo::detail {

// ---- heat scope (ROADMAP 2(c): shard-scoped contention) ----
//
// Heat used to be one number per thread, which meant a thread hammering a
// hot shard would arrive at a cold shard still hot and defer rotations
// there for no reason. The scope below keys the TLS heat by the EBR
// domain the current structure retires through: LoCore installs its
// domain as the scope for the duration of each write, and the heat
// bookkeeping reads/writes the slot for that scope. nullptr is the
// default scope — structures on the global domain (the overwhelmingly
// common single-map case) — and is what the scope-free test hooks below
// operate on, so single-domain behaviour is bit-identical to PR 6.
// Scoping exists in BOTH throttle build flavours: even with the TLS
// throttle compiled out, contention events are still attributed to the
// right domain's odometer.

inline reclaim::EbrDomain*& heat_scope_tls() {
  thread_local reclaim::EbrDomain* scope = nullptr;
  return scope;
}

/// RAII scope installer. LoCore's write paths wrap themselves in one,
/// passing nullptr when the map lives on the global domain so the default
/// slot keeps serving the common case.
class HeatScope {
 public:
  explicit HeatScope(reclaim::EbrDomain* scope)
      : prev_(heat_scope_tls()) {
    heat_scope_tls() = scope;
  }
  ~HeatScope() { heat_scope_tls() = prev_; }
  HeatScope(const HeatScope&) = delete;
  HeatScope& operator=(const HeatScope&) = delete;

 private:
  reclaim::EbrDomain* prev_;
};

/// The domain the current contention event belongs to: the installed
/// scope, or the global domain when no scope (or a null scope) is active.
inline reclaim::EbrDomain& heat_scope_domain() {
  reclaim::EbrDomain* scope = heat_scope_tls();
  return scope != nullptr ? *scope : reclaim::EbrDomain::global_domain();
}

// ---- contention-adaptive rotation throttle (DESIGN.md §13) ----
//
// Rotations are the dominant cost under write contention (BENCH_5: 3.4M
// rotations vs ~1M restarts on the 4-thread mixed run), and the relaxed
// Bougé scheme already tolerates arbitrary deferral: heights are
// performance metadata, only the *repair* is postponed. So each thread
// keeps a contention heat score: failed write validations, removal-lock
// retries and rebalance try-lock restarts heat it; every rebalance climb
// iteration cools it by one. While hot, the rotation loop defers its
// rotations (the height bookkeeping of the climb itself still runs) and
// the imbalance is left for cooler moments — or for
// LoCore::repair_balance() at quiescence. Note that deferral widens the
// pre-existing window in which cached heights drift from the true subtree
// heights: a climb abandoned on a mark-bail (restart_balance) hands its
// pending propagation to the remover, and a deferred imbalance, once
// rotated, can shrink its subtree by two levels at a time — which is why
// repair_balance re-derives heights bottom-up instead of trusting the
// caches. The state is thread-local and owned by this layer, NOT by
// obs/ (LOT_OBS=OFF builds throttle identically); obs merely observes
// deferral events via kRotationsDeferred.
//
// Compile-out: -DLOT_REBALANCE_THROTTLE=OFF (CMake option) defines
// LOT_REBALANCE_THROTTLE_OFF, turning every hook below into a no-op so the
// pre-throttle rotation discipline is recoverable bit-for-bit.

// The tuning constants stay visible in both build flavours so tests and
// benches can reference them unconditionally.
inline constexpr std::uint32_t kHeatPerEvent = 64;
inline constexpr std::uint32_t kHeatHotThreshold = 128;
inline constexpr std::uint32_t kHeatCap = 1024;

#if !defined(LOT_REBALANCE_THROTTLE_OFF)

inline constexpr bool kRebalanceThrottleCompiled = true;

inline std::atomic<bool>& throttle_flag() {
  static std::atomic<bool> on{true};
  return on;
}

/// Per-thread heat, keyed by scope. The default (null-scope) slot is a
/// dedicated field — the single-map fast path never scans the table — and
/// a small fixed table serves threads touching multiple scoped shards.
/// Table overflow recycles entry 0: heat is ≤ kHeatCap of perf metadata,
/// so dropping a slot merely forgets some warmth. A stale scope pointer
/// (domain died, address reused) can at worst revive another shard's
/// residual heat — same class of harmlessness.
struct HeatSlots {
  static constexpr std::size_t kEntries = 8;
  std::uint32_t default_heat = 0;
  struct Entry {
    const reclaim::EbrDomain* scope = nullptr;
    std::uint32_t heat = 0;
  };
  Entry entries[kEntries];

  std::uint32_t& slot(const reclaim::EbrDomain* scope) {
    if (scope == nullptr) return default_heat;
    for (auto& e : entries) {
      if (e.scope == scope) return e.heat;
    }
    for (auto& e : entries) {
      if (e.scope == nullptr) {
        e.scope = scope;
        e.heat = 0;
        return e.heat;
      }
    }
    entries[0].scope = scope;
    entries[0].heat = 0;
    return entries[0].heat;
  }
};

inline HeatSlots& heat_slots_tls() {
  thread_local HeatSlots slots;
  return slots;
}

/// The calling thread's heat for the *currently installed* scope.
inline std::uint32_t& contention_heat_tls() {
  return heat_slots_tls().slot(heat_scope_tls());
}

/// One contention event (validation failure, lock retry) observed by the
/// calling thread. Also feeds the governor's process-wide odometer
/// (health/state.hpp) and the scope domain's per-shard odometer — the TLS
/// heat is this thread's view of this shard, the odometers are everyone's.
inline void contention_heat_add() {
  health::note_contention();
  heat_scope_domain().note_contention_event();
  auto& h = contention_heat_tls();
  h = h >= kHeatCap - kHeatPerEvent ? kHeatCap : h + kHeatPerEvent;
}

/// One unit of rebalance progress; called per climb iteration.
inline void contention_heat_cool() {
  auto& h = contention_heat_tls();
  if (h > 0) --h;
}

inline void reset_contention_heat() { contention_heat_tls() = 0; }

/// Test hook: pin the calling thread's heat for deterministic deferrals
/// (tests/test_rebalance_throttle.cpp runs single-threaded on 1-core CI).
/// Operates on the current scope's slot — with no scope installed, the
/// default slot, exactly the pre-scoping semantics.
inline void set_contention_heat(std::uint32_t h) { contention_heat_tls() = h; }
inline std::uint32_t contention_heat() { return contention_heat_tls(); }

/// Runtime knob (bench A/B arm): defaults to on.
inline void set_rebalance_throttle(bool on) {
  throttle_flag().store(on, std::memory_order_relaxed);
}
inline bool rebalance_throttle_enabled() {
  return throttle_flag().load(std::memory_order_relaxed);
}

inline bool heat_rotation_throttled() {
  return contention_heat_tls() >= kHeatHotThreshold &&
         throttle_flag().load(std::memory_order_relaxed);
}

#else  // LOT_REBALANCE_THROTTLE_OFF — every hook compiles away.

inline constexpr bool kRebalanceThrottleCompiled = false;

// The governor's contention odometer (and the scope domain's per-shard
// odometer) stay fed even with the TLS throttle compiled out — shedding
// and heat *observation* are separate concerns.
inline void contention_heat_add() {
  health::note_contention();
  heat_scope_domain().note_contention_event();
}
inline void contention_heat_cool() {}
inline void reset_contention_heat() {}
inline void set_contention_heat(std::uint32_t) {}
inline std::uint32_t contention_heat() { return 0; }
inline void set_rebalance_throttle(bool) {}
inline bool rebalance_throttle_enabled() { return false; }
inline bool heat_rotation_throttled() { return false; }

#endif  // LOT_REBALANCE_THROTTLE_OFF

// ---- governor-driven rotation shedding (DESIGN.md §14) ----
//
// The TLS heat above only sees the calling thread's own contention; the
// overload governor publishes a process-wide verdict. At Degraded or worse
// *every* thread defers rotations — the cross-thread heat signal the
// ROADMAP's "generalize beyond TLS" item asked for. Gated by LOT_HEALTH
// inside health/state.hpp (shed_rotations() is a constant false when the
// governor is compiled out), independent of LOT_REBALANCE_THROTTLE.

/// TLS escape hatch: LoCore::repair_balance() restores strict AVL shape at
/// quiescence and must rotate even while the published state is still
/// Degraded — without the override, repair under a not-yet-recovered
/// governor would defer forever.
inline bool& rotation_shed_override_tls() {
  thread_local bool bypass = false;
  return bypass;
}

/// RAII scope for the override (exception-safe: repair_balance's walk can
/// throw through from recompute passes in OOM campaigns).
class RotationShedOverride {
 public:
  RotationShedOverride() : prev_(rotation_shed_override_tls()) {
    rotation_shed_override_tls() = true;
  }
  ~RotationShedOverride() { rotation_shed_override_tls() = prev_; }
  RotationShedOverride(const RotationShedOverride&) = delete;
  RotationShedOverride& operator=(const RotationShedOverride&) = delete;

 private:
  bool prev_;
};

inline bool rotation_throttled() {
  if (rotation_shed_override_tls()) return false;
  return heat_rotation_throttled() || health::shed_rotations();
}

/// A rotation was deferred under the current scope: attribute it to the
/// scope domain so sharded runs can see *which* shard is shedding (the
/// process-wide kRotationsDeferred obs counter stays the aggregate view).
inline void note_scope_rotation_deferred() {
  heat_scope_domain().note_rotation_deferred();
}

/// Algorithm 14. On entry: node tree-locked, parent tree-locked or null,
/// child lock NOT held. Releases parent, then cycles node's lock until it
/// can pick (and lock) the child on the taller side. Returns false — with
/// every lock released — if node got removed meanwhile, in which case the
/// remover is responsible for any outstanding imbalance (paper §4.5
/// edge case). On true: node locked, child locked or null.
template <typename N>
bool restart_balance(N* node, N*& parent, N*& child) {
  obs::count(obs::Counter::kBalanceRestarts);
  contention_heat_add();
  if (parent != nullptr) {
    parent->tree_lock.unlock();
    parent = nullptr;
  }
  // Jittered: symmetric climbers that collided once otherwise retry on the
  // same schedule and collide again (sync/backoff.hpp header comment).
  sync::JitterBackoff backoff;
  for (;;) {
    node->tree_lock.unlock();
    // The pause between unlock and relock is load-bearing on a uniprocessor:
    // whoever holds the child lock we keep failing to take may itself be
    // blocked on *node* (a climber in lock_parent), and with a back-to-back
    // unlock/lock it can only slip in if the scheduler preempts us inside
    // that instruction-wide window — a livelock in practice (found by the
    // schedule-perturbed stress, tests/stress/, on the one-core CI box).
    backoff.pause();
    node->tree_lock.lock();
    if (node->mark.load(std::memory_order_acquire)) {
      node->tree_lock.unlock();
      return false;
    }
    const auto bf = node->balance_factor();
    child = bf >= 2 ? node->left.load(std::memory_order_relaxed)
                    : node->right.load(std::memory_order_relaxed);
    if (child == nullptr) return true;
    if (child->tree_lock.try_lock()) return true;
  }
}

/// Algorithm 12. On entry: node and child (possibly null) tree-locked;
/// `first_is_left` says on which side of node `child` hangs (needed when
/// child is null and both of node's child pointers are null). Consumes all
/// locks before returning. `root` is the +inf sentinel and is never
/// rotated or height-maintained.
template <typename N>
void rebalance(N* root, N* node, N* child, bool first_is_left) {
  N* parent = nullptr;
  bool first = true;
  while (node != root) {
    obs::count(obs::Counter::kHeightPasses);
    contention_heat_cool();
    bool is_left = (child != nullptr || !first)
                       ? (node->left.load(std::memory_order_relaxed) == child)
                       : first_is_left;
    first = false;
    const bool changed = update_height(child, node, is_left);
    auto bf = node->balance_factor();
    if (!changed && std::abs(bf) < 2) break;

    while (std::abs(bf) >= 2) {
      if (rotation_throttled()) {
        // Defer the rotation, not the bookkeeping: the climb keeps
        // updating heights above, leaving a |bf| >= 2 node behind for a
        // later cooler climb — or for repair_balance at quiescence, which
        // re-derives heights before anchor-scanning (see its comment for
        // why the cached values alone cannot be trusted).
        obs::count(obs::Counter::kRotationsDeferred);
        note_scope_rotation_deferred();
        break;
      }
      // Make sure `child` is the child on the taller side; switching sides
      // needs a downward (against-order) lock.
      if ((is_left && bf <= -2) || (!is_left && bf >= 2)) {
        if (child != nullptr) child->tree_lock.unlock();
        child = is_left ? node->right.load(std::memory_order_relaxed)
                        : node->left.load(std::memory_order_relaxed);
        is_left = !is_left;
        if (!child->tree_lock.try_lock()) {
          child = nullptr;
          if (!restart_balance(node, parent, child)) return;
          bf = node->balance_factor();
          is_left = (node->left.load(std::memory_order_relaxed) == child);
          continue;
        }
      }

      // Double rotation: first rotate the child with its (taller-side
      // inner) grandchild.
      const auto ch_bf = child->balance_factor();
      if ((is_left && ch_bf < 0) || (!is_left && ch_bf > 0)) {
        N* grand = is_left ? child->right.load(std::memory_order_relaxed)
                           : child->left.load(std::memory_order_relaxed);
        if (!grand->tree_lock.try_lock()) {
          child->tree_lock.unlock();
          child = nullptr;
          if (!restart_balance(node, parent, child)) return;
          bf = node->balance_factor();
          is_left = (node->left.load(std::memory_order_relaxed) == child);
          continue;
        }
        check::perturb_point(check::PerturbPoint::kRotate);
        obs::count(obs::Counter::kRotations);
        rotate(grand, child, node, is_left);
        child->tree_lock.unlock();
        child = grand;
      }

      // Main rotation: node goes below its (taller) child.
      if (parent == nullptr) parent = lock_parent(node);
      check::perturb_point(check::PerturbPoint::kRotate);
      obs::count(obs::Counter::kRotations);
      rotate(child, node, parent, !is_left);

      bf = node->balance_factor();
      if (std::abs(bf) >= 2) {
        // Still imbalanced (stale heights): keep working on node, which
        // now hangs under its old child.
        parent->tree_lock.unlock();
        parent = child;  // locked; is node's parent after the rotation
        child = nullptr;
        is_left = bf >= 2 ? false : true;  // routes back through the
                                           // switch-sides branch above
        continue;
      }
      // Node is balanced; continue with its old child (now its parent).
      std::swap(node, child);
      is_left = (node->left.load(std::memory_order_relaxed) == child);
      bf = node->balance_factor();
    }

    // Climb one level.
    if (child != nullptr) child->tree_lock.unlock();
    child = node;
    node = parent != nullptr ? parent : lock_parent(node);
    parent = nullptr;
  }

  if (child != nullptr) child->tree_lock.unlock();
  node->tree_lock.unlock();
  if (parent != nullptr) parent->tree_lock.unlock();
}

/// Re-runs rebalancing anchored at `node` (used by removers after
/// relocating a successor into a removed node's place, and as the remover's
/// obligation when another thread's rebalance bailed out on our mark —
/// paper §4.5 final paragraph).
template <typename N>
void rebalance_at(N* root, N* node) {
  node->tree_lock.lock();
  if (node->mark.load(std::memory_order_acquire)) {
    node->tree_lock.unlock();
    return;
  }
  N* parent = nullptr;
  N* child = nullptr;
  // Borrow restart_balance's child-selection loop to lock the taller side.
  const auto bf = node->balance_factor();
  child = bf >= 2 ? node->left.load(std::memory_order_relaxed)
                  : node->right.load(std::memory_order_relaxed);
  if (child != nullptr && !child->tree_lock.try_lock()) {
    child = nullptr;
    if (!restart_balance(node, parent, child)) return;
  }
  const bool is_left =
      child != nullptr && node->left.load(std::memory_order_relaxed) == child;
  rebalance(root, node, child, is_left);
}

}  // namespace lot::lo::detail
