// Quiescent-state structural validation for the logical-ordering trees.
// Every check here is an invariant the paper relies on; the concurrent
// stress tests drive the tree hard and then call validate() with all
// worker threads joined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "lo/node.hpp"

namespace lot::lo {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;
  std::size_t chain_nodes = 0;  // unmarked nodes on the ordering chain
  std::size_t tree_nodes = 0;   // nodes reachable from the root
  std::int32_t height = 0;      // height of the physical tree

  void fail(std::string msg) {
    ok = false;
    if (errors.size() < 32) errors.push_back(std::move(msg));
  }

  std::string to_string() const {
    std::string out;
    for (const auto& e : errors) {
      out += e;
      out += '\n';
    }
    return out;
  }
};

namespace detail_validate {

template <typename NodeT, typename Cmp>
void walk_tree(const NodeT* node, const NodeT* expected_parent,
               const std::set<const NodeT*>& chain, ValidationReport& rep,
               const Cmp& less, const NodeT* lo, const NodeT* hi,
               bool check_heights, std::int32_t& height_out) {
  if (node == nullptr) {
    height_out = 0;
    return;
  }
  ++rep.tree_nodes;
  if (node->parent.load(std::memory_order_relaxed) != expected_parent) {
    rep.fail("parent pointer inconsistent at a tree node");
  }
  if (node->mark.load(std::memory_order_relaxed)) {
    rep.fail("marked (removed) node reachable in the tree layout");
  }
  if (chain.count(node) == 0) {
    rep.fail("tree node missing from the logical ordering chain");
  }
  // BST order via the bounding nodes (handles sentinels without needing
  // key infinities).
  if (lo != nullptr && lo->tag == Tag::kNormal &&
      !(node->tag == Tag::kPosInf || less(lo->key, node->key))) {
    rep.fail("BST order violated (node not above its lower bound)");
  }
  if (hi != nullptr && hi->tag == Tag::kNormal &&
      !(node->tag == Tag::kNegInf || less(node->key, hi->key))) {
    rep.fail("BST order violated (node not below its upper bound)");
  }
  if (node->tree_lock.is_locked() || node->succ_lock.is_locked()) {
    rep.fail("lock left held at quiescence");
  }

  std::int32_t lh = 0;
  std::int32_t rh = 0;
  walk_tree(node->left.load(std::memory_order_relaxed), node, chain, rep,
            less, lo, node, check_heights, lh);
  walk_tree(node->right.load(std::memory_order_relaxed), node, chain, rep,
            less, node, hi, check_heights, rh);
  if (check_heights) {
    if (node->left_height.load(std::memory_order_relaxed) != lh ||
        node->right_height.load(std::memory_order_relaxed) != rh) {
      rep.fail("cached subtree heights stale at quiescence");
    }
    const std::int32_t bf = lh - rh;
    if (bf < -1 || bf > 1) {
      rep.fail("AVL balance violated at quiescence (|bf| = " +
               std::to_string(bf < 0 ? -bf : bf) + ")");
    }
  }
  height_out = (lh > rh ? lh : rh) + 1;
}

}  // namespace detail_validate

/// Validates a quiescent LoMap (or the partially-external variant with
/// `partial = true`, which permits `deleted` nodes in both layouts):
///  * the pred/succ chain runs -inf .. +inf, strictly increasing, and the
///    two directions mirror each other, with no marked node on it;
///  * the physical tree contains exactly the chain's nodes, in BST order,
///    with consistent parent pointers;
///  * (AVL) cached heights are exact and every balance factor is in
///    {-1, 0, 1} — the relaxed scheme must be strict at quiescence;
///  * no per-node lock is left held.
template <typename MapT>
ValidationReport validate(const MapT& map, bool check_heights,
                          bool partial = false) {
  using NodeT = typename MapT::NodeT;
  ValidationReport rep;
  const NodeT* neg = map.debug_neg_sentinel();
  const NodeT* pos = map.debug_pos_sentinel();
  const NodeT* root = map.debug_root();

  // --- ordering chain ---
  std::set<const NodeT*> chain;
  std::less<typename MapT::key_type> less;
  const NodeT* prev = neg;
  const NodeT* node = neg->succ.load(std::memory_order_relaxed);
  while (node != nullptr && node != pos) {
    if (node->tag != Tag::kNormal) {
      rep.fail("sentinel in the middle of the ordering chain");
      break;
    }
    if (node->mark.load(std::memory_order_relaxed)) {
      rep.fail("marked node still on the ordering chain");
    }
    if (prev->tag == Tag::kNormal && !less(prev->key, node->key)) {
      rep.fail("ordering chain not strictly increasing");
    }
    if (node->pred.load(std::memory_order_relaxed) != prev) {
      rep.fail("pred pointer does not mirror succ pointer");
    }
    if (!chain.insert(node).second) {
      rep.fail("cycle in the ordering chain");
      break;
    }
    prev = node;
    node = node->succ.load(std::memory_order_relaxed);
  }
  if (node != pos) {
    rep.fail("ordering chain does not terminate at +inf");
  } else if (pos->pred.load(std::memory_order_relaxed) != prev) {
    rep.fail("+inf pred does not mirror the chain tail");
  }
  rep.chain_nodes = chain.size();

  // --- physical tree (hangs off the +inf sentinel's left child) ---
  std::set<const NodeT*> tree_set = chain;  // membership check inside walk
  std::int32_t height = 0;
  detail_validate::walk_tree(root->left.load(std::memory_order_relaxed),
                             root, tree_set, rep, less, neg, pos,
                             check_heights, height);
  rep.height = height;
  if (!partial && rep.tree_nodes != rep.chain_nodes) {
    rep.fail("tree layout and ordering chain disagree on membership (" +
             std::to_string(rep.tree_nodes) + " vs " +
             std::to_string(rep.chain_nodes) + ")");
  }
  if (root->left.load(std::memory_order_relaxed) != nullptr &&
      root->left.load(std::memory_order_relaxed)
              ->parent.load(std::memory_order_relaxed) != root) {
    rep.fail("top node's parent is not the root sentinel");
  }
  return rep;
}

}  // namespace lot::lo
