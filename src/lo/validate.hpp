// Quiescent-state structural validation for the logical-ordering trees.
// Every check here is an invariant the paper relies on.
//
// Callable from multi-threaded *quiescent points*, not only after joining
// all workers: the contract is that no operation is in flight while
// validate() runs — e.g. every worker thread is parked at a stress-phase
// barrier (tests/stress/stress_common.hpp) while one thread validates.
// To honour that contract the walk is iterative (an explicit stack, so a
// stress-shaped unbalanced tree cannot overflow the validating thread's
// stack), guards against cyclic corruption instead of hanging, and uses
// the map's own comparator rather than assuming std::less.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "lo/node.hpp"

namespace lot::lo {

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;
  std::size_t chain_nodes = 0;  // unmarked nodes on the ordering chain
  std::size_t tree_nodes = 0;   // nodes reachable from the root
  std::int32_t height = 0;      // height of the physical tree

  void fail(std::string msg) {
    ok = false;
    if (errors.size() < 32) errors.push_back(std::move(msg));
  }

  std::string to_string() const {
    std::string out;
    for (const auto& e : errors) {
      out += e;
      out += '\n';
    }
    return out;
  }
};

namespace detail_validate {

/// Iterative post-order walk over the physical tree: per-node checks on
/// first visit, cached-height/balance checks once both subtrees' true
/// heights are known.
template <typename NodeT, typename Cmp>
void walk_tree(const NodeT* top, const NodeT* root,
               const std::set<const NodeT*>& chain, ValidationReport& rep,
               const Cmp& less, const NodeT* neg, const NodeT* pos,
               bool check_heights, std::int32_t& height_out) {
  height_out = 0;
  if (top == nullptr) return;

  struct Frame {
    const NodeT* node;
    const NodeT* expected_parent;
    const NodeT* lo;
    const NodeT* hi;
    std::int32_t lh = 0;
    std::int32_t rh = 0;
    int stage = 0;  // 0: visit node, 1: left subtree done, 2: right done
  };
  std::vector<Frame> stack;
  stack.push_back({top, root, neg, pos});
  std::int32_t done_height = 0;  // height of the last completed subtree

  while (!stack.empty()) {
    Frame& f = stack.back();
    const NodeT* node = f.node;
    switch (f.stage) {
      case 0: {
        f.stage = 1;
        ++rep.tree_nodes;
        if (rep.tree_nodes > chain.size()) {
          // Every tree node must be a chain node; exceeding the chain size
          // means duplicate reachability or a cycle — stop, or the walk
          // never terminates.
          rep.fail("tree reaches more nodes than the ordering chain holds");
          return;
        }
        if (node->parent.load(std::memory_order_relaxed) !=
            f.expected_parent) {
          rep.fail("parent pointer inconsistent at a tree node");
        }
        if (node->mark.load(std::memory_order_relaxed)) {
          rep.fail("marked (removed) node reachable in the tree layout");
        }
        if (chain.count(node) == 0) {
          rep.fail("tree node missing from the logical ordering chain");
        }
        // BST order via the bounding nodes (handles sentinels without
        // needing key infinities).
        if (f.lo != nullptr && f.lo->tag == Tag::kNormal &&
            !(node->tag == Tag::kPosInf || less(f.lo->key, node->key))) {
          rep.fail("BST order violated (node not above its lower bound)");
        }
        if (f.hi != nullptr && f.hi->tag == Tag::kNormal &&
            !(node->tag == Tag::kNegInf || less(node->key, f.hi->key))) {
          rep.fail("BST order violated (node not below its upper bound)");
        }
        if (node->tree_lock.is_locked() || node->succ_lock.is_locked()) {
          rep.fail("lock left held at quiescence");
        }
        if (const NodeT* l = node->left.load(std::memory_order_relaxed)) {
          stack.push_back({l, node, f.lo, node});
        } else {
          done_height = 0;
        }
        break;
      }
      case 1: {
        f.lh = done_height;
        f.stage = 2;
        if (const NodeT* r = node->right.load(std::memory_order_relaxed)) {
          stack.push_back({r, node, node, f.hi});
        } else {
          done_height = 0;
        }
        break;
      }
      default: {
        f.rh = done_height;
        if (check_heights) {
          if (node->left_height.load(std::memory_order_relaxed) != f.lh ||
              node->right_height.load(std::memory_order_relaxed) != f.rh) {
            rep.fail("cached subtree heights stale at quiescence");
          }
          const std::int32_t bf = f.lh - f.rh;
          if (bf < -1 || bf > 1) {
            rep.fail("AVL balance violated at quiescence (|bf| = " +
                     std::to_string(bf < 0 ? -bf : bf) + ")");
          }
        }
        done_height = (f.lh > f.rh ? f.lh : f.rh) + 1;
        stack.pop_back();
        break;
      }
    }
  }
  height_out = done_height;
}

}  // namespace detail_validate

/// Validates a quiescent LoMap (or the partially-external variant with
/// `partial = true`, which permits `deleted` nodes in both layouts):
///  * the pred/succ chain runs -inf .. +inf, strictly increasing, and the
///    two directions mirror each other, with no marked node on it;
///  * the physical tree contains exactly the chain's nodes, in BST order,
///    with consistent parent pointers;
///  * (AVL) cached heights are exact and every balance factor is in
///    {-1, 0, 1} — the relaxed scheme must be strict at quiescence;
///  * no per-node lock is left held.
/// Safe to call from one thread while the others are parked at a barrier
/// (see the header comment); never call it with operations in flight.
template <typename MapT>
ValidationReport validate(const MapT& map, bool check_heights,
                          bool partial = false) {
  using NodeT = typename MapT::NodeT;
  ValidationReport rep;
  const NodeT* neg = map.debug_neg_sentinel();
  const NodeT* pos = map.debug_pos_sentinel();
  const NodeT* root = map.debug_root();

  // The map's own comparator when it exposes one (LoMap/PartialMap do);
  // std::less otherwise, as before.
  auto less = [&map] {
    if constexpr (requires { map.key_comp(); }) {
      return map.key_comp();
    } else {
      return std::less<typename MapT::key_type>{};
    }
  }();

  // --- ordering chain ---
  std::set<const NodeT*> chain;
  const NodeT* prev = neg;
  const NodeT* node = neg->succ.load(std::memory_order_relaxed);
  while (node != nullptr && node != pos) {
    if (node->tag != Tag::kNormal) {
      rep.fail("sentinel in the middle of the ordering chain");
      break;
    }
    if (node->mark.load(std::memory_order_relaxed)) {
      rep.fail("marked node still on the ordering chain");
    }
    if (prev->tag == Tag::kNormal && !less(prev->key, node->key)) {
      rep.fail("ordering chain not strictly increasing");
    }
    if (node->pred.load(std::memory_order_relaxed) != prev) {
      rep.fail("pred pointer does not mirror succ pointer");
    }
    if (!chain.insert(node).second) {
      rep.fail("cycle in the ordering chain");
      break;
    }
    prev = node;
    node = node->succ.load(std::memory_order_relaxed);
  }
  if (node != pos) {
    rep.fail("ordering chain does not terminate at +inf");
  } else if (pos->pred.load(std::memory_order_relaxed) != prev) {
    rep.fail("+inf pred does not mirror the chain tail");
  }
  rep.chain_nodes = chain.size();

  // --- physical tree (hangs off the +inf sentinel's left child) ---
  std::int32_t height = 0;
  detail_validate::walk_tree(root->left.load(std::memory_order_relaxed),
                             root, chain, rep, less, neg, pos, check_heights,
                             height);
  rep.height = height;
  if (!partial && rep.tree_nodes != rep.chain_nodes) {
    rep.fail("tree layout and ordering chain disagree on membership (" +
             std::to_string(rep.tree_nodes) + " vs " +
             std::to_string(rep.chain_nodes) + ")");
  }
  if (root->left.load(std::memory_order_relaxed) != nullptr &&
      root->left.load(std::memory_order_relaxed)
              ->parent.load(std::memory_order_relaxed) != root) {
    rep.fail("top node's parent is not the root sentinel");
  }
  return rep;
}

}  // namespace lot::lo
