// Sense-reversing barrier used to start benchmark threads together.
#pragma once

#include <atomic>
#include <cstddef>

#include "sync/backoff.hpp"

namespace lot::sync {

/// Reusable barrier. Unlike std::barrier this spins-then-yields, which is
/// the right behaviour for short waits in benchmark start lines.
class ThreadBarrier {
 public:
  explicit ThreadBarrier(std::size_t parties) : parties_(parties) {}

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      count_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      Backoff backoff;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        backoff.pause();
      }
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> count_{0};
  std::atomic<bool> sense_{false};
};

}  // namespace lot::sync
