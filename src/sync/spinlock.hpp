// One-byte test-and-test-and-set spinlock used for the per-node treeLock
// and succLock. A std::mutex is 40 bytes on glibc; with two locks per tree
// node that would triple the node size, so we roll a compact lock with the
// same BasicLockable/Lockable interface.
#pragma once

#include <atomic>

#include "sync/backoff.hpp"

namespace lot::sync {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() noexcept {
    Backoff backoff;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a plain load first so the waiting threads do not keep the
      // line in modified state, then back off (and eventually yield).
      while (locked_.load(std::memory_order_relaxed)) backoff.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  /// Diagnostic only — racy by nature; used by invariant checkers at
  /// quiescence to assert that no lock leaked.
  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> locked_{false};
};

static_assert(sizeof(SpinLock) == 1);

}  // namespace lot::sync
