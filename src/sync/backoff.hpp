// Bounded exponential backoff for contended atomic retry loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lot::sync {

/// Pauses the pipeline briefly; the polite thing to do inside a spin loop.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Exponential backoff that escalates from pipeline pauses to scheduler
/// yields. Yielding matters on machines with fewer cores than threads:
/// spinning against a preempted lock holder without yielding is a livelock
/// in practice.
class Backoff {
 public:
  void pause() noexcept {
    if (spins_ < kMaxSpins) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { spins_ = 1; }

 private:
  static constexpr std::uint32_t kMaxSpins = 64;
  std::uint32_t spins_ = 1;
};

// ---- seeded-jitter capped exponential backoff ----
//
// Plain Backoff gives every thread the identical pause schedule, so two
// writers that collide once tend to collide again on the retry — the retry
// loops in acquire_removal_locks and restart_balance resonate under
// symmetric contention. JitterBackoff draws each pause uniformly from a
// doubling window instead, which decorrelates the retries while keeping
// the same bounded escalation (once the window caps, every pause also
// yields — the uniprocessor-livelock fix documented at the call sites).
//
// Determinism mirrors inject.hpp: draws come from a per-thread xorshift64*
// stream lazily seeded from a campaign seed (set_backoff_seed) and a
// per-thread registration counter, so a storm campaign replays the same
// pause schedule for the same seed, thread count and operation sequence.

namespace detail {

struct BackoffSeedState {
  std::atomic<std::uint64_t> seed{0x9E3779B97F4A7C15ULL};
  std::atomic<std::uint64_t> thread_counter{0};
};

inline BackoffSeedState& backoff_seed_state() {
  static BackoffSeedState state;
  return state;
}

/// One draw from the calling thread's stream.
inline std::uint64_t backoff_draw() noexcept {
  auto& st = backoff_seed_state();
  thread_local std::uint64_t rng = [&st] {
    // splitmix64 of (seed, thread index) — a well-mixed per-thread stream.
    std::uint64_t z = st.seed.load(std::memory_order_relaxed) +
                      0x9E3779B97F4A7C15ULL *
                          (st.thread_counter.fetch_add(
                               1, std::memory_order_relaxed) +
                           1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return (z ^ (z >> 31)) | 1;
  }();
  rng ^= rng << 13;
  rng ^= rng >> 7;
  rng ^= rng << 17;
  return rng * 0x2545F4914F6CDD1DULL;
}

}  // namespace detail

/// Campaign seed for every thread's jitter stream. Threads that drew
/// already keep their stream (TLS is seeded lazily, once per thread); set
/// it before spawning the workers, like inject::set_seed.
inline void set_backoff_seed(std::uint64_t seed) {
  detail::backoff_seed_state().seed.store(seed | 1,
                                          std::memory_order_relaxed);
}

/// Capped exponential backoff with seeded jitter: pause k ∈ [1, window]
/// relax iterations, window doubling up to kMaxSpins; at the cap every
/// pause also yields. Bounded by construction — no pause exceeds
/// kMaxSpins relaxes plus one yield.
class JitterBackoff {
 public:
  void pause() noexcept {
    const std::uint64_t draw = detail::backoff_draw();
    if (window_ < kMaxSpins) {
      const std::uint32_t spins = 1 + static_cast<std::uint32_t>(draw % window_);
      for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
      window_ *= 2;
    } else {
      const std::uint32_t spins =
          1 + static_cast<std::uint32_t>(draw % kMaxSpins);
      for (std::uint32_t i = 0; i < spins; ++i) cpu_relax();
      std::this_thread::yield();
    }
  }

  void reset() noexcept { window_ = 2; }

  static constexpr std::uint32_t kMaxSpins = 64;

 private:
  std::uint32_t window_ = 2;
};

}  // namespace lot::sync
