// Bounded exponential backoff for contended atomic retry loops.
#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lot::sync {

/// Pauses the pipeline briefly; the polite thing to do inside a spin loop.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Exponential backoff that escalates from pipeline pauses to scheduler
/// yields. Yielding matters on machines with fewer cores than threads:
/// spinning against a preempted lock holder without yielding is a livelock
/// in practice.
class Backoff {
 public:
  void pause() noexcept {
    if (spins_ < kMaxSpins) {
      for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { spins_ = 1; }

 private:
  static constexpr std::uint32_t kMaxSpins = 64;
  std::uint32_t spins_ = 1;
};

}  // namespace lot::sync
