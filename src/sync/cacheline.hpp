// Cache-line geometry helpers shared by the concurrent data structures.
#pragma once

#include <cstddef>
#include <new>

namespace lot::sync {

// Fixed at 64 (x86-64 / most ARM64): std::hardware_destructive_interference_size
// can vary with -mtune and would make the node ABI flag-dependent.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a value in its own cache line to prevent false sharing between
/// adjacent per-thread slots (counters, epoch records, ...).
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  CachePadded() = default;
  explicit CachePadded(T v) : value(std::move(v)) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

}  // namespace lot::sync
