// Sequential AVL map. Serves three roles: the single-threaded performance
// reference for the ablation benches, an independently-implemented oracle
// for differential tests (alongside std::map), and a worked example of the
// exact rotation rules the concurrent tree must converge to at quiescence.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>

namespace lot::seq {

template <typename K, typename V, typename Compare = std::less<K>>
class AvlMap {
 public:
  using key_type = K;
  using mapped_type = V;

  AvlMap() = default;
  ~AvlMap() { destroy(root_); }
  AvlMap(const AvlMap&) = delete;
  AvlMap& operator=(const AvlMap&) = delete;

  static std::string_view name() { return "seq-avl"; }

  bool insert(const K& k, const V& v) {
    bool inserted = false;
    root_ = insert_at(root_, k, v, inserted);
    if (inserted) ++size_;
    return inserted;
  }

  bool erase(const K& k) {
    bool erased = false;
    root_ = erase_at(root_, k, erased);
    if (erased) --size_;
    return erased;
  }

  bool contains(const K& k) const { return find(k) != nullptr; }

  std::optional<V> get(const K& k) const {
    const Node* n = find(k);
    if (n == nullptr) return std::nullopt;
    return n->value;
  }

  std::optional<std::pair<K, V>> min() const {
    const Node* n = root_;
    if (n == nullptr) return std::nullopt;
    while (n->left != nullptr) n = n->left;
    return std::make_pair(n->key, n->value);
  }

  std::optional<std::pair<K, V>> max() const {
    const Node* n = root_;
    if (n == nullptr) return std::nullopt;
    while (n->right != nullptr) n = n->right;
    return std::make_pair(n->key, n->value);
  }

  template <typename F>
  void for_each(F&& fn) const {
    in_order(root_, fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::int32_t height() const { return height_of(root_); }

  /// True iff every node satisfies the AVL invariant (test hook).
  bool is_balanced() const { return check(root_).second; }

 private:
  struct Node {
    K key;
    V value;
    Node* left = nullptr;
    Node* right = nullptr;
    std::int32_t height = 1;
    Node(K k, V v) : key(std::move(k)), value(std::move(v)) {}
  };

  static std::int32_t height_of(const Node* n) {
    return n == nullptr ? 0 : n->height;
  }

  static void update(Node* n) {
    n->height = 1 + std::max(height_of(n->left), height_of(n->right));
  }

  static std::int32_t balance(const Node* n) {
    return height_of(n->left) - height_of(n->right);
  }

  static Node* rotate_right(Node* y) {
    Node* x = y->left;
    y->left = x->right;
    x->right = y;
    update(y);
    update(x);
    return x;
  }

  static Node* rotate_left(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    y->left = x;
    update(x);
    update(y);
    return y;
  }

  static Node* fixup(Node* n) {
    update(n);
    const std::int32_t bf = balance(n);
    if (bf > 1) {
      if (balance(n->left) < 0) n->left = rotate_left(n->left);
      return rotate_right(n);
    }
    if (bf < -1) {
      if (balance(n->right) > 0) n->right = rotate_right(n->right);
      return rotate_left(n);
    }
    return n;
  }

  Node* insert_at(Node* n, const K& k, const V& v, bool& inserted) {
    if (n == nullptr) {
      inserted = true;
      return new Node(k, v);
    }
    if (comp_(k, n->key)) {
      n->left = insert_at(n->left, k, v, inserted);
    } else if (comp_(n->key, k)) {
      n->right = insert_at(n->right, k, v, inserted);
    } else {
      return n;  // present: insert-if-absent semantics, like the paper
    }
    return fixup(n);
  }

  Node* erase_at(Node* n, const K& k, bool& erased) {
    if (n == nullptr) return nullptr;
    if (comp_(k, n->key)) {
      n->left = erase_at(n->left, k, erased);
    } else if (comp_(n->key, k)) {
      n->right = erase_at(n->right, k, erased);
    } else {
      erased = true;
      if (n->left == nullptr || n->right == nullptr) {
        Node* child = n->left != nullptr ? n->left : n->right;
        delete n;
        return child == nullptr ? nullptr : fixup(child);
      }
      // Two children: replace with in-order successor, as the concurrent
      // tree does physically.
      Node* s = n->right;
      while (s->left != nullptr) s = s->left;
      n->key = s->key;
      n->value = s->value;
      bool dummy = false;
      n->right = erase_at(n->right, s->key, dummy);
    }
    return fixup(n);
  }

  const Node* find(const K& k) const {
    const Node* n = root_;
    while (n != nullptr) {
      if (comp_(k, n->key)) {
        n = n->left;
      } else if (comp_(n->key, k)) {
        n = n->right;
      } else {
        return n;
      }
    }
    return nullptr;
  }

  template <typename F>
  static void in_order(const Node* n, F& fn) {
    if (n == nullptr) return;
    in_order(n->left, fn);
    fn(n->key, n->value);
    in_order(n->right, fn);
  }

  std::pair<std::int32_t, bool> check(const Node* n) const {
    if (n == nullptr) return {0, true};
    auto [lh, lok] = check(n->left);
    auto [rh, rok] = check(n->right);
    const bool ok = lok && rok && std::abs(lh - rh) <= 1 &&
                    n->height == 1 + std::max(lh, rh);
    return {1 + std::max(lh, rh), ok};
  }

  static void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left);
    destroy(n->right);
    delete n;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Compare comp_;
};

}  // namespace lot::seq
