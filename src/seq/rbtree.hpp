// Sequential red-black tree. Exists for the §2 background claim the paper
// takes from Pfaff (SIGMETRICS'04): between AVL and red-black trees there
// is no clear sequential winner, but AVL trees have shorter search paths.
// bench/ablation_avl_vs_rb reproduces that comparison against seq::AvlMap.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <utility>

namespace lot::seq {

template <typename K, typename V, typename Compare = std::less<K>>
class RbTreeMap {
 public:
  using key_type = K;
  using mapped_type = V;

  RbTreeMap() = default;
  ~RbTreeMap() { destroy(root_); }
  RbTreeMap(const RbTreeMap&) = delete;
  RbTreeMap& operator=(const RbTreeMap&) = delete;

  static std::string_view name() { return "seq-rbtree"; }

  bool insert(const K& k, const V& v) {
    Node* parent = nullptr;
    Node** link = &root_;
    while (*link != nullptr) {
      parent = *link;
      if (comp_(k, parent->key)) {
        link = &parent->left;
      } else if (comp_(parent->key, k)) {
        link = &parent->right;
      } else {
        return false;
      }
    }
    Node* n = new Node(k, v);
    n->parent = parent;
    *link = n;
    ++size_;
    fix_insert(n);
    return true;
  }

  bool erase(const K& k) {
    Node* n = find(k);
    if (n == nullptr) return false;
    erase_node(n);
    --size_;
    return true;
  }

  bool contains(const K& k) const { return find(k) != nullptr; }

  std::optional<V> get(const K& k) const {
    const Node* n = find(k);
    if (n == nullptr) return std::nullopt;
    return n->value;
  }

  std::optional<std::pair<K, V>> min() const {
    if (root_ == nullptr) return std::nullopt;
    const Node* n = minimum(root_);
    return std::make_pair(n->key, n->value);
  }

  std::optional<std::pair<K, V>> max() const {
    const Node* n = root_;
    if (n == nullptr) return std::nullopt;
    while (n->right != nullptr) n = n->right;
    return std::make_pair(n->key, n->value);
  }

  template <typename F>
  void for_each(F&& fn) const {
    in_order(root_, fn);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::int32_t height() const { return height_of(root_); }

  /// Sum of node depths (root = 1) over all nodes: average search path
  /// length = total_depth / size. The Pfaff-comparison metric.
  std::uint64_t total_depth() const { return depth_sum(root_, 1); }

  /// Checks the red-black invariants (test hook): root black, no red-red
  /// parent/child, equal black height on every root-leaf path, BST order.
  bool is_valid_rb() const {
    if (root_ == nullptr) return true;
    if (root_->red) return false;
    return check(root_).first >= 0;
  }

 private:
  struct Node {
    K key;
    V value;
    bool red = true;
    Node* parent = nullptr;
    Node* left = nullptr;
    Node* right = nullptr;
    Node(K k, V v) : key(std::move(k)), value(std::move(v)) {}
  };

  static bool is_red(const Node* n) { return n != nullptr && n->red; }

  Node* find(const K& k) const {
    Node* n = root_;
    while (n != nullptr) {
      if (comp_(k, n->key)) {
        n = n->left;
      } else if (comp_(n->key, k)) {
        n = n->right;
      } else {
        return n;
      }
    }
    return nullptr;
  }

  void rotate_left(Node* x) {
    Node* y = x->right;
    x->right = y->left;
    if (y->left != nullptr) y->left->parent = x;
    y->parent = x->parent;
    replace_in_parent(x, y);
    y->left = x;
    x->parent = y;
  }

  void rotate_right(Node* x) {
    Node* y = x->left;
    x->left = y->right;
    if (y->right != nullptr) y->right->parent = x;
    y->parent = x->parent;
    replace_in_parent(x, y);
    y->right = x;
    x->parent = y;
  }

  void replace_in_parent(Node* x, Node* y) {
    if (x->parent == nullptr) {
      root_ = y;
    } else if (x == x->parent->left) {
      x->parent->left = y;
    } else {
      x->parent->right = y;
    }
  }

  void fix_insert(Node* z) {
    while (is_red(z->parent)) {
      Node* p = z->parent;
      Node* g = p->parent;
      if (p == g->left) {
        Node* u = g->right;
        if (is_red(u)) {
          p->red = false;
          u->red = false;
          g->red = true;
          z = g;
        } else {
          if (z == p->right) {
            z = p;
            rotate_left(z);
            p = z->parent;
          }
          p->red = false;
          g->red = true;
          rotate_right(g);
        }
      } else {
        Node* u = g->left;
        if (is_red(u)) {
          p->red = false;
          u->red = false;
          g->red = true;
          z = g;
        } else {
          if (z == p->left) {
            z = p;
            rotate_right(z);
            p = z->parent;
          }
          p->red = false;
          g->red = true;
          rotate_left(g);
        }
      }
    }
    root_->red = false;
  }

  static Node* minimum(Node* n) {
    while (n->left != nullptr) n = n->left;
    return n;
  }

  void erase_node(Node* z) {
    Node* y = z;  // node physically removed or moved
    bool y_was_red = y->red;
    Node* x = nullptr;         // child that replaces y
    Node* x_parent = nullptr;  // x's parent after the splice

    if (z->left == nullptr) {
      x = z->right;
      x_parent = z->parent;
      transplant(z, z->right);
    } else if (z->right == nullptr) {
      x = z->left;
      x_parent = z->parent;
      transplant(z, z->left);
    } else {
      y = minimum(z->right);
      y_was_red = y->red;
      x = y->right;
      if (y->parent == z) {
        x_parent = y;
      } else {
        x_parent = y->parent;
        transplant(y, y->right);
        y->right = z->right;
        y->right->parent = y;
      }
      transplant(z, y);
      y->left = z->left;
      y->left->parent = y;
      y->red = z->red;
    }
    delete z;
    if (!y_was_red) fix_erase(x, x_parent);
  }

  void transplant(Node* u, Node* v) {
    replace_in_parent(u, v);
    if (v != nullptr) v->parent = u->parent;
  }

  void fix_erase(Node* x, Node* x_parent) {
    while (x != root_ && !is_red(x)) {
      if (x_parent == nullptr) break;
      if (x == x_parent->left) {
        Node* w = x_parent->right;
        if (is_red(w)) {
          w->red = false;
          x_parent->red = true;
          rotate_left(x_parent);
          w = x_parent->right;
        }
        if (!is_red(w->left) && !is_red(w->right)) {
          w->red = true;
          x = x_parent;
          x_parent = x->parent;
        } else {
          if (!is_red(w->right)) {
            if (w->left != nullptr) w->left->red = false;
            w->red = true;
            rotate_right(w);
            w = x_parent->right;
          }
          w->red = x_parent->red;
          x_parent->red = false;
          if (w->right != nullptr) w->right->red = false;
          rotate_left(x_parent);
          x = root_;
          x_parent = nullptr;
        }
      } else {
        Node* w = x_parent->left;
        if (is_red(w)) {
          w->red = false;
          x_parent->red = true;
          rotate_right(x_parent);
          w = x_parent->left;
        }
        if (!is_red(w->right) && !is_red(w->left)) {
          w->red = true;
          x = x_parent;
          x_parent = x->parent;
        } else {
          if (!is_red(w->left)) {
            if (w->right != nullptr) w->right->red = false;
            w->red = true;
            rotate_left(w);
            w = x_parent->left;
          }
          w->red = x_parent->red;
          x_parent->red = false;
          if (w->left != nullptr) w->left->red = false;
          rotate_right(x_parent);
          x = root_;
          x_parent = nullptr;
        }
      }
    }
    if (x != nullptr) x->red = false;
  }

  template <typename F>
  static void in_order(const Node* n, F& fn) {
    if (n == nullptr) return;
    in_order(n->left, fn);
    fn(n->key, n->value);
    in_order(n->right, fn);
  }

  static std::int32_t height_of(const Node* n) {
    if (n == nullptr) return 0;
    const auto l = height_of(n->left);
    const auto r = height_of(n->right);
    return 1 + (l > r ? l : r);
  }

  static std::uint64_t depth_sum(const Node* n, std::uint64_t depth) {
    if (n == nullptr) return 0;
    return depth + depth_sum(n->left, depth + 1) +
           depth_sum(n->right, depth + 1);
  }

  // Returns (black height, ok) where black height is -1 on violation.
  std::pair<int, bool> check(const Node* n) const {
    if (n == nullptr) return {1, true};
    if (is_red(n) && (is_red(n->left) || is_red(n->right))) return {-1, false};
    if (n->left != nullptr && !comp_(n->left->key, n->key)) return {-1, false};
    if (n->right != nullptr && !comp_(n->key, n->right->key)) {
      return {-1, false};
    }
    const auto [lh, lok] = check(n->left);
    const auto [rh, rok] = check(n->right);
    if (!lok || !rok || lh != rh || lh < 0) return {-1, false};
    return {lh + (n->red ? 0 : 1), true};
  }

  void destroy(Node* n) {
    if (n == nullptr) return;
    destroy(n->left);
    destroy(n->right);
    delete n;
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
  Compare comp_;
};

}  // namespace lot::seq
