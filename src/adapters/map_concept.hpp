// The uniform interface every implementation in this repository satisfies,
// expressed as a C++20 concept. Tests, benchmarks, and examples are
// templated over this concept, so every tree is exercised by the same
// code paths.
#pragma once

#include <concepts>
#include <optional>
#include <string_view>

namespace lot::adapters {

template <typename M>
concept ConcurrentMap = requires(M m, const M cm,
                                 const typename M::key_type& k,
                                 const typename M::mapped_type& v) {
  typename M::key_type;
  typename M::mapped_type;
  { m.insert(k, v) } -> std::same_as<bool>;
  { m.erase(k) } -> std::same_as<bool>;
  { cm.contains(k) } -> std::same_as<bool>;
  { cm.get(k) } -> std::same_as<std::optional<typename M::mapped_type>>;
  { M::name() } -> std::convertible_to<std::string_view>;
};

/// Maps that additionally support ordered access (min/max/for_each); the
/// skip list and all the trees do, hash-style baselines would not.
template <typename M>
concept OrderedMap = ConcurrentMap<M> && requires(const M cm) {
  cm.min();
  cm.max();
};

}  // namespace lot::adapters
