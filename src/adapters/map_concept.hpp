// The uniform interface every implementation in this repository satisfies,
// expressed as a C++20 concept. Tests, benchmarks, and examples are
// templated over this concept, so every tree is exercised by the same
// code paths.
#pragma once

#include <concepts>
#include <optional>
#include <string_view>
#include <utility>

namespace lot::adapters {

template <typename M>
concept ConcurrentMap = requires(M m, const M cm,
                                 const typename M::key_type& k,
                                 const typename M::mapped_type& v) {
  typename M::key_type;
  typename M::mapped_type;
  { m.insert(k, v) } -> std::same_as<bool>;
  { m.erase(k) } -> std::same_as<bool>;
  { cm.contains(k) } -> std::same_as<bool>;
  { cm.get(k) } -> std::same_as<std::optional<typename M::mapped_type>>;
  { M::name() } -> std::convertible_to<std::string_view>;
};

/// Maps that additionally support the full ordered surface — min/max,
/// whole-map iteration, range scans over [lo, hi), and first/last-in-range
/// queries; the skip list and all the trees do, hash-style baselines would
/// not. Consistency is implementation-defined but at least weakly
/// consistent per key (see DESIGN.md §11 for the lo trees' guarantee);
/// callbacks are invoked in strictly ascending key order.
///
/// The callback is spelled as a function pointer here only to give the
/// requires-expression a concrete callable; implementations take any
/// `fn(const K&, const V&)` invocable by template parameter.
template <typename M>
concept OrderedMap =
    ConcurrentMap<M> &&
    requires(const M cm, const typename M::key_type& k,
             void (*fn)(const typename M::key_type&,
                        const typename M::mapped_type&)) {
      {
        cm.min()
      } -> std::same_as<std::optional<
            std::pair<typename M::key_type, typename M::mapped_type>>>;
      {
        cm.max()
      } -> std::same_as<std::optional<
            std::pair<typename M::key_type, typename M::mapped_type>>>;
      cm.for_each(fn);
      cm.range(k, k, fn);
      {
        cm.first_in_range(k, k)
      } -> std::same_as<std::optional<
            std::pair<typename M::key_type, typename M::mapped_type>>>;
      {
        cm.last_in_range(k, k)
      } -> std::same_as<std::optional<
            std::pair<typename M::key_type, typename M::mapped_type>>>;
    };

}  // namespace lot::adapters
