// Unit tests for PRNG, CLI parsing, stats, and the workload specs.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "workload/spec.hpp"

namespace {

using lot::util::Cli;
using lot::util::Xoshiro256;

TEST(Random, Deterministic) {
  Xoshiro256 a(12345);
  Xoshiro256 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Random, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Random, NextInInclusiveBounds) {
  Xoshiro256 rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 50'000; ++i) {
    const auto v = rng.next_in(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, RoughlyUniform) {
  Xoshiro256 rng(42);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) buckets[rng.next_below(10)]++;
  for (int b : buckets) {
    EXPECT_GT(b, kDraws / 10 * 0.9);
    EXPECT_LT(b, kDraws / 10 * 1.1);
  }
}

TEST(Random, PercentExtremes) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.percent(0));
    EXPECT_TRUE(rng.percent(100));
  }
}

TEST(Cli, ParsesTypedFlags) {
  const char* argv[] = {"prog",          "--threads=8", "--secs=2.5",
                        "--name=table1", "--verbose",   "pos1"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("threads", 0), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("secs", 0), 2.5);
  EXPECT_EQ(cli.get_string("name", ""), "table1");
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("absent"));
  EXPECT_EQ(cli.get_int("absent", -7), -7);
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, ParsesIntLists) {
  const char* argv[] = {"prog", "--threads=1,2,4,8"};
  Cli cli(2, const_cast<char**>(argv));
  const auto v = cli.get_int_list("threads", {});
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[3], 8);
  const auto fb = cli.get_int_list("missing", {5});
  ASSERT_EQ(fb.size(), 1u);
  EXPECT_EQ(fb[0], 5);
}

TEST(Stats, SummaryAndPercentile) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const auto s = lot::util::summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(lot::util::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile(xs, 0), 1.0);
}

// Pins the percentile→rank convention (R-7 / "linear"): rank = p/100*(n-1),
// fractional part interpolates between adjacent order statistics. The obs
// latency histogram's quantile walk shares percentile_rank(), so these
// values are load-bearing for telemetry too (obs/histogram.hpp).
TEST(Stats, PercentileRankConvention) {
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(0, 5), 0.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(50, 5), 2.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(100, 5), 4.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(25, 5), 1.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(90, 11), 9.0);
  // Fractional ranks interpolate; out-of-range p clamps, n==0 is safe.
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(50, 4), 1.5);
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(-10, 5), 0.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(110, 5), 4.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(50, 0), 0.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile_rank(50, 1), 0.0);
}

TEST(Stats, PercentileInterpolatesBetweenOrderStatistics) {
  const std::vector<double> xs = {10, 20, 30, 40};
  // rank(50, 4) == 1.5 → halfway between the 2nd and 3rd order statistics.
  EXPECT_DOUBLE_EQ(lot::util::percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile(xs, 75), 32.5);
  // Unsorted input is sorted internally; duplicates are fine.
  EXPECT_DOUBLE_EQ(lot::util::percentile({40, 10, 30, 20}, 50), 25.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile({5, 5, 5}, 90), 5.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(lot::util::percentile({7}, 99), 7.0);
}

TEST(Workload, PaperSpecs) {
  using namespace lot::workload;
  const auto s1 = make_spec(Mix::k100C, 20'000);
  EXPECT_EQ(s1.contains_pct, 100u);
  EXPECT_EQ(s1.prefill_target(), 10'000);

  const auto s2 = make_spec(Mix::k70C20I10R, 30'000);
  EXPECT_EQ(s2.insert_pct, 20u);
  EXPECT_EQ(s2.remove_pct, 10u);
  // 2:1 insert:remove steady state = 2/3 of the range (paper §6).
  EXPECT_EQ(s2.prefill_target(), 20'000);

  const auto s3 = make_spec(Mix::k50C25I25R, 20'000);
  EXPECT_EQ(s3.prefill_target(), 10'000);

  EXPECT_EQ(paper_key_ranges().size(), 3u);
  EXPECT_EQ(paper_mixes().size(), 3u);
}

}  // namespace
