// Concurrent stress tests for the logical-ordering trees. The machine may
// have any number of cores; preemption alone produces adversarial
// interleavings, and every test ends with a full structural validation at
// quiescence.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/validate.hpp"
#include "sync/barrier.hpp"
#include "util/random.hpp"

// Instrumented duplicates of this binary (the *_tsan targets in
// tests/CMakeLists.txt) define LOT_STRESS_DIVISOR ~ 20: ThreadSanitizer
// costs an order of magnitude in throughput, and the interleavings it
// checks do not need as many iterations to surface.
#ifndef LOT_STRESS_DIVISOR
#define LOT_STRESS_DIVISOR 1
#endif

namespace {

constexpr int scaled(int n) {
  return n / LOT_STRESS_DIVISOR > 0 ? n / LOT_STRESS_DIVISOR : 1;
}

using lot::lo::AvlMap;
using lot::lo::BstMap;
using lot::sync::ThreadBarrier;
using lot::util::Xoshiro256;

using K = std::int64_t;
using V = std::int64_t;

template <typename MapT>
class LoConcurrentTest : public ::testing::Test {
 protected:
  static constexpr bool kBalanced = std::is_same_v<MapT, AvlMap<K, V>>;

  void expect_valid(MapT& m) {
    // Strict-height validation asserts the quiescent AVL bound; converge
    // any rotations the contention throttle deferred first (DESIGN.md §13).
    if constexpr (kBalanced) m.repair_balance();
    const auto rep = lot::lo::validate(m, kBalanced);
    EXPECT_TRUE(rep.ok) << rep.to_string();
  }
};

using Impls = ::testing::Types<BstMap<K, V>, AvlMap<K, V>>;
TYPED_TEST_SUITE(LoConcurrentTest, Impls);

// The paper's headline guarantee (Figure 1): a key that is continuously in
// the tree must never be reported absent by a concurrent lookup, no matter
// how much the physical layout churns around it.
TYPED_TEST(LoConcurrentTest, StableKeysAlwaysFoundDuringChurn) {
  TypeParam m;
  constexpr K kStableStride = 10;
  constexpr K kRange = 2'000;
  // Stable keys: multiples of the stride. Writers never touch them.
  for (K k = 0; k < kRange; k += kStableStride) ASSERT_TRUE(m.insert(k, k));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  constexpr int kReaders = 3;
  constexpr int kWriters = 3;
  std::vector<std::thread> threads;

  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const K k = rng.next_below(kRange / kStableStride) * kStableStride;
        if (!m.contains(k)) misses.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(2000 + t);
      for (int i = 0; i < scaled(60'000); ++i) {
        K k = static_cast<K>(rng.next_below(kRange));
        if (k % kStableStride == 0) ++k;  // never a stable key
        if (rng.percent(50)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  // Writers are bounded; stop readers once they are done.
  for (int t = kReaders; t < kReaders + kWriters; ++t) threads[t].join();
  stop = true;
  for (int t = 0; t < kReaders; ++t) threads[t].join();

  EXPECT_EQ(misses.load(), 0u)
      << "lock-free contains missed a key that was always present";
  for (K k = 0; k < kRange; k += kStableStride) EXPECT_TRUE(m.contains(k));
  this->expect_valid(m);
}

// Disjoint key partitions give each thread a deterministic view: the final
// contents must be exactly the union of the per-thread expectations.
TYPED_TEST(LoConcurrentTest, DisjointPartitionsDeterministicResult) {
  TypeParam m;
  constexpr int kThreads = 8;
  constexpr K kPerThread = 512;
  std::vector<std::set<K>> expected(kThreads);
  ThreadBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  std::atomic<bool> op_result_bad{false};

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(42 + t);
      auto& mine = expected[t];
      const K base = static_cast<K>(t) * kPerThread;
      barrier.arrive_and_wait();
      for (int i = 0; i < scaled(40'000); ++i) {
        const K k = base + static_cast<K>(rng.next_below(kPerThread));
        if (rng.percent(60)) {
          const bool did = m.insert(k, k);
          if (did != (mine.count(k) == 0)) op_result_bad = true;
          mine.insert(k);
        } else {
          const bool did = m.erase(k);
          if (did != (mine.count(k) > 0)) op_result_bad = true;
          mine.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(op_result_bad.load())
      << "an operation's return value disagreed with this thread's "
         "single-writer view of its own partition";

  std::set<K> all;
  for (const auto& s : expected) all.insert(s.begin(), s.end());
  EXPECT_EQ(m.size_slow(), all.size());
  for (K k : all) EXPECT_TRUE(m.contains(k));
  std::vector<K> in_order;
  m.for_each([&](K k, V) { in_order.push_back(k); });
  EXPECT_TRUE(std::equal(in_order.begin(), in_order.end(), all.begin(),
                         all.end()));
  this->expect_valid(m);
}

// Fully shared keyspace, all operation types, then structural validation.
TYPED_TEST(LoConcurrentTest, SharedKeyspaceMixedStress) {
  TypeParam m;
  constexpr int kThreads = 8;
  constexpr K kRange = 256;  // small range = maximal contention
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(7 * t + 1);
      for (int i = 0; i < scaled(50'000); ++i) {
        const K k = static_cast<K>(rng.next_below(kRange));
        switch (rng.next_below(3)) {
          case 0:
            m.insert(k, k);
            break;
          case 1:
            m.erase(k);
            break;
          default:
            m.contains(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  this->expect_valid(m);
}

// Heavy two-children removals: a dense tree where erases target internal
// nodes, racing lock-free readers (the hardest path: successor relocation).
TYPED_TEST(LoConcurrentTest, TwoChildRemovalTorture) {
  TypeParam m;
  constexpr K kRange = 4'096;
  for (K k = 0; k < kRange; ++k) ASSERT_TRUE(m.insert(k, k));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> false_negatives{0};
  std::thread reader([&] {
    Xoshiro256 rng(5);
    while (!stop.load(std::memory_order_relaxed)) {
      // Keys ending in 0 are never removed below.
      const K k = rng.next_below(kRange / 10) * 10;
      if (!m.contains(k)) false_negatives.fetch_add(1);
    }
  });

  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      for (int i = 0; i < scaled(40'000); ++i) {
        K k = static_cast<K>(rng.next_below(kRange));
        if (k % 10 == 0) ++k;
        if (rng.percent(50)) {
          m.erase(k);
        } else {
          m.insert(k, k);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  stop = true;
  reader.join();

  EXPECT_EQ(false_negatives.load(), 0u);
  this->expect_valid(m);
}

// min/max under concurrent removal of extremes must return some key that
// is plausible (within the live range) and never crash or loop forever.
TYPED_TEST(LoConcurrentTest, MinMaxUnderChurn) {
  TypeParam m;
  constexpr K kRange = 1'000;
  for (K k = 0; k < kRange; ++k) ASSERT_TRUE(m.insert(k, k));
  // Key kRange is a floor that is never removed, so min()/max() always
  // have something to return.
  ASSERT_TRUE(m.insert(kRange, kRange));

  std::atomic<bool> stop{false};
  std::atomic<bool> bad{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto mn = m.min();
      const auto mx = m.max();
      if (!mn || !mx || mn->first > mx->first || mn->first < 0 ||
          mx->first > kRange) {
        bad = true;
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(31 + t);
      for (int i = 0; i < scaled(30'000); ++i) {
        const K k = static_cast<K>(rng.next_below(kRange));
        if (rng.percent(50)) {
          m.erase(k);
        } else {
          m.insert(k, k);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  stop = true;
  observer.join();
  EXPECT_FALSE(bad.load());
  this->expect_valid(m);
}

// Insert/erase of the same single key from many threads: the mark/interval
// protocol must serialize them so that success alternates coherently.
TYPED_TEST(LoConcurrentTest, SingleKeyContention) {
  TypeParam m;
  constexpr int kThreads = 8;
  std::atomic<long> successful_inserts{0};
  std::atomic<long> successful_erases{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < scaled(30'000); ++i) {
        if (rng.percent(50)) {
          if (m.insert(77, t)) successful_inserts.fetch_add(1);
        } else {
          if (m.erase(77)) successful_erases.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const long delta = successful_inserts.load() - successful_erases.load();
  ASSERT_TRUE(delta == 0 || delta == 1);
  EXPECT_EQ(m.contains(77), delta == 1);
  EXPECT_EQ(m.size_slow(), static_cast<std::size_t>(delta));
  this->expect_valid(m);
}

// Ordered iteration while the tree churns: iteration must terminate, yield
// strictly increasing keys, and include every key that was never touched.
TYPED_TEST(LoConcurrentTest, IterationDuringChurn) {
  TypeParam m;
  constexpr K kRange = 2'000;
  std::set<K> stable;
  for (K k = 0; k < kRange; k += 7) {
    ASSERT_TRUE(m.insert(k, k));
    stable.insert(k);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(400 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        K k = static_cast<K>(rng.next_below(kRange));
        if (k % 7 == 0) ++k;
        if (rng.percent(50)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }

  for (int round = 0; round < scaled(50); ++round) {
    std::vector<K> seen;
    m.for_each([&](K k, V) { seen.push_back(k); });
    for (std::size_t i = 1; i < seen.size(); ++i) {
      ASSERT_LT(seen[i - 1], seen[i]) << "iteration keys out of order";
    }
    std::set<K> seen_set(seen.begin(), seen.end());
    for (K k : stable) ASSERT_TRUE(seen_set.count(k)) << k;
  }
  stop = true;
  for (auto& th : writers) th.join();
  this->expect_valid(m);
}

// AVL-specific: after heavy parallel churn and quiescence, the tree must be
// strictly balanced (Bougé et al.'s guarantee, paper §2 and §4.5).
TEST(LoAvlConcurrent, QuiescentStrictBalanceAfterParallelChurn) {
  AvlMap<K, V> m;
  constexpr int kThreads = 8;
  constexpr K kRange = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(77 + t);
      for (int i = 0; i < scaled(60'000); ++i) {
        const K k = static_cast<K>(rng.next_below(kRange));
        if (rng.percent(55)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  m.repair_balance();  // converge throttle-deferred rotations (quiescent)
  const auto rep = lot::lo::validate(m, /*check_heights=*/true);
  ASSERT_TRUE(rep.ok) << rep.to_string();
  EXPECT_GT(rep.chain_nodes, 0u);
}

// Memory-reclamation integration: churn a dedicated domain hard, then
// verify the retire pipeline drains at quiescence.
TEST(LoReclaim, NodesAreReclaimedNotLeaked) {
  lot::reclaim::EbrDomain domain;
  const auto live_before = lot::reclaim::AllocStats::live();
  {
    BstMap<K, V> m(domain);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(t);
        for (int i = 0; i < scaled(40'000); ++i) {
          const K k = static_cast<K>(rng.next_below(128));
          if (rng.percent(50)) {
            m.insert(k, k);
          } else {
            m.erase(k);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    domain.flush();
    domain.flush();
    domain.flush();
    // At quiescence: retired backlog fully freed.
    EXPECT_EQ(domain.pending_retired(), 0u);
    // Live allocations = chain nodes + 2 sentinels (modulo other tests'
    // trees using the global counters — hence a dedicated check via size).
    EXPECT_LE(m.size_slow(), 128u);
  }
  // Tree destroyed: every node it ever allocated must be freed.
  EXPECT_EQ(lot::reclaim::AllocStats::live(), live_before);
}

}  // namespace
