// Tests for the ordered-access extensions built on the logical ordering
// (paper §4.7 and natural follow-ons): range scans, successor/predecessor
// queries, min/max — sequential semantics and behaviour under churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/mvcc.hpp"
#include "lo/partial.hpp"
#include "lo/validate.hpp"
#include "shard/sharded_map.hpp"
#include "util/random.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
using lot::lo::AvlMap;
using lot::lo::BstMap;
using lot::lo::PartialAvlMap;
using lot::lo::PartialBstMap;
using lot::util::Xoshiro256;

// The ordered surface lives once in lo/core.hpp, so the same suite runs
// over both removal policies: the churn tests race scans against on-time
// relocation (LoMap) and against revive-in-place / zombie chains
// (PartialMap) with no per-type code.
template <typename MapT>
class OrderedApiTest : public ::testing::Test {};
using Impls = ::testing::Types<BstMap<K, V>, AvlMap<K, V>,
                               PartialBstMap<K, V>, PartialAvlMap<K, V>>;
TYPED_TEST_SUITE(OrderedApiTest, Impls);

TYPED_TEST(OrderedApiTest, RangeBasics) {
  TypeParam m;
  for (K k = 0; k < 100; k += 10) ASSERT_TRUE(m.insert(k, k * 2));

  std::vector<K> got;
  m.range(25, 75, [&](K k, V v) {
    got.push_back(k);
    EXPECT_EQ(v, k * 2);
  });
  EXPECT_EQ(got, (std::vector<K>{30, 40, 50, 60, 70}));

  // Inclusive lower bound, exclusive upper bound.
  got.clear();
  m.range(30, 70, [&](K k, V) { got.push_back(k); });
  EXPECT_EQ(got, (std::vector<K>{30, 40, 50, 60}));

  // Empty and degenerate ranges.
  got.clear();
  m.range(41, 49, [&](K k, V) { got.push_back(k); });
  EXPECT_TRUE(got.empty());
  m.range(50, 50, [&](K k, V) { got.push_back(k); });
  EXPECT_TRUE(got.empty());
  m.range(70, 30, [&](K k, V) { got.push_back(k); });
  EXPECT_TRUE(got.empty());

  // Ranges covering everything / beyond the extremes.
  got.clear();
  m.range(-1'000, 1'000, [&](K k, V) { got.push_back(k); });
  EXPECT_EQ(got.size(), 10u);
}

TYPED_TEST(OrderedApiTest, NextPrevBasics) {
  TypeParam m;
  for (K k : {10, 20, 30, 40}) ASSERT_TRUE(m.insert(k, k));

  EXPECT_EQ(m.next(5).value().first, 10);
  EXPECT_EQ(m.next(10).value().first, 20);
  EXPECT_EQ(m.next(15).value().first, 20);
  EXPECT_EQ(m.next(39).value().first, 40);
  EXPECT_FALSE(m.next(40).has_value());
  EXPECT_FALSE(m.next(100).has_value());

  EXPECT_FALSE(m.prev(10).has_value());
  EXPECT_FALSE(m.prev(5).has_value());
  EXPECT_EQ(m.prev(11).value().first, 10);
  EXPECT_EQ(m.prev(40).value().first, 30);
  EXPECT_EQ(m.prev(100).value().first, 40);
}

TYPED_TEST(OrderedApiTest, NextPrevDifferentialVsStdMap) {
  TypeParam m;
  std::map<K, V> oracle;
  Xoshiro256 rng(12);
  for (int i = 0; i < 20'000; ++i) {
    const K k = rng.next_in(0, 499);
    if (rng.percent(60)) {
      m.insert(k, k);
      oracle.emplace(k, k);
    } else {
      m.erase(k);
      oracle.erase(k);
    }
    if (i % 10 == 0) {
      const K probe = rng.next_in(-5, 505);
      const auto nx = m.next(probe);
      auto it = oracle.upper_bound(probe);
      ASSERT_EQ(nx.has_value(), it != oracle.end()) << probe;
      if (nx) {
        ASSERT_EQ(nx->first, it->first) << probe;
      }

      const auto pv = m.prev(probe);
      auto lo = oracle.lower_bound(probe);
      ASSERT_EQ(pv.has_value(), lo != oracle.begin()) << probe;
      if (pv) {
        ASSERT_EQ(pv->first, std::prev(lo)->first) << probe;
      }
    }
  }
}

TYPED_TEST(OrderedApiTest, RangeDifferentialVsStdMap) {
  TypeParam m;
  std::map<K, V> oracle;
  Xoshiro256 rng(13);
  for (int i = 0; i < 5'000; ++i) {
    const K k = rng.next_in(0, 999);
    if (rng.percent(55)) {
      m.insert(k, k);
      oracle.emplace(k, k);
    } else {
      m.erase(k);
      oracle.erase(k);
    }
    if (i % 50 == 0) {
      const K lo = rng.next_in(0, 900);
      const K hi = lo + rng.next_in(1, 100);
      std::vector<K> mine;
      m.range(lo, hi, [&](K key, V) { mine.push_back(key); });
      std::vector<K> expect;
      for (auto it = oracle.lower_bound(lo);
           it != oracle.end() && it->first < hi; ++it) {
        expect.push_back(it->first);
      }
      ASSERT_EQ(mine, expect) << "[" << lo << "," << hi << ")";
    }
  }
}

TYPED_TEST(OrderedApiTest, FirstLastInRangeBasics) {
  TypeParam m;
  EXPECT_FALSE(m.first_in_range(0, 100).has_value());
  EXPECT_FALSE(m.last_in_range(0, 100).has_value());
  for (K k = 0; k < 100; k += 10) ASSERT_TRUE(m.insert(k, k * 2));

  const auto f = m.first_in_range(25, 75);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->first, 30);
  EXPECT_EQ(f->second, 60);
  const auto l = m.last_in_range(25, 75);
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(l->first, 70);
  EXPECT_EQ(l->second, 140);

  // Inclusive lower bound, exclusive upper bound.
  EXPECT_EQ(m.first_in_range(30, 70)->first, 30);
  EXPECT_EQ(m.last_in_range(30, 70)->first, 60);

  // Empty and degenerate ranges.
  EXPECT_FALSE(m.first_in_range(41, 49).has_value());
  EXPECT_FALSE(m.last_in_range(41, 49).has_value());
  EXPECT_FALSE(m.first_in_range(50, 50).has_value());
  EXPECT_FALSE(m.last_in_range(50, 50).has_value());
  EXPECT_FALSE(m.first_in_range(70, 30).has_value());
  EXPECT_FALSE(m.last_in_range(70, 30).has_value());

  // Whole-domain queries agree with min/max.
  EXPECT_EQ(m.first_in_range(-1'000, 1'000)->first, m.min()->first);
  EXPECT_EQ(m.last_in_range(-1'000, 1'000)->first, m.max()->first);
}

TYPED_TEST(OrderedApiTest, FirstLastInRangeDifferentialVsStdMap) {
  TypeParam m;
  std::map<K, V> oracle;
  Xoshiro256 rng(14);
  for (int i = 0; i < 5'000; ++i) {
    const K k = rng.next_in(0, 999);
    if (rng.percent(55)) {
      m.insert(k, k);
      oracle.emplace(k, k);
    } else {
      m.erase(k);
      oracle.erase(k);
    }
    if (i % 50 == 0) {
      const K lo = rng.next_in(0, 900);
      const K hi = lo + rng.next_in(1, 100);
      const auto first = m.first_in_range(lo, hi);
      const auto last = m.last_in_range(lo, hi);
      auto it = oracle.lower_bound(lo);
      const bool any = it != oracle.end() && it->first < hi;
      ASSERT_EQ(first.has_value(), any) << "[" << lo << "," << hi << ")";
      ASSERT_EQ(last.has_value(), any) << "[" << lo << "," << hi << ")";
      if (any) {
        ASSERT_EQ(first->first, it->first);
        ASSERT_EQ(last->first, std::prev(oracle.lower_bound(hi))->first);
      }
    }
  }
}

// Keys inside the scanned range that are never touched by writers must
// always appear in a concurrent range scan; keys outside never.
TYPED_TEST(OrderedApiTest, RangeDuringChurnSeesStableKeys) {
  TypeParam m;
  constexpr K kRange = 3'000;
  std::set<K> stable;
  for (K k = 1'000; k < 2'000; k += 10) {
    ASSERT_TRUE(m.insert(k, k));
    stable.insert(k);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(600 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        K k = static_cast<K>(rng.next_below(kRange));
        if (k % 10 == 0 && k >= 1'000 && k < 2'000) ++k;
        if (rng.percent(50)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }

  for (int round = 0; round < 200; ++round) {
    std::vector<K> seen;
    m.range(1'000, 2'000, [&](K k, V) { seen.push_back(k); });
    for (std::size_t i = 1; i < seen.size(); ++i) {
      ASSERT_LT(seen[i - 1], seen[i]);
    }
    std::set<K> seen_set(seen.begin(), seen.end());
    for (K k : stable) ASSERT_TRUE(seen_set.count(k)) << k;
    for (K k : seen) {
      ASSERT_GE(k, 1'000);
      ASSERT_LT(k, 2'000);
    }
  }
  stop = true;
  for (auto& th : writers) th.join();
}

TYPED_TEST(OrderedApiTest, CursorIteratesInOrder) {
  TypeParam m;
  for (K k : {30, 10, 50, 20, 40}) ASSERT_TRUE(m.insert(k, k * 3));
  auto c = m.cursor();
  std::vector<K> got;
  while (auto e = c.next()) {
    got.push_back(e->first);
    EXPECT_EQ(e->second, e->first * 3);
  }
  EXPECT_EQ(got, (std::vector<K>{10, 20, 30, 40, 50}));
  EXPECT_FALSE(c.next().has_value());  // stays exhausted
}

TYPED_TEST(OrderedApiTest, CursorOnEmptyMap) {
  TypeParam m;
  auto c = m.cursor();
  EXPECT_FALSE(c.next().has_value());
}

TYPED_TEST(OrderedApiTest, CursorSurvivesRemovalOfCurrentKey) {
  TypeParam m;
  for (K k = 0; k < 100; k += 10) ASSERT_TRUE(m.insert(k, k));
  auto c = m.cursor();
  auto e = c.next();
  ASSERT_EQ(e->first, 0);
  // Remove the key the cursor sits on plus the next one; the cursor must
  // keep walking through the retired nodes' still-valid succ pointers.
  ASSERT_TRUE(m.erase(0));
  ASSERT_TRUE(m.erase(10));
  e = c.next();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->first, 20);
}

TYPED_TEST(OrderedApiTest, CursorDuringChurnMonotone) {
  TypeParam m;
  constexpr K kRange = 1'000;
  for (K k = 0; k < kRange; k += 4) ASSERT_TRUE(m.insert(k, k));
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      K k = static_cast<K>(rng.next_below(kRange));
      if (k % 4 == 0) ++k;
      if (rng.percent(50)) {
        m.insert(k, k);
      } else {
        m.erase(k);
      }
    }
  });
  for (int round = 0; round < 300; ++round) {
    auto c = m.cursor();
    K last = -1;
    std::size_t stable_seen = 0;
    while (auto e = c.next()) {
      ASSERT_GT(e->first, last);
      last = e->first;
      if (e->first % 4 == 0) ++stable_seen;
    }
    ASSERT_EQ(stable_seen, kRange / 4);  // untouched keys always appear
  }
  stop = true;
  writer.join();
}

// Succ/pred traversals interleaved with recorded insert/remove churn,
// validated by the linearizability checker (src/check/): every key a
// next()/prev() query returns must have been present at some instant
// inside the query's own interval, so it is recorded as a
// contains(key)=true observation; the combined history must admit a
// linearization. This catches a traversal handing out a key that was
// never live during the query — e.g. read through a stale pointer — which
// the purely structural assertions above cannot see.
TYPED_TEST(OrderedApiTest, SuccPredObservationsLinearizable) {
  TypeParam m;
  constexpr K kRange = 64;
  constexpr unsigned kWriters = 3;
  constexpr unsigned kObservers = 2;
  constexpr int kWriterOps = 6'000;
  constexpr int kObserverOps = 4'000;
  lot::check::HistoryRecorder<K> rec(kWriters + kObservers,
                                     kWriterOps + kRange + 8);

  // Recorded prefill on writer 0's log: even keys present.
  for (K k = 0; k < kRange; k += 2) {
    rec.record(0, lot::check::Op::kInsert, k, [&] { return m.insert(k, k); });
  }

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kWriters; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(900 + t);
      for (int i = 0; i < kWriterOps; ++i) {
        const K k = static_cast<K>(rng.next_below(kRange));
        if (rng.percent(50)) {
          rec.record(t, lot::check::Op::kInsert, k,
                     [&] { return m.insert(k, k); });
        } else {
          rec.record(t, lot::check::Op::kRemove, k,
                     [&] { return m.erase(k); });
        }
      }
    });
  }
  for (unsigned o = 0; o < kObservers; ++o) {
    const auto tid = static_cast<std::uint16_t>(kWriters + o);
    workers.emplace_back([&, tid] {
      Xoshiro256 rng(990u + tid);
      for (int i = 0; i < kObserverOps; ++i) {
        const K probe = static_cast<K>(rng.next_below(kRange));
        const bool forward = rng.percent(50);
        const auto t0 = rec.tick();
        const auto r = forward ? m.next(probe) : m.prev(probe);
        const auto t1 = rec.tick();
        if (r.has_value()) {
          ASSERT_TRUE(forward ? r->first > probe : r->first < probe);
          rec.log(tid).push(lot::check::Event<K>{
              t0, t1, r->first, lot::check::Op::kContains, true, tid});
        }
      }
    });
  }
  for (auto& th : workers) th.join();

  ASSERT_FALSE(rec.overflowed());
  const auto res = lot::check::check_set_history(rec.merged());
  EXPECT_TRUE(res.ok()) << res.reason << "\n"
                        << lot::check::format_history(res.witness);
  EXPECT_GT(res.stats.events,
            static_cast<std::size_t>(kWriters) * kWriterOps);
}

// Writers continuously erase-then-reinsert the same keys with
// generation-tagged values. On the logical-removing maps the reinsert
// usually lands as a revive-in-place of the still-linked zombie node
// (value store + deleted clear on the same node), so a racing scan walks
// straight through the revive window. The invariant a scan must uphold:
// every (key, value) pair it reports was actually stored for that key at
// some point — a torn read, a stale detached node, or a value observed
// *after* deciding presence from an older state would all break the
// value % kRange == key encoding.
TYPED_TEST(OrderedApiTest, RangeValuesConsistentUnderReviveChurn) {
  TypeParam m;
  constexpr K kRange = 256;
  for (K k = 0; k < kRange; ++k) ASSERT_TRUE(m.insert(k, k));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(810 + t);
      K gen = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        const K k = static_cast<K>(rng.next_below(kRange));
        m.erase(k);
        m.insert(k, k + kRange * gen);
        gen = (gen % 7) + 1;
      }
    });
  }
  for (int round = 0; round < 300; ++round) {
    K last = -1;
    m.range(0, kRange, [&](K k, V v) {
      ASSERT_GT(k, last);
      last = k;
      ASSERT_EQ(v % kRange, k) << "scan reported a value never stored "
                                  "for this key";
    });
  }
  stop = true;
  for (auto& th : writers) th.join();
}

// Logical-removing maps only: scans racing opportunistic purges. One
// thread repeatedly calls purge_all() — physically unlinking zombies whose
// chain positions a concurrent scan may be standing on — while writers
// churn; stable keys must still always appear, and the walk must stay
// strictly ascending (retired nodes' succ pointers remain valid under
// EBR, exactly the cursor-survives-removal argument).
TYPED_TEST(OrderedApiTest, ScanRacesOpportunisticPurge) {
  if constexpr (TypeParam::kLogicalRemoving) {
    TypeParam m;
    constexpr K kRange = 2'000;
    std::set<K> stable;
    for (K k = 0; k < kRange; k += 10) {
      ASSERT_TRUE(m.insert(k, k));
      stable.insert(k);
    }
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < 2; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(820 + t);
        while (!stop.load(std::memory_order_relaxed)) {
          K k = static_cast<K>(rng.next_below(kRange));
          if (k % 10 == 0) ++k;  // never touch the stable keys
          if (rng.percent(50)) {
            m.insert(k, k);
          } else {
            m.erase(k);
          }
        }
      });
    }
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        m.purge_all();
      }
    });

    for (int round = 0; round < 200; ++round) {
      std::vector<K> seen;
      m.range(0, kRange, [&](K k, V) { seen.push_back(k); });
      for (std::size_t i = 1; i < seen.size(); ++i) {
        ASSERT_LT(seen[i - 1], seen[i]);
      }
      std::set<K> seen_set(seen.begin(), seen.end());
      for (K k : stable) ASSERT_TRUE(seen_set.count(k)) << k;
    }
    stop = true;
    for (auto& th : workers) th.join();

    // No assertion on how much the purger reclaimed: every zombie
    // child-count drop from an erase is usually caught by that erase's
    // own try_purge(parent) hook, and under a near-serial schedule (this
    // suite runs oversubscribed) the sweeps can legitimately find
    // nothing — even the balanced variant's rotation-orphaned zombies
    // are a scheduling accident, not a guarantee. purge_all() actually
    // reclaiming is pinned down deterministically by the cascade test in
    // test_lo_partial.cpp; here it only has to never break a scan. A
    // final quiescent sweep still runs so validate sees the purged shape.
    m.purge_all();

    if constexpr (TypeParam::kBalanced) {
      m.repair_balance();  // converge throttle-deferred rotations
    }
    const auto rep = lot::lo::validate(m, TypeParam::kBalanced,
                                       /*partial=*/true);
    EXPECT_TRUE(rep.ok) << rep.to_string();
  } else {
    GTEST_SKIP() << "purge_all() exists only on the logical-removing maps";
  }
}

// next() chains must always move strictly forward, even under churn (no
// duplicates, no regressions — the succ-walk termination argument).
TYPED_TEST(OrderedApiTest, NextChainMonotoneUnderChurn) {
  TypeParam m;
  constexpr K kRange = 2'000;
  for (K k = 0; k < kRange; k += 5) ASSERT_TRUE(m.insert(k, k));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(700 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        K k = static_cast<K>(rng.next_below(kRange));
        if (k % 5 == 0) ++k;
        if (rng.percent(50)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }

  for (int round = 0; round < 100; ++round) {
    K cursor = -1;
    std::size_t steps = 0;
    for (;;) {
      const auto nx = m.next(cursor);
      if (!nx) break;
      ASSERT_GT(nx->first, cursor);
      cursor = nx->first;
      ASSERT_LT(++steps, 10'000u);  // termination guard
    }
    ASSERT_GE(steps, kRange / 5);  // at least all the stable keys
  }
  stop = true;
  for (auto& th : writers) th.join();
}

// ------------------------------------------------------------- snapshots
//
// MVCC snapshot views (DESIGN.md §16). LOT_MVCC=OFF keeps the pre-MVCC
// weak-scan contract bit-for-bit: the scaffolding collapses to empty
// stand-ins exactly like the LOT_OBS / LOT_HEALTH off-gates, the node
// sheds its stamp fields, and snapshot() disappears from the API.

#if defined(LOT_DISABLE_MVCC)

static_assert(!lot::lo::mvcc::kEnabled);
static_assert(std::is_empty_v<lot::lo::mvcc::EpochSource>,
              "MVCC-off epoch source must stay an empty type");
static_assert(std::is_empty_v<lot::lo::mvcc::SnapshotRegistry>,
              "MVCC-off snapshot registry must stay an empty type");
static_assert(
    std::is_empty_v<lot::lo::mvcc::LimboList<int>>,
    "MVCC-off limbo list must stay an empty type");
// And snapshot() itself must be compiled out, not stubbed.
template <typename M>
concept HasSnapshot = requires(const M& m) { m.snapshot(); };
static_assert(!HasSnapshot<PartialAvlMap<K, V>>,
              "MVCC-off maps must not expose snapshot()");
static_assert(!HasSnapshot<lot::shard::ShardedMap<PartialAvlMap<K, V>, 4>>,
              "MVCC-off sharded maps must not expose snapshot()");

#else  // MVCC on

static_assert(lot::lo::mvcc::kEnabled);

// A snapshot is an immutable cut: writes landing after the cut — erases,
// fresh inserts, revives — never leak into the view, while the live map
// moves on.
TYPED_TEST(OrderedApiTest, SnapshotIsAnImmutableCut) {
  TypeParam m;
  for (K k = 0; k < 100; k += 2) ASSERT_TRUE(m.insert(k, k * 3));
  const auto snap = m.snapshot();

  for (K k = 0; k < 100; k += 2) ASSERT_TRUE(m.erase(k));
  for (K k = 1; k < 100; k += 2) ASSERT_TRUE(m.insert(k, k));
  // On the logical-removing maps this is a revive burst over the zombies
  // the erases left behind; either way the live map changed completely.
  for (K k = 0; k < 100; k += 4) ASSERT_TRUE(m.insert(k, k + 500));

  std::vector<std::pair<K, V>> got;
  snap.for_each([&](K k, V v) { got.emplace_back(k, v); });
  ASSERT_EQ(got.size(), 50u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, static_cast<K>(2 * i));
    EXPECT_EQ(got[i].second, static_cast<V>(2 * i) * 3);
  }
  EXPECT_TRUE(snap.contains(4));
  EXPECT_FALSE(snap.contains(5));
  EXPECT_EQ(snap.get(8), std::optional<V>(24));

  std::vector<K> ranged;
  snap.range(10, 20, [&](K k, V v) {
    ranged.push_back(k);
    EXPECT_EQ(v, k * 3);
  });
  EXPECT_EQ(ranged, (std::vector<K>{10, 12, 14, 16, 18}));

  // The live map reflects the writes the snapshot must not.
  EXPECT_FALSE(m.contains(2));
  EXPECT_EQ(m.get(0), std::optional<V>(500));
  EXPECT_TRUE(m.contains(5));
}

// Two snapshots straddling a single write disagree by exactly that write
// — the cut is a point, not a window.
TYPED_TEST(OrderedApiTest, SnapshotsStraddlingOneWriteDifferByExactlyIt) {
  TypeParam m;
  for (K k = 0; k < 64; k += 2) ASSERT_TRUE(m.insert(k, k));

  const auto s1 = m.snapshot();
  ASSERT_TRUE(m.insert(33, 330));
  const auto s2 = m.snapshot();
  EXPECT_GE(s2.epoch(), s1.epoch());

  std::set<K> k1, k2;
  s1.for_each([&](K k, V) { k1.insert(k); });
  s2.for_each([&](K k, V) { k2.insert(k); });
  EXPECT_EQ(k1.count(33), 0u);
  EXPECT_EQ(k2.count(33), 1u);
  k2.erase(33);
  EXPECT_EQ(k1, k2) << "the snapshots differ beyond the straddled write";

  // Same point claim for an erase.
  const auto s3 = m.snapshot();
  ASSERT_TRUE(m.erase(33));
  const auto s4 = m.snapshot();
  EXPECT_TRUE(s3.contains(33));
  EXPECT_FALSE(s4.contains(33));
  std::set<K> k3, k4;
  s3.for_each([&](K k, V) { k3.insert(k); });
  s4.for_each([&](K k, V) { k4.insert(k); });
  k3.erase(33);
  EXPECT_EQ(k3, k4);
}

// The hard case (logical removing only): a snapshot taken over a zombie
// field, then a revive burst (each revive folds the outgoing incarnation
// into the version chain the snapshot must resolve through) and a
// purge_all that physically unlinks nodes the cut still contains (they
// park in limbo because the snapshot's epoch pins them). The cut must
// come through untouched.
TYPED_TEST(OrderedApiTest, SnapshotSurvivesReviveBurstAndPurgeAll) {
  if constexpr (!TypeParam::kLogicalRemoving) {
    GTEST_SKIP() << "revive/purge are logical-removing machinery";
  } else {
    TypeParam m;
    for (K k = 0; k < 60; ++k) ASSERT_TRUE(m.insert(k, k));
    for (K k = 0; k < 60; k += 3) ASSERT_TRUE(m.erase(k));  // zombies

    auto snap = m.snapshot();  // cut: k % 3 != 0, value k

    for (K k = 0; k < 60; k += 3) {
      ASSERT_TRUE(m.insert(k, k + 1000));  // revive burst
    }
    for (K k = 1; k < 60; k += 3) ASSERT_TRUE(m.erase(k));
    m.purge_all();  // unlink the new zombies under the pinned snapshot

    std::size_t seen = 0;
    snap.for_each([&](K k, V v) {
      EXPECT_NE(k % 3, 0) << "revived-after-cut key leaked into the cut";
      EXPECT_EQ(v, k) << "post-cut value leaked into the cut";
      ++seen;
    });
    EXPECT_EQ(seen, 40u);
    EXPECT_FALSE(snap.contains(0));
    EXPECT_EQ(snap.get(1), std::optional<V>(1))
        << "purged-under-snapshot key lost from the cut";
    EXPECT_EQ(snap.get(2), std::optional<V>(2));

    // Releasing the pin lets limbo drain on the next prune.
    snap.release();
    EXPECT_EQ(m.debug_active_snapshots(), 0u);
    m.purge_all();
    EXPECT_EQ(m.debug_limbo_size(), 0u);
  }
}

// Composite sharded snapshot: per-shard views adopted at ONE shared epoch
// form a single cut of the whole map. A sequential writer makes that
// testable exactly: any single point of its history is a prefix of the
// insertion order, so a composite snapshot whose per-shard cuts were
// taken at different instants would show a hole.
TEST(ShardedSnapshotTest, ComposesOneCutAcrossShards) {
  using Sharded = lot::shard::ShardedMap<PartialAvlMap<K, V>, 4>;
  Sharded m;

  // Insertion order chosen to hop shards on every write (router blocks
  // are 64 keys; key (i%4)*64 + i/4 routes to shard i%4).
  std::vector<K> order;
  for (K i = 0; i < 256; ++i) order.push_back((i % 4) * 64 + i / 4);

  std::atomic<bool> go{false};
  std::thread writer([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (const K k : order) {
      ASSERT_TRUE(m.insert(k, k));
    }
  });

  go.store(true, std::memory_order_release);
  for (int round = 0; round < 64; ++round) {
    const auto snap = m.snapshot();
    std::vector<K> got;
    snap.for_each([&](K k, V) { got.push_back(k); });
    // The observed set must be exactly the first got.size() inserted
    // keys — one point of the writer's history, across all four shards.
    std::vector<K> expect(order.begin(),
                          order.begin() + static_cast<std::ptrdiff_t>(
                                              got.size()));
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect)
        << "composite snapshot is not a single cut (round " << round << ")";
    // Point reads through the same snapshot agree with the cut.
    if (!got.empty()) {
      EXPECT_TRUE(snap.contains(got.front()));
      EXPECT_EQ(snap.get(got.back()), std::optional<V>(got.back()));
    }
  }
  writer.join();

  // Quiescent: the finished writer's full set is one (trivial) cut.
  const auto snap = m.snapshot();
  std::size_t n = 0;
  snap.for_each([&](K, V) { ++n; });
  EXPECT_EQ(n, order.size());
  // All four shards share the one clock the composition relies on.
  for (unsigned i = 0; i < Sharded::shard_count(); ++i) {
    EXPECT_EQ(&m.shard_map(i).epoch_source(), &m.epoch_source());
  }
}

#endif  // LOT_DISABLE_MVCC

}  // namespace
