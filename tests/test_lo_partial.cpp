// Tests for the "logical removing" (partially-external) variant: revive
// semantics, zombie accounting, opportunistic purge, and the same
// concurrent torture the main trees get.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <vector>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "lo/partial.hpp"
#include "lo/validate.hpp"
#include "util/random.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
using lot::lo::PartialAvlMap;
using lot::lo::PartialBstMap;
using lot::util::Xoshiro256;

template <typename MapT>
class LoPartialTest : public ::testing::Test {
 protected:
  static constexpr bool kBalanced = std::is_same_v<MapT, PartialAvlMap<K, V>>;

  void expect_valid(MapT& m) {
    // Strict-height validation asserts the quiescent AVL bound; converge
    // any rotations the contention throttle deferred first (DESIGN.md §13).
    if constexpr (kBalanced) m.repair_balance();
    const auto rep = lot::lo::validate(m, kBalanced, /*partial=*/true);
    EXPECT_TRUE(rep.ok) << rep.to_string();
  }
};

using Impls = ::testing::Types<PartialBstMap<K, V>, PartialAvlMap<K, V>>;
TYPED_TEST_SUITE(LoPartialTest, Impls);

TYPED_TEST(LoPartialTest, BasicRoundTrip) {
  TypeParam m;
  EXPECT_TRUE(m.insert(5, 50));
  EXPECT_FALSE(m.insert(5, 51));
  EXPECT_EQ(m.get(5).value(), 50);
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.contains(5));
  EXPECT_FALSE(m.erase(5));
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, TwoChildRemovalLeavesZombie) {
  TypeParam m;
  for (K k : {50, 25, 75}) ASSERT_TRUE(m.insert(k, k));
  ASSERT_TRUE(m.erase(50));  // two children: logical removal
  EXPECT_FALSE(m.contains(50));
  EXPECT_EQ(m.size_slow(), 2u);
  // The zombie still occupies a physical node.
  EXPECT_EQ(m.physical_nodes_slow(), 3u);
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, ReviveReusesNodeAndUpdatesValue) {
  TypeParam m;
  for (K k : {50, 25, 75}) ASSERT_TRUE(m.insert(k, k));
  ASSERT_TRUE(m.erase(50));
  const auto before = lot::reclaim::AllocStats::allocated().load();
  ASSERT_TRUE(m.insert(50, 999));  // revive reuses the node
#if defined(LOT_DISABLE_MVCC)
  // Allocation-free — the point of the logical-removing variant.
  EXPECT_EQ(lot::reclaim::AllocStats::allocated().load(), before);
#else
  // The node is reused, but the revive folds the outgoing incarnation
  // into one PastVersion record for snapshot readers (DESIGN.md §16).
  EXPECT_EQ(lot::reclaim::AllocStats::allocated().load(), before + 1);
#endif
  EXPECT_EQ(m.get(50).value(), 999);
  EXPECT_EQ(m.size_slow(), 3u);
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, LeafRemovalIsPhysical) {
  TypeParam m;
  for (K k : {50, 25, 75}) ASSERT_TRUE(m.insert(k, k));
  ASSERT_TRUE(m.erase(25));  // leaf: physical removal
  EXPECT_EQ(m.physical_nodes_slow(), 2u);
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, PurgeDrainsZombies) {
  TypeParam m;
  // Median-order fill so internal nodes have two children, then erase
  // every key: two-children erases leave zombies. A zombie with two live
  // children is *not* purgeable (that is the design's cost); once all
  // keys are logically gone, purging must cascade the whole tree away.
  std::vector<K> order;
  const std::function<void(K, K)> fill = [&](K lo, K hi) {
    if (lo > hi) return;
    const K mid = lo + (hi - lo) / 2;
    order.push_back(mid);
    fill(lo, mid - 1);
    fill(mid + 1, hi);
  };
  fill(0, 62);
  for (K k : order) ASSERT_TRUE(m.insert(k, k));
  for (K k = 0; k <= 62; ++k) ASSERT_TRUE(m.erase(k));
  EXPECT_EQ(m.size_slow(), 0u);
  m.purge_all();
  EXPECT_EQ(m.physical_nodes_slow(), 0u);  // all zombies cascaded away
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, DifferentialVsStdMap) {
  TypeParam m;
  std::map<K, V> oracle;
  Xoshiro256 rng(11);
  for (int i = 0; i < 100'000; ++i) {
    const K k = rng.next_in(0, 399);
    switch (rng.next_below(4)) {
      case 0:
        ASSERT_EQ(m.insert(k, i), oracle.emplace(k, i).second) << k;
        break;
      case 1:
        ASSERT_EQ(m.erase(k), oracle.erase(k) > 0) << k;
        break;
      case 2:
        ASSERT_EQ(m.contains(k), oracle.count(k) > 0) << k;
        break;
      default: {
        const auto mine = m.get(k);
        ASSERT_EQ(mine.has_value(), oracle.count(k) > 0) << k;
      }
    }
  }
  ASSERT_EQ(m.size_slow(), oracle.size());
  auto it = oracle.begin();
  m.for_each([&](K k, V) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(it->first, k);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());
  this->expect_valid(m);
  m.purge_all();
  EXPECT_EQ(m.size_slow(), oracle.size());
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, StableKeysAlwaysFoundDuringChurn) {
  TypeParam m;
  constexpr K kStride = 10;
  constexpr K kRange = 2'000;
  for (K k = 0; k < kRange; k += kStride) ASSERT_TRUE(m.insert(k, k));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const K k = rng.next_below(kRange / kStride) * kStride;
        if (!m.contains(k)) misses.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      for (int i = 0; i < 50'000; ++i) {
        K k = static_cast<K>(rng.next_below(kRange));
        if (k % kStride == 0) ++k;
        if (rng.percent(50)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  stop = true;
  for (auto& th : threads) th.join();
  EXPECT_EQ(misses.load(), 0u);
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, DisjointPartitionsDeterministicResult) {
  TypeParam m;
  constexpr int kThreads = 6;
  constexpr K kPerThread = 256;
  std::vector<std::set<K>> expected(kThreads);
  std::vector<std::thread> threads;
  std::atomic<bool> bad{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(900 + t);
      auto& mine = expected[t];
      const K base = static_cast<K>(t) * kPerThread;
      for (int i = 0; i < 30'000; ++i) {
        const K k = base + static_cast<K>(rng.next_below(kPerThread));
        if (rng.percent(55)) {
          if (m.insert(k, k) != (mine.count(k) == 0)) bad = true;
          mine.insert(k);
        } else {
          if (m.erase(k) != (mine.count(k) > 0)) bad = true;
          mine.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  std::set<K> all;
  for (const auto& s : expected) all.insert(s.begin(), s.end());
  EXPECT_EQ(m.size_slow(), all.size());
  for (K k : all) EXPECT_TRUE(m.contains(k));
  this->expect_valid(m);
  m.purge_all();
  EXPECT_EQ(m.size_slow(), all.size());
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, ReviveRaceSingleKey) {
  // Hammer insert/erase of one key: revive vs logical-delete vs purge.
  TypeParam m;
  // Give key 77 two children so removals are logical.
  ASSERT_TRUE(m.insert(77, 0));
  ASSERT_TRUE(m.insert(50, 0));
  ASSERT_TRUE(m.insert(90, 0));
  std::atomic<long> ins{0};
  std::atomic<long> ers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < 30'000; ++i) {
        if (rng.percent(50)) {
          if (m.insert(77, t)) ins.fetch_add(1);
        } else {
          if (m.erase(77)) ers.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const long delta = ins.load() + 1 - ers.load();  // +1 initial insert
  ASSERT_TRUE(delta == 0 || delta == 1) << delta;
  EXPECT_EQ(m.contains(77), delta == 1);
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, RangeNextPrevSkipZombies) {
  TypeParam m;
  for (K k = 0; k < 100; k += 10) ASSERT_TRUE(m.insert(k, k));
  // Turn 40/50/60 into zombies (they have two children in most shapes; if
  // not, they are physically removed — either way logically absent).
  for (K k : {40, 50, 60}) ASSERT_TRUE(m.erase(k));

  std::vector<K> got;
  m.range(25, 85, [&](K k, V) { got.push_back(k); });
  EXPECT_EQ(got, (std::vector<K>{30, 70, 80}));

  EXPECT_EQ(m.next(30).value().first, 70);   // hops all three zombies
  EXPECT_EQ(m.prev(70).value().first, 30);
  EXPECT_EQ(m.next(39).value().first, 70);
  EXPECT_FALSE(m.next(90).has_value());
  EXPECT_FALSE(m.prev(0).has_value());

  // Revive one and the queries must see it again.
  ASSERT_TRUE(m.insert(50, 555));
  EXPECT_EQ(m.next(30).value(), (std::pair<K, V>{50, 555}));
  EXPECT_EQ(m.prev(70).value().first, 50);
  got.clear();
  m.range(45, 55, [&](K k, V) { got.push_back(k); });
  EXPECT_EQ(got, (std::vector<K>{50}));
  this->expect_valid(m);
}

TYPED_TEST(LoPartialTest, NextPrevDifferentialVsStdMap) {
  TypeParam m;
  std::map<K, V> oracle;
  Xoshiro256 rng(21);
  for (int i = 0; i < 20'000; ++i) {
    const K k = rng.next_in(0, 299);
    if (rng.percent(55)) {
      m.insert(k, k);
      oracle.emplace(k, k);
    } else {
      m.erase(k);
      oracle.erase(k);
    }
    if (i % 20 == 0) {
      const K probe = rng.next_in(-5, 305);
      const auto nx = m.next(probe);
      auto it = oracle.upper_bound(probe);
      ASSERT_EQ(nx.has_value(), it != oracle.end()) << probe;
      if (nx) {
        ASSERT_EQ(nx->first, it->first) << probe;
      }
      const auto pv = m.prev(probe);
      auto lo = oracle.lower_bound(probe);
      ASSERT_EQ(pv.has_value(), lo != oracle.begin()) << probe;
      if (pv) {
        ASSERT_EQ(pv->first, std::prev(lo)->first) << probe;
      }
    }
  }
}

// Quiescent strict balance for the balanced flavour, zombies included.
TEST(LoPartialAvl, QuiescentBalanceAfterChurn) {
  PartialAvlMap<K, V> m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(55 + t);
      for (int i = 0; i < 50'000; ++i) {
        const K k = static_cast<K>(rng.next_below(10'000));
        if (rng.percent(55)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  m.repair_balance();  // converge throttle-deferred rotations (quiescent)
  const auto rep = lot::lo::validate(m, true, true);
  ASSERT_TRUE(rep.ok) << rep.to_string();
  m.purge_all();
  m.repair_balance();  // purge may rotate; re-converge before the re-check
  const auto rep2 = lot::lo::validate(m, true, true);
  ASSERT_TRUE(rep2.ok) << rep2.to_string();
}

}  // namespace
