// Directed concurrency scenarios from the paper, plus linearizability-
// flavoured observational checks.
//
// Figure 1's interleaving (contains(7) racing remove(3), where 7 is
// relocated into 3's position) cannot be frozen mid-operation without
// scheduler hooks, so these tests run the exact scenario shape in a tight
// loop: with enough repetitions under preemption every window is hit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/mvcc.hpp"
#include "lo/validate.hpp"
#include "util/random.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
using lot::lo::AvlMap;
using lot::lo::BstMap;
using lot::util::Xoshiro256;

template <typename MapT>
class ScenarioTest : public ::testing::Test {};
using Impls = ::testing::Types<BstMap<K, V>, AvlMap<K, V>>;
TYPED_TEST_SUITE(ScenarioTest, Impls);

// Figure 1: the tree {1,3,7,9} where remove(3) relocates 7 (3's successor)
// into 3's position. A concurrent contains(7) must never return false —
// this is precisely the interleaving the logical ordering exists to fix.
TYPED_TEST(ScenarioTest, Figure1RelocationNeverHidesTheSuccessor) {
  TypeParam m;
  for (K k : {9, 1, 3, 7}) ASSERT_TRUE(m.insert(k, k));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (!m.contains(7)) misses.fetch_add(1);
    }
  });
  std::thread mutator([&] {
    for (int i = 0; i < 200'000; ++i) {
      m.erase(3);      // 3 has two children; 7 is its successor
      m.insert(3, 3);  // restore the shape for the next round
    }
  });
  mutator.join();
  stop = true;
  reader.join();

  EXPECT_EQ(misses.load(), 0u)
      << "contains(7) observed the Figure-1 lost-node anomaly";
  if constexpr (std::is_same_v<TypeParam, AvlMap<K, V>>) {
    m.repair_balance();  // converge throttle-deferred rotations (quiescent)
  }
  const auto rep = lot::lo::validate(
      m, std::is_same_v<TypeParam, AvlMap<K, V>>);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

// Dual of Figure 1: a key that is never in the tree must never be
// reported present, no matter how the physical layout churns.
TYPED_TEST(ScenarioTest, AbsentKeyNeverAppears) {
  TypeParam m;
  constexpr K kGhost = 500;  // never inserted
  for (K k = 0; k < 1'000; ++k) {
    if (k != kGhost) m.insert(k, k);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> phantom{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      if (m.contains(kGhost)) phantom.fetch_add(1);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < 80'000; ++i) {
        K k = rng.next_in(0, 999);
        if (k == kGhost) ++k;
        if (rng.percent(50)) {
          m.erase(k);
        } else {
          m.insert(k, k);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  stop = true;
  reader.join();
  EXPECT_EQ(phantom.load(), 0u);
}

// Stamped-value monotonicity: one writer alternates insert(k, stamp++) /
// erase(k); every reader's sequence of observed stamps must be
// non-decreasing (an old value resurfacing would mean a lookup read a
// node that had already been superseded — a linearizability violation).
TYPED_TEST(ScenarioTest, ObservedStampsNeverGoBackwards) {
  TypeParam m;
  // Surround the hot key so it is an internal node (2C-removals).
  ASSERT_TRUE(m.insert(40, -1));
  ASSERT_TRUE(m.insert(60, -1));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> regressions{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      V last = -1;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto v = m.get(50);
        if (v) {
          if (*v < last) regressions.fetch_add(1);
          last = *v;
        }
      }
    });
  }
  std::thread writer([&] {
    for (V stamp = 0; stamp < 150'000; ++stamp) {
      m.insert(50, stamp);
      m.erase(50);
    }
  });
  writer.join();
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(regressions.load(), 0u);
}

// A remove must be "on time": the moment erase(k) returns, a fresh
// insert(k) must succeed (the slot cannot be blocked by a zombie), and
// the physical node count at quiescence must equal the live set.
TYPED_TEST(ScenarioTest, OnTimeDeletionAllowsImmediateReinsert) {
  TypeParam m;
  std::vector<std::thread> threads;
  std::atomic<bool> bad{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      const K base = t * 1'000;
      for (int i = 0; i < 20'000; ++i) {
        const K k = base + rng.next_in(0, 99);
        if (m.insert(k, i)) {
          if (!m.erase(k)) bad = true;        // we own k: must succeed
          if (!m.insert(k, i + 1)) bad = true;  // immediately reusable
          if (!m.erase(k)) bad = true;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(m.size_slow(), 0u);
  if constexpr (std::is_same_v<TypeParam, AvlMap<K, V>>) {
    m.repair_balance();  // converge throttle-deferred rotations (quiescent)
  }
  const auto rep = lot::lo::validate(
      m, std::is_same_v<TypeParam, AvlMap<K, V>>);
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_EQ(rep.tree_nodes, 0u);  // no zombies: physical == live == 0
}

// The §5.1 lock-ordering argument, exercised: many threads doing the
// operations whose lock sets overlap maximally (adjacent keys, 2-children
// removals, rebalancing) must never deadlock. A watchdog fails the test
// if progress stalls.
TYPED_TEST(ScenarioTest, NoDeadlockUnderAdjacentKeyContention) {
  TypeParam m;
  for (K k = 0; k < 64; ++k) m.insert(k, k);
  std::atomic<std::uint64_t> progress{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < 30'000 && !stop.load(std::memory_order_relaxed);
           ++i) {
        const K k = rng.next_in(0, 63);
        if (rng.percent(50)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
        progress.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Watchdog: if the op counter freezes for 30s, declare deadlock.
  std::uint64_t last = 0;
  int stalls = 0;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const auto now = progress.load(std::memory_order_relaxed);
    if (now >= 8u * 30'000u) break;
    if (now == last && ++stalls > 60) {
      stop = true;
      for (auto& th : threads) th.detach();
      FAIL() << "no progress for 30s: deadlock (ops=" << now << ")";
    }
    if (now != last) stalls = 0;
    last = now;
  }
  for (auto& th : threads) th.join();
  if constexpr (std::is_same_v<TypeParam, AvlMap<K, V>>) {
    m.repair_balance();  // converge throttle-deferred rotations (quiescent)
  }
  const auto rep = lot::lo::validate(
      m, std::is_same_v<TypeParam, AvlMap<K, V>>);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

#if !defined(LOT_DISABLE_MVCC)
// The order-book scenario (examples/orderbook.cpp) with the snapshot
// layer closing its documented gap: bids and asks are two independent
// maps, so reading best-bid then best-ask non-atomically can observe a
// *crossed* book (bid >= ask) while the writer drifts the mid price —
// even though no single instant of the writer's history is ever crossed.
// Binding both sides to one epoch source and taking a two-phase composite
// snapshot (reserve both registries, draw ONE cut, adopt on both) reads
// the pair at a single instant, where crossing is impossible.
TEST(OrderBookScenario, SnapshotNeverObservesCrossedBook) {
  AvlMap<K, V> bids;
  AvlMap<K, V> asks;
  lot::lo::mvcc::EpochSource clock;
  bids.use_epoch_source(clock);
  asks.use_epoch_source(clock);

  // State at mid m: bids = {m - 1}, asks = {m + 1}. Every step keeps
  // max(bids) < min(asks) at each intermediate instant.
  constexpr K kLow = 1'000, kHigh = 1'200;
  K mid = kLow;
  ASSERT_TRUE(bids.insert(mid - 1, 1));
  ASSERT_TRUE(asks.insert(mid + 1, 1));

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int dir = +1;
    while (!stop.load(std::memory_order_relaxed)) {
      const K next = mid + dir;
      if (dir > 0) {
        // Up: grow the ask side away from the touch first.
        asks.insert(next + 1, 1);
        asks.erase(mid + 1);
        bids.insert(next - 1, 1);
        bids.erase(mid - 1);
      } else {
        // Down: grow the bid side away from the touch first.
        bids.insert(next - 1, 1);
        bids.erase(mid - 1);
        asks.insert(next + 1, 1);
        asks.erase(mid + 1);
      }
      mid = next;
      if (mid == kHigh || mid == kLow) dir = -dir;
    }
  });

  const auto best_of = [](const auto& snap, bool want_max) {
    std::optional<K> best;
    snap.for_each([&](K k, V) {
      if (!best.has_value() || (want_max ? k > *best : k < *best)) best = k;
    });
    return best;
  };

  std::uint64_t weak_crossed = 0;
  for (int round = 0; round < 20'000; ++round) {
    // Weak pair read, ask side first: with the mid drifting up between
    // the two calls the bid can overtake the stale ask. Counted, not
    // asserted — it documents the gap the snapshot closes.
    const auto weak_ask = asks.min();
    const auto weak_bid = bids.max();
    if (weak_ask && weak_bid && weak_bid->first >= weak_ask->first) {
      ++weak_crossed;
    }

    // Composite snapshot: one cut across BOTH maps.
    const auto bid_token = bids.snapshot_reserve();
    const auto ask_token = asks.snapshot_reserve();
    const auto cut = clock.now();
    const auto bid_snap = bids.snapshot_adopt(bid_token, cut);
    const auto ask_snap = asks.snapshot_adopt(ask_token, cut);
    const auto bb = best_of(bid_snap, /*want_max=*/true);
    const auto ba = best_of(ask_snap, /*want_max=*/false);
    ASSERT_TRUE(bb.has_value());
    ASSERT_TRUE(ba.has_value());
    ASSERT_LT(*bb, *ba) << "snapshot observed a crossed book (round "
                        << round << "): bid " << *bb << " >= ask " << *ba;
  }
  stop = true;
  writer.join();
  // Informational: the weak read's crossings are expected to be nonzero
  // on most runs, but a lucky schedule may legitimately produce none.
  if (weak_crossed > 0) {
    SUCCEED() << weak_crossed << " transient weak-read crossings closed "
              << "by the snapshot path";
  }
}
#endif  // !LOT_DISABLE_MVCC

}  // namespace
