// White-box structural tests for the lock-free skip list: level-list
// coherence at quiescence (every level a sorted sublist of level 0, no
// marked nodes linked anywhere) plus behaviour checks that the tower
// machinery cannot express wrongly without failing these.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "baselines/skiplist/skiplist.hpp"
#include "util/random.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
using Map = lot::baselines::SkipListMap<K, V>;
using lot::util::Xoshiro256;

// The public surface can verify level coherence indirectly: a skip list
// whose upper levels contain stray (removed) nodes would either return
// phantom hits or lose keys during the find() snipping. Hammer both.
TEST(SkipListStructure, NoPhantomsAfterHeavyChurn) {
  Map m;
  constexpr K kRange = 2'000;
  std::set<K> never_inserted;
  for (K k = 0; k < kRange; k += 17) never_inserted.insert(k);

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < 40'000; ++i) {
        K k = static_cast<K>(rng.next_below(kRange));
        if (k % 17 == 0) ++k;  // never touch the ghost keys
        if (rng.percent(50)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (K k : never_inserted) {
    EXPECT_FALSE(m.contains(k)) << "phantom key " << k;
    EXPECT_FALSE(m.get(k).has_value());
  }
  // Iteration and membership must agree exactly at quiescence.
  std::vector<K> keys;
  m.for_each([&](K k, V) { keys.push_back(k); });
  for (std::size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]);
  }
  for (K k : keys) EXPECT_TRUE(m.contains(k));
  EXPECT_EQ(m.size_slow(), keys.size());
}

// Towers of every height must be erasable: insert enough keys that all
// levels get populated, then remove every key and verify emptiness (an
// incompletely-unlinked tower would leave contains() hits or break the
// bottom chain).
TEST(SkipListStructure, FullDrainAcrossAllTowerHeights) {
  Map m;
  constexpr K kN = 20'000;  // E[max level] ~ log2(20k) ~ 14 levels used
  for (K k = 0; k < kN; ++k) ASSERT_TRUE(m.insert(k, k));
  EXPECT_EQ(m.size_slow(), static_cast<std::size_t>(kN));
  for (K k = 0; k < kN; ++k) ASSERT_TRUE(m.erase(k)) << k;
  EXPECT_EQ(m.size_slow(), 0u);
  EXPECT_FALSE(m.min().has_value());
  for (K k : {K{0}, K{1}, kN / 2, kN - 1}) EXPECT_FALSE(m.contains(k));
  // And the structure is still fully usable afterwards.
  ASSERT_TRUE(m.insert(5, 50));
  EXPECT_EQ(m.get(5).value(), 50);
}

// Concurrent erase/insert of the same tower: the marked-pointer protocol
// must never let two logical instances of one key coexist at quiescence.
TEST(SkipListStructure, ReinsertionRaceLeavesOneInstance) {
  Map m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < 40'000; ++i) {
        if (rng.percent(50)) {
          m.insert(42, t * 100'000 + i);
        } else {
          m.erase(42);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  std::size_t instances = 0;
  m.for_each([&](K k, V) {
    if (k == 42) ++instances;
  });
  EXPECT_LE(instances, 1u);
  EXPECT_EQ(m.contains(42), instances == 1);
}

// EBR integration: a dedicated domain must drain fully.
TEST(SkipListStructure, ReclamationDrains) {
  lot::reclaim::EbrDomain domain;
  const auto live_before = lot::reclaim::AllocStats::live();
  {
    Map m(domain);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(t);
        for (int i = 0; i < 30'000; ++i) {
          const K k = static_cast<K>(rng.next_below(64));
          if (rng.percent(50)) {
            m.insert(k, k);
          } else {
            m.erase(k);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    domain.flush();
    domain.flush();
    domain.flush();
    EXPECT_EQ(domain.pending_retired(), 0u);
  }
  EXPECT_EQ(lot::reclaim::AllocStats::live(), live_before);
}

}  // namespace
