// ShardedMap (src/shard/, DESIGN.md §15): the shard-routed scale-out
// layer over the logical-ordering trees. The suite pins
//  * the full OrderedMap surface, typed over all four inner tree variants;
//  * routing: striped block partitioning, shard-boundary keys, router
//    stats reconciling exactly against the ops issued;
//  * the degenerate shards=1 configuration behaving bit-for-bit like the
//    unsharded tree (differential against the same op tape);
//  * cross-shard cursor/range merges yielding the global ascending order
//    (differential against a coarse reference snapshot);
//  * per-shard reclamation universes: private EbrDomain + private pool
//    per shard, rows visible in obs snapshots, and allocation accounting
//    balancing to zero at teardown (the ASan/LSan build turns any missed
//    node into a hard failure).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "adapters/map_concept.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
#include "reclaim/alloc_stats.hpp"
#include "shard/sharded_map.hpp"
#include "shard/validate.hpp"
#include "obs/obs.hpp"
#include "util/random.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
using lot::lo::AvlMap;
using lot::lo::BstMap;
using lot::lo::PartialAvlMap;
using lot::lo::PartialBstMap;
using lot::shard::ShardedMap;
using lot::util::Xoshiro256;

// The sharded wrapper keeps the whole ordered concept, at any shard count,
// over every inner variant.
static_assert(lot::adapters::OrderedMap<ShardedMap<BstMap<K, V>, 1>>);
static_assert(lot::adapters::OrderedMap<ShardedMap<AvlMap<K, V>, 4>>);
static_assert(lot::adapters::OrderedMap<ShardedMap<PartialBstMap<K, V>, 8>>);
static_assert(lot::adapters::OrderedMap<ShardedMap<PartialAvlMap<K, V>, 2>>);

// The default LO allocation policy is the slab pool, so the sharded layer
// must detect it and give every shard a private pool — except in the
// LOT_POOL_ALLOC=OFF escape-hatch build, where shards share the heap.
#if !defined(LOT_DISABLE_POOL_ALLOC)
static_assert(ShardedMap<AvlMap<K, V>, 4>::kPooledAlloc);
#else
static_assert(!ShardedMap<AvlMap<K, V>, 4>::kPooledAlloc);
#endif

template <typename MapT>
class ShardedMapTest : public ::testing::Test {};

using Impls = ::testing::Types<
    ShardedMap<BstMap<K, V>, 4>, ShardedMap<AvlMap<K, V>, 4>,
    ShardedMap<PartialBstMap<K, V>, 4>, ShardedMap<PartialAvlMap<K, V>, 4>>;
TYPED_TEST_SUITE(ShardedMapTest, Impls);

TYPED_TEST(ShardedMapTest, PointOpsRouteAndReconcile) {
  TypeParam m;
  // Keys spanning every shard: 4 shards x 64-key blocks → 0..255 covers
  // each shard once per stripe period.
  std::uint64_t expected_per_shard[4] = {};
  for (K k = 0; k < 512; k += 3) {
    ASSERT_TRUE(m.insert(k, k * 2)) << k;
    expected_per_shard[TypeParam::shard_index_of(k)] += 1;
  }
  for (K k = 0; k < 512; k += 3) {
    EXPECT_FALSE(m.insert(k, 0)) << k;  // duplicate
    expected_per_shard[TypeParam::shard_index_of(k)] += 1;
    EXPECT_TRUE(m.contains(k));
    expected_per_shard[TypeParam::shard_index_of(k)] += 1;
    EXPECT_EQ(m.get(k), std::make_optional<V>(k * 2));
    expected_per_shard[TypeParam::shard_index_of(k)] += 1;
  }
  EXPECT_FALSE(m.contains(1));
  expected_per_shard[TypeParam::shard_index_of(1)] += 1;
  EXPECT_FALSE(m.erase(1));
  expected_per_shard[TypeParam::shard_index_of(1)] += 1;
  for (K k = 0; k < 512; k += 6) {
    EXPECT_TRUE(m.erase(k)) << k;
    expected_per_shard[TypeParam::shard_index_of(k)] += 1;
  }
  // Router telemetry reconciles exactly: every point op counted once, on
  // the one shard it routed to.
  if (lot::obs::kEnabled) {
    for (unsigned i = 0; i < TypeParam::shard_count(); ++i) {
      EXPECT_EQ(m.shard_stats(i).point_ops, expected_per_shard[i])
          << "shard " << i;
    }
  }
}

TYPED_TEST(ShardedMapTest, ShardBoundaryKeys) {
  TypeParam m;
  // The router stripes 64-key blocks over 4 shards; exercise both sides of
  // several block boundaries plus the signed wrap.
  const std::vector<K> keys = {0,   1,   63,  64,  65,  127, 128, 191,
                               192, 255, 256, -1,  -63, -64, -65, -128};
  for (K k : keys) ASSERT_TRUE(m.insert(k, k)) << k;
  // Routing matches the documented function, and adjacent blocks land on
  // distinct shards.
  for (K k : keys) {
    EXPECT_EQ(TypeParam::shard_index_of(k),
              lot::shard::shard_of(k, TypeParam::shard_count()));
  }
  EXPECT_EQ(TypeParam::shard_index_of(63), TypeParam::shard_index_of(0));
  EXPECT_NE(TypeParam::shard_index_of(64), TypeParam::shard_index_of(63));
  for (K k : keys) EXPECT_TRUE(m.contains(k)) << k;
  // The merged iteration restores the global order across the boundary
  // splits (negative keys first: the stripe is routing policy, the merge
  // is comparator order).
  std::vector<K> sorted = keys;
  std::sort(sorted.begin(), sorted.end());
  std::vector<K> got;
  m.for_each([&](const K& k, const V&) { got.push_back(k); });
  EXPECT_EQ(got, sorted);
  // A range straddling block boundaries.
  got.clear();
  m.range(60, 130, [&](const K& k, const V&) { got.push_back(k); });
  EXPECT_EQ(got, (std::vector<K>{63, 64, 65, 127, 128}));
  for (K k : keys) EXPECT_TRUE(m.erase(k)) << k;
  EXPECT_TRUE(m.empty());
}

TYPED_TEST(ShardedMapTest, OrderedSurfaceMatchesReference) {
  TypeParam m;
  std::map<K, V> ref;
  Xoshiro256 rng(42);
  for (int i = 0; i < 4000; ++i) {
    const K k = static_cast<K>(rng.next_below(1024)) - 512;
    if (rng.next_below(100) < 60) {
      EXPECT_EQ(m.insert(k, k * 3), ref.emplace(k, k * 3).second);
    } else {
      EXPECT_EQ(m.erase(k), ref.erase(k) == 1);
    }
  }
  // min / max.
  if (ref.empty()) {
    EXPECT_FALSE(m.min().has_value());
    EXPECT_FALSE(m.max().has_value());
  } else {
    EXPECT_EQ(m.min()->first, ref.begin()->first);
    EXPECT_EQ(m.max()->first, ref.rbegin()->first);
  }
  // Whole-map iteration: global ascending order with the right values.
  std::vector<std::pair<K, V>> got;
  m.for_each([&](const K& k, const V& v) { got.emplace_back(k, v); });
  EXPECT_EQ(got, (std::vector<std::pair<K, V>>(ref.begin(), ref.end())));
  // Cursor agrees with for_each.
  got.clear();
  auto cur = m.cursor();
  while (auto kv = cur.next()) got.push_back(*kv);
  EXPECT_EQ(got, (std::vector<std::pair<K, V>>(ref.begin(), ref.end())));
  // Ranges and first/last-in-range at assorted windows (including empty
  // and inverted ones).
  const std::pair<K, K> windows[] = {
      {-512, 512}, {-40, 40}, {0, 1}, {100, 100}, {200, 100}, {500, 700}};
  for (const auto& [lo, hi] : windows) {
    std::vector<K> want;
    for (auto it = ref.lower_bound(lo); it != ref.end() && it->first < hi;
         ++it) {
      want.push_back(it->first);
    }
    std::vector<K> have;
    m.range(lo, hi, [&](const K& k, const V&) { have.push_back(k); });
    EXPECT_EQ(have, want) << "[" << lo << ", " << hi << ")";
    const auto first = m.first_in_range(lo, hi);
    const auto last = m.last_in_range(lo, hi);
    if (want.empty()) {
      EXPECT_FALSE(first.has_value());
      EXPECT_FALSE(last.has_value());
    } else {
      ASSERT_TRUE(first.has_value());
      ASSERT_TRUE(last.has_value());
      EXPECT_EQ(first->first, want.front());
      EXPECT_EQ(last->first, want.back());
    }
  }
  EXPECT_EQ(m.size_slow(), ref.size());
}

TYPED_TEST(ShardedMapTest, PerShardReclamationUniverses) {
  TypeParam m;
  // Every shard runs its own EbrDomain — distinct from each other and from
  // the global domain (distinct uids) — and, with the pool policy, its own
  // slab pool instance.
  std::set<std::uint64_t> uids;
  uids.insert(lot::reclaim::EbrDomain::global_domain().uid());
  for (unsigned i = 0; i < TypeParam::shard_count(); ++i) {
    EXPECT_TRUE(uids.insert(m.shard_domain(i).uid()).second)
        << "shard " << i << " shares a domain";
    if constexpr (TypeParam::kPooledAlloc) {
      ASSERT_NE(m.shard_pool(i), nullptr);
      for (unsigned j = 0; j < i; ++j) {
        EXPECT_NE(m.shard_pool(i), m.shard_pool(j));
      }
    } else {
      EXPECT_EQ(m.shard_pool(i), nullptr);  // new/delete build: no pool
    }
  }
  // Each shard's retire traffic lands in its own domain: churn one shard's
  // keys and watch only that domain's epoch advance machinery engage.
  for (K k = 0; k < 64; ++k) ASSERT_TRUE(m.insert(k, k));
  for (K k = 0; k < 64; ++k) ASSERT_TRUE(m.erase(k));
  // An obs snapshot surfaces one row per live domain, shard domains
  // included (satellite: sharded runs don't report blind).
  const auto snap = lot::obs::Registry::instance().snapshot();
  ASSERT_GE(snap.domains.size(), 1u + TypeParam::shard_count());
  std::set<std::uint64_t> snap_uids;
  for (const auto& row : snap.domains) snap_uids.insert(row.uid);
  for (unsigned i = 0; i < TypeParam::shard_count(); ++i) {
    EXPECT_TRUE(snap_uids.count(m.shard_domain(i).uid()))
        << "shard " << i << " domain missing from the obs snapshot";
  }
  EXPECT_TRUE(snap_uids.count(lot::reclaim::EbrDomain::global_domain().uid()));
}

TYPED_TEST(ShardedMapTest, TeardownBalancesToZero) {
  const std::uint64_t live_before = lot::reclaim::AllocStats::live();
  {
    TypeParam m;
    Xoshiro256 rng(7);
    for (int i = 0; i < 3000; ++i) {
      const K k = static_cast<K>(rng.next_below(512));
      if (rng.next_below(100) < 65) {
        m.insert(k, k);
      } else {
        m.erase(k);
      }
    }
    // Leave the map non-empty on purpose: the destructor chain (per shard:
    // map → domain drain → pool) must return every node, live or retired.
  }
  EXPECT_EQ(lot::reclaim::AllocStats::live(), live_before)
      << "sharded teardown leaked nodes";
}

TYPED_TEST(ShardedMapTest, ConcurrentChurnValidatesPerShard) {
  TypeParam m;
  constexpr unsigned kThreads = 4;
  constexpr int kOps = 6000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&m, t] {
      Xoshiro256 rng(0xA5A5 + t);
      for (int i = 0; i < kOps; ++i) {
        const K k = static_cast<K>(rng.next_below(768));
        const auto dice = rng.next_below(100);
        if (dice < 40) {
          m.contains(k);
        } else if (dice < 70) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // Quiescent: every shard must be a structurally valid tree (strict AVL
  // balance after converging throttle-deferred repairs).
  if constexpr (TypeParam::kBalanced) m.repair_balance();
  const auto rep = lot::lo::validate(m, TypeParam::kBalanced,
                                     TypeParam::kLogicalRemoving);
  EXPECT_TRUE(rep.ok) << rep.to_string();
  // The chain carries every present key (plus zombies, logical removing).
  EXPECT_GE(rep.chain_nodes, m.size_slow());
}

// shards=1 is the degenerate configuration the scale-out layer promises
// is free: the same op tape against ShardedMap<M, 1> and a bare M must
// agree on every single result, and on the final contents.
template <typename MapT>
class SingleShardEquivalence : public ::testing::Test {};

using InnerImpls = ::testing::Types<BstMap<K, V>, AvlMap<K, V>,
                                    PartialBstMap<K, V>, PartialAvlMap<K, V>>;
TYPED_TEST_SUITE(SingleShardEquivalence, InnerImpls);

TYPED_TEST(SingleShardEquivalence, SameOpTapeSameResults) {
  ShardedMap<TypeParam, 1> sharded;
  TypeParam plain;
  Xoshiro256 rng(1234);
  for (int i = 0; i < 8000; ++i) {
    const K k = static_cast<K>(rng.next_below(512)) - 256;
    const auto dice = rng.next_below(100);
    if (dice < 30) {
      EXPECT_EQ(sharded.contains(k), plain.contains(k)) << "op " << i;
    } else if (dice < 40) {
      EXPECT_EQ(sharded.get(k), plain.get(k)) << "op " << i;
    } else if (dice < 70) {
      EXPECT_EQ(sharded.insert(k, k * 5), plain.insert(k, k * 5))
          << "op " << i;
    } else if (dice < 95) {
      EXPECT_EQ(sharded.erase(k), plain.erase(k)) << "op " << i;
    } else {
      const K hi = k + static_cast<K>(rng.next_below(64));
      std::vector<std::pair<K, V>> a, b;
      sharded.range(k, hi,
                    [&](const K& kk, const V& vv) { a.emplace_back(kk, vv); });
      plain.range(k, hi,
                  [&](const K& kk, const V& vv) { b.emplace_back(kk, vv); });
      EXPECT_EQ(a, b) << "op " << i;
    }
  }
  EXPECT_EQ(sharded.min(), plain.min());
  EXPECT_EQ(sharded.max(), plain.max());
  std::vector<std::pair<K, V>> a, b;
  sharded.for_each([&](const K& k, const V& v) { a.emplace_back(k, v); });
  plain.for_each([&](const K& k, const V& v) { b.emplace_back(k, v); });
  EXPECT_EQ(a, b);
}

// Cross-shard merges under concurrent churn: the merged stream must stay
// strictly ascending (the heap argument) no matter how writers interleave,
// and every stably-present key must appear.
TEST(ShardedMapConcurrent, MergedScanStaysSortedUnderChurn) {
  ShardedMap<AvlMap<K, V>, 8> m;
  // Stable backbone: multiples of 5 in [0, 2000) never touched by writers.
  std::set<K> backbone;
  for (K k = 0; k < 2000; k += 5) {
    ASSERT_TRUE(m.insert(k, k));
    backbone.insert(k);
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < 3; ++t) {
    writers.emplace_back([&m, &stop, t] {
      Xoshiro256 rng(77 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        const K k = static_cast<K>(rng.next_below(2000));
        if (k % 5 == 0) continue;  // never touch the backbone
        if (rng.next_below(2) == 0) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (int scan = 0; scan < 50; ++scan) {
    std::vector<K> got;
    std::set<K> seen_backbone;
    m.for_each([&](const K& k, const V&) {
      got.push_back(k);
      if (k % 5 == 0) seen_backbone.insert(k);
    });
    // Strictly ascending across shard boundaries.
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end())
        << "merged scan yielded a duplicate key";
    // Weak consistency floor: stably-present keys always appear.
    EXPECT_EQ(seen_backbone.size(), backbone.size());
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

}  // namespace
