// Unit and stress tests for the epoch-based reclamation domain — the
// substrate standing in for the JVM garbage collector (DESIGN.md §2).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "reclaim/ebr.hpp"

namespace {

using lot::reclaim::EbrDomain;

struct Tracked {
  static std::atomic<int> live;
  int payload = 0;
  Tracked() { live.fetch_add(1); }
  explicit Tracked(int p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(Ebr, RetiredObjectsFreedAfterFlush) {
  EbrDomain domain;
  for (int i = 0; i < 100; ++i) domain.retire(new Tracked());
  EXPECT_GT(Tracked::live.load(), 0);
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.pending_retired(), 0u);
}

TEST(Ebr, GuardBlocksReclamation) {
  EbrDomain domain;
  domain.set_retire_threshold(1);  // reclaim eagerly
  {
    auto guard = domain.guard();
    for (int i = 0; i < 50; ++i) domain.retire(new Tracked());
    // Our own pin holds the epoch back: nothing retired during this guard
    // may be freed while it is active.
    EXPECT_GT(Tracked::live.load(), 0);
  }
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, NestedGuardsAreReentrant) {
  EbrDomain domain;
  {
    auto g1 = domain.guard();
    auto g2 = domain.guard();
    auto g3 = domain.guard();
    domain.retire(new Tracked());
  }
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, EpochAdvancesWhenUnpinned) {
  EbrDomain domain;
  const auto before = domain.epoch();
  domain.set_retire_threshold(1);
  domain.retire(new Tracked());
  domain.retire(new Tracked());
  EXPECT_GT(domain.epoch(), before);
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, StragglerPinPreventsAdvance) {
  EbrDomain domain;
  domain.set_retire_threshold(1);
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    pinned = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!pinned.load()) std::this_thread::yield();

  const auto epoch_at_pin = domain.epoch();
  for (int i = 0; i < 20; ++i) domain.retire(new Tracked());
  // The straggler pins epoch_at_pin; the global epoch can advance at most
  // once past it, so nothing retired now can complete the two-epoch trip.
  EXPECT_LE(domain.epoch(), epoch_at_pin + 1);
  EXPECT_GT(Tracked::live.load(), 0);

  release = true;
  straggler.join();
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, DestructorFreesEverythingPending) {
  {
    EbrDomain domain;
    for (int i = 0; i < 500; ++i) domain.retire(new Tracked(i));
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(Ebr, ThreadsRecycleRecords) {
  // More thread lifetimes than kMaxThreads records: exiting threads must
  // hand their records back.
  EbrDomain domain;
  for (std::size_t round = 0; round < EbrDomain::kMaxThreads + 10; ++round) {
    std::thread t([&] {
      auto g = domain.guard();
      domain.retire(new Tracked());
    });
    t.join();
  }
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// Failure-injection flavour: tiny threshold + many threads hammering
// retire while readers hold guards. The assertion is simply that we
// neither crash nor leak (valgrind-less proxy: the live counter).
TEST(Ebr, ConcurrentRetireStress) {
  EbrDomain domain;
  domain.set_retire_threshold(4);
  constexpr int kThreads = 8;
  constexpr int kIters = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        auto g = domain.guard();
        domain.retire(new Tracked(i));
      }
    });
  }
  for (auto& th : threads) th.join();
  domain.flush();
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// A thread parked inside a guard pins its epoch: heavy retirement from
// every other thread accumulates but no reclamation may pass the stalled
// epoch — every object retired after the park must still be live, even
// across explicit flushes. Once the straggler unparks, the backlog drains
// completely, so memory stays bounded by the park duration, not leaked.
TEST(Ebr, ParkedGuardBoundsReclamationUntilUnpark) {
  EbrDomain domain;
  domain.set_retire_threshold(1);  // reclaim as eagerly as possible
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  constexpr int kRetirers = 4;
  constexpr int kPerThread = 2'000;
  const int live_before = Tracked::live.load();
  std::vector<std::thread> retirers;
  for (int t = 0; t < kRetirers; ++t) {
    retirers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto g = domain.guard();
        domain.retire(new Tracked(i));
      }
    });
  }
  for (auto& th : retirers) th.join();
  domain.flush();  // must not free across the straggler's pinned epoch

  // The epoch advances at most once past the pin, and freeing requires two
  // advances past the retirement epoch — so everything retired while the
  // straggler was parked is still live.
  EXPECT_EQ(Tracked::live.load() - live_before, kRetirers * kPerThread);
  EXPECT_GE(domain.pending_retired(),
            static_cast<std::size_t>(kRetirers * kPerThread));

  release = true;
  straggler.join();
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), live_before);
  EXPECT_EQ(domain.pending_retired(), 0u);
}

// A reader must be able to keep using an object that was retired while the
// reader's guard was active.
TEST(Ebr, UseAfterRetireWithinGuardIsSafe) {
  EbrDomain domain;
  domain.set_retire_threshold(1);
  auto* obj = new Tracked(42);
  std::atomic<Tracked*> shared{obj};
  std::atomic<bool> reader_has_ref{false};
  std::atomic<bool> retired{false};
  std::atomic<int> observed{0};

  std::thread reader([&] {
    auto g = domain.guard();
    Tracked* p = shared.load();
    reader_has_ref = true;
    while (!retired.load()) std::this_thread::yield();
    // Hammer the domain with more retires from this thread to tempt a
    // premature free, then read through the retired pointer.
    for (int i = 0; i < 100; ++i) domain.retire(new Tracked(i));
    observed = p->payload;
  });

  while (!reader_has_ref.load()) std::this_thread::yield();
  shared.store(nullptr);
  domain.retire(obj);
  retired = true;
  reader.join();

  EXPECT_EQ(observed.load(), 42);
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

}  // namespace
