// Tests for the observability layer (src/obs/): the campaign that proves
// the numbers are right. Bucket boundaries and quantiles are pinned
// against a sorted reference through util::percentile (the shared rank
// convention); counters are proven exact under concurrency; snapshots are
// proven safe (and monotone) while writers run; a released shard is
// proven adoptable with its values intact; and the compile-time gate is
// proven zero-cost (empty handle types, dead hooks) in OFF builds — this
// same file runs in check.sh's -DLOT_OBS=OFF stage and asserts the other
// side of every gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <type_traits>
#include <vector>

#include "lo/avl.hpp"
#include "lo/partial.hpp"
#include "obs/counters.hpp"
#include "obs/histogram.hpp"
#include "obs/obs.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace {

using lot::obs::Counter;
using lot::obs::HistogramStats;
using lot::obs::OpKind;
using lot::obs::Registry;
using lot::obs::Snapshot;

// ---------------------------------------------------------------------------
// The zero-cost-when-off contract, checked at compile time from both sides.
// OFF: the handles are empty types — a ScopedLatency in the driver loop or
// a Tls in an op prologue occupies no state and every call on them is an
// empty inline. ON: Tls is exactly one shard pointer.
#if defined(LOT_DISABLE_OBS)
static_assert(!lot::obs::kEnabled);
static_assert(std::is_empty_v<lot::obs::Tls>);
static_assert(std::is_empty_v<lot::obs::ScopedLatency>);
#else
static_assert(lot::obs::kEnabled);
static_assert(sizeof(lot::obs::Tls) == sizeof(void*));
#endif

TEST(ObsGate, OffBuildCountsNothing) {
  if (lot::obs::kEnabled) GTEST_SKIP() << "ON build";
  lot::obs::count(Counter::kContainsOps, 1000);
  lot::obs::tls().add(Counter::kInsertOps, 1000);
  EXPECT_EQ(lot::obs::counter_total(Counter::kContainsOps), 0u);
  EXPECT_EQ(lot::obs::counter_total(Counter::kInsertOps), 0u);
  EXPECT_EQ(lot::obs::counter_shards(), 0u);
  lot::obs::record_latency(OpKind::kContains, 123);
  const Snapshot s = Registry::instance().snapshot();
  EXPECT_EQ(s.counter(Counter::kContainsOps), 0u);
  EXPECT_EQ(s.latency[0].count, 0u);
  // The report surface still works (reporting code carries no #ifdefs).
  EXPECT_NE(s.to_json().find("\"enabled\": false"), std::string::npos);
}

#if !defined(LOT_DISABLE_OBS)

using lot::obs::LatencyHistogram;

// ---------------------------------------------------------------------------
// Bucketing math.

TEST(ObsHistogram, BucketIndexPinnedValues) {
  // Unit buckets up to 2*kSub == 64.
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_index(63), 63u);
  // First log-linear octave: width 2, 32 buckets covering [64, 128).
  EXPECT_EQ(LatencyHistogram::bucket_index(64), 64u);
  EXPECT_EQ(LatencyHistogram::bucket_index(65), 64u);
  EXPECT_EQ(LatencyHistogram::bucket_index(66), 65u);
  EXPECT_EQ(LatencyHistogram::bucket_index(127), 95u);
  EXPECT_EQ(LatencyHistogram::bucket_index(128), 96u);
  // The largest representable value still fits the table.
  EXPECT_LT(LatencyHistogram::bucket_index(~0ull),
            LatencyHistogram::kBucketCount);
}

TEST(ObsHistogram, BucketEdgesRoundTrip) {
  // Every bucket's lower edge maps back to it, its last value stays in it,
  // and one past the last value lands in the next bucket: the buckets tile
  // the uint64 axis with no gaps or overlaps.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    const std::uint64_t lo = LatencyHistogram::bucket_lower(i);
    const std::uint64_t w = LatencyHistogram::bucket_width(i);
    ASSERT_EQ(LatencyHistogram::bucket_index(lo), i) << "lower edge, i=" << i;
    ASSERT_EQ(LatencyHistogram::bucket_index(lo + w - 1), i)
        << "last value, i=" << i;
    if (lo + w > lo) {  // not the final bucket wrapping uint64
      ASSERT_EQ(LatencyHistogram::bucket_index(lo + w), i + 1)
          << "first value past, i=" << i;
    }
  }
}

TEST(ObsHistogram, RelativeErrorBounded) {
  // Log-linear promise: bucket width / lower edge <= 2^-kSubBits == 3.125%
  // everywhere above the unit range.
  for (std::uint64_t v : {64ull, 100ull, 1000ull, 123456ull, 987654321ull,
                          1ull << 40, (1ull << 50) + 12345}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    const double rel =
        static_cast<double>(LatencyHistogram::bucket_width(i)) /
        static_cast<double>(LatencyHistogram::bucket_lower(i));
    EXPECT_LE(rel, 1.0 / LatencyHistogram::kSub) << "v=" << v;
  }
}

// ---------------------------------------------------------------------------
// Quantiles vs a sorted reference (the shared util::percentile convention).

TEST(ObsHistogram, QuantilesMatchSortedReferenceExactRange) {
  // All values < 64 sit in exact unit buckets, so the histogram quantile
  // must agree with util::percentile to within the 1-unit bucket width.
  LatencyHistogram h;
  std::vector<double> ref;
  lot::util::Xoshiro256 rng(42);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.next_below(60);
    h.record(v);
    ref.push_back(static_cast<double>(v));
  }
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    const double exact = lot::util::percentile(ref, p);
    EXPECT_NEAR(h.quantile(p), exact, 1.0) << "p=" << p;
  }
}

TEST(ObsHistogram, QuantilesMatchSortedReferenceLogRange) {
  // Wide-range values: agreement within one bucket's relative width
  // (3.125%) plus the reference's own interpolation inside that bucket.
  LatencyHistogram h;
  std::vector<double> ref;
  lot::util::Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform-ish spread over [1, 2^30).
    const unsigned bits = 1 + static_cast<unsigned>(rng.next_below(30));
    const std::uint64_t v = 1 + rng.next_below(1ull << bits);
    h.record(v);
    ref.push_back(static_cast<double>(v));
  }
  for (double p : {50.0, 90.0, 99.0}) {
    const double exact = lot::util::percentile(ref, p);
    const double got = h.quantile(p);
    EXPECT_NEAR(got, exact, exact * 0.04 + 1.0) << "p=" << p;
  }
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 20000u);
  EXPECT_EQ(static_cast<double>(s.max_ns),
            *std::max_element(ref.begin(), ref.end()));
}

TEST(ObsHistogram, SingleValueAndReset) {
  LatencyHistogram h;
  h.record(1000);
  const HistogramStats s = h.stats();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.max_ns, 1000u);
  // One sample: every quantile is that sample's bucket (width 32 at 1000).
  EXPECT_GE(s.p50_ns, 992.0);
  EXPECT_LT(s.p50_ns, 1024.0);
  EXPECT_EQ(s.p50_ns, s.p99_ns);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(50.0), 0.0);
}

// ---------------------------------------------------------------------------
// Counters.

TEST(ObsCounters, ConcurrentIncrementsSumExactly) {
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 200000 / LOT_STRESS_DIVISOR + 1;
  const std::uint64_t before = lot::obs::counter_total(Counter::kRotations);
  const std::uint64_t before_w =
      lot::obs::counter_total(Counter::kHeightPasses);
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([] {
      const auto tls = lot::obs::tls();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tls.add(Counter::kRotations);
        if ((i & 3) == 0) tls.add(Counter::kHeightPasses, 5);
      }
    });
  }
  for (auto& t : ts) t.join();
  // Exact, not approximate: each shard is single-writer, so no increment
  // can be lost to a racing read-modify-write.
  EXPECT_EQ(lot::obs::counter_total(Counter::kRotations) - before,
            kThreads * kPerThread);
  EXPECT_EQ(lot::obs::counter_total(Counter::kHeightPasses) - before_w,
            kThreads * ((kPerThread + 3) / 4) * 5);
}

TEST(ObsCounters, SnapshotWhileWritingIsMonotoneLowerBound) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 400000 / LOT_STRESS_DIVISOR + 1;
  const std::uint64_t before = lot::obs::counter_total(Counter::kPurgeAttempts);
  std::atomic<unsigned> done{0};
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      const auto tls = lot::obs::tls();
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        tls.add(Counter::kPurgeAttempts);
      }
      done.fetch_add(1, std::memory_order_release);
    });
  }
  // Read concurrently with the writers: every observation must be a value
  // the true total passed through (monotone, never above the final sum).
  std::uint64_t prev = 0;
  while (done.load(std::memory_order_acquire) < kThreads) {
    const std::uint64_t now =
        lot::obs::counter_total(Counter::kPurgeAttempts) - before;
    ASSERT_GE(now, prev);
    ASSERT_LE(now, kThreads * kPerThread);
    prev = now;
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(lot::obs::counter_total(Counter::kPurgeAttempts) - before,
            kThreads * kPerThread);
}

TEST(ObsCounters, ThreadExitShardAdoption) {
  const std::uint64_t before = lot::obs::counter_total(Counter::kGetOps);
  std::thread a([] { lot::obs::count(Counter::kGetOps, 100); });
  a.join();
  // a's shard was released at exit with its values intact: nothing lost.
  EXPECT_EQ(lot::obs::counter_total(Counter::kGetOps) - before, 100u);
  const std::size_t shards_after_a = lot::obs::counter_shards();
  std::thread b([] { lot::obs::count(Counter::kGetOps, 23); });
  b.join();
  // b adopted a released shard (a's, or an earlier test thread's) instead
  // of growing the list, and both threads' counts survived.
  EXPECT_EQ(lot::obs::counter_shards(), shards_after_a);
  EXPECT_EQ(lot::obs::counter_total(Counter::kGetOps) - before, 123u);
}

// ---------------------------------------------------------------------------
// Registry + the derived audit on real trees.

// contains_restarts() over a window rather than process lifetime: earlier
// tests in this binary bump counters synthetically (no descents behind
// them), so the global balance is meaningless here — the windowed one
// must still come out exactly zero.
std::int64_t contains_restarts_delta(const Snapshot& s0, const Snapshot& s1) {
  const auto d = [&](Counter c) {
    return static_cast<std::int64_t>(s1.counter(c) - s0.counter(c));
  };
  return d(Counter::kTreeDescents) -
         (d(Counter::kContainsOps) + d(Counter::kGetOps) +
          d(Counter::kRangeOps) + d(Counter::kOrderedLocates) +
          d(Counter::kInsertOps) + d(Counter::kInsertRestarts) +
          d(Counter::kEraseOps) + d(Counter::kEraseRestarts));
}

TEST(ObsRegistry, SequentialAvlOpsReconcileExactly) {
  const Snapshot s0 = Registry::instance().snapshot();
  lot::lo::AvlMap<std::int64_t, std::int64_t> avl;
  for (std::int64_t k = 0; k < 200; ++k) ASSERT_TRUE(avl.insert(k, k));
  ASSERT_FALSE(avl.insert(7, 7));  // duplicate
  for (std::int64_t k = 0; k < 200; k += 2) ASSERT_TRUE(avl.erase(k));
  ASSERT_FALSE(avl.erase(1000));  // absent
  int hits = 0;
  for (std::int64_t k = 0; k < 200; ++k) hits += avl.contains(k) ? 1 : 0;
  const Snapshot s1 = Registry::instance().snapshot();

  const auto delta = [&](Counter c) { return s1.counter(c) - s0.counter(c); };
  EXPECT_EQ(delta(Counter::kInsertOps), 201u);
  EXPECT_EQ(delta(Counter::kInsertSuccess), 200u);
  EXPECT_EQ(delta(Counter::kEraseOps), 101u);
  EXPECT_EQ(delta(Counter::kEraseSuccess), 100u);
  EXPECT_EQ(delta(Counter::kContainsOps), 200u);
  EXPECT_EQ(delta(Counter::kContainsHits), static_cast<std::uint64_t>(hits));
  EXPECT_EQ(hits, 100);
  EXPECT_GE(delta(Counter::kRotations), 1u);  // AVL had to rotate
  EXPECT_EQ(delta(Counter::kEraseLogical), 0u);  // on-time removal: never
  // Single-threaded OnTimeRemoval: the node is allocated before the
  // validation loop, so no restart of any kind can occur — and the central
  // audit: every descent accounted for, contains never restarted.
  EXPECT_EQ(delta(Counter::kInsertRestarts), 0u);
  EXPECT_EQ(delta(Counter::kEraseRestarts), 0u);
  EXPECT_EQ(contains_restarts_delta(s0, s1), 0);
}

TEST(ObsRegistry, ZombieLifecycleCountersReconcile) {
  const Snapshot s0 = Registry::instance().snapshot();
  lot::lo::PartialAvlMap<std::int64_t, std::int64_t> m;
  // 1,2,3 force a rotation that roots 2 with two children — so erase(2) is
  // the two-children case LogicalRemoving downgrades to a zombie.
  ASSERT_TRUE(m.insert(1, 1));
  ASSERT_TRUE(m.insert(2, 2));
  ASSERT_TRUE(m.insert(3, 3));
  ASSERT_TRUE(m.erase(2));
  EXPECT_FALSE(m.contains(2));
  ASSERT_TRUE(m.insert(2, 42));  // revive the zombie in place
  EXPECT_TRUE(m.contains(2));
  const Snapshot s1 = Registry::instance().snapshot();

  const auto delta = [&](Counter c) { return s1.counter(c) - s0.counter(c); };
  EXPECT_EQ(delta(Counter::kInsertOps), 4u);
  EXPECT_EQ(delta(Counter::kInsertSuccess), 4u);
  EXPECT_EQ(delta(Counter::kEraseOps), 1u);
  EXPECT_EQ(delta(Counter::kEraseSuccess), 1u);
  EXPECT_EQ(delta(Counter::kEraseLogical), 1u);
  EXPECT_EQ(delta(Counter::kInsertRevives), 1u);
  EXPECT_EQ(delta(Counter::kEraseRelocations), 0u);  // LR never relocates
  // Fresh LogicalRemoving inserts used to re-descend once each through the
  // allocate-outside-the-lock path; the versioned capture now allocates
  // from the captured interval before taking the lock, so a single-threaded
  // run needs neither a resume nor a restart.
  EXPECT_EQ(delta(Counter::kInsertRestarts), 0u);
  EXPECT_EQ(delta(Counter::kLocateResumes), 0u);
  EXPECT_EQ(delta(Counter::kValidationFallbacks), 0u);
  EXPECT_EQ(contains_restarts_delta(s0, s1), 0);
}

TEST(ObsRegistry, SerializersCarryTheSchema) {
  lot::obs::record_latency(OpKind::kScan, 500);
  const Snapshot s = Registry::instance().snapshot();
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"schema\": \"lot-obs-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"contains_restarts\""), std::string::npos);
  EXPECT_NE(json.find("\"tree_descents\""), std::string::npos);
  EXPECT_NE(json.find("\"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch_lag\""), std::string::npos);
  const std::string text = s.to_text();
  EXPECT_NE(text.find("contains_restarts"), std::string::npos);
  EXPECT_NE(text.find("tree_descents"), std::string::npos);
}

#endif  // !LOT_DISABLE_OBS

}  // namespace
