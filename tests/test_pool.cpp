// Unit tests for the per-thread slab pool (reclaim/pool.hpp): slab growth
// and reuse, the cross-thread remote-free path, deterministic exhaustion →
// bad_alloc, the operator-new fallback, freed-slot poisoning, thread-exit
// cache orphaning/adoption, and — the property everything hinges on —
// recycle-after-grace ordering through EbrDomain::retire_via: a retired
// node's slot must never be handed out again while a parked Guard could
// still dereference it.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "lo/avl.hpp"
#include "reclaim/alloc_stats.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/pool.hpp"
#include "sync/cacheline.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define LOT_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LOT_TEST_ASAN 1
#endif
#endif

namespace {

using lot::reclaim::AllocStats;
using lot::reclaim::EbrDomain;
using lot::reclaim::NewNodeAlloc;
using lot::reclaim::PoolNodeAlloc;
using lot::reclaim::PoolStats;
using lot::reclaim::SizePool;

TEST(Pool, SlotsAreCachelineAlignedAndSized) {
  SizePool pool(48, 8);
  EXPECT_EQ(pool.slot_bytes() % lot::sync::kCacheLineSize, 0u);
  EXPECT_GE(pool.slot_bytes(), 48u);
  std::vector<void*> slots;
  for (int i = 0; i < 16; ++i) {
    void* p = pool.allocate();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  lot::sync::kCacheLineSize,
              0u);
    slots.push_back(p);
  }
  for (void* p : slots) pool.deallocate(p);
}

TEST(Pool, SlabGrowthAndLocalReuse) {
  SizePool pool(64, 64);
  const std::size_t per_slab = pool.slots_per_slab();
  ASSERT_GT(per_slab, 0u);

  // Filling one slab plus one slot forces exactly one growth.
  std::vector<void*> slots;
  for (std::size_t i = 0; i < per_slab; ++i) slots.push_back(pool.allocate());
  EXPECT_EQ(pool.slab_count(), 1u);
  slots.push_back(pool.allocate());
  EXPECT_EQ(pool.slab_count(), 2u);

  // Everything freed locally is reused without any new slab.
  const std::set<void*> first_round(slots.begin(), slots.end());
  for (void* p : slots) pool.deallocate(p);
  slots.clear();
  for (std::size_t i = 0; i < per_slab + 1; ++i) {
    void* p = pool.allocate();
    EXPECT_TRUE(first_round.count(p) > 0) << "expected a recycled slot";
    slots.push_back(p);
  }
  EXPECT_EQ(pool.slab_count(), 2u);
  for (void* p : slots) pool.deallocate(p);
}

TEST(Pool, RemoteFreeReturnsSlotsToOwningSlab) {
  SizePool pool(64, 64);
  pool.set_slab_limit(1);
  pool.set_fallback_enabled(false);
  const auto remote_before =
      PoolStats::remote_frees().load(std::memory_order_relaxed);

  // Drain the whole slab so the owner's bump window is exhausted — the
  // only way the next allocations can succeed is by harvesting remote
  // frees.
  std::vector<void*> slots;
  for (std::size_t i = 0; i < pool.slots_per_slab(); ++i) {
    slots.push_back(pool.allocate());
  }
  std::vector<void*> freed(slots.end() - 64, slots.end());
  slots.resize(slots.size() - 64);
  const std::set<void*> theirs(freed.begin(), freed.end());

  // A thread that never allocated from this pool frees them: every free
  // must take the slab's remote stack, not a local list.
  std::thread other([&] {
    for (void* p : freed) pool.deallocate(p);
  });
  other.join();
  EXPECT_GE(PoolStats::remote_frees().load(std::memory_order_relaxed),
            remote_before + 64);

  // The owner harvests them back: same addresses, no slab growth.
  for (int i = 0; i < 64; ++i) {
    void* p = pool.allocate();
    EXPECT_TRUE(theirs.count(p) > 0)
        << "expected a harvested remote-free slot";
    slots.push_back(p);
  }
  EXPECT_EQ(pool.slab_count(), 1u);
  for (void* p : slots) pool.deallocate(p);
}

TEST(Pool, ExhaustionThrowsBadAllocAndRecovers) {
  SizePool pool(64, 64);
  pool.set_slab_limit(1);
  pool.set_fallback_enabled(false);

  std::vector<void*> slots;
  for (;;) {
    try {
      slots.push_back(pool.allocate());
    } catch (const std::bad_alloc&) {
      break;
    }
  }
  EXPECT_EQ(slots.size(), pool.slots_per_slab());
  EXPECT_EQ(pool.slab_count(), 1u);
  // Still exhausted: another attempt throws again (no state was mangled).
  EXPECT_THROW(pool.allocate(), std::bad_alloc);

  // Freeing one slot ends the exhaustion.
  pool.deallocate(slots.back());
  slots.pop_back();
  void* p = pool.allocate();
  EXPECT_NE(p, nullptr);
  slots.push_back(p);

  // Raising the limit allows growth again.
  pool.set_slab_limit(0);
  slots.push_back(pool.allocate());
  EXPECT_EQ(pool.slab_count(), 2u);
  for (void* q : slots) pool.deallocate(q);
}

TEST(Pool, FallbackRoutesThroughOperatorNew) {
  SizePool pool(64, 64);
  pool.set_slab_limit(1);
  const auto fb_before =
      PoolStats::fallback_allocs().load(std::memory_order_relaxed);

  std::vector<void*> slab_slots;
  for (std::size_t i = 0; i < pool.slots_per_slab(); ++i) {
    slab_slots.push_back(pool.allocate());
  }
  // Past the slab cap with the fallback on: allocation still succeeds and
  // is counted as a fallback; freeing it must route to operator delete
  // (and not crash on the slab mask).
  void* fb = pool.allocate();
  EXPECT_NE(fb, nullptr);
  EXPECT_EQ(PoolStats::fallback_allocs().load(std::memory_order_relaxed),
            fb_before + 1);
  const auto fb_free_before =
      PoolStats::fallback_frees().load(std::memory_order_relaxed);
  pool.deallocate(fb);
  EXPECT_EQ(PoolStats::fallback_frees().load(std::memory_order_relaxed),
            fb_free_before + 1);
  for (void* p : slab_slots) pool.deallocate(p);
}

TEST(Pool, FreedSlotsArePoisoned) {
  SizePool pool(256, 64);
  pool.set_poison(true);
  void* p = pool.allocate();
  std::memset(p, 0xAA, 256);
  pool.deallocate(p);
#if defined(LOT_TEST_ASAN)
  // Under ASan the poisoned region traps on access, which *is* the
  // property — reading it here would (correctly) abort the test binary, so
  // the byte-pattern check runs only in non-ASan builds.
  SUCCEED();
#else
  const auto* bytes = static_cast<const unsigned char*>(p);
  for (std::size_t i = sizeof(void*); i < 256; ++i) {
    ASSERT_EQ(bytes[i], SizePool::kPoisonByte) << "offset " << i;
  }
#endif
  void* q = pool.allocate();  // leaves the pool clean for its destructor
  EXPECT_EQ(q, p);            // LIFO: the poisoned slot comes straight back
  pool.deallocate(q);
}

TEST(Pool, ExitedThreadCacheIsAdopted) {
  SizePool pool(64, 64);
  const auto adopted_before =
      PoolStats::caches_adopted().load(std::memory_order_relaxed);
  void* first = nullptr;
  std::thread t1([&] {
    first = pool.allocate();
    pool.deallocate(first);
  });
  t1.join();
  // t1's cache (with its slab and one free slot) is orphaned; the next
  // thread adopts it wholesale instead of carving a new slab.
  void* second = nullptr;
  std::thread t2([&] {
    second = pool.allocate();
    pool.deallocate(second);
  });
  t2.join();
  EXPECT_EQ(first, second);
  EXPECT_EQ(pool.slab_count(), 1u);
  EXPECT_GE(PoolStats::caches_adopted().load(std::memory_order_relaxed),
            adopted_before + 1);
}

struct GraceObj {
  std::uint64_t payload[6] = {};
};

// The EBR safety argument (DESIGN.md §10): a slot retired through
// retire_via<PoolNodeAlloc> re-enters a free list only after the grace
// period, so while a Guard pinned before the retire is still parked, no
// allocation may return that slot.
TEST(Pool, RecycleWaitsForGracePeriod) {
  auto& pool = lot::reclaim::pool_for<GraceObj>();
  EbrDomain domain;
  domain.set_retire_threshold(1);  // reclaim eagerly

  GraceObj* obj = PoolNodeAlloc{}.create<GraceObj>();
  void* const addr = obj;

  std::mutex m;
  std::condition_variable cv;
  bool reader_pinned = false;
  bool release_reader = false;
  std::thread reader([&] {
    auto g = domain.guard();  // pins the current epoch
    {
      std::unique_lock<std::mutex> lk(m);
      reader_pinned = true;
      cv.notify_all();
      cv.wait(lk, [&] { return release_reader; });
    }
  });
  {
    std::unique_lock<std::mutex> lk(m);
    cv.wait(lk, [&] { return reader_pinned; });
  }

  domain.retire_via<PoolNodeAlloc>(obj);
  domain.flush();  // cannot advance past the parked reader twice

  // While the reader is parked the slot must not come back out.
  std::vector<void*> handed_out;
  for (int i = 0; i < 32; ++i) {
    void* p = pool.allocate();
    EXPECT_NE(p, addr) << "slot recycled inside the grace period";
    handed_out.push_back(p);
  }
  for (void* p : handed_out) pool.deallocate(p);

  {
    std::lock_guard<std::mutex> lk(m);
    release_reader = true;
    cv.notify_all();
  }
  reader.join();

  // Grace over: flush frees the node on this thread, so the slot lands on
  // this thread's local LIFO and the very next allocation returns it.
  domain.flush();
  void* p = pool.allocate();
  EXPECT_EQ(p, addr);
  pool.deallocate(p);
}

// End-to-end through the tree: explicit pool and new policies both leave
// the global node accounting balanced after map + domain teardown.
template <typename Alloc>
void map_smoke() {
  const auto live_before = AllocStats::live();
  {
    EbrDomain domain;
    lot::lo::AvlMap<std::int64_t, std::int64_t, std::less<std::int64_t>,
                    Alloc>
        map(domain);
    for (std::int64_t k = 0; k < 512; ++k) ASSERT_TRUE(map.insert(k, 2 * k));
    for (std::int64_t k = 0; k < 512; k += 2) ASSERT_TRUE(map.erase(k));
    for (std::int64_t k = 0; k < 512; ++k) {
      EXPECT_EQ(map.contains(k), k % 2 == 1) << k;
    }
    EXPECT_EQ(map.size_slow(), 256u);
  }
  EXPECT_EQ(AllocStats::live(), live_before);
}

TEST(Pool, MapSmokePoolAlloc) { map_smoke<PoolNodeAlloc>(); }
TEST(Pool, MapSmokeNewAlloc) { map_smoke<NewNodeAlloc>(); }

TEST(Pool, StatsFlowThroughEbrSnapshot) {
  EbrDomain domain;
  const auto before = domain.stats().pool;
  {
    lot::lo::AvlMap<std::int64_t, std::int64_t, std::less<std::int64_t>,
                    PoolNodeAlloc>
        map(domain);
    for (std::int64_t k = 0; k < 128; ++k) ASSERT_TRUE(map.insert(k, k));
    const auto during = domain.stats().pool;
    EXPECT_GE(during.allocs, before.allocs + 128);
    EXPECT_GT(during.slabs, 0u);
    EXPECT_GE(during.live_slots(), 128u);
  }
  domain.flush();
  const auto after = domain.stats().pool;
  EXPECT_GE(after.frees, before.frees + 128);
}

}  // namespace
