// One typed suite for every baseline implementation: the lock-free skip
// list, EFRB external BST, Bronson BCCO tree, Crain contention-friendly
// tree, the chromatic-style LLX/SCX tree, and the coarse-locked std::map.
// All of them must pass the exact same functional and concurrency tests
// the logical-ordering trees pass.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <thread>
#include <type_traits>
#include <vector>

#include "adapters/map_concept.hpp"
#include "baselines/bronson/bronson.hpp"
#include "baselines/cf/cf_tree.hpp"
#include "baselines/chromatic/chromatic.hpp"
#include "baselines/coarse/coarse_map.hpp"
#include "baselines/efrb/efrb.hpp"
#include "baselines/hj/hj_tree.hpp"
#include "baselines/skiplist/skiplist.hpp"
#include "reclaim/ebr.hpp"
#include "util/random.hpp"

// Whole-suite sanitizer presets (tsan/asan) define LOT_STRESS_DIVISOR > 1
// to shrink the stress loops to fit the per-test timeout; the default
// preset runs them at full size.
#ifndef LOT_STRESS_DIVISOR
#define LOT_STRESS_DIVISOR 1
#endif

namespace {

using K = std::int64_t;
using V = std::int64_t;
using lot::util::Xoshiro256;

constexpr int scaled(int n) {
  return n / LOT_STRESS_DIVISOR > 0 ? n / LOT_STRESS_DIVISOR : 1;
}

using Impls = ::testing::Types<
    lot::baselines::SkipListMap<K, V>, lot::baselines::EfrbMap<K, V>,
    lot::baselines::BronsonMap<K, V>, lot::baselines::CfTreeMap<K, V>,
    lot::baselines::ChromaticMap<K, V>, lot::baselines::HjTreeMap<K, V>,
    lot::baselines::CoarseMap<K, V>>;

static_assert(
    lot::adapters::OrderedMap<lot::baselines::SkipListMap<K, V>> &&
    lot::adapters::OrderedMap<lot::baselines::EfrbMap<K, V>> &&
    lot::adapters::OrderedMap<lot::baselines::BronsonMap<K, V>> &&
    lot::adapters::OrderedMap<lot::baselines::CfTreeMap<K, V>> &&
    lot::adapters::OrderedMap<lot::baselines::ChromaticMap<K, V>> &&
    lot::adapters::OrderedMap<lot::baselines::HjTreeMap<K, V>> &&
    lot::adapters::OrderedMap<lot::baselines::CoarseMap<K, V>>);

template <typename MapT>
class BaselineTest : public ::testing::Test {};
TYPED_TEST_SUITE(BaselineTest, Impls);

TYPED_TEST(BaselineTest, EmptyBehaviour) {
  TypeParam m;
  EXPECT_FALSE(m.contains(1));
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_FALSE(m.erase(1));
  EXPECT_FALSE(m.min().has_value());
  EXPECT_FALSE(m.max().has_value());
  EXPECT_EQ(m.size_slow(), 0u);
}

TYPED_TEST(BaselineTest, InsertGetEraseRoundTrip) {
  TypeParam m;
  EXPECT_TRUE(m.insert(7, 70));
  EXPECT_FALSE(m.insert(7, 71));
  EXPECT_TRUE(m.contains(7));
  EXPECT_EQ(m.get(7).value(), 70);
  EXPECT_FALSE(m.contains(6));
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_FALSE(m.contains(7));
  EXPECT_TRUE(m.insert(7, 72));  // reinsert after remove
  EXPECT_EQ(m.get(7).value(), 72);
}

TYPED_TEST(BaselineTest, MinMaxOrderedIteration) {
  TypeParam m;
  for (K k : {7, 3, 9, 1, 5}) ASSERT_TRUE(m.insert(k, k * 10));
  EXPECT_EQ(m.min().value().first, 1);
  EXPECT_EQ(m.max().value().first, 9);
  std::vector<K> keys;
  m.for_each([&](K k, V v) {
    keys.push_back(k);
    EXPECT_EQ(v, k * 10);
  });
  EXPECT_EQ(keys, (std::vector<K>{1, 3, 5, 7, 9}));
  ASSERT_TRUE(m.erase(1));
  ASSERT_TRUE(m.erase(9));
  EXPECT_EQ(m.min().value().first, 3);
  EXPECT_EQ(m.max().value().first, 7);
}

TYPED_TEST(BaselineTest, TwoChildrenStyleRemovals) {
  TypeParam m;
  for (K k : {50, 25, 75, 10, 30, 60, 90}) ASSERT_TRUE(m.insert(k, k));
  ASSERT_TRUE(m.erase(50));
  ASSERT_TRUE(m.erase(25));
  for (K k : {75, 10, 30, 60, 90}) EXPECT_TRUE(m.contains(k)) << k;
  EXPECT_FALSE(m.contains(50));
  EXPECT_FALSE(m.contains(25));
  EXPECT_EQ(m.size_slow(), 5u);
}

TYPED_TEST(BaselineTest, DifferentialVsStdMap) {
  TypeParam m;
  std::map<K, V> oracle;
  Xoshiro256 rng(4242);
  for (int i = 0; i < scaled(60'000); ++i) {
    const K k = rng.next_in(0, 299);
    switch (rng.next_below(4)) {
      case 0:
        ASSERT_EQ(m.insert(k, i), oracle.emplace(k, i).second) << "key " << k;
        break;
      case 1:
        ASSERT_EQ(m.erase(k), oracle.erase(k) > 0) << "key " << k;
        break;
      case 2:
        ASSERT_EQ(m.contains(k), oracle.count(k) > 0) << "key " << k;
        break;
      default: {
        const auto mine = m.get(k);
        const auto it = oracle.find(k);
        ASSERT_EQ(mine.has_value(), it != oracle.end()) << "key " << k;
        if (mine) {
          ASSERT_EQ(*mine, it->second);
        }
      }
    }
  }
  ASSERT_EQ(m.size_slow(), oracle.size());
  auto it = oracle.begin();
  m.for_each([&](K k, V) {
    ASSERT_NE(it, oracle.end());
    EXPECT_EQ(it->first, k);
    ++it;
  });
  EXPECT_EQ(it, oracle.end());
}

TYPED_TEST(BaselineTest, StableKeysAlwaysFoundDuringChurn) {
  TypeParam m;
  constexpr K kStride = 10;
  constexpr K kRange = 1'500;
  for (K k = 0; k < kRange; k += kStride) ASSERT_TRUE(m.insert(k, k));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const K k = rng.next_below(kRange / kStride) * kStride;
        if (!m.contains(k)) misses.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Xoshiro256 rng(100 + t);
      for (int i = 0; i < scaled(40'000); ++i) {
        K k = static_cast<K>(rng.next_below(kRange));
        if (k % kStride == 0) ++k;
        if (rng.percent(50)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(misses.load(), 0u);
  for (K k = 0; k < kRange; k += kStride) EXPECT_TRUE(m.contains(k));
}

TYPED_TEST(BaselineTest, DisjointPartitionsDeterministicResult) {
  TypeParam m;
  constexpr int kThreads = 6;
  constexpr K kPerThread = 256;
  std::vector<std::set<K>> expected(kThreads);
  std::vector<std::thread> threads;
  std::atomic<bool> bad{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(7000 + t);
      auto& mine = expected[t];
      const K base = static_cast<K>(t) * kPerThread;
      for (int i = 0; i < scaled(25'000); ++i) {
        const K k = base + static_cast<K>(rng.next_below(kPerThread));
        if (rng.percent(60)) {
          if (m.insert(k, k) != (mine.count(k) == 0)) bad = true;
          mine.insert(k);
        } else {
          if (m.erase(k) != (mine.count(k) > 0)) bad = true;
          mine.erase(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  std::set<K> all;
  for (const auto& s : expected) all.insert(s.begin(), s.end());
  EXPECT_EQ(m.size_slow(), all.size());
  for (K k : all) EXPECT_TRUE(m.contains(k)) << k;
  std::vector<K> in_order;
  m.for_each([&](K k, V) { in_order.push_back(k); });
  EXPECT_TRUE(
      std::equal(in_order.begin(), in_order.end(), all.begin(), all.end()));
}

TYPED_TEST(BaselineTest, SingleKeyContention) {
  TypeParam m;
  constexpr int kThreads = 6;
  std::atomic<long> ins{0};
  std::atomic<long> ers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < scaled(20'000); ++i) {
        if (rng.percent(50)) {
          if (m.insert(77, t)) ins.fetch_add(1);
        } else {
          if (m.erase(77)) ers.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const long delta = ins.load() - ers.load();
  ASSERT_TRUE(delta == 0 || delta == 1) << delta;
  EXPECT_EQ(m.contains(77), delta == 1);
  EXPECT_EQ(m.size_slow(), static_cast<std::size_t>(delta));
}

TYPED_TEST(BaselineTest, SharedKeyspaceMixedStress) {
  TypeParam m;
  constexpr int kThreads = 6;
  constexpr K kRange = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(13 * t + 1);
      for (int i = 0; i < scaled(30'000); ++i) {
        const K k = static_cast<K>(rng.next_below(kRange));
        switch (rng.next_below(3)) {
          case 0:
            m.insert(k, k);
            break;
          case 1:
            m.erase(k);
            break;
          default:
            m.contains(k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  // Structure must still answer queries coherently: iteration sorted,
  // membership matches iteration.
  std::vector<K> keys;
  m.for_each([&](K k, V) { keys.push_back(k); });
  for (std::size_t i = 1; i < keys.size(); ++i) {
    ASSERT_LT(keys[i - 1], keys[i]);
  }
  for (K k : keys) EXPECT_TRUE(m.contains(k));
}

// Every EBR-backed baseline accepts a caller-supplied domain — the same
// contract the sharding layer (src/shard/) builds on for the LO trees, so
// baselines can run comparison cells inside private reclamation universes.
// Churn + teardown on a private domain: retired nodes must drain through
// it and the ASan/LSan build fails on anything left behind. CoarseMap
// (mutex + std::map, no deferred reclamation) legitimately has no domain
// parameter and skips.
TYPED_TEST(BaselineTest, RunsOnAPrivateEbrDomain) {
  if constexpr (std::is_constructible_v<TypeParam,
                                        lot::reclaim::EbrDomain&>) {
    lot::reclaim::EbrDomain domain;
    {
      TypeParam m(domain);
      for (K k = 0; k < 512; ++k) ASSERT_TRUE(m.insert(k, k));
      for (K k = 0; k < 512; k += 2) ASSERT_TRUE(m.erase(k));
      for (K k = 1; k < 512; k += 2) EXPECT_TRUE(m.contains(k));
      for (K k = 0; k < 512; k += 2) EXPECT_FALSE(m.contains(k));
      // No assertion on the domain's backlog: eager-removal baselines
      // retire on erase, but lazy ones (CF's logical deletion) may retire
      // nothing in this workload. The contract under test is that the map
      // runs entirely on the caller's domain and tears down clean — the
      // ASan/LSan stage turns any node that escaped it into a failure.
    }  // map first, then the domain drains what the map retired
  } else {
    GTEST_SKIP() << "baseline performs no deferred reclamation";
  }
}

}  // namespace
