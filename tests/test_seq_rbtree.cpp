// Tests for the sequential red-black tree used by the Pfaff (§2)
// comparison ablation.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "seq/rbtree.hpp"
#include "util/random.hpp"

namespace {

using Map = lot::seq::RbTreeMap<std::int64_t, std::int64_t>;

TEST(SeqRbTree, EmptyBehaviour) {
  Map m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_FALSE(m.min().has_value());
  EXPECT_TRUE(m.is_valid_rb());
}

TEST(SeqRbTree, InsertEraseRoundTrip) {
  Map m;
  EXPECT_TRUE(m.insert(5, 50));
  EXPECT_FALSE(m.insert(5, 51));
  EXPECT_EQ(m.get(5).value(), 50);
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.erase(5));
  EXPECT_TRUE(m.is_valid_rb());
}

TEST(SeqRbTree, AscendingFillStaysLogarithmicAndValid) {
  Map m;
  constexpr std::int64_t kN = 1 << 12;
  for (std::int64_t k = 0; k < kN; ++k) ASSERT_TRUE(m.insert(k, k));
  EXPECT_TRUE(m.is_valid_rb());
  EXPECT_LE(m.height(), 2 * 13);  // RB bound: 2 log2(n+1)
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kN));
}

TEST(SeqRbTree, OrderedIterationAndMinMax) {
  Map m;
  for (std::int64_t k : {7, 3, 9, 1, 5}) m.insert(k, k * 10);
  EXPECT_EQ(m.min().value().first, 1);
  EXPECT_EQ(m.max().value().first, 9);
  std::vector<std::int64_t> keys;
  m.for_each([&](std::int64_t k, std::int64_t) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::int64_t>{1, 3, 5, 7, 9}));
}

TEST(SeqRbTree, DifferentialVsStdMapWithInvariantChecks) {
  Map m;
  std::map<std::int64_t, std::int64_t> oracle;
  lot::util::Xoshiro256 rng(777);
  for (int i = 0; i < 150'000; ++i) {
    const std::int64_t k = rng.next_in(0, 799);
    switch (rng.next_below(3)) {
      case 0:
        ASSERT_EQ(m.insert(k, i), oracle.emplace(k, i).second);
        break;
      case 1:
        ASSERT_EQ(m.erase(k), oracle.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(m.contains(k), oracle.count(k) > 0);
    }
    if (i % 5'000 == 0) ASSERT_TRUE(m.is_valid_rb()) << "at op " << i;
  }
  ASSERT_TRUE(m.is_valid_rb());
  ASSERT_EQ(m.size(), oracle.size());
  auto it = oracle.begin();
  m.for_each([&](std::int64_t k, std::int64_t v) {
    ASSERT_EQ(it->first, k);
    ASSERT_EQ(it->second, v);
    ++it;
  });
}

TEST(SeqRbTree, TotalDepthMetric) {
  Map m;
  m.insert(2, 0);  // becomes root
  m.insert(1, 0);
  m.insert(3, 0);
  // A 3-node balanced tree: depths 1 + 2 + 2.
  EXPECT_EQ(m.total_depth(), 5u);
}

}  // namespace
