// White-box tests for the LLX/SCX substrate (Brown et al.'s primitive)
// independent of the tree built on it: snapshot semantics, freeze/commit,
// conflict aborts, finalization, helping, and record reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/llxscx/llxscx.hpp"
#include "reclaim/ebr.hpp"

namespace {

namespace lx = lot::baselines::llxscx;

struct TestNode {
  int id = 0;
  std::atomic<TestNode*> left{nullptr};
  std::atomic<TestNode*> right{nullptr};
  std::atomic<lx::ScxRecord<TestNode>*> info;
  std::atomic<bool> finalized{false};

  explicit TestNode(int i)
      : id(i), info(lx::dummy_record<TestNode>()) {}
};

using Rec = lx::ScxRecord<TestNode>;

class LlxScxTest : public ::testing::Test {
 protected:
  lot::reclaim::EbrDomain domain_;

  TestNode* make(int id) { return lot::reclaim::make_counted<TestNode>(id); }

  bool do_scx(std::vector<TestNode*> v, std::vector<Rec*> infos,
              std::vector<TestNode*> fin, std::atomic<TestNode*>* field,
              TestNode* oldc, TestNode* newc) {
    return lx::scx<TestNode>(v.data(), infos.data(), v.size(), fin.data(),
                             fin.size(), field, oldc, newc, domain_);
  }
};

TEST_F(LlxScxTest, LlxReturnsConsistentSnapshot) {
  TestNode* a = make(1);
  TestNode* b = make(2);
  TestNode* c = make(3);
  a->left.store(b);
  a->right.store(c);
  const auto r = lx::llx(a, domain_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.left, b);
  EXPECT_EQ(r.right, c);
  EXPECT_EQ(r.info, lx::dummy_record<TestNode>());
  lot::reclaim::delete_counted(a);
  lot::reclaim::delete_counted(b);
  lot::reclaim::delete_counted(c);
}

TEST_F(LlxScxTest, ScxCommitsFieldChangeAndFinalizes) {
  TestNode* parent = make(1);
  TestNode* old_child = make(2);
  TestNode* new_child = make(3);
  parent->left.store(old_child);

  auto rp = lx::llx(parent, domain_);
  auto rc = lx::llx(old_child, domain_);
  ASSERT_TRUE(rp.ok());
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(do_scx({parent, old_child}, {rp.info, rc.info}, {old_child},
                     &parent->left, old_child, new_child));

  EXPECT_EQ(parent->left.load(), new_child);
  EXPECT_TRUE(old_child->finalized.load());
  EXPECT_FALSE(parent->finalized.load());
  // Parent's info is the committed record of this SCX.
  EXPECT_EQ(parent->info.load()->state.load(), Rec::kCommitted);

  // llx on a finalized node must fail forever.
  EXPECT_FALSE(lx::llx(old_child, domain_).ok());
  // llx on the parent succeeds again (record is terminal).
  EXPECT_TRUE(lx::llx(parent, domain_).ok());

  // Cleanup: each frozen node's info holds one reference on the record.
  lx::dec_ref(parent->info.load(), domain_);
  lx::dec_ref(old_child->info.load(), domain_);
  lot::reclaim::delete_counted(parent);
  lot::reclaim::delete_counted(old_child);
  lot::reclaim::delete_counted(new_child);
}

TEST_F(LlxScxTest, StaleLlxIsRejected) {
  TestNode* parent = make(1);
  TestNode* c1 = make(2);
  TestNode* c2 = make(3);
  TestNode* c3 = make(4);
  parent->left.store(c1);

  auto stale = lx::llx(parent, domain_);
  ASSERT_TRUE(stale.ok());

  // A first SCX moves the parent on; the stale LLX's info no longer
  // matches, so a second SCX using it must abort without writing.
  auto fresh = lx::llx(parent, domain_);
  ASSERT_TRUE(do_scx({parent}, {fresh.info}, {}, &parent->left, c1, c2));
  ASSERT_EQ(parent->left.load(), c2);

  EXPECT_FALSE(do_scx({parent}, {stale.info}, {}, &parent->left, c2, c3));
  EXPECT_EQ(parent->left.load(), c2);  // unchanged

  lx::dec_ref(parent->info.load(), domain_);  // the committed first SCX
  lot::reclaim::delete_counted(parent);
  lot::reclaim::delete_counted(c1);
  lot::reclaim::delete_counted(c2);
  lot::reclaim::delete_counted(c3);
}

TEST_F(LlxScxTest, MultiNodeFreezeAllOrNothing) {
  TestNode* a = make(1);
  TestNode* b = make(2);
  TestNode* c = make(3);
  a->left.store(b);
  b->left.store(c);

  auto ra = lx::llx(a, domain_);
  auto rb = lx::llx(b, domain_);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());

  // Invalidate b's LLX with an intervening SCX on b only.
  auto rb2 = lx::llx(b, domain_);
  TestNode* c2 = make(4);
  ASSERT_TRUE(do_scx({b}, {rb2.info}, {}, &b->left, c, c2));

  // Now the two-node SCX must fail and leave a untouched and unfrozen.
  TestNode* d = make(5);
  EXPECT_FALSE(do_scx({a, b}, {ra.info, rb.info}, {}, &a->left, b, d));
  EXPECT_EQ(a->left.load(), b);
  EXPECT_TRUE(lx::llx(a, domain_).ok());  // a is usable again
  EXPECT_TRUE(lx::llx(b, domain_).ok());

  // a holds the aborted two-node record, b the committed single-node one.
  lx::dec_ref(a->info.load(), domain_);
  lx::dec_ref(b->info.load(), domain_);
  for (TestNode* n : {a, b, c, c2, d}) lot::reclaim::delete_counted(n);
}

TEST_F(LlxScxTest, ConcurrentScxOnSameNodeExactlyOneWins) {
  for (int round = 0; round < 200; ++round) {
    TestNode* parent = make(1);
    TestNode* old_child = make(2);
    TestNode* n1 = make(3);
    TestNode* n2 = make(4);
    parent->left.store(old_child);

    auto r1 = lx::llx(parent, domain_);
    auto r2 = lx::llx(parent, domain_);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());

    std::atomic<int> wins{0};
    std::thread t1([&] {
      auto g = domain_.guard();
      if (do_scx({parent}, {r1.info}, {}, &parent->left, old_child, n1)) {
        wins.fetch_add(1);
      }
    });
    std::thread t2([&] {
      auto g = domain_.guard();
      if (do_scx({parent}, {r2.info}, {}, &parent->left, old_child, n2)) {
        wins.fetch_add(1);
      }
    });
    t1.join();
    t2.join();

    // Both used the same (still current) LLX info, so one freeze wins and
    // one aborts — never both, never neither.
    EXPECT_EQ(wins.load(), 1);
    TestNode* result = parent->left.load();
    EXPECT_TRUE(result == n1 || result == n2);

    lx::dec_ref(parent->info.load(), domain_);  // the winner's record
    for (TestNode* n : {parent, old_child, n1, n2}) {
      lot::reclaim::delete_counted(n);
    }
  }
}

TEST_F(LlxScxTest, RecordsAreReclaimed) {
  const auto live_before = lot::reclaim::AllocStats::live();
  TestNode* parent = make(1);
  std::vector<TestNode*> children;
  children.push_back(make(100));
  parent->left.store(children[0]);
  // A long chain of SCXes; each displaces the previous record, whose
  // refcount must hit zero and reach the domain.
  for (int i = 0; i < 500; ++i) {
    auto r = lx::llx(parent, domain_);
    ASSERT_TRUE(r.ok());
    TestNode* next = make(101 + i);
    children.push_back(next);
    ASSERT_TRUE(do_scx({parent}, {r.info}, {}, &parent->left,
                       children[i], next));
  }
  lx::dec_ref(parent->info.load(), domain_);  // release the last record
  lot::reclaim::delete_counted(parent);
  for (auto* c : children) lot::reclaim::delete_counted(c);
  domain_.flush();
  domain_.flush();
  domain_.flush();
  EXPECT_EQ(lot::reclaim::AllocStats::live(), live_before);
}

}  // namespace
