// Unit tests for the linearizability-checking subsystem (src/check/):
// hand-built histories with known verdicts, the interval-block pre-pass,
// the WGL search on genuinely overlapping blocks, recorder mechanics, and
// a randomized differential against a sequential std::set oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "check/history.hpp"
#include "check/linearize.hpp"
#include "lo/bst.hpp"

namespace {

using lot::check::check_set_history;
using lot::check::Event;
using lot::check::HistoryRecorder;
using lot::check::Op;
using lot::check::Verdict;

using K = std::int64_t;

Event<K> ev(std::uint64_t invoke, std::uint64_t response, Op op, K key,
            bool result, std::uint16_t thread = 0) {
  return Event<K>{invoke, response, key, op, result, thread};
}

TEST(Linearize, EmptyHistory) {
  const auto res = check_set_history<K>({});
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.stats.events, 0u);
  EXPECT_EQ(res.stats.keys, 0u);
}

TEST(Linearize, SequentialLifecycleAccepted) {
  const auto res = check_set_history<K>({
      ev(1, 2, Op::kContains, 7, false),
      ev(3, 4, Op::kInsert, 7, true),
      ev(5, 6, Op::kInsert, 7, false),
      ev(7, 8, Op::kContains, 7, true),
      ev(9, 10, Op::kRemove, 7, true),
      ev(11, 12, Op::kRemove, 7, false),
      ev(13, 14, Op::kContains, 7, false),
  });
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.stats.sequential_events, 7u);
  EXPECT_EQ(res.stats.overlap_blocks, 0u);
}

TEST(Linearize, WrongContainsRejected) {
  const auto res = check_set_history<K>({
      ev(1, 2, Op::kInsert, 5, true),
      ev(3, 4, Op::kContains, 5, false),  // 5 is present; no overlap excuse
  });
  EXPECT_EQ(res.verdict, Verdict::kNonLinearizable);
  EXPECT_EQ(res.key, 5);
  ASSERT_EQ(res.witness.size(), 1u);
  EXPECT_EQ(res.witness[0].op, Op::kContains);
  EXPECT_FALSE(res.reason.empty());
}

TEST(Linearize, DoubleInsertRejected) {
  const auto res = check_set_history<K>({
      ev(1, 2, Op::kInsert, 1, true),
      ev(3, 4, Op::kInsert, 1, true),  // no remove in between
  });
  EXPECT_EQ(res.verdict, Verdict::kNonLinearizable);
  EXPECT_EQ(res.key, 1);
}

TEST(Linearize, RemoveOfAbsentKeyRejected) {
  const auto res = check_set_history<K>({ev(1, 2, Op::kRemove, 2, true)});
  EXPECT_EQ(res.verdict, Verdict::kNonLinearizable);
}

TEST(Linearize, InitialMembershipRespected) {
  EXPECT_TRUE(check_set_history<K>({ev(1, 2, Op::kContains, 4, true)}, {4})
                  .ok());
  EXPECT_TRUE(check_set_history<K>({ev(1, 2, Op::kRemove, 4, true)}, {4})
                  .ok());
  const auto res =
      check_set_history<K>({ev(1, 2, Op::kInsert, 4, true)}, {4});
  EXPECT_EQ(res.verdict, Verdict::kNonLinearizable);
}

// contains(3)=true is invoked before the only insert(3) responds, but the
// intervals overlap, so the order insert-then-contains is a valid
// linearization. Forces the WGL path (the two intervals chain).
TEST(Linearize, OverlapAllowsReordering) {
  const auto res = check_set_history<K>({
      ev(1, 4, Op::kContains, 3, true),
      ev(2, 6, Op::kInsert, 3, true),
  });
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.stats.overlap_blocks, 1u);
  EXPECT_EQ(res.stats.max_block, 2u);
  EXPECT_GT(res.stats.configs_explored, 0u);
}

TEST(Linearize, OverlapStillRejectsImpossible) {
  const auto res = check_set_history<K>({
      ev(1, 4, Op::kInsert, 3, true),
      ev(2, 6, Op::kInsert, 3, true),  // overlapping, but no remove exists
  });
  EXPECT_EQ(res.verdict, Verdict::kNonLinearizable);
  EXPECT_EQ(res.witness.size(), 2u);
}

// Three mutually overlapping ops; both observed contains results have a
// valid order (insert < contains < remove, or insert < remove < contains).
TEST(Linearize, ConcurrentTrioBothContainsResultsValid) {
  for (bool observed : {true, false}) {
    const auto res = check_set_history<K>({
        ev(1, 10, Op::kInsert, 9, true),
        ev(2, 9, Op::kRemove, 9, true),
        ev(3, 8, Op::kContains, 9, observed),
    });
    EXPECT_TRUE(res.ok()) << "observed=" << observed << ": " << res.reason;
  }
}

// The state bit must thread *across* interval blocks: an overlapping pair
// that can only end in {present} must make a later sequential contains
// observe true.
TEST(Linearize, StateCrossesBlockBoundary) {
  const auto res = check_set_history<K>({
      ev(1, 4, Op::kInsert, 6, true),
      ev(2, 5, Op::kContains, 6, true),
      ev(10, 11, Op::kContains, 6, false),  // impossible: 6 stays present
  });
  EXPECT_EQ(res.verdict, Verdict::kNonLinearizable);
  EXPECT_EQ(res.key, 6);
}

TEST(Linearize, KeysCheckedIndependently) {
  const auto res = check_set_history<K>({
      ev(1, 20, Op::kInsert, 100, true),  // long op on key 100...
      ev(2, 3, Op::kInsert, 200, true),   // ...does not overlap key 200's
      ev(4, 5, Op::kContains, 200, true),
      ev(6, 7, Op::kRemove, 300, false),
  });
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.stats.keys, 3u);
  EXPECT_EQ(res.stats.overlap_blocks, 0u);
  EXPECT_EQ(res.stats.sequential_events, 4u);
}

TEST(Linearize, TinyBudgetAborts) {
  // Ten mutually overlapping inserts/removes force a search that cannot
  // finish within one configuration.
  std::vector<Event<K>> h;
  for (int i = 0; i < 5; ++i) {
    h.push_back(ev(1 + i, 100 + i, Op::kInsert, 0, i == 0));
    h.push_back(ev(10 + i, 110 + i, Op::kRemove, 0, i == 0));
  }
  const auto res = check_set_history<K>(std::move(h), {}, /*budget=*/1);
  EXPECT_EQ(res.verdict, Verdict::kAborted);
  EXPECT_FALSE(res.reason.empty());
}

// Randomized differential: histories generated by a sequential std::set
// run are linearizable; flipping any single result makes them not.
TEST(Linearize, SequentialOracleDifferential) {
  std::mt19937_64 gen(20260805);
  for (int round = 0; round < 25; ++round) {
    std::set<K> oracle;
    std::vector<Event<K>> h;
    std::uint64_t clock = 1;
    for (int i = 0; i < 200; ++i) {
      const K key = static_cast<K>(gen() % 12);
      const auto dice = gen() % 3;
      bool result;
      Op op;
      if (dice == 0) {
        op = Op::kInsert;
        result = oracle.insert(key).second;
      } else if (dice == 1) {
        op = Op::kRemove;
        result = oracle.erase(key) > 0;
      } else {
        op = Op::kContains;
        result = oracle.count(key) > 0;
      }
      const std::uint64_t t0 = clock++;
      h.push_back(ev(t0, clock++, op, key, result));
    }
    ASSERT_TRUE(check_set_history<K>(h).ok());

    auto flipped = h;
    flipped[gen() % flipped.size()].result ^= true;
    EXPECT_EQ(check_set_history<K>(std::move(flipped)).verdict,
              Verdict::kNonLinearizable)
        << "round " << round;
  }
}

TEST(Recorder, StampsAndMerge) {
  HistoryRecorder<K> rec(2, 8);
  EXPECT_TRUE(rec.record(1, Op::kInsert, 42, [] { return true; }));
  EXPECT_FALSE(rec.record(0, Op::kContains, 41, [] { return false; }));
  const auto events = rec.merged();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by invocation: the insert ran first.
  EXPECT_EQ(events[0].op, Op::kInsert);
  EXPECT_EQ(events[0].thread, 1u);
  EXPECT_LT(events[0].invoke, events[0].response);
  EXPECT_LT(events[0].response, events[1].invoke);
  EXPECT_FALSE(rec.overflowed());
  EXPECT_EQ(rec.total_events(), 2u);
}

TEST(Recorder, OverflowFlaggedNotWrapped) {
  HistoryRecorder<K> rec(1, 2);
  for (int i = 0; i < 3; ++i) {
    rec.record(0, Op::kContains, i, [] { return false; });
  }
  EXPECT_TRUE(rec.overflowed());
  EXPECT_EQ(rec.total_events(), 2u);  // the third event was dropped, kept
}

TEST(Recorder, RealTreeSingleThreadedHistoryLinearizable) {
  lot::lo::BstMap<K, K> map;
  HistoryRecorder<K> rec(1, 512);
  std::mt19937_64 gen(7);
  for (int i = 0; i < 400; ++i) {
    const K key = static_cast<K>(gen() % 16);
    switch (gen() % 3) {
      case 0:
        rec.record(0, Op::kInsert, key, [&] { return map.insert(key, key); });
        break;
      case 1:
        rec.record(0, Op::kRemove, key, [&] { return map.erase(key); });
        break;
      default:
        rec.record(0, Op::kContains, key, [&] { return map.contains(key); });
        break;
    }
  }
  const auto res = check_set_history(rec.merged());
  EXPECT_TRUE(res.ok()) << res.reason;
  EXPECT_EQ(res.stats.events, 400u);
}

TEST(Linearize, FormatHistoryMentionsEveryEvent) {
  const auto text = lot::check::format_history<K>({
      ev(1, 2, Op::kInsert, 3, true, 4),
      ev(5, 6, Op::kContains, 3, false, 0),
  });
  EXPECT_NE(text.find("insert(3) = true"), std::string::npos);
  EXPECT_NE(text.find("contains(3) = false"), std::string::npos);
  EXPECT_NE(text.find("t4"), std::string::npos);
}

}  // namespace
