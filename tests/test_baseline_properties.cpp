// The TEST_P property grid of test_properties.cpp, applied to every
// baseline implementation: P3 (set semantics under disjoint partitions)
// and P4 (reclamation drains, no node leak) hold for all of them; P1/P2
// are tree-internal and covered by each structure's own tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "baselines/bronson/bronson.hpp"
#include "baselines/cf/cf_tree.hpp"
#include "baselines/chromatic/chromatic.hpp"
#include "baselines/efrb/efrb.hpp"
#include "baselines/hj/hj_tree.hpp"
#include "baselines/skiplist/skiplist.hpp"
#include "util/random.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
using lot::util::Xoshiro256;

using Param = std::tuple<int, int, int>;  // threads, keys/thread, update %

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [threads, keys, upd] = info.param;
  return "t" + std::to_string(threads) + "_k" + std::to_string(keys) +
         "_u" + std::to_string(upd);
}

template <typename MapT>
void run_baseline_property(const Param& param, bool check_leak) {
  const auto [threads, keys_per_thread, update_pct] = param;
  lot::reclaim::EbrDomain domain;
  const auto live_before = lot::reclaim::AllocStats::live();
  {
    MapT m(domain);
    std::vector<std::set<K>> expected(threads);
    std::vector<std::thread> workers;
    std::atomic<bool> mismatch{false};
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(999u * (t + 1));
        auto& mine = expected[t];
        const K base = static_cast<K>(t) * keys_per_thread;
        for (int i = 0; i < 15'000; ++i) {
          const K k = base + static_cast<K>(rng.next_below(
                                 static_cast<std::uint64_t>(keys_per_thread)));
          const auto dice = rng.next_below(100);
          if (dice >= static_cast<std::uint64_t>(update_pct)) {
            if (m.contains(k) != (mine.count(k) > 0)) mismatch = true;
          } else if (dice < static_cast<std::uint64_t>(update_pct) / 2) {
            if (m.insert(k, k) != (mine.count(k) == 0)) mismatch = true;
            mine.insert(k);
          } else {
            if (m.erase(k) != (mine.count(k) > 0)) mismatch = true;
            mine.erase(k);
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    ASSERT_FALSE(mismatch.load()) << "P3: op result mismatch";
    std::set<K> all;
    for (const auto& s : expected) all.insert(s.begin(), s.end());
    ASSERT_EQ(m.size_slow(), all.size()) << "P3: final size";
    std::vector<K> in_order;
    m.for_each([&](K k, V) { in_order.push_back(k); });
    ASSERT_TRUE(std::equal(in_order.begin(), in_order.end(), all.begin(),
                           all.end()))
        << "P3: final contents / ordering";

    // The CF tree's maintenance thread goes on splicing/rotating (and
    // retiring) for a short while after the workload stops; poll until the
    // retire pipeline drains.
    bool drained = false;
    for (int i = 0; i < 2'000 && !drained; ++i) {
      domain.flush();
      drained = domain.pending_retired() == 0;
      if (!drained) std::this_thread::yield();
    }
    EXPECT_TRUE(drained) << "P4: retire backlog ("
                         << domain.pending_retired() << " pending)";
  }
  domain.flush();
  if (check_leak) {
    EXPECT_EQ(lot::reclaim::AllocStats::live(), live_before)
        << "P4: node/record leak";
  }
}

class SkipListProperty : public ::testing::TestWithParam<Param> {};
class EfrbProperty : public ::testing::TestWithParam<Param> {};
class BronsonProperty : public ::testing::TestWithParam<Param> {};
class CfTreeProperty : public ::testing::TestWithParam<Param> {};
class ChromaticProperty : public ::testing::TestWithParam<Param> {};
class HjTreeProperty : public ::testing::TestWithParam<Param> {};

TEST_P(SkipListProperty, DisjointPartitionInvariants) {
  run_baseline_property<lot::baselines::SkipListMap<K, V>>(GetParam(), true);
}
TEST_P(EfrbProperty, DisjointPartitionInvariants) {
  run_baseline_property<lot::baselines::EfrbMap<K, V>>(GetParam(), true);
}
TEST_P(BronsonProperty, DisjointPartitionInvariants) {
  run_baseline_property<lot::baselines::BronsonMap<K, V>>(GetParam(), true);
}
TEST_P(CfTreeProperty, DisjointPartitionInvariants) {
  run_baseline_property<lot::baselines::CfTreeMap<K, V>>(GetParam(), true);
}
TEST_P(ChromaticProperty, DisjointPartitionInvariants) {
  // The aborted-SCX records of racing operations are owned by whichever
  // node froze last and reclaimed with it; leak accounting is exact here
  // too, so keep the check on.
  run_baseline_property<lot::baselines::ChromaticMap<K, V>>(GetParam(),
                                                            true);
}

TEST_P(HjTreeProperty, DisjointPartitionInvariants) {
  run_baseline_property<lot::baselines::HjTreeMap<K, V>>(GetParam(), true);
}

const auto kGrid = ::testing::Values(Param{2, 64, 80}, Param{4, 32, 100},
                                     Param{4, 512, 40}, Param{8, 128, 60});

INSTANTIATE_TEST_SUITE_P(Grid, SkipListProperty, kGrid, param_name);
INSTANTIATE_TEST_SUITE_P(Grid, EfrbProperty, kGrid, param_name);
INSTANTIATE_TEST_SUITE_P(Grid, BronsonProperty, kGrid, param_name);
INSTANTIATE_TEST_SUITE_P(Grid, CfTreeProperty, kGrid, param_name);
INSTANTIATE_TEST_SUITE_P(Grid, ChromaticProperty, kGrid, param_name);
INSTANTIATE_TEST_SUITE_P(Grid, HjTreeProperty, kGrid, param_name);

}  // namespace
