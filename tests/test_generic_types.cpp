// The trees are templates; nothing in them may assume integer keys or
// trivially-copyable values (except the documented partially-external /
// Bronson / CF value-slot constraint). Exercised here with string keys,
// string values, a custom comparator, and a heavier aggregate value.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "adapters/map_concept.hpp"
#include "baselines/efrb/efrb.hpp"
#include "baselines/skiplist/skiplist.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
#include "lo/validate.hpp"
#include "util/random.hpp"

namespace {

// Compile-time guard for the tightened OrderedMap concept (the full
// ordered surface: min/max, for_each, range, first/last_in_range). The
// on-time maps must satisfy it for *any* value type, including
// non-trivially-copyable ones; the logical-removing maps hold values in a
// std::atomic<V> slot for revive-in-place, so they satisfy it only for
// trivially-copyable V — that constraint is theirs alone, not the
// concept's.
static_assert(lot::adapters::OrderedMap<
              lot::lo::AvlMap<std::int64_t, std::string>>);
static_assert(lot::adapters::OrderedMap<
              lot::lo::BstMap<std::string, std::vector<int>>>);
static_assert(lot::adapters::OrderedMap<
              lot::lo::PartialAvlMap<std::int64_t, std::int64_t>>);
static_assert(lot::adapters::OrderedMap<
              lot::lo::PartialBstMap<std::int64_t, double>>);
static_assert(lot::adapters::OrderedMap<
              lot::baselines::SkipListMap<std::string, std::string>>);

TEST(GenericTypes, StringKeysAndValues) {
  lot::lo::AvlMap<std::string, std::string> m;
  EXPECT_TRUE(m.insert("kiwi", "fruit"));
  EXPECT_TRUE(m.insert("apple", "fruit"));
  EXPECT_TRUE(m.insert("zebra", "animal"));
  EXPECT_FALSE(m.insert("apple", "pie"));
  EXPECT_EQ(m.get("zebra").value(), "animal");
  EXPECT_EQ(m.min().value().first, "apple");
  EXPECT_EQ(m.max().value().first, "zebra");

  std::vector<std::string> keys;
  m.for_each([&](const std::string& k, const std::string&) {
    keys.push_back(k);
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "kiwi", "zebra"}));

  // The ordered surface is fully generic too: range over string keys.
  keys.clear();
  m.range("aardvark", "kiwi", [&](const std::string& k, const std::string&) {
    keys.push_back(k);
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"apple"}));
  EXPECT_EQ(m.first_in_range("a", "z").value().first, "apple");
  EXPECT_EQ(m.last_in_range("a", "z").value().first, "kiwi");  // "z" < "zebra"
  EXPECT_EQ(m.last_in_range("a", "zz").value().first, "zebra");

  EXPECT_TRUE(m.erase("kiwi"));
  EXPECT_FALSE(m.contains("kiwi"));
  const auto rep = lot::lo::validate(m, true);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

TEST(GenericTypes, CustomComparatorReversesOrder) {
  lot::lo::AvlMap<std::int64_t, std::int64_t, std::greater<std::int64_t>> m;
  for (std::int64_t k : {1, 5, 3, 9, 7}) ASSERT_TRUE(m.insert(k, k));
  // With greater<> the "smallest" element is the numerically largest.
  EXPECT_EQ(m.min().value().first, 9);
  EXPECT_EQ(m.max().value().first, 1);
  std::vector<std::int64_t> keys;
  m.for_each([&](std::int64_t k, std::int64_t) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::int64_t>{9, 7, 5, 3, 1}));
  EXPECT_TRUE(m.erase(9));
  EXPECT_EQ(m.min().value().first, 7);
}

struct Payload {
  std::string name;
  std::vector<int> history;
  bool operator==(const Payload&) const = default;
};

TEST(GenericTypes, AggregateValues) {
  lot::lo::AvlMap<std::int64_t, Payload> m;
  ASSERT_TRUE(m.insert(1, Payload{"alpha", {1, 2, 3}}));
  ASSERT_TRUE(m.insert(2, Payload{"beta", {4}}));
  const auto v = m.get(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->name, "alpha");
  EXPECT_EQ(v->history, (std::vector<int>{1, 2, 3}));
}

TEST(GenericTypes, StringKeysConcurrent) {
  lot::lo::AvlMap<std::string, std::int64_t> m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      lot::util::Xoshiro256 rng(t);
      for (int i = 0; i < 10'000; ++i) {
        const auto key =
            "key-" + std::to_string(t) + "-" +
            std::to_string(rng.next_below(200));
        if (rng.percent(60)) {
          m.insert(key, i);
        } else {
          m.erase(key);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  m.repair_balance();  // converge throttle-deferred rotations (quiescent)
  const auto rep = lot::lo::validate(m, true);
  EXPECT_TRUE(rep.ok) << rep.to_string();
  std::string last;
  m.for_each([&](const std::string& k, std::int64_t) {
    EXPECT_LT(last, k);
    last = k;
  });
}

TEST(GenericTypes, BaselinesWithStringKeys) {
  lot::baselines::SkipListMap<std::string, std::int64_t> sl;
  lot::baselines::EfrbMap<std::string, std::int64_t> efrb;
  for (auto* step : {"one", "two", "three"}) {
    EXPECT_TRUE(sl.insert(step, 1));
    EXPECT_TRUE(efrb.insert(step, 1));
  }
  EXPECT_TRUE(sl.contains("two"));
  EXPECT_TRUE(efrb.contains("two"));
  EXPECT_TRUE(sl.erase("two"));
  EXPECT_TRUE(efrb.erase("two"));
  EXPECT_FALSE(sl.contains("two"));
  EXPECT_FALSE(efrb.contains("two"));
  EXPECT_EQ(sl.min().value().first, "one");
  EXPECT_EQ(efrb.min().value().first, "one");
}

}  // namespace
