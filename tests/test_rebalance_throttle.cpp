// Contention-adaptive rotation throttle (lo/rebalance.hpp, DESIGN.md §13):
// while a thread's contention heat is hot the rebalance climb defers its
// rotations — the height bookkeeping still runs, so the cached heights stay
// exact and LoCore::repair_balance() can converge the tree back to the
// strict AVL bound at quiescence. These tests drive the throttle
// deterministically through the set_contention_heat() hook (single-threaded,
// 1-core-CI-safe), pin the runtime knob's semantics, and prove quiescent
// convergence after genuinely contended churn. The whole file stays
// meaningful in -DLOT_REBALANCE_THROTTLE=OFF builds: every branch checks
// kRebalanceThrottleCompiled and asserts the unconditional-rotation
// behavior instead.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "lo/avl.hpp"
#include "lo/rebalance.hpp"
#include "lo/validate.hpp"
#include "obs/obs.hpp"
#include "util/random.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
using lot::lo::AvlMap;
namespace detail = lot::lo::detail;

// gtest runs every test on the same thread, so the TLS heat and the global
// knob must be restored no matter how a test exits.
struct ThrottleStateGuard {
  ThrottleStateGuard() {
    detail::reset_contention_heat();
    detail::set_rebalance_throttle(true);
  }
  ~ThrottleStateGuard() {
    detail::reset_contention_heat();
    detail::set_rebalance_throttle(true);
  }
};

// Ascending inserts with the heat pinned at the cap before every op: each
// climb finds a |bf| >= 2 anchor and must defer its rotation, leaving a
// right spine with exact heights — which repair_balance() then converges.
TEST(RebalanceThrottle, HotWriterDefersAndRepairConverges) {
  ThrottleStateGuard guard;
  constexpr std::int64_t kN = 128;
  AvlMap<K, V> m;
  const auto obs0 = lot::obs::Registry::instance().snapshot();
  for (std::int64_t k = 0; k < kN; ++k) {
    detail::set_contention_heat(detail::kHeatCap);
    ASSERT_TRUE(m.insert(k, k));
  }
  const auto obs1 = lot::obs::Registry::instance().snapshot();
  detail::reset_contention_heat();

  // BST shape, chain, and height *bookkeeping* are intact either way —
  // deferral postpones repairs, never correctness.
  const auto loose = lot::lo::validate(m, /*check_heights=*/false);
  ASSERT_TRUE(loose.ok) << loose.to_string();

  if constexpr (detail::kRebalanceThrottleCompiled) {
    const auto strict_before = lot::lo::validate(m, /*check_heights=*/true);
    EXPECT_FALSE(strict_before.ok)
        << "a sorted fill with every rotation deferred cannot satisfy the "
           "strict AVL bound — the throttle never engaged";
#if !defined(LOT_DISABLE_OBS)
    EXPECT_GT(obs1.counter(lot::obs::Counter::kRotationsDeferred) -
                  obs0.counter(lot::obs::Counter::kRotationsDeferred),
              0u);
#endif
    EXPECT_GT(m.repair_balance(), 0u);
  } else {
    // Compiled out: rotations ran unconditionally despite the pinned heat.
    EXPECT_EQ(m.repair_balance(), 0u);
  }

  const auto strict = lot::lo::validate(m, /*check_heights=*/true);
  EXPECT_TRUE(strict.ok) << strict.to_string();
  // Fixpoint reached: a second repair pass finds nothing left to do.
  EXPECT_EQ(m.repair_balance(), 0u);
  for (std::int64_t k = 0; k < kN; ++k) EXPECT_TRUE(m.contains(k));
}

// The runtime knob: with the throttle disabled, pinned heat is ignored and
// the sorted fill stays strictly balanced with no repair pass.
TEST(RebalanceThrottle, RuntimeKnobOffRotatesUnconditionally) {
  ThrottleStateGuard guard;
  detail::set_rebalance_throttle(false);
  AvlMap<K, V> m;
  for (std::int64_t k = 0; k < 128; ++k) {
    detail::set_contention_heat(detail::kHeatCap);
    ASSERT_TRUE(m.insert(k, k));
  }
  detail::reset_contention_heat();
  const auto rep = lot::lo::validate(m, /*check_heights=*/true);
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_EQ(m.repair_balance(), 0u);
}

// Heat decays with rebalance progress: a hot thread that keeps climbing
// without new contention events cools below the threshold and resumes
// rotating on its own — the throttle is adaptive, not a latch.
TEST(RebalanceThrottle, HeatCoolsWithProgress) {
  ThrottleStateGuard guard;
  if constexpr (!detail::kRebalanceThrottleCompiled) {
    GTEST_SKIP() << "throttle compiled out (LOT_REBALANCE_THROTTLE=OFF)";
  }
  AvlMap<K, V> m;
  // Just above the threshold: the first climbs defer, but every climb
  // iteration cools by one, so well before the fill ends the thread is
  // cold and rotations resume without any explicit reset.
  detail::set_contention_heat(detail::kHeatHotThreshold + 8);
  for (std::int64_t k = 0; k < 512; ++k) ASSERT_TRUE(m.insert(k, k));
  EXPECT_LT(detail::contention_heat(), detail::kHeatHotThreshold);
  m.repair_balance();
  const auto rep = lot::lo::validate(m, /*check_heights=*/true);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

// Real contention end to end: concurrent mixed churn heats the writers via
// failed validations and lock retries; whatever imbalance their deferrals
// leave behind, one quiescent repair pass restores the strict AVL bound.
TEST(RebalanceThrottle, QuiescentConvergenceAfterContendedChurn) {
  ThrottleStateGuard guard;
  AvlMap<K, V> m;
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      lot::util::Xoshiro256 rng(911 + t);
      for (int i = 0; i < 30'000; ++i) {
        const K k = static_cast<K>(rng.next_below(2'048));
        if (rng.percent(55)) {
          m.insert(k, k);
        } else {
          m.erase(k);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  m.repair_balance();
  const auto rep = lot::lo::validate(m, /*check_heights=*/true);
  EXPECT_TRUE(rep.ok) << rep.to_string();
  EXPECT_EQ(m.repair_balance(), 0u);
}

}  // namespace
