// Tests for the sequential AVL oracle, including a randomized differential
// test against std::map — this structure must be trustworthy because the
// concurrent trees are judged against it.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "seq/avl.hpp"
#include "util/random.hpp"

namespace {

using Map = lot::seq::AvlMap<std::int64_t, std::int64_t>;

TEST(SeqAvl, EmptyBehaviour) {
  Map m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.contains(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_FALSE(m.min().has_value());
  EXPECT_FALSE(m.max().has_value());
  EXPECT_EQ(m.height(), 0);
}

TEST(SeqAvl, InsertGetEraseRoundTrip) {
  Map m;
  EXPECT_TRUE(m.insert(5, 50));
  EXPECT_FALSE(m.insert(5, 51));  // insert-if-absent
  EXPECT_EQ(m.get(5).value(), 50);
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.erase(5));
  EXPECT_TRUE(m.empty());
}

TEST(SeqAvl, AscendingInsertStaysLogarithmic) {
  Map m;
  constexpr int kN = 1 << 12;
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(m.insert(i, i));
  EXPECT_TRUE(m.is_balanced());
  // AVL height bound: < 1.4405 log2(n+2)
  EXPECT_LE(m.height(), 19);
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kN));
}

TEST(SeqAvl, MinMaxAndOrderedIteration) {
  Map m;
  for (int k : {7, 3, 9, 1, 5}) m.insert(k, k * 10);
  EXPECT_EQ(m.min().value().first, 1);
  EXPECT_EQ(m.max().value().first, 9);
  std::vector<std::int64_t> keys;
  m.for_each([&](std::int64_t k, std::int64_t) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::int64_t>{1, 3, 5, 7, 9}));
}

TEST(SeqAvl, TwoChildRemoval) {
  Map m;
  for (int k : {50, 25, 75, 10, 30, 60, 90}) m.insert(k, k);
  ASSERT_TRUE(m.erase(50));  // root with two children
  EXPECT_FALSE(m.contains(50));
  EXPECT_TRUE(m.contains(60));  // the successor survived relocation
  EXPECT_TRUE(m.is_balanced());
  EXPECT_EQ(m.size(), 6u);
}

TEST(SeqAvl, DifferentialVsStdMap) {
  Map m;
  std::map<std::int64_t, std::int64_t> oracle;
  lot::util::Xoshiro256 rng(2024);
  for (int i = 0; i < 200'000; ++i) {
    const std::int64_t k = rng.next_in(0, 999);
    const auto op = rng.next_below(3);
    if (op == 0) {
      EXPECT_EQ(m.insert(k, i), oracle.emplace(k, i).second);
    } else if (op == 1) {
      EXPECT_EQ(m.erase(k), oracle.erase(k) > 0);
    } else {
      EXPECT_EQ(m.contains(k), oracle.count(k) > 0);
      auto mine = m.get(k);
      auto it = oracle.find(k);
      EXPECT_EQ(mine.has_value(), it != oracle.end());
      if (mine && it != oracle.end()) EXPECT_EQ(*mine, it->second);
    }
    if (i % 10'000 == 0) ASSERT_TRUE(m.is_balanced());
  }
  EXPECT_EQ(m.size(), oracle.size());
  auto it = oracle.begin();
  bool order_ok = true;
  m.for_each([&](std::int64_t k, std::int64_t v) {
    order_ok = order_ok && it != oracle.end() && it->first == k &&
               it->second == v;
    if (it != oracle.end()) ++it;
  });
  EXPECT_TRUE(order_ok);
  EXPECT_TRUE(it == oracle.end());
}

}  // namespace
