// Tests for the EBR hardening layer (DESIGN.md §9): the epoch-stall
// watchdog, backlog backpressure, quiescent steal, growable record pool,
// and the stats() health snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "reclaim/ebr.hpp"

namespace {

using lot::reclaim::EbrDomain;

struct Tracked {
  static std::atomic<int> live;
  int payload = 0;
  Tracked() { live.fetch_add(1); }
  explicit Tracked(int p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(EbrHardening, StatsStartClean) {
  EbrDomain domain;
  const auto s = domain.stats();
  EXPECT_GE(s.epoch, 1u);
  EXPECT_EQ(s.pending_retired, 0u);
  EXPECT_EQ(s.records_in_use, 0u);
  EXPECT_EQ(s.record_capacity, EbrDomain::kMaxThreads);
  EXPECT_EQ(s.pool_growths, 0u);
  EXPECT_EQ(s.backpressure_hits, 0u);
  EXPECT_EQ(s.backlog_steals, 0u);
  EXPECT_EQ(s.emergency_leaks, 0u);
  EXPECT_EQ(s.stall_watchdog_fires, 0u);
  EXPECT_FALSE(s.stalled_now);
  EXPECT_EQ(s.stalled_record, static_cast<std::size_t>(-1));
}

// A record pinned at the same epoch across stall_strike_limit failed
// advances must be reported, with the owning thread's hashed id surfaced
// so an operator can find the stuck thread. Unpinning ends the episode.
TEST(EbrHardening, WatchdogReportsOffendingRecord) {
  EbrDomain domain;
  domain.set_retire_threshold(1);    // every retire attempts an advance
  domain.set_stall_strike_limit(4);  // report quickly
  domain.set_stall_report_us(0);     // attempt-only: deterministic here

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::atomic<std::uint64_t> straggler_hash{0};
  std::thread straggler([&] {
    straggler_hash =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  // Each retire attempts an advance; after the first one succeeds the
  // straggler's pin is behind the global epoch and every further attempt
  // strikes the same record.
  for (int i = 0; i < 32; ++i) domain.retire(new Tracked(i));

  const auto stalled = domain.stats();
  EXPECT_GE(stalled.stall_watchdog_fires, 1u);
  EXPECT_TRUE(stalled.stalled_now);
  EXPECT_NE(stalled.stalled_record, static_cast<std::size_t>(-1));
  EXPECT_GT(stalled.stalled_epoch, 0u);
  EXPECT_EQ(stalled.stalled_owner, straggler_hash.load());

  release = true;
  straggler.join();
  // The episode ended with the unpin; the monotonic fire count remains.
  const auto after = domain.stats();
  EXPECT_FALSE(after.stalled_now);
  EXPECT_GE(after.stall_watchdog_fires, 1u);

  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// The report is time-gated on top of the strike limit: full-tilt churn
// can burn any attempt budget inside one healthy microseconds-long pin,
// so an episode must also be *old* to be a stall. Dozens of strikes
// against a young pin stay unreported; the same pin aged past the window
// is reported on the very next strike.
TEST(EbrHardening, WatchdogReportNeedsEpisodeAgeNotJustStrikes) {
  EbrDomain domain;
  domain.set_retire_threshold(1);      // every retire attempts an advance
  domain.set_stall_strike_limit(4);
  domain.set_stall_report_us(50'000);  // 50 ms: generous vs CI jitter

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  for (int i = 0; i < 32; ++i) domain.retire(new Tracked(i));
  // ~30 strikes, but the episode is microseconds old: not a stall yet.
  EXPECT_EQ(domain.stats().stall_watchdog_fires, 0u);
  EXPECT_FALSE(domain.stats().stalled_now);

  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  domain.retire(new Tracked(99));  // same pin, same epoch — now aged
  EXPECT_GE(domain.stats().stall_watchdog_fires, 1u);
  EXPECT_TRUE(domain.stats().stalled_now);

  release = true;
  straggler.join();
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// With the scan threshold effectively disabled, only backpressure can
// reclaim. While a guard is parked the backlog grows unboundedly-in-time
// but every retire past the high-water mark keeps forcing advance+free,
// so the moment the straggler unpins the backlog collapses back under the
// mark instead of waiting for a scan that would never come.
TEST(EbrHardening, BackpressureCapsBacklogOnceStragglerUnpins) {
  constexpr std::size_t kHighWater = 100;
  constexpr int kRetired = 5000;
  EbrDomain domain;
  domain.set_retire_threshold(1u << 30);  // never reclaim via the scan path
  domain.set_backlog_high_water(kHighWater);
  // Stride 1 = the un-amortized semantics this test pins: *every* retire
  // past the mark forces a full attempt (the amortized path has its own
  // tests below).
  domain.set_backpressure_stride(1);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  const int live_before = Tracked::live.load();
  for (int i = 0; i < kRetired; ++i) domain.retire(new Tracked(i));
  // Pinned straggler: backpressure fires but cannot complete the two-epoch
  // trip, so everything stays pending (and live).
  EXPECT_EQ(Tracked::live.load() - live_before, kRetired);
  EXPECT_GT(domain.stats().backpressure_hits, 0u);

  release = true;
  straggler.join();

  // A handful of further retires, each forced through advance+free by the
  // high-water mark, drains the whole parked-era backlog.
  for (int i = 0; i < 8; ++i) domain.retire(new Tracked(i));
  EXPECT_LE(domain.pending_retired(), kHighWater);

  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), live_before);
}

// Backpressure amortization (PR 7, satellite 6): while a straggler pins
// the epoch every forced advance is a doomed O(record_capacity) scan, so
// only every stride-th backpressure entry repeats it — the rest are
// counted as throttled. The backlog still collapses promptly after the
// straggler unpins (within one stride of retires).
TEST(EbrHardening, BackpressureForcedAdvanceIsAmortized) {
  constexpr std::size_t kHighWater = 64;
  constexpr std::size_t kStride = 8;
  constexpr int kRetired = 1000;
  EbrDomain domain;
  domain.set_retire_threshold(1u << 30);  // never reclaim via the scan path
  domain.set_backlog_high_water(kHighWater);
  domain.set_backpressure_stride(kStride);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  for (int i = 0; i < kRetired; ++i) domain.retire(new Tracked(i));
  const auto s = domain.stats();
  const std::uint64_t entries = s.backpressure_hits + s.backpressure_throttled;
  // Every retire at/past the mark entered the backpressure path (nothing
  // was freed: the straggler pinned the whole run).
  EXPECT_EQ(entries, static_cast<std::uint64_t>(kRetired) - kHighWater + 1);
  // With the epoch frozen, forced attempts are one per stride (+1 for the
  // initial attempt, whose first advance still succeeded).
  EXPECT_LE(s.backpressure_hits, entries / kStride + 2);
  EXPECT_GE(s.backpressure_throttled, entries - entries / kStride - 2);

  release = true;
  straggler.join();

  // At most one stride of further retires reaches the next forced attempt,
  // which now completes the two-epoch trip and drains the backlog.
  for (std::size_t i = 0; i <= kStride; ++i) {
    domain.retire(new Tracked(static_cast<int>(i)));
  }
  EXPECT_LE(domain.pending_retired(), kHighWater);

  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// The amortization must never delay recovery: any epoch movement since a
// record's last forced attempt re-arms an immediate attempt, overriding a
// cooldown that would otherwise throttle for another stride.
TEST(EbrHardening, EpochMoveRearmsBackpressureImmediately) {
  EbrDomain domain;
  domain.set_retire_threshold(1u << 30);
  domain.set_backlog_high_water(1);           // every retire is past the mark
  domain.set_backpressure_stride(1u << 20);   // cooldown alone would throttle
                                              // essentially forever

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  domain.retire(new Tracked(0));  // forced (stale bp_last_epoch), advances once
  domain.retire(new Tracked(1));  // same epoch + huge cooldown: throttled
  const auto s1 = domain.stats();
  EXPECT_EQ(s1.backpressure_hits, 1u);
  EXPECT_EQ(s1.backpressure_throttled, 1u);

  release = true;
  straggler.join();
  domain.flush();  // advances the epoch past the record's bp_last_epoch

  const auto before = domain.stats();
  domain.retire(new Tracked(2));  // cooldown still huge — but the epoch moved
  const auto after = domain.stats();
  EXPECT_EQ(after.backpressure_hits, before.backpressure_hits + 1);
  EXPECT_EQ(after.backpressure_throttled, before.backpressure_throttled);

  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// More simultaneous pinned threads than the initial pool holds: the pool
// must grow (no abort), every thread gets a record, and the capacity
// increase is visible in stats().
TEST(EbrHardening, OversubscriptionGrowsPoolInsteadOfAborting) {
  constexpr std::size_t kThreads = EbrDomain::kMaxThreads + 8;
  EbrDomain domain;
  std::atomic<std::size_t> pinned{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto g = domain.guard();
      domain.retire(new Tracked());
      pinned.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (pinned.load() < kThreads) std::this_thread::yield();

  const auto s = domain.stats();
  EXPECT_GE(s.records_in_use, kThreads);
  EXPECT_GT(s.record_capacity, EbrDomain::kMaxThreads);
  EXPECT_GE(s.pool_growths, 1u);

  release = true;
  for (auto& th : threads) th.join();
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// flush() must adopt the backlog a dead thread left behind in its record,
// so it keeps draining through the caller's retire cycles instead of
// waiting for the slot to be reacquired by some future thread.
TEST(EbrHardening, FlushStealsBacklogOfExitedThread) {
  constexpr int kOrphaned = 200;
  EbrDomain domain;
  domain.set_retire_threshold(1u << 30);  // keep the worker's list intact

  // Pin this thread's record first: otherwise flush()'s acquire_record
  // would claim the dead worker's slot as its own (adopting the backlog by
  // reacquisition, which bypasses the steal path this test targets).
  { auto g = domain.guard(); }

  // Straggler parks first so nothing the worker retires becomes eligible.
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  std::thread worker([&] {
    for (int i = 0; i < kOrphaned; ++i) {
      auto g = domain.guard();
      domain.retire(new Tracked(i));
    }
  });
  worker.join();  // record released; its retired list stays behind

  domain.flush();  // cannot free (straggler), but must steal
  const auto s = domain.stats();
  EXPECT_GE(s.backlog_steals, static_cast<std::uint64_t>(kOrphaned));
  EXPECT_GE(domain.pending_retired(), static_cast<std::size_t>(kOrphaned));
  EXPECT_EQ(Tracked::live.load(), kOrphaned);

  release = true;
  straggler.join();
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.pending_retired(), 0u);
}

// The watchdog must not misfire on healthy churn. Single-threaded and
// fully deterministic: a guard holding several retires strikes its own
// record a few times (its pin falls behind the epoch its first retire
// advanced), but the count resets at unpin — far below the limit, so
// across thousands of guards no report may accumulate.
TEST(EbrHardening, NoWatchdogFiresOnHealthyChurn) {
  constexpr int kGuards = 1000;
  constexpr int kRetiresPerGuard = 10;  // max 9 transient strikes, limit 64
  EbrDomain domain;
  domain.set_retire_threshold(1);
  domain.set_stall_strike_limit(EbrDomain::kDefaultStallStrikeLimit);
  for (int round = 0; round < kGuards; ++round) {
    auto g = domain.guard();
    for (int i = 0; i < kRetiresPerGuard; ++i) {
      domain.retire(new Tracked(i));
    }
  }
  // Transient strikes are fine; a full watchdog report is not.
  EXPECT_EQ(domain.stats().stall_watchdog_fires, 0u);
  EXPECT_FALSE(domain.stats().stalled_now);
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.stats().emergency_leaks, 0u);
}

}  // namespace
