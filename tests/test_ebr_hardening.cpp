// Tests for the EBR hardening layer (DESIGN.md §9): the epoch-stall
// watchdog, backlog backpressure, quiescent steal, growable record pool,
// and the stats() health snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "reclaim/ebr.hpp"

namespace {

using lot::reclaim::EbrDomain;

struct Tracked {
  static std::atomic<int> live;
  int payload = 0;
  Tracked() { live.fetch_add(1); }
  explicit Tracked(int p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

TEST(EbrHardening, StatsStartClean) {
  EbrDomain domain;
  const auto s = domain.stats();
  EXPECT_GE(s.epoch, 1u);
  EXPECT_EQ(s.pending_retired, 0u);
  EXPECT_EQ(s.records_in_use, 0u);
  EXPECT_EQ(s.record_capacity, EbrDomain::kMaxThreads);
  EXPECT_EQ(s.pool_growths, 0u);
  EXPECT_EQ(s.backpressure_hits, 0u);
  EXPECT_EQ(s.backlog_steals, 0u);
  EXPECT_EQ(s.emergency_leaks, 0u);
  EXPECT_EQ(s.stall_watchdog_fires, 0u);
  EXPECT_FALSE(s.stalled_now);
  EXPECT_EQ(s.stalled_record, static_cast<std::size_t>(-1));
}

// A record pinned at the same epoch across stall_strike_limit failed
// advances must be reported, with the owning thread's hashed id surfaced
// so an operator can find the stuck thread. Unpinning ends the episode.
TEST(EbrHardening, WatchdogReportsOffendingRecord) {
  EbrDomain domain;
  domain.set_retire_threshold(1);    // every retire attempts an advance
  domain.set_stall_strike_limit(4);  // report quickly

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::atomic<std::uint64_t> straggler_hash{0};
  std::thread straggler([&] {
    straggler_hash =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  // Each retire attempts an advance; after the first one succeeds the
  // straggler's pin is behind the global epoch and every further attempt
  // strikes the same record.
  for (int i = 0; i < 32; ++i) domain.retire(new Tracked(i));

  const auto stalled = domain.stats();
  EXPECT_GE(stalled.stall_watchdog_fires, 1u);
  EXPECT_TRUE(stalled.stalled_now);
  EXPECT_NE(stalled.stalled_record, static_cast<std::size_t>(-1));
  EXPECT_GT(stalled.stalled_epoch, 0u);
  EXPECT_EQ(stalled.stalled_owner, straggler_hash.load());

  release = true;
  straggler.join();
  // The episode ended with the unpin; the monotonic fire count remains.
  const auto after = domain.stats();
  EXPECT_FALSE(after.stalled_now);
  EXPECT_GE(after.stall_watchdog_fires, 1u);

  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// With the scan threshold effectively disabled, only backpressure can
// reclaim. While a guard is parked the backlog grows unboundedly-in-time
// but every retire past the high-water mark keeps forcing advance+free,
// so the moment the straggler unpins the backlog collapses back under the
// mark instead of waiting for a scan that would never come.
TEST(EbrHardening, BackpressureCapsBacklogOnceStragglerUnpins) {
  constexpr std::size_t kHighWater = 100;
  constexpr int kRetired = 5000;
  EbrDomain domain;
  domain.set_retire_threshold(1u << 30);  // never reclaim via the scan path
  domain.set_backlog_high_water(kHighWater);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  const int live_before = Tracked::live.load();
  for (int i = 0; i < kRetired; ++i) domain.retire(new Tracked(i));
  // Pinned straggler: backpressure fires but cannot complete the two-epoch
  // trip, so everything stays pending (and live).
  EXPECT_EQ(Tracked::live.load() - live_before, kRetired);
  EXPECT_GT(domain.stats().backpressure_hits, 0u);

  release = true;
  straggler.join();

  // A handful of further retires, each forced through advance+free by the
  // high-water mark, drains the whole parked-era backlog.
  for (int i = 0; i < 8; ++i) domain.retire(new Tracked(i));
  EXPECT_LE(domain.pending_retired(), kHighWater);

  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), live_before);
}

// More simultaneous pinned threads than the initial pool holds: the pool
// must grow (no abort), every thread gets a record, and the capacity
// increase is visible in stats().
TEST(EbrHardening, OversubscriptionGrowsPoolInsteadOfAborting) {
  constexpr std::size_t kThreads = EbrDomain::kMaxThreads + 8;
  EbrDomain domain;
  std::atomic<std::size_t> pinned{0};
  std::atomic<bool> release{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto g = domain.guard();
      domain.retire(new Tracked());
      pinned.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (pinned.load() < kThreads) std::this_thread::yield();

  const auto s = domain.stats();
  EXPECT_GE(s.records_in_use, kThreads);
  EXPECT_GT(s.record_capacity, EbrDomain::kMaxThreads);
  EXPECT_GE(s.pool_growths, 1u);

  release = true;
  for (auto& th : threads) th.join();
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
}

// flush() must adopt the backlog a dead thread left behind in its record,
// so it keeps draining through the caller's retire cycles instead of
// waiting for the slot to be reacquired by some future thread.
TEST(EbrHardening, FlushStealsBacklogOfExitedThread) {
  constexpr int kOrphaned = 200;
  EbrDomain domain;
  domain.set_retire_threshold(1u << 30);  // keep the worker's list intact

  // Pin this thread's record first: otherwise flush()'s acquire_record
  // would claim the dead worker's slot as its own (adopting the backlog by
  // reacquisition, which bypasses the steal path this test targets).
  { auto g = domain.guard(); }

  // Straggler parks first so nothing the worker retires becomes eligible.
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  std::thread worker([&] {
    for (int i = 0; i < kOrphaned; ++i) {
      auto g = domain.guard();
      domain.retire(new Tracked(i));
    }
  });
  worker.join();  // record released; its retired list stays behind

  domain.flush();  // cannot free (straggler), but must steal
  const auto s = domain.stats();
  EXPECT_GE(s.backlog_steals, static_cast<std::uint64_t>(kOrphaned));
  EXPECT_GE(domain.pending_retired(), static_cast<std::size_t>(kOrphaned));
  EXPECT_EQ(Tracked::live.load(), kOrphaned);

  release = true;
  straggler.join();
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.pending_retired(), 0u);
}

// The watchdog must not misfire on healthy churn. Single-threaded and
// fully deterministic: a guard holding several retires strikes its own
// record a few times (its pin falls behind the epoch its first retire
// advanced), but the count resets at unpin — far below the limit, so
// across thousands of guards no report may accumulate.
TEST(EbrHardening, NoWatchdogFiresOnHealthyChurn) {
  constexpr int kGuards = 1000;
  constexpr int kRetiresPerGuard = 10;  // max 9 transient strikes, limit 64
  EbrDomain domain;
  domain.set_retire_threshold(1);
  domain.set_stall_strike_limit(EbrDomain::kDefaultStallStrikeLimit);
  for (int round = 0; round < kGuards; ++round) {
    auto g = domain.guard();
    for (int i = 0; i < kRetiresPerGuard; ++i) {
      domain.retire(new Tracked(i));
    }
  }
  // Transient strikes are fine; a full watchdog report is not.
  EXPECT_EQ(domain.stats().stall_watchdog_fires, 0u);
  EXPECT_FALSE(domain.stats().stalled_now);
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.stats().emergency_leaks, 0u);
}

}  // namespace
