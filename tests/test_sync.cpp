// Unit tests for the locking substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/backoff.hpp"
#include "sync/barrier.hpp"
#include "sync/spinlock.hpp"

namespace {

using lot::sync::JitterBackoff;
using lot::sync::SpinLock;
using lot::sync::ThreadBarrier;

TEST(JitterBackoff, PausesStayBoundedAndResettable) {
  lot::sync::set_backoff_seed(42);
  JitterBackoff b;
  // The window doubles up to kMaxSpins and never past it; a long retry
  // storm must terminate promptly (bounded, not truly exponential).
  for (int i = 0; i < 1000; ++i) b.pause();
  b.reset();
  for (int i = 0; i < 10; ++i) b.pause();
  SUCCEED();  // the contract here is "bounded and returns"; timing isn't
              // observable portably
}

TEST(JitterBackoff, ThreadsGetDecorrelatedStreams) {
  // Two threads hammering pause() concurrently must not share RNG state
  // (TSan would flag a shared stream; distinct TLS streams are quiet).
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      JitterBackoff b;
      for (int i = 0; i < 200; ++i) b.pause();
    });
  }
  for (auto& th : threads) th.join();
  SUCCEED();
}

TEST(SpinLock, LockUnlockSingleThread) {
  SpinLock lock;
  EXPECT_FALSE(lock.is_locked());
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TEST(SpinLock, TryLockFailsWhenHeld) {
  SpinLock lock;
  ASSERT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, MutualExclusionCounter) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;  // data race iff the lock is broken
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
  EXPECT_FALSE(lock.is_locked());
}

TEST(SpinLock, TryLockMutualExclusion) {
  SpinLock lock;
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50'000; ++i) {
        if (lock.try_lock()) {
          if (inside.fetch_add(1) != 0) violated = true;
          inside.fetch_sub(1);
          lock.unlock();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violated.load());
}

TEST(ThreadBarrier, ReleasesAllParties) {
  constexpr int kThreads = 6;
  ThreadBarrier barrier(kThreads);
  std::atomic<int> before{0};
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      // Every thread must observe all arrivals once released.
      if (before.load() != kThreads) mismatch = true;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(ThreadBarrier, Reusable) {
  constexpr int kThreads = 4;
  constexpr int kRounds = 100;
  ThreadBarrier barrier(kThreads);
  std::atomic<int> round_sum{0};
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        round_sum.fetch_add(1);
        barrier.arrive_and_wait();
        if (round_sum.load() != kThreads * (r + 1)) bad = true;
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(round_sum.load(), kThreads * kRounds);
}

}  // namespace
