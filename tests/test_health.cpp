// Tests for the overload governor (DESIGN.md §14): threshold escalation,
// hysteresis de-escalation, no-oscillation under a flapping signal, the
// epoch-lag persistence rule, the transition log, the policy predicates,
// a real EBR stall episode round-trip (Degraded and back within the
// documented recovery bound), and the pool's health-gated emergency
// reserve. The OFF build (-DLOT_HEALTH=OFF) compiles this same file and
// proves every hook is inert and the Governor an empty type.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <thread>
#include <type_traits>
#include <vector>

#include "health/health.hpp"
#include "reclaim/ebr.hpp"
#include "reclaim/pool.hpp"

namespace {

using lot::health::State;

struct Tracked {
  static std::atomic<int> live;
  int payload = 0;
  explicit Tracked(int p) : payload(p) { live.fetch_add(1); }
  ~Tracked() { live.fetch_sub(1); }
};
std::atomic<int> Tracked::live{0};

#if defined(LOT_DISABLE_HEALTH)

// The compile-out contract: no governor state exists in an OFF build, and
// every hook is an inert inline the optimizer can delete.
static_assert(!lot::health::kHealthCompiled,
              "LOT_DISABLE_HEALTH build must report kHealthCompiled=false");
static_assert(std::is_empty_v<lot::health::Governor>,
              "OFF-build Governor must stay an empty type");

TEST(HealthOff, HooksAreInert) {
  lot::reclaim::EbrDomain domain;
  lot::health::maybe_sample_tick(domain);
  lot::health::writer_gate(domain);
  lot::health::publish_state(State::kCritical);
  lot::health::note_contention();
  EXPECT_EQ(lot::health::current_state(), State::kHealthy);
  EXPECT_EQ(lot::health::transition_count(), 0u);
  EXPECT_EQ(lot::health::tick_count(), 0u);
  EXPECT_EQ(lot::health::contention_events(), 0u);
  EXPECT_FALSE(lot::health::shed_rotations());
  EXPECT_EQ(lot::health::ebr_drain_shift(), 0u);
  EXPECT_FALSE(lot::health::prefer_emergency_reserve());
  EXPECT_EQ(lot::health::admission_backoff_level(), 0u);
  const auto v = lot::health::view();
  EXPECT_EQ(v.state, State::kHealthy);
  EXPECT_EQ(v.transitions, 0u);
  EXPECT_EQ(v.ticks, 0u);
}

TEST(HealthOff, EmergencyReserveNeverGrants) {
  // Without the governor the pool's exhaustion contract is exactly the
  // seed's: limit reached + fallback off => bad_alloc, reserve untouched.
  lot::reclaim::SizePool pool(64, 8);
  pool.set_slab_limit(1);
  pool.set_fallback_enabled(false);
  std::vector<void*> slots;
  for (std::size_t i = 0; i < pool.slots_per_slab(); ++i) {
    slots.push_back(pool.allocate());
  }
  EXPECT_THROW(pool.allocate(), std::bad_alloc);
  for (void* s : slots) pool.deallocate(s);
}

#else  // governor compiled in

using lot::health::Governor;
using lot::health::governor;
using lot::health::Signals;
using lot::health::Thresholds;

static_assert(lot::health::kHealthCompiled);

// Every test shares the process-wide governor; reset() on both sides keeps
// them order-independent.
class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override { governor().reset(); }
  void TearDown() override { governor().reset(); }
};

TEST_F(HealthTest, StartsHealthyWithDefaultThresholds) {
  EXPECT_EQ(governor().state(), State::kHealthy);
  EXPECT_EQ(governor().transitions(), 0u);
  const Thresholds t = governor().thresholds();
  // The Pressured line sits above a healthy churning domain's measured
  // steady-state backlog (EXPERIMENTS.md A10) — riding it would tax
  // fault-free throughput.
  EXPECT_EQ(t.backlog[0], 32768u);
  EXPECT_EQ(t.recover_ticks, 2u);
  EXPECT_EQ(governor().recovery_bound(), 4u + 3u * t.recover_ticks);
}

TEST_F(HealthTest, EscalatesImmediatelyToDemandedSeverity) {
  // A backlog past the Critical entry threshold must not ratchet through
  // Pressured/Degraded first: one sample, straight to Critical.
  Signals s;
  s.backlog = 600'000;
  EXPECT_EQ(governor().apply(s), State::kCritical);
  EXPECT_EQ(governor().transitions(), 1u);
  const auto log = governor().transition_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].from, State::kHealthy);
  EXPECT_EQ(log[0].to, State::kCritical);
  EXPECT_STREQ(log[0].cause, "ebr-backlog");
}

TEST_F(HealthTest, EachSignalReachesItsThresholdedState) {
  {
    Signals s;
    s.fallback_outstanding = 8;  // Degraded entry for the fallback signal
    EXPECT_EQ(governor().apply(s), State::kDegraded);
    EXPECT_STREQ(governor().transition_log().back().cause, "pool-fallback");
  }
  governor().reset();
  {
    Signals s;
    s.heat_delta = 5000;  // Critical entry for contention heat
    EXPECT_EQ(governor().apply(s), State::kCritical);
    EXPECT_STREQ(governor().transition_log().back().cause, "contention-heat");
  }
  governor().reset();
  {
    // restart_delta shares the heat thresholds (max of the two).
    Signals s;
    s.restart_delta = 300;
    EXPECT_EQ(governor().apply(s), State::kPressured);
    EXPECT_STREQ(governor().transition_log().back().cause, "contention-heat");
  }
}

TEST_F(HealthTest, StallWatchdogForcesAtLeastDegraded) {
  Signals s;
  s.stalled_now = true;
  EXPECT_EQ(governor().apply(s), State::kDegraded);
  EXPECT_STREQ(governor().transition_log().back().cause, "stall-watchdog");
}

TEST_F(HealthTest, DeEscalatesOneLevelPerRecoverTicks) {
  Signals storm;
  storm.backlog = 600'000;
  ASSERT_EQ(governor().apply(storm), State::kCritical);

  // recover_ticks=2: every second calm sample steps down exactly one level.
  const Signals calm;
  EXPECT_EQ(governor().apply(calm), State::kCritical);
  EXPECT_EQ(governor().apply(calm), State::kDegraded);
  EXPECT_EQ(governor().apply(calm), State::kDegraded);
  EXPECT_EQ(governor().apply(calm), State::kPressured);
  EXPECT_EQ(governor().apply(calm), State::kPressured);
  EXPECT_EQ(governor().apply(calm), State::kHealthy);
  EXPECT_EQ(governor().transitions(), 4u);  // 1 up + 3 down

  const auto log = governor().transition_log();
  ASSERT_EQ(log.size(), 4u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_STREQ(log[i].cause, "recovery");
    EXPECT_GE(log[i].tick, log[i - 1].tick);  // tick stamps are monotone
  }
}

TEST_F(HealthTest, FlappingSignalHoldsStateWithoutOscillation) {
  // Heat flapping between the Pressured entry threshold (256) and its exit
  // threshold (128): never calm against the exit side, so the state holds
  // at Pressured — exactly one transition no matter how long the flap.
  Signals hot;
  hot.heat_delta = 256;
  ASSERT_EQ(governor().apply(hot), State::kPressured);
  Signals warm;
  warm.heat_delta = 128;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(governor().apply(i % 2 ? hot : warm), State::kPressured);
  }
  EXPECT_EQ(governor().transitions(), 1u);

  // Genuinely below the exit threshold, recovery proceeds normally.
  Signals cool;
  cool.heat_delta = 127;
  governor().apply(cool);
  EXPECT_EQ(governor().apply(cool), State::kHealthy);
}

TEST_F(HealthTest, EpochLagNeedsPersistenceNotMagnitude) {
  // try_advance fails on any straggler, so lag magnitude saturates near 2;
  // what matters is the lag refusing to clear. lag_ticks=4: three lagging
  // samples are jitter, the fourth is a signal.
  Signals lag;
  lag.epoch_lag = 2;
  EXPECT_EQ(governor().apply(lag), State::kHealthy);
  EXPECT_EQ(governor().apply(lag), State::kHealthy);
  EXPECT_EQ(governor().apply(lag), State::kHealthy);
  EXPECT_EQ(governor().apply(lag), State::kPressured);
  EXPECT_STREQ(governor().transition_log().back().cause, "epoch-lag");

  // A clear sample resets the run: the next lagging streak starts over.
  const Signals calm;
  governor().apply(calm);
  governor().apply(calm);
  ASSERT_EQ(governor().state(), State::kHealthy);
  EXPECT_EQ(governor().apply(lag), State::kHealthy);
}

TEST_F(HealthTest, UnreachableThresholdsDisableTheGovernor) {
  // The storm campaign's negative control: UINT64_MAX everywhere models
  // the ungoverned build — no signal can move the state.
  Thresholds t;
  for (int i = 0; i < 3; ++i) {
    t.backlog[i] = t.fallback[i] = t.heat[i] = UINT64_MAX;
  }
  t.lag_ticks = UINT32_MAX;
  governor().set_thresholds(t);
  Signals storm;
  storm.backlog = 1u << 30;
  storm.fallback_outstanding = 1u << 20;
  storm.heat_delta = 1u << 20;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(governor().apply(storm), State::kHealthy);
  }
  EXPECT_EQ(governor().transitions(), 0u);
}

TEST_F(HealthTest, PolicyPredicatesFollowPublishedState) {
  using lot::health::admission_backoff_level;
  using lot::health::ebr_drain_shift;
  using lot::health::prefer_emergency_reserve;
  using lot::health::shed_rotations;

  lot::health::publish_state(State::kHealthy);
  EXPECT_FALSE(shed_rotations());
  EXPECT_EQ(ebr_drain_shift(), 0u);
  EXPECT_FALSE(prefer_emergency_reserve());
  EXPECT_EQ(admission_backoff_level(), 0u);

  lot::health::publish_state(State::kPressured);
  EXPECT_FALSE(shed_rotations());
  EXPECT_EQ(admission_backoff_level(), 1u);

  lot::health::publish_state(State::kDegraded);
  EXPECT_TRUE(shed_rotations());
  EXPECT_EQ(ebr_drain_shift(), 1u);
  EXPECT_TRUE(prefer_emergency_reserve());
  EXPECT_EQ(admission_backoff_level(), 2u);

  lot::health::publish_state(State::kCritical);
  EXPECT_TRUE(shed_rotations());
  EXPECT_EQ(ebr_drain_shift(), 2u);
  EXPECT_EQ(admission_backoff_level(), 4u);

  // The master switch (bench governor-off arm): state stays published —
  // obs keeps reporting it — but every policy reads "do nothing".
  lot::health::set_policies_enabled(false);
  EXPECT_EQ(lot::health::current_state(), State::kCritical);
  EXPECT_FALSE(shed_rotations());
  EXPECT_EQ(ebr_drain_shift(), 0u);
  EXPECT_FALSE(prefer_emergency_reserve());
  EXPECT_EQ(admission_backoff_level(), 0u);
}

// End-to-end with a real domain: a pinned straggler trips the stall
// watchdog, one governor sample lands in Degraded, and after the straggler
// releases the governor walks back to Healthy within recovery_bound()
// samples while the drain boost collapses the backlog.
TEST_F(HealthTest, StallEpisodeDegradesThenRecoversWithinBound) {
  lot::reclaim::EbrDomain domain;
  domain.set_retire_threshold(1);    // every retire attempts an advance
  domain.set_stall_strike_limit(4);  // report quickly
  domain.set_stall_report_us(0);     // attempt-only: deterministic here

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  std::thread straggler([&] {
    auto g = domain.guard();
    parked = true;
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  for (int i = 0; i < 32; ++i) domain.retire(new Tracked(i));
  ASSERT_TRUE(domain.stats().stalled_now);
  EXPECT_GE(governor().sample(domain), State::kDegraded);
  EXPECT_GE(governor().transitions(), 1u);

  release = true;
  straggler.join();
  ASSERT_FALSE(domain.stats().stalled_now);

  std::uint32_t ticks_to_healthy = 0;
  for (; ticks_to_healthy < governor().recovery_bound(); ++ticks_to_healthy) {
    if (governor().sample(domain) == State::kHealthy) break;
  }
  EXPECT_EQ(governor().state(), State::kHealthy);
  EXPECT_LT(ticks_to_healthy, governor().recovery_bound());

  // The sample-driven flushes (drain boost) plus two explicit ones leave
  // nothing behind.
  domain.flush();
  domain.flush();
  EXPECT_EQ(Tracked::live.load(), 0);
  EXPECT_EQ(domain.pending_retired(), 0u);
}

// The pool's break glass: the pre-armed reserve slab is granted only at
// Degraded or worse, bypasses slab_limit, and is consumed exactly once
// until re-armed.
TEST_F(HealthTest, EmergencyReserveGrantsOnlyUnderDegradation) {
  lot::reclaim::SizePool pool(64, 8);
  pool.set_slab_limit(1);
  pool.set_fallback_enabled(false);
  ASSERT_TRUE(pool.emergency_armed());
  const auto before = lot::reclaim::PoolStats::snapshot();

  std::vector<void*> slots;
  for (std::size_t i = 0; i < pool.slots_per_slab(); ++i) {
    slots.push_back(pool.allocate());
  }
  // Healthy + exhausted: the seed contract holds, reserve stays sealed.
  EXPECT_THROW(pool.allocate(), std::bad_alloc);
  EXPECT_TRUE(pool.emergency_armed());

  lot::health::publish_state(State::kDegraded);
  slots.push_back(pool.allocate());  // break glass
  EXPECT_FALSE(pool.emergency_armed());
  const auto after = lot::reclaim::PoolStats::snapshot();
  EXPECT_EQ(after.emergency_grants, before.emergency_grants + 1);
  EXPECT_EQ(pool.slab_count(), 2u);  // reserve ignores slab_limit=1

  // The granted slab serves a full slab's worth; once consumed the pool is
  // genuinely out even at Degraded.
  for (std::size_t i = 1; i < pool.slots_per_slab(); ++i) {
    slots.push_back(pool.allocate());
  }
  EXPECT_THROW(pool.allocate(), std::bad_alloc);

  EXPECT_TRUE(pool.rearm_emergency_reserve());
  EXPECT_TRUE(pool.emergency_armed());

  lot::health::publish_state(State::kHealthy);
  for (void* s : slots) pool.deallocate(s);
}

// Concurrent writer gates + governor ticks under TSan: the gate's TLS
// fast path, the try-lock sample, and state publication must be race-free.
TEST_F(HealthTest, ConcurrentGatesAndSamplesAreRaceFree) {
  lot::reclaim::EbrDomain domain;
  governor().set_min_interval_us(0);  // every stride tick really samples
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    // Exercise both directions while gates run.
    for (int i = 0; i < 200; ++i) {
      Signals s;
      s.heat_delta = i % 2 ? 5000 : 0;
      governor().apply(s);
      std::this_thread::yield();
    }
    stop = true;
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load()) {
        lot::health::writer_gate(domain);
        auto g = domain.guard();
      }
    });
  }
  flipper.join();
  for (auto& w : writers) w.join();
  EXPECT_GT(governor().ticks(), 0u);
}

#endif  // LOT_DISABLE_HEALTH

}  // namespace
