// Tests for the benchmark substrate itself: the prefill discipline and the
// trial driver must implement §6's methodology faithfully, because every
// table row depends on them.
#include <gtest/gtest.h>

#include <cstdint>

#include "baselines/coarse/coarse_map.hpp"
#include "lo/avl.hpp"
#include "workload/driver.hpp"
#include "workload/spec.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
namespace wl = lot::workload;

TEST(WorkloadDriver, PrefillReachesTargetSize) {
  const auto spec = wl::make_spec(wl::Mix::k50C25I25R, 10'000);
  lot::lo::AvlMap<K, V> map;
  wl::prefill(map, spec, /*threads=*/4, /*seed=*/1);
  // The shaping phase runs the (zero-drift at target) trial mix for a
  // bounded round, so the final size is the target ± a small random-walk
  // fluctuation.
  const auto size = static_cast<double>(map.size_slow());
  const auto target = static_cast<double>(spec.prefill_target());
  EXPECT_GE(size, target * 0.93);
  EXPECT_LE(size, target * 1.07);
}

TEST(WorkloadDriver, PrefillSteadyStateForAsymmetricMix) {
  const auto spec = wl::make_spec(wl::Mix::k70C20I10R, 9'000);
  EXPECT_EQ(spec.prefill_target(), 6'000);  // 2:1 insert:remove -> 2/3
  lot::lo::AvlMap<K, V> map;
  wl::prefill(map, spec, 2, 7);
  const auto size = static_cast<double>(map.size_slow());
  EXPECT_GE(size, 6'000 * 0.93);
  EXPECT_LE(size, 6'000 * 1.07);
}

TEST(WorkloadDriver, ReadOnlyMixPrefillsToHalf) {
  const auto spec = wl::make_spec(wl::Mix::k100C, 2'000);
  EXPECT_EQ(spec.prefill_target(), 1'000);
  lot::lo::AvlMap<K, V> map;
  wl::prefill(map, spec, 2, 3);
  // No updates in the mix: phase 2 is skipped and the size is exact (up
  // to one in-flight insert per thread).
  EXPECT_GE(map.size_slow(), 1'000u);
  EXPECT_LE(map.size_slow(), 1'002u);
}

TEST(WorkloadDriver, TrialCountsOpsAndRespectsDuration) {
  const auto spec = wl::make_spec(wl::Mix::k70C20I10R, 1'000);
  lot::baselines::CoarseMap<K, V> map;
  wl::prefill(map, spec, 2, 5);
  const auto r = wl::run_trial(map, spec, /*threads=*/2, /*seconds=*/0.2,
                               /*seed=*/5);
  EXPECT_GT(r.total_ops, 0u);
  EXPECT_GE(r.seconds, 0.2);
  EXPECT_LT(r.seconds, 10.0);  // wall clock sanity (loose: CI boxes stall)
  EXPECT_NEAR(r.mops_per_sec,
              static_cast<double>(r.total_ops) / r.seconds / 1e6, 1e-9);
}

TEST(WorkloadDriver, ReadOnlyTrialDoesNotMutate) {
  const auto spec = wl::make_spec(wl::Mix::k100C, 1'000);
  lot::lo::AvlMap<K, V> map;
  wl::prefill(map, spec, 2, 9);
  const auto before = map.size_slow();
  wl::run_trial(map, spec, 2, 0.1, 11);
  EXPECT_EQ(map.size_slow(), before);
}

TEST(WorkloadDriver, MixedTrialHoldsSteadyState) {
  const auto spec = wl::make_spec(wl::Mix::k50C25I25R, 2'000);
  lot::lo::AvlMap<K, V> map;
  wl::prefill(map, spec, 4, 13);
  wl::run_trial(map, spec, 4, 0.3, 13);
  // Symmetric insert/remove keeps the structure near half occupancy.
  const auto size = map.size_slow();
  EXPECT_GT(size, 700u);
  EXPECT_LT(size, 1'300u);
}

}  // namespace
