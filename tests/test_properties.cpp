// Property-based parameterized sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// for every (threads, key range, update ratio) point in the grid, run a
// randomized concurrent workload against each logical-ordering tree and
// check the invariants that must hold at quiescence:
//   P1  structural validity (ordering chain <-> tree agreement, BST order,
//       no marked nodes reachable, no leaked locks),
//   P2  strict AVL balance for the balanced variant,
//   P3  set semantics: final contents equal a replay of the per-thread
//       operation logs (merged by a deterministic tie-break is impossible
//       concurrently, so we use per-thread disjoint key blocks),
//   P4  reclamation: the retire pipeline drains and physical == live.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
#include "lo/validate.hpp"
#include "util/random.hpp"

namespace {

using K = std::int64_t;
using V = std::int64_t;
using lot::util::Xoshiro256;

// (threads, keys-per-thread, update percentage)
using Param = std::tuple<int, int, int>;

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [threads, keys, upd] = info.param;
  return "t" + std::to_string(threads) + "_k" + std::to_string(keys) +
         "_u" + std::to_string(upd);
}

template <typename MapT>
void run_disjoint_property(const Param& param, bool balanced,
                           bool partial) {
  const auto [threads, keys_per_thread, update_pct] = param;
  lot::reclaim::EbrDomain domain;
  const auto live_before = lot::reclaim::AllocStats::live();
  {
    MapT m(domain);
    std::vector<std::set<K>> expected(threads);
    std::vector<std::thread> workers;
    std::atomic<bool> result_mismatch{false};
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        Xoshiro256 rng(1234u * (t + 1));
        auto& mine = expected[t];
        const K base = static_cast<K>(t) * keys_per_thread;
        for (int i = 0; i < 25'000; ++i) {
          const K k = base + static_cast<K>(rng.next_below(
                                 static_cast<std::uint64_t>(keys_per_thread)));
          const auto dice = rng.next_below(100);
          if (dice >= static_cast<std::uint64_t>(update_pct)) {
            // P3 for reads too: membership must match this thread's view
            // of its own partition.
            if (m.contains(k) != (mine.count(k) > 0)) result_mismatch = true;
          } else if (dice < static_cast<std::uint64_t>(update_pct) / 2) {
            if (m.insert(k, k) != (mine.count(k) == 0)) {
              result_mismatch = true;
            }
            mine.insert(k);
          } else {
            if (m.erase(k) != (mine.count(k) > 0)) result_mismatch = true;
            mine.erase(k);
          }
        }
      });
    }
    for (auto& w : workers) w.join();

    ASSERT_FALSE(result_mismatch.load()) << "P3: op result disagreed with "
                                            "the single-writer partition view";
    std::set<K> all;
    for (const auto& s : expected) all.insert(s.begin(), s.end());
    ASSERT_EQ(m.size_slow(), all.size()) << "P3: final size mismatch";
    std::vector<K> in_order;
    m.for_each([&](K k, V) { in_order.push_back(k); });
    ASSERT_TRUE(std::equal(in_order.begin(), in_order.end(), all.begin(),
                           all.end()))
        << "P3: final contents mismatch";

    if constexpr (MapT::kBalanced) {
      // Converge throttle-deferred rotations before asserting the strict
      // AVL bound — P1/P2 are statements about quiescence.
      if (balanced) m.repair_balance();
    }
    const auto rep = lot::lo::validate(m, balanced, partial);
    ASSERT_TRUE(rep.ok) << "P1/P2:\n" << rep.to_string();

    domain.flush();
    domain.flush();
    domain.flush();
    EXPECT_EQ(domain.pending_retired(), 0u) << "P4: retire backlog";
  }
  EXPECT_EQ(lot::reclaim::AllocStats::live(), live_before)
      << "P4: node leak";
}

class LoBstProperty : public ::testing::TestWithParam<Param> {};
class LoAvlProperty : public ::testing::TestWithParam<Param> {};
class LoPartialAvlProperty : public ::testing::TestWithParam<Param> {};

TEST_P(LoBstProperty, DisjointPartitionInvariants) {
  run_disjoint_property<lot::lo::BstMap<K, V>>(GetParam(), false, false);
}

TEST_P(LoAvlProperty, DisjointPartitionInvariants) {
  run_disjoint_property<lot::lo::AvlMap<K, V>>(GetParam(), true, false);
}

TEST_P(LoPartialAvlProperty, DisjointPartitionInvariants) {
  run_disjoint_property<lot::lo::PartialAvlMap<K, V>>(GetParam(), true,
                                                      true);
}

// The grid: contention from "hammering 32 keys" to "spread over 4096",
// read-mostly to update-only, 2 to 8 threads.
const auto kGrid = ::testing::Values(
    Param{2, 32, 100}, Param{2, 512, 50}, Param{4, 32, 100},
    Param{4, 256, 60}, Param{4, 4096, 20}, Param{8, 64, 80},
    Param{8, 1024, 40}, Param{8, 4096, 100});

INSTANTIATE_TEST_SUITE_P(Grid, LoBstProperty, kGrid, param_name);
INSTANTIATE_TEST_SUITE_P(Grid, LoAvlProperty, kGrid, param_name);
INSTANTIATE_TEST_SUITE_P(Grid, LoPartialAvlProperty, kGrid, param_name);

}  // namespace
