// Schedule-perturbed linearizability stress for the logical-ordering
// trees. Compiled with LOT_SCHEDULE_PERTURB: the named points inside
// lo/core.hpp and lo/rebalance.hpp inject randomized pauses, widening the
// relocation / rotation / half-linked windows; every operation's
// invocation, response and result are recorded and the merged history is
// checked against set semantics offline. This is the harness the ISSUE's
// acceptance criterion runs on the *unmodified* tree — every history from
// 8-thread perturbed runs must pass.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/perturb.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
#include "stress_common.hpp"
#include "workload/driver.hpp"

namespace {

using K = std::int64_t;
using lot::check::PerturbPoint;
using lot::stress::run_perturbed_stress;
using lot::stress::scaled;
using lot::stress::StressParams;

static_assert(lot::check::kSchedulePerturb,
              "stress targets must compile the trees with "
              "LOT_SCHEDULE_PERTURB (see tests/stress/CMakeLists.txt)");

template <typename MapT>
class LoLinearizabilityStress : public ::testing::Test {};

using Impls =
    ::testing::Types<lot::lo::BstMap<K, K>, lot::lo::AvlMap<K, K>>;
TYPED_TEST_SUITE(LoLinearizabilityStress, Impls);

// The acceptance workload: 8 threads, mixed churn over a half-full range,
// three phases of escalating perturbation, structural validation at every
// phase barrier, full history through the checker.
TYPED_TEST(LoLinearizabilityStress, PerturbedMixedChurnIsLinearizable) {
  TypeParam map;
  StressParams p;
  p.check_heights = std::is_same_v<TypeParam, lot::lo::AvlMap<K, K>>;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats(
      p.check_heights ? "avl mixed churn" : "bst mixed churn", out);
  lot::stress::expect_linearizable(out);
  // The tree's own telemetry must agree with the recorded history exactly
  // (and prove no read path ever re-descended) — the ISSUE's reconciliation
  // acceptance criterion.
  lot::stress::expect_obs_reconciles(out, p.scan_len);
  EXPECT_GE(out.total_ops,
            p.threads * static_cast<std::uint64_t>(p.phases) * p.ops_per_phase);

  // The perturbation must actually have fired inside the windows this
  // harness exists to widen; otherwise the run degenerates to the plain
  // concurrent test and the acceptance claim is hollow.
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kInsertBeforeTreeLink), 0u);
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kEraseAfterMark), 0u);
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kEraseBeforeTreeUnlink),
            0u);
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kLocateAfterDescent), 0u);
  // Two-child removals relocate the successor; with a half-dense range and
  // ~30% erases the window is hit thousands of times per run.
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRelocateDetached), 0u);
  if (p.check_heights) {
    EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRotate), 0u);
  }
}

// All threads hammering two keys: operations on the same key genuinely
// overlap, so the checker's WGL search (not just the interval pre-pass)
// is exercised against real histories.
TYPED_TEST(LoLinearizabilityStress, SingleKeyContentionExercisesSearch) {
  TypeParam map;
  StressParams p;
  p.threads = 4;
  p.phases = 1;
  p.ops_per_phase = scaled(4'000);
  p.key_range = 2;
  p.contains_pct = 34;
  p.insert_pct = 33;
  p.prefill = false;
  p.fire_permille = 60;
  p.max_sleep_us = 40;
  p.seed = 99;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats("single-key contention", out);
  lot::stress::expect_linearizable(out);
  lot::stress::expect_obs_reconciles(out, p.scan_len);
  EXPECT_GT(out.result.stats.overlap_blocks, 0u)
      << "contention run produced no overlapping operations — the WGL "
         "search was never exercised";
  EXPECT_GT(out.result.stats.configs_explored, 0u);
}

// Scan-enabled campaign over all four tree variants (PR 4's ordered
// layer): range scans ride in the op mix, each decomposed by the recorder
// into per-key contains observations the checker validates like any other
// reads — a scan that misses a stably-present key, reports a never-present
// one, or resurrects a removed key renders the history non-linearizable.
// The logical-removing variants additionally race scans against
// revive-in-place and opportunistic purges.
template <typename MapT>
class LoScanStress : public ::testing::Test {};

using ScanImpls = ::testing::Types<
    lot::lo::BstMap<K, K>, lot::lo::AvlMap<K, K>,
    lot::lo::PartialBstMap<K, K>, lot::lo::PartialAvlMap<K, K>>;
TYPED_TEST_SUITE(LoScanStress, ScanImpls);

TYPED_TEST(LoScanStress, PerturbedScanChurnIsLinearizable) {
  TypeParam map;
  StressParams p;
  p.phases = 2;
  // Each scan records scan_len observations; ops_per_phase is sized so the
  // worst-case per-thread log (ops * scan_len) stays modest.
  p.ops_per_phase = scaled(4'000);
  p.scan_pct = 15;  // erase share becomes 100 - 40 - 30 - 15 = 15
  p.scan_len = 12;
  p.check_heights = TypeParam::kBalanced;
  p.partial = TypeParam::kLogicalRemoving;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats(TypeParam::name().data(), out);
  lot::stress::expect_linearizable(out);
  // Reconciliation across all four variants, scans included: point
  // contains plus scans x scan_len must equal the history's contains
  // observations, hits must match keys reported, and no read restarts.
  lot::stress::expect_obs_reconciles(out, p.scan_len);

  // The scans must actually have been perturbed mid-walk; with ~5760
  // kRangeStep probes per run even the scaled-down tsan twin hits this
  // hundreds of times.
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRangeStep), 0u);
  // The rarer write-side hooks (a relocation fires on a successful
  // two-children erase only — tens of expected hits at full scale) are
  // asserted only in the full-fat build: the tsan twin's
  // LOT_STRESS_DIVISOR=20 run is small enough for an unlucky schedule to
  // legitimately land zero hits.
  if (LOT_STRESS_DIVISOR == 1) {
    EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kInsertHalfLinked), 0u);
    EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kEraseAfterMark), 0u);
    if (TypeParam::kBalanced) {
      EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRotate), 0u);
    }
    if (!TypeParam::kLogicalRemoving) {
      // Two-child removals relocate the successor under the scan's feet.
      EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRelocateDetached),
                0u);
    }
  }
}

// The workload driver's history-capture mode feeds the same checker: an
// empty map, the default mixed spec, 8 recorded threads.
TEST(DriverCapture, RecordedTrialHistoryIsLinearizable) {
  lot::lo::BstMap<K, K> map;
  lot::workload::Spec spec;
  spec.name = "stress-capture";
  spec.contains_pct = 34;
  spec.insert_pct = 33;
  spec.remove_pct = 33;
  spec.key_range = 128;
  const unsigned threads = 8;
  const std::uint64_t ops = scaled(8'000);
  lot::check::HistoryRecorder<K> rec(threads, ops + 1);

  lot::check::reset_perturb_hits();
  lot::check::set_perturbation(40, 50);
  lot::check::enable_perturbation(true);
  const auto obs_before = lot::obs::Registry::instance().snapshot();
  const auto trial =
      lot::workload::run_recorded_trial(map, spec, threads, ops, 7, rec);
  lot::check::enable_perturbation(false);
  const auto obs_after = lot::obs::Registry::instance().snapshot();

  EXPECT_EQ(trial.total_ops, threads * ops);
  ASSERT_FALSE(rec.overflowed());
  auto out = lot::stress::check_history(rec.merged());
  out.obs_before = obs_before;
  out.obs_after = obs_after;
  lot::stress::print_check_stats("driver capture", out);
  lot::stress::expect_linearizable(out);
  lot::stress::expect_obs_reconciles(out, spec.scan_len);

  const auto rep = lot::lo::validate(map, /*check_heights=*/false);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

// Capture mode again with scans in the spec, end to end through the
// driver's record_scan branch (workload/driver.hpp).
TEST(DriverCapture, RecordedScanTrialHistoryIsLinearizable) {
  lot::lo::AvlMap<K, K> map;
  lot::workload::Spec spec;
  spec.name = "stress-scan-capture";
  spec.contains_pct = 30;
  spec.insert_pct = 25;
  spec.remove_pct = 25;  // remaining 20% are range scans
  spec.scan_pct = 20;
  spec.scan_len = 8;
  spec.key_range = 128;
  const unsigned threads = 8;
  const std::uint64_t ops = scaled(4'000);
  // Worst case every op is a scan of scan_len recorded observations.
  lot::check::HistoryRecorder<K> rec(
      threads, ops * static_cast<std::uint64_t>(spec.scan_len) + 1);

  lot::check::reset_perturb_hits();
  lot::check::set_perturbation(40, 50);
  lot::check::enable_perturbation(true);
  const auto obs_before = lot::obs::Registry::instance().snapshot();
  const auto trial =
      lot::workload::run_recorded_trial(map, spec, threads, ops, 11, rec);
  lot::check::enable_perturbation(false);
  const auto obs_after = lot::obs::Registry::instance().snapshot();

  EXPECT_EQ(trial.total_ops, threads * ops);
  ASSERT_FALSE(rec.overflowed());
  auto out = lot::stress::check_history(rec.merged());
  out.obs_before = obs_before;
  out.obs_after = obs_after;
  lot::stress::print_check_stats("driver scan capture", out);
  lot::stress::expect_linearizable(out);
  lot::stress::expect_obs_reconciles(out, spec.scan_len);
  EXPECT_GT(lot::check::perturb_hits(lot::check::PerturbPoint::kRangeStep),
            0u);

  map.repair_balance();  // converge throttle-deferred rotations (quiescent)
  const auto rep = lot::lo::validate(map, /*check_heights=*/true);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

}  // namespace
