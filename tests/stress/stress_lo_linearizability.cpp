// Schedule-perturbed linearizability stress for the logical-ordering
// trees. Compiled with LOT_SCHEDULE_PERTURB: the named points inside
// lo/map.hpp and lo/rebalance.hpp inject randomized pauses, widening the
// relocation / rotation / half-linked windows; every operation's
// invocation, response and result are recorded and the merged history is
// checked against set semantics offline. This is the harness the ISSUE's
// acceptance criterion runs on the *unmodified* tree — every history from
// 8-thread perturbed runs must pass.
#include <gtest/gtest.h>

#include <cstdint>

#include "check/perturb.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "stress_common.hpp"
#include "workload/driver.hpp"

namespace {

using K = std::int64_t;
using lot::check::PerturbPoint;
using lot::stress::run_perturbed_stress;
using lot::stress::scaled;
using lot::stress::StressParams;

static_assert(lot::check::kSchedulePerturb,
              "stress targets must compile the trees with "
              "LOT_SCHEDULE_PERTURB (see tests/stress/CMakeLists.txt)");

template <typename MapT>
class LoLinearizabilityStress : public ::testing::Test {};

using Impls =
    ::testing::Types<lot::lo::BstMap<K, K>, lot::lo::AvlMap<K, K>>;
TYPED_TEST_SUITE(LoLinearizabilityStress, Impls);

// The acceptance workload: 8 threads, mixed churn over a half-full range,
// three phases of escalating perturbation, structural validation at every
// phase barrier, full history through the checker.
TYPED_TEST(LoLinearizabilityStress, PerturbedMixedChurnIsLinearizable) {
  TypeParam map;
  StressParams p;
  p.check_heights = std::is_same_v<TypeParam, lot::lo::AvlMap<K, K>>;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats(
      p.check_heights ? "avl mixed churn" : "bst mixed churn", out);
  lot::stress::expect_linearizable(out);
  EXPECT_GE(out.total_ops,
            p.threads * static_cast<std::uint64_t>(p.phases) * p.ops_per_phase);

  // The perturbation must actually have fired inside the windows this
  // harness exists to widen; otherwise the run degenerates to the plain
  // concurrent test and the acceptance claim is hollow.
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kInsertBeforeTreeLink), 0u);
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kEraseAfterMark), 0u);
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kEraseBeforeTreeUnlink),
            0u);
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kLocateAfterDescent), 0u);
  // Two-child removals relocate the successor; with a half-dense range and
  // ~30% erases the window is hit thousands of times per run.
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRelocateDetached), 0u);
  if (p.check_heights) {
    EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRotate), 0u);
  }
}

// All threads hammering two keys: operations on the same key genuinely
// overlap, so the checker's WGL search (not just the interval pre-pass)
// is exercised against real histories.
TYPED_TEST(LoLinearizabilityStress, SingleKeyContentionExercisesSearch) {
  TypeParam map;
  StressParams p;
  p.threads = 4;
  p.phases = 1;
  p.ops_per_phase = scaled(4'000);
  p.key_range = 2;
  p.contains_pct = 34;
  p.insert_pct = 33;
  p.prefill = false;
  p.fire_permille = 60;
  p.max_sleep_us = 40;
  p.seed = 99;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats("single-key contention", out);
  lot::stress::expect_linearizable(out);
  EXPECT_GT(out.result.stats.overlap_blocks, 0u)
      << "contention run produced no overlapping operations — the WGL "
         "search was never exercised";
  EXPECT_GT(out.result.stats.configs_explored, 0u);
}

// The workload driver's history-capture mode feeds the same checker: an
// empty map, the default mixed spec, 8 recorded threads.
TEST(DriverCapture, RecordedTrialHistoryIsLinearizable) {
  lot::lo::BstMap<K, K> map;
  lot::workload::Spec spec;
  spec.name = "stress-capture";
  spec.contains_pct = 34;
  spec.insert_pct = 33;
  spec.remove_pct = 33;
  spec.key_range = 128;
  const unsigned threads = 8;
  const std::uint64_t ops = scaled(8'000);
  lot::check::HistoryRecorder<K> rec(threads, ops + 1);

  lot::check::reset_perturb_hits();
  lot::check::set_perturbation(40, 50);
  lot::check::enable_perturbation(true);
  const auto trial =
      lot::workload::run_recorded_trial(map, spec, threads, ops, 7, rec);
  lot::check::enable_perturbation(false);

  EXPECT_EQ(trial.total_ops, threads * ops);
  ASSERT_FALSE(rec.overflowed());
  const auto out = lot::stress::check_history(rec.merged());
  lot::stress::print_check_stats("driver capture", out);
  lot::stress::expect_linearizable(out);

  const auto rep = lot::lo::validate(map, /*check_heights=*/false);
  EXPECT_TRUE(rep.ok) << rep.to_string();
}

}  // namespace
