// Checker sensitivity proof: this target compiles the tree with
// LOT_INJECT_BUG, which makes locate() trust the physical tree alone —
// it skips the logical-ordering walk that the paper's contains() needs
// for correctness while a two-child removal has the successor detached
// from the tree layout (lo/map.hpp, kRelocateDetached window). With the
// perturbation stretching that window, a reader descending at the wrong
// moment reports a long-present key absent: a contains(k)=false whose
// interval overlaps no insert/remove of k. The history checker must
// reject such a history; if it ever stopped doing so, the whole
// linearizability harness would be vacuous.
#include <gtest/gtest.h>

#include <cstdint>

#include "lo/bst.hpp"
#include "stress_common.hpp"

#ifndef LOT_INJECT_BUG
#error "this target must be compiled with LOT_INJECT_BUG"
#endif

namespace {

using K = std::int64_t;
using lot::stress::run_perturbed_stress;
using lot::stress::scaled;
using lot::stress::StressParams;

TEST(SeededBug, CheckerRejectsTreeOnlyContains) {
  // Dense prefill + erase/contains-heavy mix maximizes two-child removals
  // racing readers; aggressive perturbation stretches the detached window.
  // Each attempt is an independent seed; the bug fires probabilistically,
  // so allow a few runs before declaring the checker blind.
  constexpr int kAttempts = 5;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    lot::lo::BstMap<K, K> map;
    StressParams p;
    p.threads = 8;
    p.phases = 1;
    p.ops_per_phase = scaled(10'000);
    p.key_range = 256;
    p.contains_pct = 50;
    p.insert_pct = 20;
    p.fire_permille = 80;
    p.max_sleep_us = 200;
    p.seed = 1000 + static_cast<std::uint64_t>(attempt);
    const auto out = run_perturbed_stress(map, p);
    if (out.result.verdict == lot::check::Verdict::kNonLinearizable) {
      EXPECT_FALSE(out.result.witness.empty());
      EXPECT_FALSE(out.result.reason.empty());
      SUCCEED() << "seeded bug caught on attempt " << attempt << ": "
                << out.result.reason;
      return;
    }
    ASSERT_NE(out.result.verdict, lot::check::Verdict::kAborted)
        << out.result.reason;
  }
  FAIL() << "checker accepted " << kAttempts
         << " histories from the seeded-bug tree — either the injected "
            "race never fired (perturbation too weak) or the checker "
            "cannot see result-level violations";
}

}  // namespace
