// Schedule-perturbed linearizability campaign for the shard-routed layer
// (src/shard/, DESIGN.md §15). Same harness as the single-tree stress —
// recorded mixed churn, escalating perturbation, per-phase structural
// validation (per shard, shard/validate.hpp), full history through the
// checker — but driven through ShardedMap, so every operation crosses the
// router and the ordered ops cross the k-way merge, while reclamation and
// contention heat land in per-shard private domains.
//
// Also here: the shards=1 degenerate run (the acceptance criterion that
// the scale-out layer is free when unused — the existing campaign shape
// must pass unchanged through the wrapper) and exact obs reconciliation
// for sharded scans (the shifted descent identity, see below).
#include <gtest/gtest.h>

#include <cstdint>

#include "check/perturb.hpp"
#include "lo/avl.hpp"
#include "lo/bst.hpp"
#include "lo/partial.hpp"
// Must precede stress_common.hpp: the harness's qualified
// lo::validate(map, ...) call resolves against the overloads visible at
// its point of definition, and ShardedMap needs the per-shard overload.
#include "shard/validate.hpp"
#include "shard/sharded_map.hpp"
#include "stress_common.hpp"

namespace {

using K = std::int64_t;
using lot::check::PerturbPoint;
using lot::shard::ShardedMap;
using lot::stress::run_perturbed_stress;
using lot::stress::scaled;
using lot::stress::StressParams;

static_assert(lot::check::kSchedulePerturb,
              "stress targets must compile the trees with "
              "LOT_SCHEDULE_PERTURB (see tests/stress/CMakeLists.txt)");

/// Sharded variant of expect_obs_reconciles: identical op accounting, but
/// the descent identity shifts. A sharded range counts one kRangeOps at
/// the router layer (no descent of its own) while each of the k inner
/// cursor opens counts its real descent as kOrderedLocates — so
/// `accounted - descents` is exactly the number of sharded scans, and the
/// contains_restarts audit must come out at exactly -scans instead of 0.
/// Still zero-tolerance: any read path restarting a descent breaks the
/// equality just as it would break the == 0 form.
template <typename KeyT>
void expect_sharded_obs_reconciles(
    const lot::stress::StressOutcome<KeyT>& out, std::int64_t scan_len) {
  if (!lot::obs::kEnabled) return;
  std::uint64_t ins = 0, ins_ok = 0, rem = 0, rem_ok = 0;
  std::uint64_t con = 0, con_ok = 0;
  for (const auto& e : out.history) {
    switch (e.op) {
      case lot::check::Op::kInsert:
        ++ins;
        ins_ok += e.result ? 1 : 0;
        break;
      case lot::check::Op::kRemove:
        ++rem;
        rem_ok += e.result ? 1 : 0;
        break;
      case lot::check::Op::kContains:
        ++con;
        con_ok += e.result ? 1 : 0;
        break;
      case lot::check::Op::kScan:
        break;  // whole-scan observations never land in the event log
    }
  }
  using lot::obs::Counter;
  const auto d = [&](Counter c) {
    return out.obs_after.counter(c) - out.obs_before.counter(c);
  };
  EXPECT_EQ(d(Counter::kInsertOps), ins) << "insert ops vs history";
  EXPECT_EQ(d(Counter::kInsertSuccess), ins_ok) << "insert successes";
  EXPECT_EQ(d(Counter::kEraseOps), rem) << "erase ops vs history";
  EXPECT_EQ(d(Counter::kEraseSuccess), rem_ok) << "erase successes";
  const std::uint64_t scans = d(Counter::kRangeOps);
  EXPECT_EQ(d(Counter::kContainsOps) +
                scans * static_cast<std::uint64_t>(scan_len),
            con)
      << "contains observations (point + " << scans << " scans x "
      << scan_len << ") vs history";
  EXPECT_EQ(d(Counter::kContainsHits) + d(Counter::kRangeKeysReported),
            con_ok)
      << "contains hits + scan keys reported vs history true-reads";
  EXPECT_EQ(lot::obs::Snapshot::contains_restarts_between(out.obs_before,
                                                          out.obs_after),
            -static_cast<std::int64_t>(scans))
      << "sharded descent identity broke: a read path re-descended";
  EXPECT_EQ(d(Counter::kValidationFallbacks),
            d(Counter::kInsertRestarts) + d(Counter::kEraseRestarts))
      << "fallbacks vs restart counts diverged";
}

template <typename MapT>
class LoShardStress : public ::testing::Test {};

// Both removal policies, both balance flavours, behind a 4-shard router:
// with key_range=192 and 64-key blocks the working set spans exactly three
// of the four shards, leaving one shard provably cold (asserted below via
// router stats).
using Impls = ::testing::Types<ShardedMap<lot::lo::BstMap<K, K>, 4>,
                               ShardedMap<lot::lo::AvlMap<K, K>, 4>,
                               ShardedMap<lot::lo::PartialBstMap<K, K>, 4>,
                               ShardedMap<lot::lo::PartialAvlMap<K, K>, 4>>;
TYPED_TEST_SUITE(LoShardStress, Impls);

TYPED_TEST(LoShardStress, PerturbedShardedChurnIsLinearizable) {
  TypeParam map;
  StressParams p;
  p.check_heights = TypeParam::kBalanced;
  p.partial = TypeParam::kLogicalRemoving;
  // Scans in the mix: every scan crosses the k-way merge mid-churn.
  p.phases = 2;
  p.ops_per_phase = scaled(4'000);
  p.scan_pct = 15;
  p.scan_len = 12;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats(TypeParam::name().data(), out);
  lot::stress::expect_linearizable(out);
  expect_sharded_obs_reconciles(out, p.scan_len);

  // The campaign must have genuinely exercised the sharded reclamation
  // universes: every touched shard retired nodes into its OWN domain.
  std::uint64_t touched = 0;
  for (unsigned i = 0; i < TypeParam::shard_count(); ++i) {
    const auto st = map.shard_stats(i);
    const auto ds = map.shard_domain(i).stats();
    if (st.point_ops > 0) {
      ++touched;
      EXPECT_GT(ds.backlog_peak, 0u)
          << "shard " << i << " saw ops but retired nothing into its domain";
    } else {
      // Cold shard: nothing ever retired there (key_range=192 covers
      // blocks 0..2 of the 4-stripe).
      EXPECT_EQ(ds.pending_retired, 0u) << "shard " << i;
    }
  }
  EXPECT_EQ(touched, 3u) << "key_range=192 must span exactly 3 of 4 shards";

  // Perturbation fired inside the windows (same floor as the single-tree
  // campaign; the write-side hooks fire per inner tree exactly as before).
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kInsertBeforeTreeLink),
            0u);
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kEraseAfterMark), 0u);
  EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRangeStep), 0u);
  if (TypeParam::kBalanced) {
    EXPECT_GT(lot::check::perturb_hits(PerturbPoint::kRotate), 0u);
  }
}

// The degenerate configuration: shards=1 behind the router must pass the
// exact acceptance campaign the unsharded tree passes (mixed churn, three
// escalating phases, per-phase validation, full checker) — the scale-out
// layer costs nothing when unused.
TEST(LoShardStress1, SingleShardPassesTheAcceptanceCampaign) {
  ShardedMap<lot::lo::AvlMap<K, K>, 1> map;
  StressParams p;
  p.check_heights = true;
  const auto out = run_perturbed_stress(map, p);
  lot::stress::print_check_stats("sharded-x1 avl mixed churn", out);
  lot::stress::expect_linearizable(out);
  // No scans in the default params, so the shifted identity reduces to the
  // unsharded form and the stock reconciliation applies verbatim.
  lot::stress::expect_obs_reconciles(out, p.scan_len);
  EXPECT_GE(out.total_ops,
            p.threads * static_cast<std::uint64_t>(p.phases) *
                p.ops_per_phase);
}

}  // namespace
